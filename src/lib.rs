//! # ccsds-ldpc
//!
//! A CCSDS near-earth LDPC decoder system in Rust — a full reproduction of
//! *"A Generic Architecture of CCSDS Low Density Parity Check Decoder for
//! Near-Earth Applications"* (Demangel, Fau, Drabik, Charot, Wolinski;
//! DATE 2009).
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`gf2`] — GF(2) linear algebra (bit vectors, matrices, circulants);
//! * [`core`] — the CCSDS C2 (8176, 7156) quasi-cyclic code, systematic
//!   encoder, and the decoder family (sum-product, normalized min-sum,
//!   bit-accurate fixed point, layered), plus the frame-batched decoders
//!   that mirror the architecture's frames-per-word packing;
//! * [`channel`] — BPSK modulation, the AWGN/BSC/Rayleigh channel
//!   models plus the erasure and Gilbert-Elliott burst channels
//!   behind the object-safe `Channel` trait, and LLR demapping;
//! * [`hwsim`] — the paper's generic parallel architecture: cycle-accurate
//!   simulator, throughput model (Table 1), and FPGA resource model
//!   (Tables 2–3);
//! * [`sim`] — multithreaded Monte-Carlo BER/PER engine (Figure 4);
//! * [`ar4ja`] — AR4JA deep-space codes, the paper's stated future work;
//! * [`served`] — decode-as-a-service: a TCP server coalescing many
//!   clients' frames into full `@pack`/`@batch`/`@bitslice` words under
//!   a latency budget (the serving mirror of the paper's
//!   8-frames-in-flight datapath).
//!
//! # Quickstart
//!
//! Every decoder family is reachable through one declarative front
//! door: a [`DecoderSpec`](core::DecoderSpec) string names the family,
//! its parameters, and how it runs (`"nms:1.25@batch=8"`,
//! `"gallager-b@bitslice"`, …), and builds the decoder behind the
//! object-safe [`BlockDecoder`](core::BlockDecoder) trait:
//!
//! ```
//! use ccsds_ldpc::core::codes::small::demo_code;
//! use ccsds_ldpc::core::DecoderSpec;
//! use ccsds_ldpc::channel::AwgnChannel;
//! use ccsds_ldpc::gf2::BitVec;
//!
//! // Transmit the all-zero codeword at 5 dB over AWGN.
//! let code = demo_code();
//! let mut channel = AwgnChannel::from_ebn0(5.0, code.rate(), 42);
//! let llrs = channel.transmit_codeword(&BitVec::zeros(code.n()));
//!
//! // Decode with the paper's fixed-point datapath at 18 iterations —
//! // swap the spec string to try any other family.
//! let mut decoder = DecoderSpec::parse("fixed")?.build(&code);
//! let out = decoder.decode_block(&llrs, 18);
//! assert!(out[0].converged);
//! # Ok::<(), ccsds_ldpc::core::SpecError>(())
//! ```
//!
//! Concrete decoder types (`FixedDecoder`, `MinSumDecoder`, …) remain
//! available for configurations outside the spec grammar; they adapt
//! into the same trait via [`PerFrame`](core::PerFrame) /
//! [`Batched`](core::Batched).
//!
//! Codes and channels have the same declarative grammar
//! ([`CodeSpec`](core::CodeSpec), [`ChannelSpec`](channel::ChannelSpec)),
//! and one string composes all three into a complete experiment — a
//! [`Scenario`](sim::Scenario) like `"c2 / awgn / nms:1.25"` — driven
//! end to end by [`run_point_scenario`](sim::run_point_scenario). The
//! grammar and a recipe book live in `docs/scenarios.md`.
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gf2;

/// Codes, encoders and decoders (re-export of `ldpc-core`).
pub use ldpc_core as core;

/// BPSK/AWGN channel substrate (re-export of `ldpc-channel`).
pub use ldpc_channel as channel;

/// Hardware architecture models (re-export of `ldpc-hwsim`).
pub use ldpc_hwsim as hwsim;

/// Monte-Carlo evaluation engine (re-export of `ldpc-sim`).
pub use ldpc_sim as sim;

/// AR4JA deep-space codes (re-export of `ldpc-ar4ja`).
pub use ldpc_ar4ja as ar4ja;

/// Decode-as-a-service TCP server (re-export of `ldpc-served`).
pub use ldpc_served as served;
