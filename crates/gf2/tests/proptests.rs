//! Property-based tests for the GF(2) substrate.

use gf2::{BitSlices, BitVec, Circulant, DenseMatrix, SparseMatrix};
use proptest::prelude::*;

fn arb_bitvec(len: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), len).prop_map(|b| BitVec::from_bools(&b))
}

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    prop::collection::vec(arb_bitvec(cols), rows).prop_map(DenseMatrix::from_rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xor_commutes(a in arb_bitvec(97), b in arb_bitvec(97)) {
        prop_assert_eq!(&a ^ &b, &b ^ &a);
    }

    #[test]
    fn xor_self_is_zero(a in arb_bitvec(97)) {
        prop_assert!((&a ^ &a).is_zero());
    }

    #[test]
    fn dot_is_bilinear(a in arb_bitvec(64), b in arb_bitvec(64), c in arb_bitvec(64)) {
        // <a + b, c> = <a, c> + <b, c>
        let lhs = (&a ^ &b).dot(&c);
        let rhs = a.dot(&c) ^ b.dot(&c);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn rotate_preserves_weight(a in arb_bitvec(31), k in 0usize..100) {
        prop_assert_eq!(a.rotate_right(k).count_ones(), a.count_ones());
    }

    #[test]
    fn rotate_composes(a in arb_bitvec(31), j in 0usize..31, k in 0usize..31) {
        prop_assert_eq!(a.rotate_right(j).rotate_right(k), a.rotate_right(j + k));
    }

    #[test]
    fn rank_bounded_and_transpose_invariant(m in arb_matrix(8, 12)) {
        let r = m.rank();
        prop_assert!(r <= 8);
        prop_assert_eq!(r, m.transpose().rank());
    }

    #[test]
    fn nullspace_dimension_is_cols_minus_rank(m in arb_matrix(7, 10)) {
        let basis = m.nullspace_basis();
        prop_assert_eq!(basis.len(), 10 - m.rank());
        for v in &basis {
            prop_assert!(m.mul_vec(v).is_zero());
        }
    }

    #[test]
    fn matmul_associative(
        a in arb_matrix(5, 6),
        b in arb_matrix(6, 4),
        c in arb_matrix(4, 7),
    ) {
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn matmul_transpose_contravariant(a in arb_matrix(5, 6), b in arb_matrix(6, 4)) {
        prop_assert_eq!(a.mul(&b).transpose(), b.transpose().mul(&a.transpose()));
    }

    #[test]
    fn mul_vec_distributes(a in arb_matrix(6, 9), x in arb_bitvec(9), y in arb_bitvec(9)) {
        let lhs = a.mul_vec(&(&x ^ &y));
        let rhs = &a.mul_vec(&x) ^ &a.mul_vec(&y);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn solve_consistent_systems(a in arb_matrix(6, 8), x in arb_bitvec(8)) {
        let b = a.mul_vec(&x);
        let sol = a.solve(&b);
        prop_assert!(sol.is_some());
        prop_assert_eq!(a.mul_vec(&sol.unwrap()), b);
    }

    #[test]
    fn sparse_dense_agree(m in arb_matrix(6, 20), x in arb_bitvec(20)) {
        let s = SparseMatrix::from_dense(&m);
        prop_assert_eq!(s.mul_vec(&x), m.mul_vec(&x));
        prop_assert_eq!(s.nnz(), m.count_ones());
        prop_assert_eq!(s.to_dense(), m);
    }

    #[test]
    fn circulant_algebra_matches_dense(
        size in 2usize..12,
        p1 in prop::collection::vec(0u32..12, 0..4),
        p2 in prop::collection::vec(0u32..12, 0..4),
    ) {
        let p1: Vec<u32> = p1.into_iter().map(|p| p % size as u32).collect();
        let p2: Vec<u32> = p2.into_iter().map(|p| p % size as u32).collect();
        let a = Circulant::new(size, &p1);
        let b = Circulant::new(size, &p2);
        prop_assert_eq!(a.mul(&b).to_dense(), a.to_dense().mul(&b.to_dense()));
        prop_assert_eq!(a.add(&b).to_dense(), {
            let mut rows = Vec::new();
            for r in 0..size {
                rows.push(a.to_dense().row(r) ^ b.to_dense().row(r));
            }
            DenseMatrix::from_rows(rows)
        });
    }

    #[test]
    fn circulant_mul_commutes(
        size in 2usize..12,
        p1 in prop::collection::vec(0u32..12, 0..4),
        p2 in prop::collection::vec(0u32..12, 0..4),
    ) {
        let p1: Vec<u32> = p1.into_iter().map(|p| p % size as u32).collect();
        let p2: Vec<u32> = p2.into_iter().map(|p| p % size as u32).collect();
        let a = Circulant::new(size, &p1);
        let b = Circulant::new(size, &p2);
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn inverse_when_it_exists(m in arb_matrix(5, 5)) {
        if let Some(inv) = m.inverse() {
            prop_assert_eq!(m.mul(&inv), DenseMatrix::identity(5));
            prop_assert_eq!(inv.mul(&m), DenseMatrix::identity(5));
        } else {
            prop_assert!(m.rank() < 5);
        }
    }

    /// Frame-major → word-sliced → frame-major is the identity for
    /// arbitrary frame counts (including non-multiples of 64) and lengths.
    #[test]
    fn bitslice_transpose_roundtrips(
        n_frames in 0usize..150,
        bits in 0usize..70,
        seed in any::<u64>(),
    ) {
        // Deterministic per-case bit content (xorshift keeps the input
        // independent of the strategy's shrinking order).
        let mut state = seed | 1;
        let frames: Vec<BitVec> = (0..n_frames)
            .map(|_| {
                (0..bits)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state & 1 == 1
                    })
                    .collect()
            })
            .collect();
        let slices = BitSlices::from_frames(&frames);
        prop_assert_eq!(slices.frames(), n_frames);
        prop_assert_eq!(slices.words_per_plane(), n_frames.div_ceil(64));
        // Canonical form: no lane beyond `frames` is ever set.
        for b in 0..slices.bits() {
            for (w, &word) in slices.plane(b).iter().enumerate() {
                prop_assert_eq!(word & !slices.lane_mask(w), 0);
            }
        }
        prop_assert_eq!(slices.to_frames(), frames);
    }

    /// Element access agrees with the frame-major view of the same data.
    #[test]
    fn bitslice_get_matches_frames(
        n_frames in 1usize..70,
        ones in prop::collection::vec((0usize..70, 0usize..9), 0..20),
    ) {
        let bits = 9;
        let mut frames = vec![BitVec::zeros(bits); n_frames];
        for &(f, b) in &ones {
            frames[f % n_frames].set(b, true);
        }
        let slices = BitSlices::from_frames(&frames);
        for (f, frame) in frames.iter().enumerate() {
            for b in 0..bits {
                prop_assert_eq!(slices.get(f, b), frame.get(b));
            }
        }
    }
}
