//! Linear algebra over the two-element field GF(2).
//!
//! This crate is the low-level substrate of the `ccsds-ldpc` workspace. It
//! provides the bit-level containers and algorithms that the LDPC code
//! construction, encoding, and verification layers are built on:
//!
//! * [`BitVec`] — a packed, fixed-length vector of bits with word-parallel
//!   XOR/AND operations and parity (dot-product) computation.
//! * [`DenseMatrix`] — a dense GF(2) matrix stored as one [`BitVec`] per row,
//!   with multiplication, transposition, Gaussian elimination ([`Rref`]),
//!   rank, inverse, solving, and null-space extraction.
//! * [`SparseMatrix`] — a row-major sparse binary matrix used for
//!   parity-check matrices (thousands of columns, row weight ≪ columns).
//! * [`Circulant`] — a square circulant matrix described by the positions of
//!   the ones in its first row, as used by quasi-cyclic LDPC codes.
//! * [`BitSlices`] — the frame-major ⇄ word-sliced (bit-plane) transpose
//!   used by bit-sliced decoding: 64 frames per `u64` lane word.
//! * [`ByteSlices`] — the same transpose at byte granularity: 8 frames of
//!   `i8` values per `u64` word, the layout the SWAR soft datapath packs
//!   its saturating fixed-point messages into.
//!
//! # Example
//!
//! ```
//! use gf2::{BitVec, DenseMatrix};
//!
//! // Build the parity-check matrix of the (3,1) repetition code.
//! let h = DenseMatrix::from_fn(2, 3, |r, c| (r == 0 && c < 2) || (r == 1 && c > 0));
//! assert_eq!(h.rank(), 2);
//!
//! // The all-ones word is the only non-zero codeword.
//! let cw = BitVec::from_bools(&[true, true, true]);
//! assert!(h.mul_vec(&cw).is_zero());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod circulant;
mod dense;
pub mod lanes;
mod slices;
mod sparse;

pub use bitvec::BitVec;
pub use circulant::Circulant;
pub use dense::{DenseMatrix, Rref};
pub use lanes::{ByteSlices, BYTE_LANES};
pub use slices::{BitSlices, WORD_LANES};
pub use sparse::SparseMatrix;

use std::error::Error;
use std::fmt;

/// Error returned when two operands have incompatible dimensions.
///
/// Produced by the checked (`try_*`) operations of [`BitVec`] and
/// [`DenseMatrix`]; the panicking variants document the same conditions in
/// their `# Panics` sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionMismatch {
    /// Dimension expected by the receiver.
    pub expected: usize,
    /// Dimension actually supplied.
    pub actual: usize,
    /// Human-readable description of which dimension disagreed.
    pub context: &'static str,
}

impl fmt::Display for DimensionMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimension mismatch in {}: expected {}, got {}",
            self.context, self.expected, self.actual
        )
    }
}

impl Error for DimensionMismatch {}
