//! Packed bit vectors over GF(2).

use crate::DimensionMismatch;
use std::fmt;
use std::ops::{BitAnd, BitXor, BitXorAssign};

const WORD_BITS: usize = 64;

/// A fixed-length vector of bits packed into `u64` words.
///
/// Arithmetic follows GF(2) conventions: addition is XOR and the dot product
/// is the parity of the bitwise AND. All bits beyond `len` in the last word
/// are kept at zero (the *canonical form* invariant), so word-parallel
/// operations never leak stray bits.
///
/// # Example
///
/// ```
/// use gf2::BitVec;
///
/// let a = BitVec::from_indices(8, &[0, 3, 5]);
/// let b = BitVec::from_indices(8, &[3, 4]);
/// let sum = &a ^ &b;
/// assert_eq!(sum.iter_ones().collect::<Vec<_>>(), vec![0, 4, 5]);
/// assert!(a.dot(&b)); // overlap at bit 3 -> odd parity
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    ///
    /// ```
    /// use gf2::BitVec;
    /// let v = BitVec::zeros(100);
    /// assert_eq!(v.len(), 100);
    /// assert!(v.is_zero());
    /// ```
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = Self::zeros(len);
        for w in &mut v.words {
            *w = u64::MAX;
        }
        v.canonicalize();
        v
    }

    /// Builds a vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a vector from 0/1 bytes.
    ///
    /// Any non-zero byte is treated as a one bit.
    pub fn from_bits(bits: &[u8]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b != 0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a `len`-bit vector directly from packed little-endian words
    /// (the storage format [`words`](Self::words) exposes). Bits at
    /// positions `>= len` in the last word are cleared to restore the
    /// canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from `len.div_ceil(64)`.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(WORD_BITS),
            "word count mismatch for length {len}"
        );
        let mut v = Self { len, words };
        v.canonicalize();
        v
    }

    /// Builds a `len`-bit vector with ones at the given indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_indices(len: usize, ones: &[usize]) -> Self {
        let mut v = Self::zeros(len);
        for &i in ones {
            v.set(i, true);
        }
        v
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for length {}",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for length {}",
            self.len
        );
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Flips bit `i`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for length {}",
            self.len
        );
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
        self.get(i)
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// XORs `other` into `self` (GF(2) addition).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ; see [`BitVec::try_xor_assign`] for the
    /// checked variant.
    pub fn xor_assign(&mut self, other: &Self) {
        self.try_xor_assign(other)
            .expect("BitVec::xor_assign length mismatch");
    }

    /// Checked XOR-assign.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] if the lengths differ.
    pub fn try_xor_assign(&mut self, other: &Self) -> Result<(), DimensionMismatch> {
        if self.len != other.len {
            return Err(DimensionMismatch {
                expected: self.len,
                actual: other.len,
                context: "BitVec xor",
            });
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
        Ok(())
    }

    /// GF(2) dot product: parity of the bitwise AND of the two vectors.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Self) -> bool {
        assert_eq!(self.len, other.len, "BitVec::dot length mismatch");
        let mut acc = 0u32;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= (a & b).count_ones() & 1;
        }
        acc & 1 == 1
    }

    /// Iterator over the indices of one bits, in ascending order.
    ///
    /// ```
    /// use gf2::BitVec;
    /// let v = BitVec::from_indices(70, &[1, 64, 69]);
    /// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![1, 64, 69]);
    /// ```
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            vec: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Converts to a `Vec` of 0/1 bytes.
    pub fn to_bits(&self) -> Vec<u8> {
        (0..self.len).map(|i| u8::from(self.get(i))).collect()
    }

    /// Converts to a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Cyclic right shift by `k` positions (bit `i` moves to `(i + k) % len`).
    ///
    /// This matches the row-to-row relationship inside a circulant matrix.
    pub fn rotate_right(&self, k: usize) -> Self {
        if self.len == 0 {
            return self.clone();
        }
        let k = k % self.len;
        let mut out = Self::zeros(self.len);
        for i in self.iter_ones() {
            out.set((i + k) % self.len, true);
        }
        out
    }

    /// Extracts bits `[start, start + len)` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `start + len > self.len()`.
    pub fn slice(&self, start: usize, len: usize) -> Self {
        assert!(start + len <= self.len, "BitVec::slice out of range");
        let mut out = Self::zeros(len);
        for i in 0..len {
            if self.get(start + i) {
                out.set(i, true);
            }
        }
        out
    }

    /// Concatenates `self` with `other`.
    pub fn concat(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.len + other.len);
        for i in self.iter_ones() {
            out.set(i, true);
        }
        for i in other.iter_ones() {
            out.set(self.len + i, true);
        }
        out
    }

    /// Raw word storage (little-endian bit order within each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Index of the first one bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Clears any bits at positions `>= len` in the last word.
    fn canonicalize(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Iterator over the positions of one bits of a [`BitVec`].
///
/// Created by [`BitVec::iter_ones`].
pub struct IterOnes<'a> {
    vec: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_idx];
        }
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_assign(rhs);
    }
}

impl BitXor for &BitVec {
    type Output = BitVec;

    fn bitxor(self, rhs: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(rhs);
        out
    }
}

impl BitAnd for &BitVec {
    type Output = BitVec;

    fn bitand(self, rhs: &BitVec) -> BitVec {
        assert_eq!(self.len, rhs.len, "BitVec & length mismatch");
        let mut out = self.clone();
        for (a, b) in out.words.iter_mut().zip(&rhs.words) {
            *a &= *b;
        }
        out
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        Self::from_bools(&bools)
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(128) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 128 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert!(v.is_zero());
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn ones_has_canonical_tail() {
        let v = BitVec::ones(70);
        assert_eq!(v.count_ones(), 70);
        // Bits beyond len must stay zero in the raw words.
        assert_eq!(v.words()[1] >> 6, 0);
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut v = BitVec::zeros(100);
        v.set(63, true);
        v.set(64, true);
        assert!(v.get(63));
        assert!(v.get(64));
        assert!(!v.get(62));
        assert!(!v.flip(63));
        assert!(!v.get(63));
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(10);
        v.get(10);
    }

    #[test]
    fn xor_is_gf2_addition() {
        let a = BitVec::from_indices(10, &[1, 2, 3]);
        let b = BitVec::from_indices(10, &[3, 4]);
        let c = &a ^ &b;
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![1, 2, 4]);
        // x + x = 0
        assert!((&a ^ &a).is_zero());
    }

    #[test]
    fn try_xor_assign_rejects_mismatch() {
        let mut a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        let err = a.try_xor_assign(&b).unwrap_err();
        assert_eq!(err.expected, 10);
        assert_eq!(err.actual, 11);
    }

    #[test]
    fn dot_is_parity_of_overlap() {
        let a = BitVec::from_indices(128, &[0, 64, 100]);
        let b = BitVec::from_indices(128, &[64, 100, 101]);
        assert!(!a.dot(&b)); // two overlaps -> even
        let c = BitVec::from_indices(128, &[64]);
        assert!(a.dot(&c));
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let idx = vec![0, 1, 63, 64, 65, 127, 128];
        let v = BitVec::from_indices(130, &idx);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn rotate_right_matches_definition() {
        let v = BitVec::from_indices(7, &[0, 5, 6]);
        let r = v.rotate_right(2);
        assert_eq!(r.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        // Rotation by len is identity.
        assert_eq!(v.rotate_right(7), v);
    }

    #[test]
    fn slice_and_concat_roundtrip() {
        let v = BitVec::from_indices(100, &[3, 50, 99]);
        let left = v.slice(0, 40);
        let right = v.slice(40, 60);
        assert_eq!(left.concat(&right), v);
        assert_eq!(right.iter_ones().collect::<Vec<_>>(), vec![10, 59]);
    }

    #[test]
    fn first_one_finds_lowest() {
        assert_eq!(BitVec::zeros(10).first_one(), None);
        assert_eq!(
            BitVec::from_indices(200, &[130, 131]).first_one(),
            Some(130)
        );
    }

    #[test]
    fn from_bits_and_to_bits_roundtrip() {
        let bits = [1u8, 0, 0, 1, 1, 0, 1];
        let v = BitVec::from_bits(&bits);
        assert_eq!(v.to_bits(), bits);
    }

    #[test]
    fn from_words_roundtrips_and_canonicalizes() {
        let v = BitVec::from_indices(100, &[0, 63, 64, 99]);
        assert_eq!(BitVec::from_words(100, v.words().to_vec()), v);
        // Stray tail bits are cleared.
        let w = BitVec::from_words(70, vec![0, u64::MAX]);
        assert_eq!(w.count_ones(), 6);
        assert_eq!(w.words()[1] >> 6, 0);
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn from_words_rejects_wrong_count() {
        BitVec::from_words(65, vec![0]);
    }

    #[test]
    fn display_formats_bits() {
        let v = BitVec::from_indices(4, &[0, 3]);
        assert_eq!(v.to_string(), "1001");
        assert!(!format!("{v:?}").is_empty());
    }

    #[test]
    fn from_iterator_collects_bools() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
    }
}
