//! Dense GF(2) matrices and Gaussian elimination.

use crate::{BitVec, DimensionMismatch};
use std::fmt;

/// A dense matrix over GF(2), stored as one [`BitVec`] per row.
///
/// Suited to elimination-heavy workloads (rank, solving, null spaces) on
/// matrices with up to a few thousand rows and columns — e.g. the
/// 1022×8176 CCSDS C2 parity-check matrix.
///
/// # Example
///
/// ```
/// use gf2::DenseMatrix;
///
/// let a = DenseMatrix::identity(4);
/// assert_eq!(a.rank(), 4);
/// assert_eq!(a.mul(&a), a);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<BitVec>,
}

/// Result of reducing a matrix to reduced row-echelon form.
///
/// Returned by [`DenseMatrix::rref`] and
/// [`DenseMatrix::rref_with_column_order`].
#[derive(Clone, Debug)]
pub struct Rref {
    /// The matrix in reduced row-echelon form (zero rows at the bottom).
    pub matrix: DenseMatrix,
    /// Pivot column of each non-zero row, in row order.
    pub pivot_cols: Vec<usize>,
}

impl Rref {
    /// Rank of the original matrix.
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }

    /// Columns that contain no pivot, in ascending order.
    pub fn free_cols(&self) -> Vec<usize> {
        let mut is_pivot = vec![false; self.matrix.cols()];
        for &c in &self.pivot_cols {
            is_pivot[c] = true;
        }
        (0..self.matrix.cols()).filter(|&c| !is_pivot[c]).collect()
    }
}

impl DenseMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: (0..rows).map(|_| BitVec::zeros(cols)).collect(),
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix where entry `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Builds a matrix from owned rows.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] if rows have unequal lengths.
    pub fn try_from_rows(rows: Vec<BitVec>) -> Result<Self, DimensionMismatch> {
        let cols = rows.first().map_or(0, BitVec::len);
        for r in &rows {
            if r.len() != cols {
                return Err(DimensionMismatch {
                    expected: cols,
                    actual: r.len(),
                    context: "DenseMatrix rows",
                });
            }
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data: rows,
        })
    }

    /// Builds a matrix from owned rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        Self::try_from_rows(rows).expect("DenseMatrix::from_rows: unequal row lengths")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.data[r].get(c)
    }

    /// Sets entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.data[r].set(c, value);
    }

    /// Borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.data[r]
    }

    /// Iterates over the rows.
    pub fn iter_rows(&self) -> std::slice::Iter<'_, BitVec> {
        self.data.iter()
    }

    /// Total number of one entries.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(BitVec::count_ones).sum()
    }

    /// Returns `true` if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(BitVec::is_zero)
    }

    /// Matrix–vector product `A·x` (x as a column vector).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &BitVec) -> BitVec {
        assert_eq!(
            x.len(),
            self.cols,
            "DenseMatrix::mul_vec dimension mismatch"
        );
        let mut y = BitVec::zeros(self.rows);
        for (r, row) in self.data.iter().enumerate() {
            if row.dot(x) {
                y.set(r, true);
            }
        }
        y
    }

    /// Row-vector–matrix product `xᵀ·A`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vec_mul(&self, x: &BitVec) -> BitVec {
        assert_eq!(
            x.len(),
            self.rows,
            "DenseMatrix::vec_mul dimension mismatch"
        );
        let mut y = BitVec::zeros(self.cols);
        for r in x.iter_ones() {
            y.xor_assign(&self.data[r]);
        }
        y
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "DenseMatrix::mul dimension mismatch");
        let data = self
            .data
            .iter()
            .map(|row| {
                let mut out = BitVec::zeros(other.cols);
                for c in row.iter_ones() {
                    out.xor_assign(&other.data[c]);
                }
                out
            })
            .collect();
        Self {
            rows: self.rows,
            cols: other.cols,
            data,
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for (r, row) in self.data.iter().enumerate() {
            for c in row.iter_ones() {
                t.set(c, r, true);
            }
        }
        t
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "DenseMatrix::hstack row mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.concat(b))
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols + other.cols,
            data,
        }
    }

    /// Vertical concatenation.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "DenseMatrix::vstack col mismatch");
        let mut data = self.data.clone();
        data.extend(other.data.iter().cloned());
        Self {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Reduces to reduced row-echelon form, processing columns left-to-right.
    pub fn rref(&self) -> Rref {
        let order: Vec<usize> = (0..self.cols).collect();
        self.rref_with_column_order(&order)
    }

    /// Reduced row-echelon form with a caller-chosen pivot column priority.
    ///
    /// Columns are considered as pivot candidates in the order given by
    /// `col_order`; this lets an encoder prefer pivots in the parity region
    /// of a parity-check matrix. `col_order` must be a permutation of
    /// `0..cols`.
    ///
    /// # Panics
    ///
    /// Panics if `col_order` is not a permutation of the column indices.
    pub fn rref_with_column_order(&self, col_order: &[usize]) -> Rref {
        assert_eq!(
            col_order.len(),
            self.cols,
            "col_order must cover all columns"
        );
        let mut seen = vec![false; self.cols];
        for &c in col_order {
            assert!(c < self.cols && !seen[c], "col_order must be a permutation");
            seen[c] = true;
        }

        let mut m = self.clone();
        let mut pivot_cols = Vec::new();
        let mut next_row = 0usize;
        for &col in col_order {
            if next_row >= m.rows {
                break;
            }
            // Find a row at or below next_row with a one in this column.
            let Some(pr) = (next_row..m.rows).find(|&r| m.data[r].get(col)) else {
                continue;
            };
            m.data.swap(next_row, pr);
            // Eliminate the column everywhere else (full reduction).
            let pivot_row = m.data[next_row].clone();
            for r in 0..m.rows {
                if r != next_row && m.data[r].get(col) {
                    m.data[r].xor_assign(&pivot_row);
                }
            }
            pivot_cols.push(col);
            next_row += 1;
        }
        Rref {
            matrix: m,
            pivot_cols,
        }
    }

    /// Rank of the matrix.
    pub fn rank(&self) -> usize {
        self.rref().rank()
    }

    /// A basis of the right null space `{x : A·x = 0}`.
    ///
    /// The returned vectors are linearly independent and there are
    /// `cols − rank` of them.
    pub fn nullspace_basis(&self) -> Vec<BitVec> {
        let rref = self.rref();
        let free = rref.free_cols();
        let mut basis = Vec::with_capacity(free.len());
        for &fc in &free {
            let mut v = BitVec::zeros(self.cols);
            v.set(fc, true);
            // Each pivot row reads: x[pivot] + sum(x[non-pivot in row]) = 0.
            for (row_idx, &pc) in rref.pivot_cols.iter().enumerate() {
                if rref.matrix.data[row_idx].get(fc) {
                    v.set(pc, true);
                }
            }
            basis.push(v);
        }
        basis
    }

    /// Solves `A·x = b`, returning one solution if the system is consistent.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn solve(&self, b: &BitVec) -> Option<BitVec> {
        assert_eq!(b.len(), self.rows, "DenseMatrix::solve dimension mismatch");
        // Eliminate on the augmented matrix [A | b].
        let mut aug = Vec::with_capacity(self.rows);
        for (r, row) in self.data.iter().enumerate() {
            let mut v = row.clone();
            let mut tail = BitVec::zeros(1);
            tail.set(0, b.get(r));
            v = v.concat(&tail);
            aug.push(v);
        }
        let aug = Self::from_rows(aug);
        let rref = aug.rref();
        let mut x = BitVec::zeros(self.cols);
        for (row_idx, &pc) in rref.pivot_cols.iter().enumerate() {
            if pc == self.cols {
                // Pivot in the augmented column: inconsistent system.
                return None;
            }
            if rref.matrix.data[row_idx].get(self.cols) {
                x.set(pc, true);
            }
        }
        Some(x)
    }

    /// Inverse of a square matrix, if it exists.
    pub fn inverse(&self) -> Option<Self> {
        if self.rows != self.cols {
            return None;
        }
        let aug = self.hstack(&Self::identity(self.rows));
        let rref = aug.rref();
        if rref.rank() < self.rows || rref.pivot_cols.iter().any(|&c| c >= self.cols) {
            return None;
        }
        let data = rref
            .matrix
            .data
            .iter()
            .take(self.rows)
            .map(|row| row.slice(self.cols, self.cols))
            .collect();
        Some(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for row in self.data.iter().take(16) {
            writeln!(f, "  {row}")?;
        }
        if self.rows > 16 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> DenseMatrix {
        // [1 1 0 1]
        // [0 1 1 1]
        // [1 0 1 0]   (row3 = row1 + row2)
        DenseMatrix::from_rows(vec![
            BitVec::from_bits(&[1, 1, 0, 1]),
            BitVec::from_bits(&[0, 1, 1, 1]),
            BitVec::from_bits(&[1, 0, 1, 0]),
        ])
    }

    #[test]
    fn identity_properties() {
        let i = DenseMatrix::identity(5);
        assert_eq!(i.rank(), 5);
        assert_eq!(i.count_ones(), 5);
        assert_eq!(i.inverse().unwrap(), i);
    }

    #[test]
    fn rank_detects_dependent_row() {
        assert_eq!(example().rank(), 2);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = example();
        let x = BitVec::from_bits(&[1, 0, 1, 1]);
        let y = a.mul_vec(&x);
        assert_eq!(y.to_bits(), vec![0, 0, 0]); // x is in the null space
        let x2 = BitVec::from_bits(&[1, 0, 0, 0]);
        assert_eq!(a.mul_vec(&x2).to_bits(), vec![1, 0, 1]);
    }

    #[test]
    fn vec_mul_is_transpose_mul_vec() {
        let a = example();
        let x = BitVec::from_bits(&[1, 1, 0]);
        assert_eq!(a.vec_mul(&x), a.transpose().mul_vec(&x));
    }

    #[test]
    fn transpose_involution() {
        let a = example();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_identity_is_noop() {
        let a = example();
        assert_eq!(a.mul(&DenseMatrix::identity(4)), a);
        assert_eq!(DenseMatrix::identity(3).mul(&a), a);
    }

    #[test]
    fn nullspace_vectors_are_in_kernel() {
        let a = example();
        let basis = a.nullspace_basis();
        assert_eq!(basis.len(), 4 - a.rank());
        for v in &basis {
            assert!(a.mul_vec(v).is_zero(), "basis vector not in kernel");
            assert!(!v.is_zero());
        }
    }

    #[test]
    fn solve_finds_solution() {
        let a = example();
        let x = BitVec::from_bits(&[0, 1, 1, 0]);
        let b = a.mul_vec(&x);
        let sol = a.solve(&b).expect("system should be consistent");
        assert_eq!(a.mul_vec(&sol), b);
    }

    #[test]
    fn solve_detects_inconsistency() {
        // rows: [1 0], [1 0] ; b = [1, 0] is inconsistent.
        let a =
            DenseMatrix::from_rows(vec![BitVec::from_bits(&[1, 0]), BitVec::from_bits(&[1, 0])]);
        let b = BitVec::from_bits(&[1, 0]);
        assert!(a.solve(&b).is_none());
    }

    #[test]
    fn inverse_roundtrip() {
        // A 3x3 invertible matrix.
        let a = DenseMatrix::from_rows(vec![
            BitVec::from_bits(&[1, 1, 0]),
            BitVec::from_bits(&[0, 1, 1]),
            BitVec::from_bits(&[0, 0, 1]),
        ]);
        let inv = a.inverse().expect("matrix is invertible");
        assert_eq!(a.mul(&inv), DenseMatrix::identity(3));
        assert_eq!(inv.mul(&a), DenseMatrix::identity(3));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        assert!(example().transpose().inverse().is_none());
        let sq = DenseMatrix::zeros(3, 3);
        assert!(sq.inverse().is_none());
    }

    #[test]
    fn rref_with_reversed_order_prefers_late_columns() {
        let a = example();
        let order: Vec<usize> = (0..4).rev().collect();
        let rref = a.rref_with_column_order(&order);
        assert_eq!(rref.rank(), 2);
        // With reversed priority the pivots land in the rightmost columns.
        assert!(rref.pivot_cols.iter().all(|&c| c >= 2));
        // Free + pivot columns partition all columns.
        let mut all: Vec<usize> = rref.free_cols();
        all.extend_from_slice(&rref.pivot_cols);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rref_rejects_bad_order() {
        example().rref_with_column_order(&[0, 0, 1, 2]);
    }

    #[test]
    fn hstack_vstack_shapes() {
        let a = example();
        let h = a.hstack(&a);
        assert_eq!((h.rows(), h.cols()), (3, 8));
        let v = a.vstack(&a);
        assert_eq!((v.rows(), v.cols()), (6, 4));
        assert_eq!(v.rank(), a.rank());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DenseMatrix::try_from_rows(vec![BitVec::zeros(3), BitVec::zeros(4)]);
        assert!(err.is_err());
    }
}
