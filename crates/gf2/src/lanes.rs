//! Byte-lane ("lane-plane") frame storage: the transpose between
//! frame-major `i8` value vectors and per-position lane words.
//!
//! This is [`BitSlices`](crate::BitSlices) one rung up the precision
//! ladder: instead of one *bit* per frame per plane word, each `u64`
//! word carries one **byte** per frame — 8 frames in lockstep, the
//! frames-per-word packing of the paper's high-speed variant applied to
//! soft messages (6-bit saturating fixed point fits an `i8` lane with
//! headroom). One word op then advances all 8 frames at once; the SWAR
//! kernels in `ldpc-core` consume exactly this layout.
//!
//! Lane order is little-endian: frame `f`'s value of position `p` lives
//! in byte `f` of word `p`, so [`splat`] / [`lane`] / [`pack_lanes`] /
//! [`unpack_lanes`] agree with `u64::to_le_bytes`.

/// Lanes per word: the frames carried by one `u64` of byte lanes.
pub const BYTE_LANES: usize = 8;

/// Packs 8 lane values into a word (lane `f` → byte `f`, little-endian).
#[inline]
pub fn pack_lanes(lanes: [i8; BYTE_LANES]) -> u64 {
    u64::from_le_bytes(lanes.map(|x| x as u8))
}

/// Unpacks a word into its 8 lane values (inverse of [`pack_lanes`]).
#[inline]
pub fn unpack_lanes(word: u64) -> [i8; BYTE_LANES] {
    word.to_le_bytes().map(|b| b as i8)
}

/// A word with the same value in every lane.
#[inline]
pub fn splat(x: i8) -> u64 {
    u64::from_le_bytes([x as u8; BYTE_LANES])
}

/// Lane `f` of a word.
///
/// # Panics
///
/// Panics if `f >= BYTE_LANES`.
#[inline]
pub fn lane(word: u64, f: usize) -> i8 {
    assert!(f < BYTE_LANES, "lane index {f} out of range");
    (word >> (8 * f)) as i8
}

/// The word with lane `f` replaced by `value`.
///
/// # Panics
///
/// Panics if `f >= BYTE_LANES`.
#[inline]
pub fn with_lane(word: u64, f: usize, value: i8) -> u64 {
    assert!(f < BYTE_LANES, "lane index {f} out of range");
    let shift = 8 * f;
    (word & !(0xFFu64 << shift)) | (u64::from(value as u8) << shift)
}

/// A block of up to 8 equal-length `i8` frames stored as one lane word
/// per value position — the byte-lane analogue of
/// [`BitSlices`](crate::BitSlices).
///
/// Word `p` holds position `p` of every frame: frame `f`'s value in byte
/// `f`. Lanes at positions `>= frames` are kept at zero (canonical form),
/// so word-parallel operations never leak stray lanes.
///
/// # Example
///
/// ```
/// use gf2::ByteSlices;
///
/// // Two frames of three values each, frame-major.
/// let slices = ByteSlices::from_frames(&[1, -2, 3, 4, 5, -6], 3);
/// assert_eq!(slices.frames(), 2);
/// // Position 1 packs frame 0's -2 in byte 0 and frame 1's 5 in byte 1.
/// assert_eq!(slices.word(1), u64::from_le_bytes([0xFE, 5, 0, 0, 0, 0, 0, 0]));
/// assert_eq!(slices.to_frames(), vec![1, -2, 3, 4, 5, -6]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ByteSlices {
    frames: usize,
    values: usize,
    words: Vec<u64>,
}

impl ByteSlices {
    /// Creates an all-zero block for `frames` frames of `values` values.
    ///
    /// # Panics
    ///
    /// Panics if `frames > BYTE_LANES`.
    pub fn zeros(frames: usize, values: usize) -> Self {
        assert!(
            frames <= BYTE_LANES,
            "{frames} frames exceed the {BYTE_LANES} lanes of one word"
        );
        Self {
            frames,
            values,
            words: vec![0; values],
        }
    }

    /// Transposes frame-major values (frame `f` occupies
    /// `data[f*values .. (f+1)*values]`) into lane words.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `values`, or if the
    /// frame count exceeds [`BYTE_LANES`].
    pub fn from_frames(data: &[i8], values: usize) -> Self {
        assert!(
            values > 0 && data.len().is_multiple_of(values),
            "data length must be a multiple of the frame length"
        );
        let frames = data.len() / values;
        let mut out = Self::zeros(frames, values);
        for (f, frame) in data.chunks_exact(values).enumerate() {
            for (p, &v) in frame.iter().enumerate() {
                out.words[p] |= u64::from(v as u8) << (8 * f);
            }
        }
        out
    }

    /// Transposes back to frame-major values (the inverse of
    /// [`from_frames`](Self::from_frames)).
    pub fn to_frames(&self) -> Vec<i8> {
        let mut out = vec![0i8; self.frames * self.values];
        for (p, &word) in self.words.iter().enumerate() {
            for f in 0..self.frames {
                out[f * self.values + p] = (word >> (8 * f)) as i8;
            }
        }
        out
    }

    /// Number of frames packed into the words.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Values per frame (the word count).
    pub fn values(&self) -> usize {
        self.values
    }

    /// The lane word of position `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= values`.
    #[inline]
    pub fn word(&self, p: usize) -> u64 {
        self.words[p]
    }

    /// All lane words, one per position.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Frame `f`'s value at position `p`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= frames` or `p >= values`.
    #[inline]
    pub fn get(&self, f: usize, p: usize) -> i8 {
        assert!(f < self.frames, "frame index {f} out of range");
        lane(self.words[p], f)
    }

    /// Sets frame `f`'s value at position `p`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= frames` or `p >= values`.
    #[inline]
    pub fn set(&mut self, f: usize, p: usize, value: i8) {
        assert!(f < self.frames, "frame index {f} out of range");
        self.words[p] = with_lane(self.words[p], f, value);
    }

    /// Mask with `0xFF` in every valid lane and zero elsewhere: all ones
    /// for a full block of 8 frames, the low `8*frames` bits otherwise.
    pub fn lane_mask(&self) -> u64 {
        if self.frames == BYTE_LANES {
            u64::MAX
        } else {
            (1u64 << (8 * self.frames)) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let lanes = [1i8, -1, 127, -128, 0, 31, -31, 64];
        assert_eq!(unpack_lanes(pack_lanes(lanes)), lanes);
    }

    #[test]
    fn splat_fills_every_lane() {
        assert_eq!(unpack_lanes(splat(-31)), [-31i8; 8]);
        assert_eq!(splat(0), 0);
        assert_eq!(splat(-1), u64::MAX);
    }

    #[test]
    fn lane_extracts_and_with_lane_replaces() {
        let w = pack_lanes([0, 1, 2, 3, -4, 5, 6, 7]);
        assert_eq!(lane(w, 4), -4);
        let w2 = with_lane(w, 4, 100);
        assert_eq!(lane(w2, 4), 100);
        assert_eq!(lane(w2, 3), 3);
        assert_eq!(lane(w2, 5), 5);
    }

    #[test]
    fn from_frames_transposes() {
        let slices = ByteSlices::from_frames(&[1, -2, 3, 4, 5, -6], 3);
        assert_eq!(slices.frames(), 2);
        assert_eq!(slices.values(), 3);
        assert_eq!(slices.get(0, 1), -2);
        assert_eq!(slices.get(1, 2), -6);
        assert_eq!(slices.to_frames(), vec![1, -2, 3, 4, 5, -6]);
    }

    #[test]
    fn full_eight_frame_block_roundtrips() {
        let data: Vec<i8> = (0..8 * 5).map(|i| (i as i8).wrapping_mul(13)).collect();
        let slices = ByteSlices::from_frames(&data, 5);
        assert_eq!(slices.frames(), 8);
        assert_eq!(slices.lane_mask(), u64::MAX);
        assert_eq!(slices.to_frames(), data);
    }

    #[test]
    fn unused_lanes_stay_zero() {
        let slices = ByteSlices::from_frames(&[-1, -1, -1, -1], 2);
        assert_eq!(slices.frames(), 2);
        assert_eq!(slices.word(0) & !slices.lane_mask(), 0);
        assert_eq!(slices.lane_mask(), 0xFFFF);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut slices = ByteSlices::zeros(3, 4);
        slices.set(2, 3, -77);
        assert_eq!(slices.get(2, 3), -77);
        assert_eq!(slices.get(1, 3), 0);
        slices.set(2, 3, 0);
        assert_eq!(slices.word(3), 0);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_frames_rejected() {
        ByteSlices::from_frames(&[0; 9], 1);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn ragged_data_rejected() {
        ByteSlices::from_frames(&[0; 5], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lane_index_out_of_range_panics() {
        lane(0, 8);
    }
}
