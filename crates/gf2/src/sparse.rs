//! Row-major sparse binary matrices.

use crate::{BitVec, DenseMatrix};
use std::fmt;

/// A sparse binary matrix stored as sorted column indices per row.
///
/// This is the natural representation of an LDPC parity-check matrix: the
/// CCSDS C2 matrix is 1022×8176 with only 32 704 ones (row weight 32).
///
/// # Example
///
/// ```
/// use gf2::SparseMatrix;
///
/// let h = SparseMatrix::from_entries(2, 4, &[(0, 0), (0, 1), (1, 2), (1, 3)]);
/// assert_eq!(h.nnz(), 4);
/// assert_eq!(h.row(0), &[0, 1]);
/// assert_eq!(h.col_weights(), vec![1, 1, 1, 1]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_idx: Vec<Vec<u32>>,
}

impl SparseMatrix {
    /// Builds a matrix from `(row, col)` entries; duplicates cancel (GF(2)).
    ///
    /// # Panics
    ///
    /// Panics if any entry is out of range.
    pub fn from_entries(rows: usize, cols: usize, entries: &[(usize, usize)]) -> Self {
        let mut row_idx: Vec<Vec<u32>> = vec![Vec::new(); rows];
        for &(r, c) in entries {
            assert!(r < rows && c < cols, "entry ({r},{c}) out of range");
            row_idx[r].push(c as u32);
        }
        for cols_of_row in &mut row_idx {
            cols_of_row.sort_unstable();
            // XOR semantics: a pair of equal indices cancels.
            let mut out = Vec::with_capacity(cols_of_row.len());
            let mut i = 0;
            while i < cols_of_row.len() {
                let mut count = 1;
                while i + count < cols_of_row.len() && cols_of_row[i + count] == cols_of_row[i] {
                    count += 1;
                }
                if count % 2 == 1 {
                    out.push(cols_of_row[i]);
                }
                i += count;
            }
            *cols_of_row = out;
        }
        Self {
            rows,
            cols,
            row_idx,
        }
    }

    /// Builds a matrix from per-row sorted column index lists.
    ///
    /// # Panics
    ///
    /// Panics if a row contains an out-of-range or duplicate column.
    pub fn from_rows(cols: usize, rows: Vec<Vec<u32>>) -> Self {
        for row in &rows {
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row indices must be strictly increasing");
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < cols, "column index out of range");
            }
        }
        Self {
            rows: rows.len(),
            cols,
            row_idx: rows,
        }
    }

    /// Converts a dense matrix to sparse form.
    pub fn from_dense(m: &DenseMatrix) -> Self {
        let row_idx = m
            .iter_rows()
            .map(|row| row.iter_ones().map(|c| c as u32).collect())
            .collect();
        Self {
            rows: m.rows(),
            cols: m.cols(),
            row_idx,
        }
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for (r, row) in self.row_idx.iter().enumerate() {
            for &c in row {
                m.set(r, c as usize, true);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored ones.
    pub fn nnz(&self) -> usize {
        self.row_idx.iter().map(Vec::len).sum()
    }

    /// Sorted column indices of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.row_idx[r]
    }

    /// Weight (number of ones) of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_weight(&self, r: usize) -> usize {
        self.row_idx[r].len()
    }

    /// Weight of every column.
    pub fn col_weights(&self) -> Vec<usize> {
        let mut w = vec![0usize; self.cols];
        for row in &self.row_idx {
            for &c in row {
                w[c as usize] += 1;
            }
        }
        w
    }

    /// Entry lookup (binary search within the row).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(c < self.cols, "column {c} out of range");
        self.row_idx[r].binary_search(&(c as u32)).is_ok()
    }

    /// Per-column adjacency: for each column, the sorted rows containing it.
    pub fn col_adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.cols];
        for (r, row) in self.row_idx.iter().enumerate() {
            for &c in row {
                adj[c as usize].push(r as u32);
            }
        }
        adj
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        Self {
            rows: self.cols,
            cols: self.rows,
            row_idx: self.col_adjacency(),
        }
    }

    /// Matrix–vector product `A·x` over GF(2).
    ///
    /// For a parity-check matrix this is the *syndrome* of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &BitVec) -> BitVec {
        assert_eq!(
            x.len(),
            self.cols,
            "SparseMatrix::mul_vec dimension mismatch"
        );
        let mut y = BitVec::zeros(self.rows);
        for (r, row) in self.row_idx.iter().enumerate() {
            let mut parity = false;
            for &c in row {
                parity ^= x.get(c as usize);
            }
            if parity {
                y.set(r, true);
            }
        }
        y
    }

    /// Returns `true` if `A·x = 0` (all parity checks satisfied).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn in_nullspace(&self, x: &BitVec) -> bool {
        assert_eq!(
            x.len(),
            self.cols,
            "SparseMatrix::in_nullspace dimension mismatch"
        );
        self.row_idx.iter().all(|row| {
            let mut parity = false;
            for &c in row {
                parity ^= x.get(c as usize);
            }
            !parity
        })
    }

    /// All `(row, col)` entries in row-major order.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.row_idx
            .iter()
            .enumerate()
            .flat_map(|(r, row)| row.iter().map(move |&c| (r, c as usize)))
    }
}

impl fmt::Debug for SparseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SparseMatrix {}x{} ({} ones)",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> SparseMatrix {
        SparseMatrix::from_entries(3, 5, &[(0, 0), (0, 2), (1, 1), (1, 2), (2, 3), (2, 4)])
    }

    #[test]
    fn construction_and_counts() {
        let m = example();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.row(0), &[0, 2]);
        assert_eq!(m.row_weight(1), 2);
        assert_eq!(m.col_weights(), vec![1, 1, 2, 1, 1]);
    }

    #[test]
    fn duplicate_entries_cancel() {
        let m = SparseMatrix::from_entries(1, 3, &[(0, 1), (0, 1), (0, 2)]);
        assert_eq!(m.row(0), &[2]);
        let m2 = SparseMatrix::from_entries(1, 3, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(m2.row(0), &[1]);
    }

    #[test]
    fn dense_roundtrip() {
        let m = example();
        assert_eq!(SparseMatrix::from_dense(&m.to_dense()), m);
    }

    #[test]
    fn get_uses_binary_search() {
        let m = example();
        assert!(m.get(0, 2));
        assert!(!m.get(0, 1));
    }

    #[test]
    fn transpose_flips_adjacency() {
        let m = example();
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.row(2), &[0, 1]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = example();
        let d = m.to_dense();
        for pattern in 0u32..32 {
            let x = BitVec::from_bools(&(0..5).map(|i| pattern >> i & 1 == 1).collect::<Vec<_>>());
            assert_eq!(m.mul_vec(&x), d.mul_vec(&x));
            assert_eq!(m.in_nullspace(&x), d.mul_vec(&x).is_zero());
        }
    }

    #[test]
    fn iter_entries_row_major() {
        let m = example();
        let entries: Vec<_> = m.iter_entries().collect();
        assert_eq!(
            entries,
            vec![(0, 0), (0, 2), (1, 1), (1, 2), (2, 3), (2, 4)]
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_rows_rejects_unsorted() {
        SparseMatrix::from_rows(4, vec![vec![2, 1]]);
    }
}
