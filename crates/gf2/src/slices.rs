//! Word-sliced ("bit-plane") frame storage: the transpose between
//! frame-major bit vectors and per-bit-position lane words.
//!
//! A frame-major layout stores each frame's bits contiguously. The
//! word-sliced (bit-sliced) layout transposes that: for every bit
//! *position* there is a plane of `u64` words in which lane `f` holds
//! frame `f`'s value of that bit. One word op then advances 64 frames in
//! lockstep — the software limit of the hardware's frames-per-word
//! message packing, reached when each frame contributes exactly one bit.

use crate::BitVec;

/// Lanes per plane word: the frames carried by one `u64`.
pub const WORD_LANES: usize = 64;

/// A block of `frames` equal-length bit frames stored as one plane of
/// lane words per bit position.
///
/// Plane `b` occupies `words_per_plane` consecutive `u64`s; frame `f`'s
/// bit `b` lives in word `f / 64` at bit `f % 64`. Lanes at positions
/// `>= frames` in the last word of every plane are kept at zero (the same
/// *canonical form* invariant as [`BitVec`]), so word-parallel operations
/// never leak stray lanes.
///
/// # Example
///
/// ```
/// use gf2::{BitSlices, BitVec};
///
/// let frames = vec![
///     BitVec::from_indices(5, &[0, 3]),
///     BitVec::from_indices(5, &[3, 4]),
/// ];
/// let slices = BitSlices::from_frames(&frames);
/// // Bit position 3 is set in both frames: lanes 0 and 1.
/// assert_eq!(slices.plane(3), &[0b11]);
/// assert_eq!(slices.to_frames(), frames);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSlices {
    frames: usize,
    bits: usize,
    words_per_plane: usize,
    planes: Vec<u64>,
}

impl BitSlices {
    /// Creates an all-zero slice block for `frames` frames of `bits` bits.
    pub fn zeros(frames: usize, bits: usize) -> Self {
        let words_per_plane = frames.div_ceil(WORD_LANES);
        Self {
            frames,
            bits,
            words_per_plane,
            planes: vec![0; bits * words_per_plane],
        }
    }

    /// Transposes frame-major bit vectors into word-sliced planes.
    ///
    /// # Panics
    ///
    /// Panics if the frames do not all have the same length.
    pub fn from_frames(frames: &[BitVec]) -> Self {
        let bits = frames.first().map_or(0, BitVec::len);
        let mut out = Self::zeros(frames.len(), bits);
        for (f, frame) in frames.iter().enumerate() {
            assert_eq!(frame.len(), bits, "frame {f} length mismatch");
            let word = f / WORD_LANES;
            let lane = 1u64 << (f % WORD_LANES);
            for b in frame.iter_ones() {
                out.planes[b * out.words_per_plane + word] |= lane;
            }
        }
        out
    }

    /// Transposes back to frame-major bit vectors (the inverse of
    /// [`from_frames`](Self::from_frames)).
    pub fn to_frames(&self) -> Vec<BitVec> {
        let mut out = vec![BitVec::zeros(self.bits); self.frames];
        for b in 0..self.bits {
            for (w, &plane) in self.plane(b).iter().enumerate() {
                let mut word = plane;
                while word != 0 {
                    let lane = word.trailing_zeros() as usize;
                    word &= word - 1;
                    out[w * WORD_LANES + lane].set(b, true);
                }
            }
        }
        out
    }

    /// Number of frames packed into the planes.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Bits per frame (the plane count).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Lane words per plane (`frames.div_ceil(64)`).
    pub fn words_per_plane(&self) -> usize {
        self.words_per_plane
    }

    /// The lane words of bit position `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= bits`.
    #[inline]
    pub fn plane(&self, b: usize) -> &[u64] {
        assert!(b < self.bits, "bit position {b} out of range");
        &self.planes[b * self.words_per_plane..(b + 1) * self.words_per_plane]
    }

    /// Frame `f`'s bit `b`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= frames` or `b >= bits`.
    #[inline]
    pub fn get(&self, f: usize, b: usize) -> bool {
        assert!(f < self.frames, "frame index {f} out of range");
        (self.plane(b)[f / WORD_LANES] >> (f % WORD_LANES)) & 1 == 1
    }

    /// Sets frame `f`'s bit `b`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= frames` or `b >= bits`.
    #[inline]
    pub fn set(&mut self, f: usize, b: usize, value: bool) {
        assert!(f < self.frames, "frame index {f} out of range");
        assert!(b < self.bits, "bit position {b} out of range");
        let idx = b * self.words_per_plane + f / WORD_LANES;
        let mask = 1u64 << (f % WORD_LANES);
        if value {
            self.planes[idx] |= mask;
        } else {
            self.planes[idx] &= !mask;
        }
    }

    /// Mask of the valid lanes in word `w` of any plane: all ones for
    /// full words, the low `frames % 64` bits for the final partial word.
    ///
    /// # Panics
    ///
    /// Panics if `w >= words_per_plane`.
    pub fn lane_mask(&self, w: usize) -> u64 {
        assert!(w < self.words_per_plane, "plane word {w} out of range");
        let full = (w + 1) * WORD_LANES <= self.frames;
        if full {
            u64::MAX
        } else {
            (1u64 << (self.frames % WORD_LANES)) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_set(lens: &[(usize, &[usize])], bits: usize) -> Vec<BitVec> {
        lens.iter()
            .map(|&(_, ones)| BitVec::from_indices(bits, ones))
            .collect()
    }

    #[test]
    fn roundtrip_small() {
        let frames = frame_set(&[(0, &[0, 2]), (1, &[1]), (2, &[0, 1, 2])], 3);
        let slices = BitSlices::from_frames(&frames);
        assert_eq!(slices.frames(), 3);
        assert_eq!(slices.bits(), 3);
        assert_eq!(slices.words_per_plane(), 1);
        assert_eq!(slices.to_frames(), frames);
    }

    #[test]
    fn planes_hold_lane_bits() {
        let frames = frame_set(&[(0, &[1]), (1, &[1]), (2, &[0])], 2);
        let slices = BitSlices::from_frames(&frames);
        assert_eq!(slices.plane(0), &[0b100]);
        assert_eq!(slices.plane(1), &[0b011]);
    }

    #[test]
    fn more_than_one_word_of_frames() {
        // 70 frames: bit 0 set in frames 63, 64, 69 only.
        let mut frames = vec![BitVec::zeros(2); 70];
        for f in [63usize, 64, 69] {
            frames[f].set(0, true);
        }
        let slices = BitSlices::from_frames(&frames);
        assert_eq!(slices.words_per_plane(), 2);
        assert_eq!(slices.plane(0)[0], 1u64 << 63);
        assert_eq!(slices.plane(0)[1], (1 << 0) | (1 << 5));
        assert_eq!(slices.plane(1), &[0, 0]);
        assert_eq!(slices.to_frames(), frames);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut slices = BitSlices::zeros(65, 4);
        slices.set(64, 3, true);
        slices.set(0, 0, true);
        assert!(slices.get(64, 3));
        assert!(slices.get(0, 0));
        assert!(!slices.get(63, 3));
        slices.set(64, 3, false);
        assert!(!slices.get(64, 3));
    }

    #[test]
    fn lane_mask_covers_partial_final_word() {
        let slices = BitSlices::zeros(70, 1);
        assert_eq!(slices.lane_mask(0), u64::MAX);
        assert_eq!(slices.lane_mask(1), (1u64 << 6) - 1);
        let exact = BitSlices::zeros(64, 1);
        assert_eq!(exact.lane_mask(0), u64::MAX);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let slices = BitSlices::from_frames(&[]);
        assert_eq!(slices.frames(), 0);
        assert_eq!(slices.bits(), 0);
        assert!(slices.to_frames().is_empty());
        let zero_bits = BitSlices::from_frames(&[BitVec::zeros(0), BitVec::zeros(0)]);
        assert_eq!(zero_bits.frames(), 2);
        assert_eq!(zero_bits.to_frames(), vec![BitVec::zeros(0); 2]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_frames_rejected() {
        BitSlices::from_frames(&[BitVec::zeros(3), BitVec::zeros(4)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plane_out_of_range_panics() {
        BitSlices::zeros(1, 2).plane(2);
    }
}
