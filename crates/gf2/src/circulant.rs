//! Circulant matrices over GF(2).

use crate::{BitVec, DenseMatrix};
use std::fmt;

/// A square circulant matrix, fully determined by its first row.
///
/// Row `i` is the first row cyclically shifted right by `i` positions:
/// if the first row has a one at column `p`, row `i` has a one at column
/// `(p + i) mod size`. This is the building block of quasi-cyclic LDPC
/// codes — the CCSDS C2 parity-check matrix is a 2×16 array of 511×511
/// circulants, each of row weight two.
///
/// # Example
///
/// ```
/// use gf2::Circulant;
///
/// let c = Circulant::new(5, &[0, 2]);
/// assert_eq!(c.row_ones(0), vec![0, 2]);
/// assert_eq!(c.row_ones(1), vec![1, 3]);
/// assert_eq!(c.row_ones(4), vec![1, 4]); // wraps: (0+4, 2+4 mod 5)
/// assert_eq!(c.weight(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Circulant {
    size: usize,
    first_row: Vec<u32>,
}

impl Circulant {
    /// Creates a circulant of dimension `size` with ones of the first row at
    /// `positions`.
    ///
    /// Positions are deduplicated and sorted.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or any position is `>= size`.
    pub fn new(size: usize, positions: &[u32]) -> Self {
        assert!(size > 0, "circulant size must be positive");
        let mut first_row: Vec<u32> = positions.to_vec();
        first_row.sort_unstable();
        first_row.dedup();
        if let Some(&max) = first_row.last() {
            assert!(
                (max as usize) < size,
                "position {max} out of range for size {size}"
            );
        }
        Self { size, first_row }
    }

    /// The identity circulant (single one at position 0).
    pub fn identity(size: usize) -> Self {
        Self::new(size, &[0])
    }

    /// The zero circulant (empty first row).
    pub fn zero(size: usize) -> Self {
        Self::new(size, &[])
    }

    /// Dimension of the (square) matrix.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Row (and column) weight — the number of ones in the first row.
    pub fn weight(&self) -> usize {
        self.first_row.len()
    }

    /// One positions of the first row, sorted ascending.
    pub fn first_row(&self) -> &[u32] {
        &self.first_row
    }

    /// One positions of row `i`, sorted ascending.
    ///
    /// Allocates a fresh `Vec` per call — hot paths should prefer the
    /// allocation-free [`row_ones_iter`](Self::row_ones_iter) or the
    /// rotate-indexed [`tap_column`](Self::tap_column) accessors.
    ///
    /// # Panics
    ///
    /// Panics if `i >= size`.
    pub fn row_ones(&self, i: usize) -> Vec<u32> {
        let mut ones: Vec<u32> = self.row_ones_iter(i).collect();
        ones.sort_unstable();
        ones
    }

    /// One positions of row `i`, allocation-free, in first-row (tap)
    /// order — **not** sorted: a position that wraps past `size` comes
    /// out where its tap sits, not in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= size`.
    pub fn row_ones_iter(&self, i: usize) -> impl Iterator<Item = u32> + '_ {
        assert!(i < self.size, "row {i} out of range");
        let size = self.size;
        self.first_row
            .iter()
            .map(move |&p| ((p as usize + i) % size) as u32)
    }

    /// Column of tap `t`'s one in row `i`: `(first_row[t] + i) mod size`.
    ///
    /// This is the rotate-indexed forward map — a lane sweep over
    /// `i = 0..size` at fixed `t` visits a cyclically contiguous column
    /// range, which is what lets QC kernels replace per-edge index lists
    /// with two contiguous slices.
    ///
    /// # Panics
    ///
    /// Panics if `t >= weight()` or `i >= size`.
    pub fn tap_column(&self, t: usize, i: usize) -> usize {
        assert!(i < self.size, "row {i} out of range");
        (self.first_row[t] as usize + i) % self.size
    }

    /// Row whose tap `t` lands in column `j`: the inverse of
    /// [`tap_column`](Self::tap_column), `(j − first_row[t]) mod size`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= weight()` or `j >= size`.
    pub fn tap_row(&self, t: usize, j: usize) -> usize {
        assert!(j < self.size, "column {j} out of range");
        (j + self.size - self.first_row[t] as usize) % self.size
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.size, self.size);
        for r in 0..self.size {
            for c in self.row_ones(r) {
                m.set(r, c as usize, true);
            }
        }
        m
    }

    /// Product of two circulants of the same size (also a circulant).
    ///
    /// Computed as polynomial multiplication modulo `x^size − 1`; terms with
    /// even multiplicity cancel over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn mul(&self, other: &Self) -> Self {
        assert_eq!(self.size, other.size, "circulant size mismatch");
        let mut counts = vec![0u32; self.size];
        for &a in &self.first_row {
            for &b in &other.first_row {
                counts[(a as usize + b as usize) % self.size] += 1;
            }
        }
        let positions: Vec<u32> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c % 2 == 1)
            .map(|(i, _)| i as u32)
            .collect();
        Self::new(self.size, &positions)
    }

    /// Sum (XOR) of two circulants of the same size.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.size, other.size, "circulant size mismatch");
        let a = BitVec::from_indices(
            self.size,
            &self
                .first_row
                .iter()
                .map(|&p| p as usize)
                .collect::<Vec<_>>(),
        );
        let b = BitVec::from_indices(
            self.size,
            &other
                .first_row
                .iter()
                .map(|&p| p as usize)
                .collect::<Vec<_>>(),
        );
        let sum = &a ^ &b;
        let positions: Vec<u32> = sum.iter_ones().map(|p| p as u32).collect();
        Self::new(self.size, &positions)
    }

    /// Transpose (also a circulant: positions negate modulo size).
    pub fn transpose(&self) -> Self {
        let positions: Vec<u32> = self
            .first_row
            .iter()
            .map(|&p| ((self.size - p as usize) % self.size) as u32)
            .collect();
        Self::new(self.size, &positions)
    }
}

impl fmt::Debug for Circulant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Circulant({}; {:?})", self.size, self.first_row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_cyclic_shifts() {
        let c = Circulant::new(7, &[1, 3]);
        assert_eq!(c.row_ones(0), vec![1, 3]);
        assert_eq!(c.row_ones(4), vec![0, 5]); // (1+4, 3+4 mod 7)
        let d = c.to_dense();
        // Every row and column has the circulant weight.
        for r in 0..7 {
            assert_eq!(d.row(r).count_ones(), 2);
        }
        let t = d.transpose();
        for r in 0..7 {
            assert_eq!(t.row(r).count_ones(), 2);
        }
    }

    #[test]
    fn identity_acts_as_identity() {
        let i = Circulant::identity(6);
        let c = Circulant::new(6, &[2, 5]);
        assert_eq!(i.mul(&c), c);
        assert_eq!(c.mul(&i), c);
        assert_eq!(i.to_dense(), DenseMatrix::identity(6));
    }

    #[test]
    fn mul_matches_dense_mul() {
        let a = Circulant::new(5, &[0, 2]);
        let b = Circulant::new(5, &[1, 4]);
        let prod = a.mul(&b);
        assert_eq!(prod.to_dense(), a.to_dense().mul(&b.to_dense()));
    }

    #[test]
    fn mul_cancels_even_terms() {
        // (1 + x)(1 + x) = 1 + 2x + x^2 = 1 + x^2 over GF(2).
        let a = Circulant::new(8, &[0, 1]);
        let sq = a.mul(&a);
        assert_eq!(sq.first_row(), &[0, 2]);
    }

    #[test]
    fn add_matches_xor() {
        let a = Circulant::new(5, &[0, 2]);
        let b = Circulant::new(5, &[2, 3]);
        assert_eq!(a.add(&b).first_row(), &[0, 3]);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let a = Circulant::new(9, &[0, 2, 5]);
        assert_eq!(a.transpose().to_dense(), a.to_dense().transpose());
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn duplicate_positions_dedup() {
        let c = Circulant::new(4, &[1, 1, 3]);
        assert_eq!(c.first_row(), &[1, 3]);
        assert_eq!(c.weight(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_position_panics() {
        Circulant::new(4, &[4]);
    }
}
