//! The cycle/throughput model behind the paper's Table 1.

use crate::{ArchConfig, CodeDims};

/// Cycle-count and data-rate model of one architecture configuration.
///
/// One decoding iteration costs
/// `ceil(checks / P_cn) + D_cn + ceil(n / P_bn) + D_bn` cycles: the CN
/// phase streams all check nodes through `P_cn` units, the BN phase all
/// bit nodes through `P_bn` units, and each phase pays its pipeline drain.
/// Frame I/O overlaps decoding through the double-buffered I/O memories
/// (`io_overlap`), so steady-state throughput is governed by iteration
/// cycles alone.
///
/// For the low-cost preset on the C2 code this gives 511 + 39 + 511 + 39 =
/// 1100 cycles per iteration — 130 Mbps at 10 iterations and 200 MHz,
/// matching Table 1.
///
/// # Example
///
/// ```
/// use ldpc_hwsim::{ArchConfig, CodeDims, ThroughputModel};
///
/// let m = ThroughputModel::new(ArchConfig::high_speed(), CodeDims::ccsds_c2());
/// assert!((m.info_throughput_mbps(10) - 1040.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputModel {
    config: ArchConfig,
    dims: CodeDims,
}

impl ThroughputModel {
    /// Creates a model for a configuration and code.
    pub fn new(config: ArchConfig, dims: CodeDims) -> Self {
        Self { config, dims }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// The code dimensions.
    pub fn dims(&self) -> &CodeDims {
        &self.dims
    }

    /// Cycles of one decoding iteration.
    pub fn iteration_cycles(&self) -> u64 {
        let cn = (self.dims.n_checks as u64).div_ceil(self.config.cn_parallelism as u64);
        let bn = (self.dims.n as u64).div_ceil(self.config.bn_parallelism as u64);
        cn + self.config.cn_pipeline as u64 + bn + self.config.bn_pipeline as u64
    }

    /// Cycles to decode one frame group at the given iteration count,
    /// including non-overlapped I/O if configured.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn frame_cycles(&self, iterations: u32) -> u64 {
        assert!(iterations > 0, "iteration count must be positive");
        let io = if self.config.io_overlap {
            0
        } else {
            // Load and store at one memory word (bn_parallelism bits) per
            // cycle each.
            2 * (self.dims.n as u64).div_ceil(self.config.bn_parallelism as u64)
        };
        u64::from(iterations) * self.iteration_cycles() + io
    }

    /// End-to-end latency of one frame in microseconds: load, decode, and
    /// store, regardless of I/O overlap (overlap helps throughput, not the
    /// latency of an individual frame).
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn frame_latency_us(&self, iterations: u32) -> f64 {
        assert!(iterations > 0, "iteration count must be positive");
        let io = 2 * (self.dims.n as u64).div_ceil(self.config.bn_parallelism as u64);
        let cycles = u64::from(iterations) * self.iteration_cycles() + io;
        cycles as f64 / self.config.clock_mhz
    }

    /// Decoded frames per second (counting all packed frames).
    pub fn frames_per_second(&self, iterations: u32) -> f64 {
        let cycles = self.frame_cycles(iterations) as f64;
        let clock_hz = self.config.clock_mhz * 1e6;
        self.config.frames_per_word as f64 * clock_hz / cycles
    }

    /// Information throughput in Mbps — the paper's "output throughput".
    pub fn info_throughput_mbps(&self, iterations: u32) -> f64 {
        self.frames_per_second(iterations) * self.dims.info_bits as f64 / 1e6
    }

    /// Coded (channel) throughput in Mbps.
    pub fn coded_throughput_mbps(&self, iterations: u32) -> f64 {
        self.frames_per_second(iterations) * self.dims.n as f64 / 1e6
    }

    /// The (iterations, Mbps) rows of the paper's Table 1.
    pub fn table1_rows(&self, iteration_counts: &[u32]) -> Vec<(u32, f64)> {
        iteration_counts
            .iter()
            .map(|&it| (it, self.info_throughput_mbps(it)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_cost() -> ThroughputModel {
        ThroughputModel::new(ArchConfig::low_cost(), CodeDims::ccsds_c2())
    }

    fn high_speed() -> ThroughputModel {
        ThroughputModel::new(ArchConfig::high_speed(), CodeDims::ccsds_c2())
    }

    #[test]
    fn iteration_cycles_match_design() {
        // 1022/2 + 39 + 8176/16 + 39 = 511 + 39 + 511 + 39 = 1100.
        assert_eq!(low_cost().iteration_cycles(), 1100);
    }

    #[test]
    fn table_1_low_cost_row() {
        // Paper Table 1 @200 MHz: 10 it -> 130, 18 -> 70, 50 -> 25 Mbps.
        let m = low_cost();
        let t10 = m.info_throughput_mbps(10);
        let t18 = m.info_throughput_mbps(18);
        let t50 = m.info_throughput_mbps(50);
        assert!((t10 - 130.0).abs() < 2.0, "10 it: {t10}");
        assert!((t18 - 70.0).abs() < 3.0, "18 it: {t18}");
        assert!((t50 - 25.0).abs() < 1.5, "50 it: {t50}");
    }

    #[test]
    fn table_1_high_speed_is_8x() {
        // Paper: 1040 / 560 / 200 Mbps — exactly 8x the low-cost decoder.
        let lc = low_cost();
        let hs = high_speed();
        for it in [10u32, 18, 50] {
            let ratio = hs.info_throughput_mbps(it) / lc.info_throughput_mbps(it);
            assert!((ratio - 8.0).abs() < 1e-9, "iterations {it}: ratio {ratio}");
        }
        assert!((hs.info_throughput_mbps(10) - 1040.0).abs() < 15.0);
        assert!((hs.info_throughput_mbps(18) - 560.0).abs() < 25.0);
        assert!((hs.info_throughput_mbps(50) - 200.0).abs() < 10.0);
    }

    #[test]
    fn throughput_inversely_proportional_to_iterations() {
        let m = low_cost();
        let t10 = m.info_throughput_mbps(10);
        let t20 = m.info_throughput_mbps(20);
        assert!((t10 / t20 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn coded_exceeds_info_throughput() {
        let m = low_cost();
        assert!(m.coded_throughput_mbps(18) > m.info_throughput_mbps(18));
        let ratio = m.coded_throughput_mbps(18) / m.info_throughput_mbps(18);
        assert!((ratio - 8176.0 / 7154.0).abs() < 1e-9);
    }

    #[test]
    fn non_overlapped_io_costs_cycles() {
        let cfg = ArchConfig {
            io_overlap: false,
            ..ArchConfig::low_cost()
        };
        let m = ThroughputModel::new(cfg, CodeDims::ccsds_c2());
        assert_eq!(m.frame_cycles(10), 10 * 1100 + 2 * 511);
        assert!(m.info_throughput_mbps(10) < low_cost().info_throughput_mbps(10));
    }

    #[test]
    fn clock_scales_linearly() {
        let m100 = ThroughputModel::new(
            ArchConfig::low_cost().with_clock_mhz(100.0),
            CodeDims::ccsds_c2(),
        );
        assert!(
            (m100.info_throughput_mbps(18) * 2.0 - low_cost().info_throughput_mbps(18)).abs()
                < 1e-9
        );
    }

    #[test]
    fn table1_rows_enumerate_requested_iterations() {
        let rows = low_cost().table1_rows(&[10, 18, 50]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, 10);
        assert!(rows[0].1 > rows[2].1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_iterations_rejected() {
        low_cost().frame_cycles(0);
    }

    #[test]
    fn latency_exceeds_pure_decode_time() {
        let m = low_cost();
        // 18 iterations: 18*1100 decode cycles + 2*511 I/O at 200 MHz.
        let want = (18 * 1100 + 2 * 511) as f64 / 200.0;
        assert!((m.frame_latency_us(18) - want).abs() < 1e-9);
        assert!(m.frame_latency_us(18) * 1e-6 > 1.0 / m.frames_per_second(18) * 0.9);
    }
}
