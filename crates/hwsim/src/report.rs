//! Plain-text table rendering for benchmark and planner reports.

/// Renders an aligned ASCII table with a title, header row, and data rows.
///
/// Columns are sized to their widest cell; all cells are left-aligned
/// except obviously numeric ones are kept as given (callers format
/// numbers themselves).
///
/// # Example
///
/// ```
/// let t = ldpc_hwsim::render_table(
///     "Table 1",
///     &["iterations", "Mbps"],
///     &[vec!["10".into(), "130".into()], vec!["18".into(), "72".into()]],
/// );
/// assert!(t.contains("Table 1"));
/// assert!(t.contains("130"));
/// ```
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut line = String::new();
    #[allow(clippy::needless_range_loop)]
    for (i, h) in headers.iter().enumerate() {
        line.push_str(&format!("| {:w$} ", h, w = widths[i]));
    }
    line.push('|');
    out.push_str(&line);
    out.push('\n');
    let mut sep = String::new();
    for w in &widths {
        sep.push_str(&format!("|{}", "-".repeat(w + 2)));
    }
    sep.push('|');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        #[allow(clippy::needless_range_loop)]
        for i in 0..cols {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            line.push_str(&format!("| {:w$} ", cell, w = widths[i]));
        }
        line.push('|');
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = render_table(
            "T",
            &["a", "long-header"],
            &[vec!["wide-cell".into(), "x".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and data rows have equal length.
        assert_eq!(lines[1].len(), lines[3].len());
        assert!(lines[1].starts_with("| a"));
    }

    #[test]
    fn missing_cells_render_empty() {
        let t = render_table("T", &["a", "b"], &[vec!["1".into()]]);
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn empty_rows_ok() {
        let t = render_table("Empty", &["x"], &[]);
        assert!(t.contains("Empty"));
        assert_eq!(t.lines().count(), 3);
    }
}
