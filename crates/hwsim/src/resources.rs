//! FPGA logic-resource estimation (Tables 2 and 3).
//!
//! Memory bits come from [`MemoryPlan`](crate::MemoryPlan) and are exact;
//! logic cells and registers cannot be synthesized here, so they use an
//! analytic model with per-unit cost constants **calibrated once** against
//! the paper's Tables 2 and 3 and then reused unchanged for every other
//! configuration (the documented substitution of DESIGN.md §3).

use crate::{ArchConfig, CodeDims, MemoryPlan, MessageStorage};
use std::fmt;

/// ALUTs per message bit of one serial check-node unit (two-minimum
/// tracker, sign chain, scaler). 200 × q_msg = 1200 ALUTs at q = 6.
const ALUT_PER_CNU_BIT: u64 = 200;
/// Registers per message bit of one CN unit (pipeline + state).
const REG_PER_CNU_BIT: u64 = 150;
/// ALUTs per message bit of one bit-node unit with direct storage
/// (adder tree + subtract + saturate). 47 × 6 ≈ 282 ALUTs.
const ALUT_PER_BNU_BIT_DIRECT: u64 = 47;
/// Registers per message bit of one direct-storage BN unit.
const REG_PER_BNU_BIT_DIRECT: u64 = 35;
/// ALUTs per message bit of one BN unit with compressed CN storage: the
/// subtraction path is shared with the on-the-fly recompute, roughly
/// halving the per-unit cost (23 × 6 ≈ 138 ALUTs).
const ALUT_PER_BNU_BIT_COMPRESSED: u64 = 23;
/// Registers per message bit of one compressed-storage BN unit.
const REG_PER_BNU_BIT_COMPRESSED: u64 = 20;
/// Controller + address generation + I/O sequencing, shared by all
/// processing blocks.
const ALUT_CONTROLLER: u64 = 1_100;
/// Controller registers.
const REG_CONTROLLER: u64 = 800;

/// Estimated FPGA resource usage of one architecture configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Adaptive look-up tables (logic elements on Cyclone II).
    pub aluts: u64,
    /// Flip-flops.
    pub registers: u64,
    /// Embedded memory bits.
    pub memory_bits: u64,
}

impl ResourceEstimate {
    /// Estimates resources for a configuration decoding the given code.
    pub fn new(config: &ArchConfig, dims: &CodeDims) -> Self {
        let q = u64::from(config.fixed.q_msg);
        let cn_units = config.total_cn_units() as u64;
        let bn_units = config.total_bn_units() as u64;
        let (alut_bnu, reg_bnu) = match config.storage {
            MessageStorage::Direct => (ALUT_PER_BNU_BIT_DIRECT, REG_PER_BNU_BIT_DIRECT),
            MessageStorage::CompressedCn => {
                (ALUT_PER_BNU_BIT_COMPRESSED, REG_PER_BNU_BIT_COMPRESSED)
            }
        };
        let aluts = cn_units * ALUT_PER_CNU_BIT * q + bn_units * alut_bnu * q + ALUT_CONTROLLER;
        let registers = cn_units * REG_PER_CNU_BIT * q + bn_units * reg_bnu * q + REG_CONTROLLER;
        let memory_bits = MemoryPlan::new(config, dims).total_bits();
        Self {
            aluts,
            registers,
            memory_bits,
        }
    }
}

impl fmt::Display for ResourceEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ALUTs, {} registers, {} memory bits",
            self.aluts, self.registers, self.memory_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchConfig, CodeDims, CYCLONE_II_EP2C50, STRATIX_II_EP2S180};

    #[test]
    fn low_cost_matches_paper_table_2() {
        // Paper Table 2: 8k ALUTs (16%), 6k registers (12%), 290k bits (50%)
        // on a Cyclone II EP2C50F.
        let est = ResourceEstimate::new(&ArchConfig::low_cost(), &CodeDims::ccsds_c2());
        assert!(
            (est.aluts as i64 - 8_000).abs() < 500,
            "aluts {}",
            est.aluts
        );
        assert!(
            (est.registers as i64 - 6_000).abs() < 500,
            "regs {}",
            est.registers
        );
        assert_eq!(est.memory_bits, 286_160);
        let u = CYCLONE_II_EP2C50.utilization(&est);
        assert!((u.logic_pct - 16.0).abs() < 2.0, "logic {u}");
        assert!((u.register_pct - 12.0).abs() < 2.0, "regs {u}");
        assert!((u.memory_pct - 50.0).abs() < 3.0, "mem {u}");
        assert!(u.fits());
    }

    #[test]
    fn high_speed_matches_paper_table_3() {
        // Paper Table 3: 38k ALUTs (27%), 30k registers (20%), 1300kb
        // on a Stratix II EP2S180.
        let est = ResourceEstimate::new(&ArchConfig::high_speed(), &CodeDims::ccsds_c2());
        assert!(
            (est.aluts as i64 - 38_000).abs() < 1_500,
            "aluts {}",
            est.aluts
        );
        assert!(
            (est.registers as i64 - 30_000).abs() < 1_500,
            "regs {}",
            est.registers
        );
        assert_eq!(est.memory_bits, 1_299_984);
        let u = STRATIX_II_EP2S180.utilization(&est);
        assert!((u.logic_pct - 27.0).abs() < 2.0, "logic {u}");
        assert!((u.register_pct - 20.0).abs() < 2.0, "regs {u}");
        assert!(u.fits());
    }

    #[test]
    fn eight_x_throughput_for_about_4x_resources() {
        // Paper §4.2: "increase the output throughput ... by a factor of
        // eight while only increasing the amount of resources by about
        // four".
        let dims = CodeDims::ccsds_c2();
        let lc = ResourceEstimate::new(&ArchConfig::low_cost(), &dims);
        let hs = ResourceEstimate::new(&ArchConfig::high_speed(), &dims);
        let logic_ratio = hs.aluts as f64 / lc.aluts as f64;
        assert!(
            (3.5..6.0).contains(&logic_ratio),
            "logic ratio {logic_ratio}"
        );
        let mem_ratio = hs.memory_bits as f64 / lc.memory_bits as f64;
        assert!(
            mem_ratio < 8.0,
            "memory ratio {mem_ratio} not better than linear"
        );
    }

    #[test]
    fn resources_scale_with_quantization() {
        let dims = CodeDims::ccsds_c2();
        let narrow = ResourceEstimate::new(
            &ArchConfig::low_cost().with_fixed(ldpc_core::FixedConfig::default().with_q_msg(4)),
            &dims,
        );
        let wide = ResourceEstimate::new(
            &ArchConfig::low_cost().with_fixed(ldpc_core::FixedConfig::default().with_q_msg(8)),
            &dims,
        );
        assert!(narrow.aluts < wide.aluts);
        assert!(narrow.memory_bits < wide.memory_bits);
    }

    #[test]
    fn display_is_informative() {
        let est = ResourceEstimate::new(&ArchConfig::low_cost(), &CodeDims::ccsds_c2());
        let text = est.to_string();
        assert!(text.contains("ALUTs"));
        assert!(text.contains("memory bits"));
    }
}
