//! QC-aware message-memory addressing — the paper's §2.2 observation that
//! "an optimized scheduling for the message passing and a good storing of
//! data are needed", made concrete and machine-checkable.
//!
//! The message memory is laid out **check-row-major**: the messages of
//! check row `i` of block row `r` occupy one word of bank `r` at address
//! `i`. The two access patterns of the decoder are then:
//!
//! * **CN phase** — check `m` reads exactly one word from one bank
//!   ([`MessageBankLayout::cn_access`]): trivially conflict-free at
//!   `P_cn ≤ block_rows` checks per cycle when the checks of a cycle come
//!   from distinct block rows.
//! * **BN phase** — a group of consecutive bits inside one block column
//!   needs, per block row and per circulant tap, a **cyclically
//!   contiguous run** of word addresses
//!   ([`MessageBankLayout::bn_group_runs`]). Contiguity is what lets the
//!   hardware stream the transposed access pattern with simple counters
//!   instead of an arbitrary permutation network — the property this
//!   module verifies on the real CCSDS table.

use gf2::Circulant;
use ldpc_core::QcLdpcSpec;

/// One word access into the banked message memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WordAccess {
    /// Memory bank = block row index.
    pub bank: usize,
    /// Word address within the bank = check row within the block row.
    pub address: usize,
    /// Lane within the word = position of the message in the check's
    /// edge list.
    pub lane: usize,
}

/// A cyclically contiguous run of word addresses within one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressRun {
    /// Bank (block row).
    pub bank: usize,
    /// First address of the run.
    pub start: usize,
    /// Number of consecutive (mod circulant size) addresses.
    pub len: usize,
}

/// Address generator for the check-row-major message-memory layout of a
/// quasi-cyclic code.
#[derive(Debug, Clone)]
pub struct MessageBankLayout {
    circulant_size: usize,
    block_rows: usize,
    block_cols: usize,
    /// `taps[r][c]` = first-row one positions of circulant (r, c).
    taps: Vec<Vec<Vec<u32>>>,
}

impl MessageBankLayout {
    /// Builds the layout from a QC specification.
    pub fn new(spec: &QcLdpcSpec) -> Self {
        let taps = (0..spec.block_rows())
            .map(|r| {
                (0..spec.block_cols())
                    .map(|c| spec.block(r, c).first_row().to_vec())
                    .collect()
            })
            .collect();
        Self {
            circulant_size: spec.circulant_size(),
            block_rows: spec.block_rows(),
            block_cols: spec.block_cols(),
            taps,
        }
    }

    /// Number of memory banks (= block rows).
    pub fn banks(&self) -> usize {
        self.block_rows
    }

    /// Words per bank (= circulant size).
    pub fn words_per_bank(&self) -> usize {
        self.circulant_size
    }

    /// Messages per word (= total row weight of one block row).
    pub fn lanes_per_word(&self, bank: usize) -> usize {
        self.taps[bank].iter().map(Vec::len).sum()
    }

    /// The single word access of check `m` in the CN phase.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn cn_access(&self, m: usize) -> WordAccess {
        assert!(
            m < self.block_rows * self.circulant_size,
            "check out of range"
        );
        WordAccess {
            bank: m / self.circulant_size,
            address: m % self.circulant_size,
            lane: 0,
        }
    }

    /// The word accesses needed by one bit node: for each block row and
    /// each tap of its block-column circulant, one word.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn bn_accesses(&self, bit: usize) -> Vec<WordAccess> {
        assert!(
            bit < self.block_cols * self.circulant_size,
            "bit out of range"
        );
        let block_col = bit / self.circulant_size;
        let j = bit % self.circulant_size;
        let mut accesses = Vec::new();
        for (bank, row_taps) in self.taps.iter().enumerate() {
            // Lane base: messages of earlier block columns come first in
            // the word (rows are sorted by column index at expansion, and
            // block offsets dominate the sort).
            let mut lane_base = 0usize;
            for (c, taps) in row_taps.iter().enumerate() {
                if c == block_col {
                    for (t, &p) in taps.iter().enumerate() {
                        // Circulant row i has a one in column j iff
                        // (p + i) mod L = j.
                        let i = (j + self.circulant_size - p as usize) % self.circulant_size;
                        accesses.push(WordAccess {
                            bank,
                            address: i,
                            lane: lane_base + t,
                        });
                    }
                }
                lane_base += taps.len();
            }
        }
        accesses
    }

    /// The per-bank, per-tap address runs of a BN-phase group: `group`
    /// consecutive bits of one block column starting at `offset`.
    ///
    /// Because circulant rows are shifts, the addresses of consecutive
    /// bits for one tap are consecutive (mod L): each (bank, tap) pair
    /// contributes exactly one cyclic run of length `group`. This is the
    /// regularity the architecture's address counters rely on.
    ///
    /// # Panics
    ///
    /// Panics if the block column or range is out of bounds.
    pub fn bn_group_runs(&self, block_col: usize, offset: usize, group: usize) -> Vec<AddressRun> {
        assert!(block_col < self.block_cols, "block column out of range");
        assert!(offset < self.circulant_size, "offset out of range");
        assert!(group >= 1 && group <= self.circulant_size, "bad group size");
        let mut runs = Vec::new();
        for (bank, row_taps) in self.taps.iter().enumerate() {
            for &p in &row_taps[block_col] {
                let start = (offset + self.circulant_size - p as usize) % self.circulant_size;
                runs.push(AddressRun {
                    bank,
                    start,
                    len: group,
                });
            }
        }
        runs
    }

    /// Verifies the conflict-freedom / contiguity contract over the whole
    /// code: every bit's accesses match its group's runs, and every check
    /// maps to a unique word.
    ///
    /// Returns the total number of word accesses verified.
    pub fn verify(&self) -> usize {
        let mut verified = 0usize;
        // CN side: distinct (bank, address) per check.
        let total_checks = self.block_rows * self.circulant_size;
        let mut seen = vec![false; total_checks];
        for m in 0..total_checks {
            let a = self.cn_access(m);
            let key = a.bank * self.circulant_size + a.address;
            assert!(!seen[key], "duplicate CN word mapping");
            seen[key] = true;
            verified += 1;
        }
        // BN side: each bit's addresses fall inside its group's runs.
        for block_col in 0..self.block_cols {
            for j in 0..self.circulant_size {
                let accesses = self.bn_accesses(block_col * self.circulant_size + j);
                let runs = self.bn_group_runs(block_col, j, 1);
                for a in &accesses {
                    let hit = runs
                        .iter()
                        .any(|r| r.bank == a.bank && r.start == a.address);
                    assert!(hit, "access {a:?} outside its runs");
                }
                verified += accesses.len();
            }
        }
        verified
    }
}

/// Per-bank word traffic of one decoding iteration under one schedule.
///
/// Counts accesses to the bank's message words *and* the a-posteriori
/// values its checks touch, in word units; `bursts` counts address
/// sequences the memory controller must issue (a cyclically contiguous
/// run is one burst, a scattered access is one burst per word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankTraffic {
    /// Bank (block row) index.
    pub bank: usize,
    /// Word reads per iteration.
    pub word_reads: usize,
    /// Word writes per iteration.
    pub word_writes: usize,
    /// Address bursts issued per iteration.
    pub bursts: usize,
}

/// Per-bank traffic of the QC (rotate-indexed) schedule next to the
/// generic edge-list gather schedule, for one decoding iteration —
/// the paper's banking argument as a measurable quantity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficComparison {
    /// Traffic under the QC schedule, one entry per bank.
    pub qc: Vec<BankTraffic>,
    /// Traffic under the generic gather schedule, one entry per bank.
    pub generic: Vec<BankTraffic>,
}

impl TrafficComparison {
    /// Total word reads + writes across all banks for (qc, generic).
    pub fn total_words(&self) -> (usize, usize) {
        let sum = |side: &[BankTraffic]| {
            side.iter()
                .map(|b| b.word_reads + b.word_writes)
                .sum::<usize>()
        };
        (sum(&self.qc), sum(&self.generic))
    }

    /// Total bursts across all banks for (qc, generic).
    pub fn total_bursts(&self) -> (usize, usize) {
        let sum = |side: &[BankTraffic]| side.iter().map(|b| b.bursts).sum::<usize>();
        (sum(&self.qc), sum(&self.generic))
    }

    /// Renders the comparison as an aligned table for the hwsim report.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for (side, label) in [(&self.qc, "qc"), (&self.generic, "generic")] {
            for b in side.iter() {
                rows.push(vec![
                    b.bank.to_string(),
                    label.to_string(),
                    b.word_reads.to_string(),
                    b.word_writes.to_string(),
                    b.bursts.to_string(),
                ]);
            }
        }
        crate::render_table(
            "Per-bank memory traffic per iteration (QC vs generic schedule)",
            &["bank", "schedule", "word reads", "word writes", "bursts"],
            &rows,
        )
    }
}

impl MessageBankLayout {
    /// Per-bank word traffic of one decoding iteration: the QC
    /// (rotate-indexed) schedule against the generic edge-list gather.
    ///
    /// Both schedules move the same information — for each of the bank's
    /// `L` checks, its `E_r` messages and the matching a-posteriori
    /// values, read and written once per iteration. They differ in word
    /// packing and addressability:
    ///
    /// * **QC** — the check's `E_r` messages share one bank word
    ///   (check-row-major layout), so the message side costs `L` word
    ///   reads + `L` word writes streamed as one contiguous burst each;
    ///   the a-posteriori side is one cyclic run per circulant tap
    ///   (`E_r` runs of `L` words, read and written), for
    ///   `L + E_r·L` reads, the same writes, and `2 + 2·E_r` bursts.
    /// * **Generic** — per-edge index lists know nothing of the block
    ///   form: every message and every a-posteriori value is a separate
    ///   single-word access, for `2·L·E_r` reads, `2·L·E_r` writes, and
    ///   one burst per word (`4·L·E_r`).
    pub fn traffic_per_iteration(&self) -> TrafficComparison {
        let l = self.circulant_size;
        let mut qc = Vec::with_capacity(self.block_rows);
        let mut generic = Vec::with_capacity(self.block_rows);
        for bank in 0..self.block_rows {
            let e_r = self.lanes_per_word(bank);
            qc.push(BankTraffic {
                bank,
                word_reads: l + e_r * l,
                word_writes: l + e_r * l,
                bursts: 2 + 2 * e_r,
            });
            generic.push(BankTraffic {
                bank,
                word_reads: 2 * l * e_r,
                word_writes: 2 * l * e_r,
                bursts: 4 * l * e_r,
            });
        }
        TrafficComparison { qc, generic }
    }
}

/// Helper: expands a circulant row index for tests.
#[allow(dead_code)]
fn circulant_row(c: &Circulant, i: usize) -> Vec<u32> {
    c.row_ones(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_core::codes::{ccsds_c2, small};

    #[test]
    fn cn_access_is_one_word_per_check() {
        let layout = MessageBankLayout::new(&ccsds_c2::spec());
        assert_eq!(layout.banks(), 2);
        assert_eq!(layout.words_per_bank(), 511);
        assert_eq!(layout.lanes_per_word(0), 32);
        let a = layout.cn_access(0);
        assert_eq!((a.bank, a.address), (0, 0));
        let a = layout.cn_access(511);
        assert_eq!((a.bank, a.address), (1, 0));
        let a = layout.cn_access(1021);
        assert_eq!((a.bank, a.address), (1, 510));
    }

    #[test]
    fn bn_accesses_match_matrix_adjacency() {
        // For a handful of bits, the generated addresses must point at
        // exactly the checks adjacent to the bit in the expanded matrix.
        let spec = ccsds_c2::spec();
        let layout = MessageBankLayout::new(&spec);
        let code = ccsds_c2::code();
        for bit in [0usize, 510, 511, 4000, 8175] {
            let mut from_layout: Vec<usize> = layout
                .bn_accesses(bit)
                .iter()
                .map(|a| a.bank * 511 + a.address)
                .collect();
            from_layout.sort_unstable();
            let mut from_graph: Vec<usize> = code
                .graph()
                .bn_checks(bit)
                .iter()
                .map(|&m| m as usize)
                .collect();
            from_graph.sort_unstable();
            assert_eq!(from_layout, from_graph, "bit {bit}");
        }
    }

    #[test]
    fn group_runs_are_cyclic_shifts_of_single_bit_runs() {
        let layout = MessageBankLayout::new(&ccsds_c2::spec());
        // A 16-bit group (the low-cost decoder's BN parallelism per
        // block-column slice) produces 2 banks x 2 taps = 4 runs of 16.
        let runs = layout.bn_group_runs(3, 100, 16);
        assert_eq!(runs.len(), 4);
        assert!(runs.iter().all(|r| r.len == 16));
        // The runs cover exactly the addresses of the 16 individual bits.
        for k in 0..16usize {
            for a in layout.bn_accesses(3 * 511 + 100 + k) {
                let ok = runs
                    .iter()
                    .any(|r| r.bank == a.bank && (a.address + 511 - r.start) % 511 < r.len);
                assert!(ok, "bit offset {k}: access {a:?} outside runs");
            }
        }
    }

    #[test]
    fn full_c2_layout_verifies() {
        let layout = MessageBankLayout::new(&ccsds_c2::spec());
        let verified = layout.verify();
        // 1022 CN words + 8176 bits x 4 accesses.
        assert_eq!(verified, 1022 + 8176 * 4);
    }

    #[test]
    fn demo_code_layout_verifies() {
        let layout = MessageBankLayout::new(&small::demo_spec());
        assert_eq!(layout.verify(), 62 + 248 * 4);
    }

    #[test]
    fn distinct_lanes_within_a_word() {
        // The two taps of one block circulant land in different lanes, so
        // a word read delivers both without multiplexing conflicts.
        let layout = MessageBankLayout::new(&ccsds_c2::spec());
        for bit in [0usize, 1000, 5000] {
            let accesses = layout.bn_accesses(bit);
            for w in accesses.windows(2) {
                if w[0].bank == w[1].bank && w[0].address == w[1].address {
                    assert_ne!(w[0].lane, w[1].lane, "lane conflict at bit {bit}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bit_rejected() {
        let layout = MessageBankLayout::new(&ccsds_c2::spec());
        let _ = layout.bn_accesses(9000);
    }

    #[test]
    fn c2_traffic_counts_are_pinned() {
        // L = 511, E_r = 32 per bank: the QC schedule halves word traffic
        // and collapses ~65k scattered bursts into 66 streamed runs.
        let layout = MessageBankLayout::new(&ccsds_c2::spec());
        let t = layout.traffic_per_iteration();
        assert_eq!(t.qc.len(), 2);
        assert_eq!(t.generic.len(), 2);
        for bank in 0..2 {
            assert_eq!(t.qc[bank].word_reads, 511 + 32 * 511); // 16 863
            assert_eq!(t.qc[bank].word_writes, 16_863);
            assert_eq!(t.qc[bank].bursts, 66);
            assert_eq!(t.generic[bank].word_reads, 2 * 511 * 32); // 32 704
            assert_eq!(t.generic[bank].word_writes, 32_704);
            assert_eq!(t.generic[bank].bursts, 65_408);
        }
        assert_eq!(t.total_words(), (4 * 16_863, 4 * 32_704));
        assert_eq!(t.total_bursts(), (132, 130_816));
    }

    #[test]
    fn demo_traffic_scales_with_the_block_shape() {
        // Demo code: L = 31, 2 banks of E_r = 16.
        let layout = MessageBankLayout::new(&small::demo_spec());
        let t = layout.traffic_per_iteration();
        for bank in 0..2 {
            assert_eq!(t.qc[bank].word_reads, 31 + 16 * 31);
            assert_eq!(t.qc[bank].bursts, 2 + 2 * 16);
            assert_eq!(t.generic[bank].word_reads, 2 * 31 * 16);
            assert_eq!(t.generic[bank].bursts, 4 * 31 * 16);
        }
    }

    #[test]
    fn traffic_render_is_a_complete_table() {
        let layout = MessageBankLayout::new(&ccsds_c2::spec());
        let table = layout.traffic_per_iteration().render();
        assert!(table.contains("memory traffic"));
        assert!(table.contains("16863"));
        assert!(table.contains("65408"));
        // Title + header + separator + 2 banks x 2 schedules.
        assert_eq!(table.lines().count(), 7);
    }
}
