//! Order-of-magnitude dynamic power model.
//!
//! The paper reports no power figures, but a decoder IP data sheet needs
//! them; this model makes the architecture's power *trends* visible
//! (storage compression trades memory energy for recompute logic, frame
//! packing amortizes the controller, more iterations burn linearly more
//! energy per bit). Constants are representative of a 90 nm FPGA
//! (Cyclone II / Stratix II era) and are documented, not calibrated —
//! treat absolute milliwatts as indicative only.

use crate::{ArchConfig, ArchSimulator, CodeDims, ResourceEstimate};

/// Dynamic energy per memory-word access, in picojoules (90 nm block RAM,
/// tens of bits per word).
const PJ_PER_MEM_ACCESS: f64 = 5.0;
/// Dynamic power per ALUT at full toggle, in microwatts per MHz.
const UW_PER_ALUT_MHZ: f64 = 0.025;
/// Activity factor of decoder logic (fraction of cycles a unit toggles).
const LOGIC_ACTIVITY: f64 = 0.25;
/// Static leakage per logic cell, in microwatts.
const UW_STATIC_PER_ALUT: f64 = 0.8;

/// Estimated power of one architecture instance at steady-state decoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Dynamic logic power in milliwatts.
    pub logic_dynamic_mw: f64,
    /// Dynamic memory-access power in milliwatts.
    pub memory_dynamic_mw: f64,
    /// Static (leakage) power in milliwatts.
    pub static_mw: f64,
}

impl PowerEstimate {
    /// Total power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.logic_dynamic_mw + self.memory_dynamic_mw + self.static_mw
    }

    /// Energy efficiency in nanojoules per decoded information bit at the
    /// given throughput.
    ///
    /// # Panics
    ///
    /// Panics if `info_mbps` is not positive.
    pub fn nj_per_info_bit(&self, info_mbps: f64) -> f64 {
        assert!(info_mbps > 0.0, "throughput must be positive");
        // mW / Mbps = nJ/bit.
        self.total_mw() / info_mbps
    }
}

/// Estimates steady-state power from the resource estimate and the memory
/// traffic of a simulated decode.
///
/// `memory_accesses_per_frame` is `memory_reads + memory_writes` from an
/// [`ArchSimulator`] run; `frames_per_second` comes from the throughput
/// model.
pub fn estimate_power(
    config: &ArchConfig,
    dims: &CodeDims,
    memory_accesses_per_frame: u64,
    frames_per_second: f64,
) -> PowerEstimate {
    let est = ResourceEstimate::new(config, dims);
    let logic_dynamic_mw =
        est.aluts as f64 * UW_PER_ALUT_MHZ * config.clock_mhz * LOGIC_ACTIVITY / 1_000.0;
    // Memory words carry all packed frames, so per-frame-group accesses
    // are shared across frames_per_word frames.
    let accesses_per_second =
        memory_accesses_per_frame as f64 * frames_per_second / config.frames_per_word as f64;
    let memory_dynamic_mw = accesses_per_second * PJ_PER_MEM_ACCESS * 1e-12 * 1e3;
    let static_mw = est.aluts as f64 * UW_STATIC_PER_ALUT / 1_000.0;
    PowerEstimate {
        logic_dynamic_mw,
        memory_dynamic_mw,
        static_mw,
    }
}

/// Convenience: simulate one frame to count memory traffic, then estimate
/// power at the modeled throughput.
pub fn estimate_power_via_simulation(
    sim: &ArchSimulator,
    iterations: u32,
    info_bits: usize,
) -> PowerEstimate {
    let code = sim.code();
    let ch_max = sim.config().fixed.channel_quantizer().max_level();
    let frame = vec![ch_max; code.n()];
    let outcome = sim.decode(&[frame], iterations);
    let model = sim.throughput_model(info_bits);
    estimate_power(
        sim.config(),
        &CodeDims::from_code(code, info_bits),
        outcome.memory_reads + outcome.memory_writes,
        model.frames_per_second(iterations),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchConfig, ArchSimulator};
    use ldpc_core::codes::small::demo_code;

    #[test]
    fn power_components_positive_and_total_consistent() {
        let code = demo_code();
        let sim = ArchSimulator::new(ArchConfig::low_cost(), code);
        let p = estimate_power_via_simulation(&sim, 18, 180);
        assert!(p.logic_dynamic_mw > 0.0);
        assert!(p.memory_dynamic_mw > 0.0);
        assert!(p.static_mw > 0.0);
        let total = p.logic_dynamic_mw + p.memory_dynamic_mw + p.static_mw;
        assert!((p.total_mw() - total).abs() < 1e-12);
    }

    #[test]
    fn high_speed_burns_more_power_but_less_energy_per_bit() {
        let code = demo_code();
        let info = 180usize;
        let lc_sim = ArchSimulator::new(ArchConfig::low_cost(), code.clone());
        let hs_sim = ArchSimulator::new(ArchConfig::high_speed(), code.clone());
        let lc = estimate_power_via_simulation(&lc_sim, 18, info);
        let hs = estimate_power_via_simulation(&hs_sim, 18, info);
        assert!(hs.total_mw() > lc.total_mw(), "more hardware -> more watts");
        let lc_tp = lc_sim.throughput_model(info).info_throughput_mbps(18);
        let hs_tp = hs_sim.throughput_model(info).info_throughput_mbps(18);
        assert!(
            hs.nj_per_info_bit(hs_tp) < lc.nj_per_info_bit(lc_tp),
            "packing amortizes energy per bit"
        );
    }

    #[test]
    fn more_iterations_cost_linearly_more_memory_energy() {
        let code = demo_code();
        let sim = ArchSimulator::new(ArchConfig::low_cost(), code);
        let p18 = estimate_power_via_simulation(&sim, 18, 180);
        let p36 = estimate_power_via_simulation(&sim, 36, 180);
        // Accesses double but throughput halves: memory *power* constant,
        // energy per bit doubles.
        let ratio = p36.memory_dynamic_mw / p18.memory_dynamic_mw;
        assert!((ratio - 1.0).abs() < 0.1, "memory power ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_throughput_rejected() {
        let p = PowerEstimate {
            logic_dynamic_mw: 1.0,
            memory_dynamic_mw: 1.0,
            static_mw: 1.0,
        };
        let _ = p.nj_per_info_bit(0.0);
    }
}
