//! Architecture configuration: parallelism, quantization, storage strategy.

use ldpc_core::{FixedConfig, LdpcCode};
use std::fmt;

/// How check-to-bit messages are stored between phases (DESIGN.md §9.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageStorage {
    /// Every edge message is stored individually at the message width.
    /// Simple addressing; used by the low-cost decoder.
    Direct,
    /// Per check node only the compressed record (min1, min2, argmin,
    /// signs) is stored, and bit-to-check messages are recomputed on the
    /// fly from an a-posteriori memory. This is the "optimized storage of
    /// the data" that lets the high-speed decoder pack eight frames in
    /// ~1.3 Mb (paper Table 3).
    CompressedCn,
}

/// Static dimensions of a code as seen by the architecture models.
///
/// Decoupled from [`LdpcCode`] so that resource/throughput models can be
/// evaluated without expanding a matrix (e.g. for planner sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeDims {
    /// Code length (bit nodes).
    pub n: usize,
    /// Parity-check rows (check nodes).
    pub n_checks: usize,
    /// Edges of the Tanner graph (messages per iteration).
    pub edges: usize,
    /// Information bits delivered per decoded frame.
    pub info_bits: usize,
    /// Largest check-node degree.
    pub max_cn_degree: usize,
    /// Largest bit-node degree.
    pub max_bn_degree: usize,
}

impl CodeDims {
    /// Dimensions of the CCSDS C2 (8176, 7156) code with its 7154-bit
    /// information payload.
    pub fn ccsds_c2() -> Self {
        Self {
            n: ldpc_core::codes::ccsds_c2::N,
            n_checks: ldpc_core::codes::ccsds_c2::M_CHECKS,
            edges: ldpc_core::codes::ccsds_c2::EDGES,
            info_bits: ldpc_core::codes::ccsds_c2::K_INFO,
            max_cn_degree: 32,
            max_bn_degree: 4,
        }
    }

    /// Extracts dimensions from a constructed code.
    ///
    /// `info_bits` is the transmitted payload size (for the C2 code, 7154
    /// rather than the dimension 7156).
    ///
    /// # Panics
    ///
    /// Panics if `info_bits` exceeds the code length.
    pub fn from_code(code: &LdpcCode, info_bits: usize) -> Self {
        assert!(info_bits <= code.n(), "info bits cannot exceed code length");
        Self {
            n: code.n(),
            n_checks: code.n_checks(),
            edges: code.graph().n_edges(),
            info_bits,
            max_cn_degree: code.graph().max_cn_degree(),
            max_bn_degree: code.graph().max_bn_degree(),
        }
    }
}

/// Configuration of one instance of the generic parallel architecture.
///
/// The genericity of the paper's §3 lives here: the same structure
/// (controller + memories + processing block) is instantiated with
/// different parallelism, frame packing, and storage strategy to produce
/// the low-cost and high-speed decoders. Construct via
/// [`ArchConfig::low_cost`] / [`ArchConfig::high_speed`] and customize
/// with the `with_*` methods.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Preset / report name.
    pub name: String,
    /// Check-node units per processing block (CNs per cycle per frame).
    pub cn_parallelism: usize,
    /// Bit-node units per processing block (BNs per cycle per frame).
    pub bn_parallelism: usize,
    /// Frames packed side-by-side in each memory word. Each BN/CN unit is
    /// replicated per frame, so throughput scales linearly.
    pub frames_per_word: usize,
    /// System clock in MHz (the paper reports 200 MHz for both decoders).
    pub clock_mhz: f64,
    /// Fixed-point datapath parameters (widths, scaling). Early stopping
    /// is disabled: the hardware runs a programmed iteration count.
    pub fixed: FixedConfig,
    /// Width of the a-posteriori memory (compressed storage only).
    pub q_app: u32,
    /// CN pipeline depth in cycles (drain cost per CN phase).
    pub cn_pipeline: usize,
    /// BN pipeline depth in cycles (drain cost per BN phase).
    pub bn_pipeline: usize,
    /// Message storage strategy.
    pub storage: MessageStorage,
    /// `true` if frame input/output transfers overlap decoding through
    /// double-buffered I/O memories.
    pub io_overlap: bool,
}

impl ArchConfig {
    /// The paper's low-cost decoder: 2 CN / 16 BN units, direct storage,
    /// 200 MHz (Cyclone II EP2C50F target, Tables 1–2).
    pub fn low_cost() -> Self {
        Self {
            name: "low-cost".to_owned(),
            cn_parallelism: 2,
            bn_parallelism: 16,
            frames_per_word: 1,
            clock_mhz: 200.0,
            fixed: FixedConfig::default().with_early_stop(false),
            q_app: 8,
            cn_pipeline: 39,
            bn_pipeline: 39,
            storage: MessageStorage::Direct,
            io_overlap: true,
        }
    }

    /// The paper's high-speed decoder: eight processing blocks fed by
    /// 8-frame memory words with compressed check-node storage, 200 MHz
    /// (Stratix II EP2S180 target, Tables 1 and 3).
    pub fn high_speed() -> Self {
        Self {
            name: "high-speed".to_owned(),
            cn_parallelism: 2,
            bn_parallelism: 16,
            frames_per_word: 8,
            clock_mhz: 200.0,
            fixed: FixedConfig::default().with_early_stop(false),
            q_app: 8,
            cn_pipeline: 39,
            bn_pipeline: 39,
            storage: MessageStorage::CompressedCn,
            io_overlap: true,
        }
    }

    /// Renames the configuration (for reports).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the clock frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `clock_mhz` is not positive.
    pub fn with_clock_mhz(mut self, clock_mhz: f64) -> Self {
        assert!(clock_mhz > 0.0, "clock must be positive");
        self.clock_mhz = clock_mhz;
        self
    }

    /// Sets CN/BN parallelism.
    ///
    /// # Panics
    ///
    /// Panics if either value is zero.
    pub fn with_parallelism(mut self, cn: usize, bn: usize) -> Self {
        assert!(cn > 0 && bn > 0, "parallelism must be positive");
        self.cn_parallelism = cn;
        self.bn_parallelism = bn;
        self
    }

    /// Sets the number of frames packed per memory word.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn with_frames_per_word(mut self, frames: usize) -> Self {
        assert!(frames > 0, "frame packing must be positive");
        self.frames_per_word = frames;
        self
    }

    /// Sets the storage strategy.
    pub fn with_storage(mut self, storage: MessageStorage) -> Self {
        self.storage = storage;
        self
    }

    /// Sets the fixed-point datapath configuration. Early stopping is
    /// forced off to match the fixed-latency hardware.
    pub fn with_fixed(mut self, fixed: FixedConfig) -> Self {
        self.fixed = fixed.with_early_stop(false);
        self
    }

    /// Per-frame-group processing blocks: one per packed frame.
    pub fn processing_blocks(&self) -> usize {
        self.frames_per_word
    }

    /// Total CN units across processing blocks.
    pub fn total_cn_units(&self) -> usize {
        self.cn_parallelism * self.frames_per_word
    }

    /// Total BN units across processing blocks.
    pub fn total_bn_units(&self) -> usize {
        self.bn_parallelism * self.frames_per_word
    }
}

impl fmt::Display for ArchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} CN x {} BN units, {} frame(s)/word, {} MHz, {:?} storage",
            self.name,
            self.cn_parallelism,
            self.bn_parallelism,
            self.frames_per_word,
            self.clock_mhz,
            self.storage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_core::codes::small::demo_code;

    #[test]
    fn presets_match_paper_section_3() {
        let lc = ArchConfig::low_cost();
        // "we process 16 BN (/2 CN) concurrently"
        assert_eq!(lc.cn_parallelism, 2);
        assert_eq!(lc.bn_parallelism, 16);
        assert_eq!(lc.frames_per_word, 1);
        assert_eq!(lc.storage, MessageStorage::Direct);
        let hs = ArchConfig::high_speed();
        // high-speed = 8 frames in parallel with compressed storage
        assert_eq!(hs.frames_per_word, 8);
        assert_eq!(hs.storage, MessageStorage::CompressedCn);
        assert_eq!(hs.total_bn_units(), 8 * 16);
        assert_eq!(hs.total_cn_units(), 8 * 2);
    }

    #[test]
    fn both_presets_disable_early_stop() {
        assert!(!ArchConfig::low_cost().fixed.early_stop);
        assert!(!ArchConfig::high_speed().fixed.early_stop);
        // with_fixed re-imposes the invariant.
        let cfg = ArchConfig::low_cost().with_fixed(ldpc_core::FixedConfig::default());
        assert!(!cfg.fixed.early_stop);
    }

    #[test]
    fn ccsds_dims_match_standard() {
        let d = CodeDims::ccsds_c2();
        assert_eq!(d.n, 8176);
        assert_eq!(d.n_checks, 1022);
        assert_eq!(d.edges, 32_704);
        assert_eq!(d.info_bits, 7154);
        assert_eq!(d.max_cn_degree, 32);
    }

    #[test]
    fn dims_from_code_agree_with_graph() {
        let code = demo_code();
        let d = CodeDims::from_code(&code, 180);
        assert_eq!(d.n, 248);
        assert_eq!(d.n_checks, 62);
        assert_eq!(d.edges, 992);
        assert_eq!(d.max_cn_degree, 16);
        assert_eq!(d.max_bn_degree, 4);
    }

    #[test]
    fn builders_apply() {
        let cfg = ArchConfig::low_cost()
            .with_name("custom")
            .with_clock_mhz(150.0)
            .with_parallelism(4, 32)
            .with_frames_per_word(2)
            .with_storage(MessageStorage::CompressedCn);
        assert_eq!(cfg.name, "custom");
        assert_eq!(cfg.clock_mhz, 150.0);
        assert_eq!(cfg.total_cn_units(), 8);
        assert!(cfg.to_string().contains("custom"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_parallelism() {
        ArchConfig::low_cost().with_parallelism(0, 16);
    }
}
