//! Design-space exploration: pick the cheapest architecture instance that
//! meets a throughput requirement on the smallest device.
//!
//! This operationalizes the paper's genericity claim (§3): the same base
//! architecture scales from the low-cost to the high-speed decoder by
//! turning the parallelism / frame-packing / storage knobs. The planner
//! sweeps those knobs and returns the Pareto choice for a requirement.

use crate::{
    devices, ArchConfig, CodeDims, FpgaDevice, MessageStorage, ResourceEstimate, ThroughputModel,
};

/// A throughput requirement to plan for.
#[derive(Debug, Clone, Copy)]
pub struct PlannerRequest {
    /// Minimum information throughput in Mbps.
    pub min_info_mbps: f64,
    /// Decoding iterations the link budget requires.
    pub iterations: u32,
    /// System clock in MHz.
    pub clock_mhz: f64,
}

/// The planner's selected design point.
#[derive(Debug, Clone)]
pub struct PlannerChoice {
    /// The selected architecture configuration.
    pub config: ArchConfig,
    /// Its resource estimate.
    pub estimate: ResourceEstimate,
    /// The smallest database device it fits on.
    pub device: FpgaDevice,
    /// The information throughput it achieves.
    pub info_mbps: f64,
}

/// Candidate knob settings swept by [`plan`].
fn candidates() -> impl Iterator<Item = (usize, usize, usize, MessageStorage)> {
    let cn = [1usize, 2, 4, 8];
    let bn = [8usize, 16, 32, 64];
    let frames = [1usize, 2, 4, 8, 16];
    let storage = [MessageStorage::Direct, MessageStorage::CompressedCn];
    cn.into_iter().flat_map(move |c| {
        bn.into_iter().flat_map(move |b| {
            frames
                .into_iter()
                .flat_map(move |f| storage.into_iter().map(move |s| (c, b, f, s)))
        })
    })
}

/// Finds the cheapest configuration meeting `request` on the given code.
///
/// "Cheapest" means: smallest fitting device first (by logic-cell count),
/// then fewest ALUTs, then fewest memory bits. Returns `None` if no swept
/// configuration meets the requirement on any database device.
pub fn plan(request: &PlannerRequest, dims: &CodeDims) -> Option<PlannerChoice> {
    let mut best: Option<PlannerChoice> = None;
    for (cn, bn, frames, storage) in candidates() {
        let config = ArchConfig::low_cost()
            .with_name(format!("planned cn={cn} bn={bn} F={frames} {storage:?}"))
            .with_parallelism(cn, bn)
            .with_frames_per_word(frames)
            .with_storage(storage)
            .with_clock_mhz(request.clock_mhz);
        let model = ThroughputModel::new(config.clone(), *dims);
        let info_mbps = model.info_throughput_mbps(request.iterations);
        if info_mbps < request.min_info_mbps {
            continue;
        }
        let estimate = ResourceEstimate::new(&config, dims);
        let Some(device) = devices().iter().find(|d| d.fits(&estimate)) else {
            continue;
        };
        let better = match &best {
            None => true,
            Some(b) => {
                (device.logic_cells, estimate.aluts, estimate.memory_bits)
                    < (
                        b.device.logic_cells,
                        b.estimate.aluts,
                        b.estimate.memory_bits,
                    )
            }
        };
        if better {
            best = Some(PlannerChoice {
                config,
                estimate,
                device: *device,
                info_mbps,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c2() -> CodeDims {
        CodeDims::ccsds_c2()
    }

    #[test]
    fn modest_requirement_fits_a_small_device() {
        // The paper's low-cost scenario: 70 Mbps at 18 iterations.
        let choice = plan(
            &PlannerRequest {
                min_info_mbps: 70.0,
                iterations: 18,
                clock_mhz: 200.0,
            },
            &c2(),
        )
        .expect("70 Mbps must be plannable");
        assert!(choice.info_mbps >= 70.0);
        // Fits on a Cyclone II class device.
        assert!(
            choice.device.logic_cells <= 50_528,
            "device {}",
            choice.device.name
        );
    }

    #[test]
    fn high_speed_requirement_needs_a_big_device() {
        // The paper's high-speed scenario: 560 Mbps at 18 iterations.
        let choice = plan(
            &PlannerRequest {
                min_info_mbps: 560.0,
                iterations: 18,
                clock_mhz: 200.0,
            },
            &c2(),
        )
        .expect("560 Mbps must be plannable");
        assert!(choice.info_mbps >= 560.0);
        assert!(choice.config.frames_per_word >= 4, "needs frame packing");
    }

    #[test]
    fn impossible_requirement_returns_none() {
        let choice = plan(
            &PlannerRequest {
                min_info_mbps: 1e6,
                iterations: 50,
                clock_mhz: 200.0,
            },
            &c2(),
        );
        assert!(choice.is_none());
    }

    #[test]
    fn tighter_requirement_never_selects_smaller_design() {
        let loose = plan(
            &PlannerRequest {
                min_info_mbps: 30.0,
                iterations: 18,
                clock_mhz: 200.0,
            },
            &c2(),
        )
        .unwrap();
        let tight = plan(
            &PlannerRequest {
                min_info_mbps: 300.0,
                iterations: 18,
                clock_mhz: 200.0,
            },
            &c2(),
        )
        .unwrap();
        assert!(tight.estimate.aluts >= loose.estimate.aluts);
    }

    #[test]
    fn planner_respects_clock() {
        // Halving the clock halves throughput: a plan feasible at 200 MHz
        // for X Mbps needs more parallelism at 100 MHz.
        let fast = plan(
            &PlannerRequest {
                min_info_mbps: 100.0,
                iterations: 18,
                clock_mhz: 200.0,
            },
            &c2(),
        )
        .unwrap();
        let slow = plan(
            &PlannerRequest {
                min_info_mbps: 100.0,
                iterations: 18,
                clock_mhz: 100.0,
            },
            &c2(),
        )
        .unwrap();
        let fast_tp = fast.info_mbps / 200.0;
        let slow_tp = slow.info_mbps / 100.0;
        assert!(
            slow_tp >= fast_tp * 0.99,
            "slow plan must compensate with parallelism"
        );
    }
}
