//! Hardware-architecture model of the generic parallel CCSDS LDPC decoder.
//!
//! This crate reproduces the *architecture* contribution of the paper
//! (Fig. 3 and §3–4): a controller, input/output memories, multi-block
//! message memories, and a processing block containing parallel check-node
//! (CN) and bit-node (BN) units. Two instances are provided as presets:
//!
//! * [`ArchConfig::low_cost`] — 2 CN / 16 BN units, one frame per memory
//!   word, **direct** message storage. Mapped on a Cyclone II EP2C50F in
//!   the paper (Table 2), 130 Mbps at 10 iterations.
//! * [`ArchConfig::high_speed`] — eight frames packed per memory word with
//!   eight processing blocks and **compressed check-node storage** (the
//!   "optimized storage of the data" of the abstract). Mapped on a
//!   Stratix II EP2S180 (Table 3), 1040 Mbps at 10 iterations.
//!
//! Three models are layered on one configuration type:
//!
//! * [`ThroughputModel`] — cycle counts and output data rates (Table 1);
//! * [`MemoryPlan`] and [`ResourceEstimate`] — memory bits (exact
//!   arithmetic from the storage layout) and logic cells (calibrated
//!   constants, see DESIGN.md §3) with an FPGA [`devices`] database
//!   (Tables 2 and 3);
//! * [`ArchSimulator`] — a cycle-driven simulation of the schedule that
//!   drives the *same* fixed-point kernels as
//!   [`ldpc_core::FixedDecoder`], producing bit-identical results while
//!   counting cycles and memory traffic.
//!
//! # Example
//!
//! ```
//! use ldpc_hwsim::{ArchConfig, CodeDims, ThroughputModel};
//!
//! let model = ThroughputModel::new(ArchConfig::low_cost(), CodeDims::ccsds_c2());
//! // Paper Table 1: 130 Mbps at 10 iterations and 200 MHz.
//! let mbps = model.info_throughput_mbps(10);
//! assert!((mbps - 130.0).abs() < 2.0, "got {mbps}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod decoder_sim;
mod devices;
mod memory;
mod planner;
mod power;
mod report;
mod resources;
mod schedule;
mod throughput;

pub use arch::{ArchConfig, CodeDims, MessageStorage};
pub use decoder_sim::{ArchSimulator, SimOutcome};
pub use devices::{
    devices, FpgaDevice, Utilization, CYCLONE_II_EP2C35, CYCLONE_II_EP2C50, STRATIX_II_EP2S180,
    STRATIX_II_EP2S60,
};
pub use memory::{MemoryBank, MemoryPlan};
pub use planner::{plan, PlannerChoice, PlannerRequest};
pub use power::{estimate_power, estimate_power_via_simulation, PowerEstimate};
pub use report::render_table;
pub use resources::ResourceEstimate;
pub use schedule::{AddressRun, BankTraffic, MessageBankLayout, TrafficComparison, WordAccess};
pub use throughput::ThroughputModel;
