//! Cycle-driven simulation of the generic parallel architecture.

use crate::{ArchConfig, CodeDims, MessageStorage, ThroughputModel};
use gf2::BitVec;
use ldpc_core::decoder::kernels::{bn_output, bn_posterior, cn_scan, saturate};
use ldpc_core::{DecodeResult, LdpcCode};
use std::sync::Arc;

/// Result of simulating one frame group through the architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// Per-frame decoding results, in input order.
    pub results: Vec<DecodeResult>,
    /// Total clock cycles consumed, including pipeline drains and any
    /// non-overlapped I/O.
    pub cycles: u64,
    /// Memory words read from the message-bearing memories.
    pub memory_reads: u64,
    /// Memory words written to the message-bearing memories.
    pub memory_writes: u64,
}

/// A cycle-driven simulator of the paper's architecture (Fig. 3).
///
/// The simulator walks the exact schedule of the hardware — check nodes in
/// groups of `cn_parallelism`, then bit nodes in groups of
/// `bn_parallelism`, with pipeline drains between phases — and drives the
/// *same* fixed-point kernels as [`ldpc_core::FixedDecoder`]. The decoded
/// bits are therefore **bit-identical** to the reference decoder while the
/// cycle count matches [`ThroughputModel::frame_cycles`] exactly (both
/// facts are asserted by tests).
///
/// Frames are decoded in lock-step groups of `frames_per_word`, exactly as
/// the high-speed decoder packs eight frames in each memory word.
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_hwsim::{ArchConfig, ArchSimulator};
///
/// let code = demo_code();
/// let sim = ArchSimulator::new(ArchConfig::low_cost(), code.clone());
/// let frame = vec![8i16; code.n()];
/// let out = sim.decode(&[frame], 10);
/// assert!(out.results[0].hard_decision.is_zero());
/// assert!(out.cycles > 0);
/// ```
pub struct ArchSimulator {
    config: ArchConfig,
    code: Arc<LdpcCode>,
}

impl ArchSimulator {
    /// Creates a simulator for one configuration and code.
    pub fn new(config: ArchConfig, code: Arc<LdpcCode>) -> Self {
        Self { config, code }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// The code being decoded.
    pub fn code(&self) -> &Arc<LdpcCode> {
        &self.code
    }

    /// Simulates decoding of up to `frames_per_word` frames in lock step
    /// for a fixed number of iterations (the hardware has no early stop).
    ///
    /// Each frame is a slice of quantized channel LLRs within the
    /// configured channel quantizer range.
    ///
    /// # Panics
    ///
    /// Panics if no frames are supplied, more than `frames_per_word`
    /// frames are supplied, any frame length differs from the code length,
    /// any value exceeds the channel quantizer range, or `iterations`
    /// is zero.
    pub fn decode(&self, frames: &[Vec<i16>], iterations: u32) -> SimOutcome {
        assert!(!frames.is_empty(), "need at least one frame");
        assert!(
            frames.len() <= self.config.frames_per_word,
            "at most {} frames per word",
            self.config.frames_per_word
        );
        assert!(iterations > 0, "iteration count must be positive");
        let graph = self.code.graph();
        let n = graph.n_bits();
        let n_checks = graph.n_checks();
        let edges = graph.n_edges();
        let ch_max = self.config.fixed.channel_quantizer().max_level();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.len(), n, "frame {i} length mismatch");
            assert!(
                f.iter().all(|&c| (-ch_max..=ch_max).contains(&c)),
                "frame {i} value outside quantizer range"
            );
        }
        let msg_max = self.config.fixed.msg_max();
        let scaling = self.config.fixed.scaling;
        let n_frames = frames.len();

        // Per-frame message state (one lane per packed frame).
        let mut bc: Vec<Vec<i16>> = vec![vec![0; edges]; n_frames];
        let mut cb: Vec<Vec<i16>> = vec![vec![0; edges]; n_frames];
        let mut hard: Vec<Vec<u8>> = vec![vec![0; n]; n_frames];
        for (lane, frame) in frames.iter().enumerate() {
            for e in 0..edges {
                bc[lane][e] = saturate(i32::from(frame[graph.edge_bit(e)]), msg_max);
            }
        }

        let mut cycles: u64 = 0;
        let mut memory_reads: u64 = 0;
        let mut memory_writes: u64 = 0;
        if !self.config.io_overlap {
            // Load phase: one memory word (bn_parallelism LLRs) per cycle.
            cycles += (n as u64).div_ceil(self.config.bn_parallelism as u64);
        }
        for _ in 0..iterations {
            // --- Check-node phase: P_cn checks per cycle. ---
            let mut m = 0usize;
            while m < n_checks {
                let group_end = (m + self.config.cn_parallelism).min(n_checks);
                for check in m..group_end {
                    let range = graph.cn_edge_range(check);
                    let dc = range.len() as u64;
                    match self.config.storage {
                        MessageStorage::Direct => {
                            // Read dc message words, write dc message words.
                            memory_reads += dc;
                            memory_writes += dc;
                        }
                        MessageStorage::CompressedCn => {
                            // Read the CN record + dc posterior words;
                            // write one new record.
                            memory_reads += 1 + dc;
                            memory_writes += 1;
                        }
                    }
                    for lane in 0..n_frames {
                        let state = cn_scan(&bc[lane][range.clone()]);
                        for (idx, e) in range.clone().enumerate() {
                            cb[lane][e] = state.output(idx as u32, scaling);
                        }
                    }
                }
                cycles += 1;
                m = group_end;
            }
            cycles += self.config.cn_pipeline as u64;

            // --- Bit-node phase: P_bn bits per cycle. ---
            let mut b = 0usize;
            while b < n {
                let group_end = (b + self.config.bn_parallelism).min(n);
                for bit in b..group_end {
                    let bit_edges = graph.bn_edge_ids(bit);
                    let dv = bit_edges.len() as u64;
                    match self.config.storage {
                        MessageStorage::Direct => {
                            // Read dv messages + 1 channel word; write dv.
                            memory_reads += dv + 1;
                            memory_writes += dv;
                        }
                        MessageStorage::CompressedCn => {
                            // Read dv records (shared across the word) + 1
                            // channel word; write 1 posterior word.
                            memory_reads += dv + 1;
                            memory_writes += 1;
                        }
                    }
                    for lane in 0..n_frames {
                        let mut total: i32 = 0;
                        for &e in bit_edges {
                            total += i32::from(cb[lane][e as usize]);
                        }
                        let ch = frames[lane][bit];
                        for &e in bit_edges {
                            bc[lane][e as usize] =
                                bn_output(ch, total, cb[lane][e as usize], msg_max);
                        }
                        hard[lane][bit] = u8::from(bn_posterior(ch, total, i16::MAX) < 0);
                    }
                }
                cycles += 1;
                b = group_end;
            }
            cycles += self.config.bn_pipeline as u64;
        }
        if !self.config.io_overlap {
            // Store phase mirrors the load phase.
            cycles += (n as u64).div_ceil(self.config.bn_parallelism as u64);
        }

        let results = hard
            .into_iter()
            .map(|h| {
                let converged = graph.syndrome_ok(&h);
                DecodeResult {
                    hard_decision: BitVec::from_bits(&h),
                    iterations,
                    converged,
                }
            })
            .collect();
        SimOutcome {
            results,
            cycles,
            memory_reads,
            memory_writes,
        }
    }

    /// The throughput model corresponding to this simulator instance.
    pub fn throughput_model(&self, info_bits: usize) -> ThroughputModel {
        ThroughputModel::new(
            self.config.clone(),
            CodeDims::from_code(&self.code, info_bits),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_core::codes::small::demo_code;
    use ldpc_core::FixedDecoder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn demo_arch() -> ArchConfig {
        // Parallelism that does not divide the demo code's 62/248 evenly,
        // to exercise the ragged final groups.
        ArchConfig::low_cost().with_parallelism(4, 12)
    }

    fn random_frame(seed: u64, n: usize) -> Vec<i16> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-15i16..=15)).collect()
    }

    #[test]
    fn bit_exact_with_reference_fixed_decoder() {
        let code = demo_code();
        let cfg = demo_arch();
        let sim = ArchSimulator::new(cfg.clone(), code.clone());
        let mut reference = FixedDecoder::new(code.clone(), cfg.fixed);
        for seed in 0..10u64 {
            let frame = random_frame(seed, code.n());
            let sim_out = sim.decode(std::slice::from_ref(&frame), 12);
            let ref_out = reference.decode_quantized(&frame, 12);
            assert_eq!(
                sim_out.results[0], ref_out,
                "seed {seed}: simulator diverged from reference"
            );
        }
    }

    #[test]
    fn cycle_count_matches_throughput_model() {
        let code = demo_code();
        let sim = ArchSimulator::new(demo_arch(), code.clone());
        let model = sim.throughput_model(180);
        for iters in [1u32, 7, 18] {
            let out = sim.decode(&[vec![5i16; code.n()]], iters);
            assert_eq!(out.cycles, model.frame_cycles(iters), "iters {iters}");
        }
    }

    #[test]
    fn lockstep_frames_decode_independently() {
        let code = demo_code();
        let cfg = demo_arch().with_frames_per_word(4);
        let sim = ArchSimulator::new(cfg, code.clone());
        let frames: Vec<Vec<i16>> = (0..4).map(|s| random_frame(100 + s, code.n())).collect();
        let grouped = sim.decode(&frames, 10);
        for (i, frame) in frames.iter().enumerate() {
            let single = sim.decode(std::slice::from_ref(frame), 10);
            assert_eq!(grouped.results[i], single.results[0], "frame {i}");
        }
        // Same cycles regardless of how many lanes are filled.
        assert_eq!(grouped.cycles, sim.decode(&frames[..1], 10).cycles);
    }

    #[test]
    fn clean_frames_converge() {
        let code = demo_code();
        let sim = ArchSimulator::new(demo_arch(), code.clone());
        let out = sim.decode(&[vec![10i16; code.n()]], 5);
        assert!(out.results[0].converged);
        assert!(out.results[0].hard_decision.is_zero());
    }

    #[test]
    fn memory_traffic_counts_match_structure() {
        let code = demo_code();
        let sim = ArchSimulator::new(demo_arch(), code.clone());
        let out = sim.decode(&[vec![3i16; code.n()]], 1);
        let edges = code.graph().n_edges() as u64;
        let n = code.n() as u64;
        // Direct storage: CN phase reads+writes every edge once; BN phase
        // reads every edge + channel and writes every edge.
        assert_eq!(out.memory_reads, edges + (edges + n));
        assert_eq!(out.memory_writes, edges + edges);
    }

    #[test]
    fn compressed_storage_reduces_writes() {
        let code = demo_code();
        let direct = ArchSimulator::new(demo_arch(), code.clone());
        let compressed = ArchSimulator::new(
            demo_arch().with_storage(MessageStorage::CompressedCn),
            code.clone(),
        );
        let frame = vec![3i16; code.n()];
        let d = direct.decode(std::slice::from_ref(&frame), 4);
        let c = compressed.decode(std::slice::from_ref(&frame), 4);
        assert!(c.memory_writes < d.memory_writes);
        // Identical decoded bits regardless of storage strategy.
        assert_eq!(c.results, d.results);
    }

    #[test]
    fn non_overlapped_io_adds_cycles() {
        let code = demo_code();
        let base = demo_arch();
        let no_overlap = ArchConfig {
            io_overlap: false,
            ..base.clone()
        };
        let frame = vec![2i16; code.n()];
        let a = ArchSimulator::new(base, code.clone()).decode(std::slice::from_ref(&frame), 3);
        let b = ArchSimulator::new(no_overlap, code.clone()).decode(&[frame], 3);
        assert!(b.cycles > a.cycles);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_frames_rejected() {
        let code = demo_code();
        let sim = ArchSimulator::new(demo_arch(), code.clone());
        let frame = vec![0i16; code.n()];
        let _ = sim.decode(&[frame.clone(), frame], 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_frame_length_rejected() {
        let code = demo_code();
        let sim = ArchSimulator::new(demo_arch(), code);
        let _ = sim.decode(&[vec![0i16; 5]], 1);
    }
}
