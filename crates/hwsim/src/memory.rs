//! Memory planning: exact bit budgets of the architecture's storage layout.

use crate::{ArchConfig, CodeDims, MessageStorage};
use std::fmt;

/// One logical memory block of the architecture (paper Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryBank {
    /// Role of the bank (e.g. `"message memory"`).
    pub name: String,
    /// Number of addressable words.
    pub words: u64,
    /// Width of each word in bits (scales with frames per word).
    pub width_bits: u64,
}

impl MemoryBank {
    /// Total bits of the bank.
    pub fn bits(&self) -> u64 {
        self.words * self.width_bits
    }
}

/// The complete memory layout of one architecture configuration.
///
/// Memory bits are *exact arithmetic* from the storage layout, not
/// calibration: the low-cost plan reproduces the paper's ≈290 k bits and
/// the high-speed plan its ≈1300 kb (see DESIGN.md §9.4 and the tests
/// below).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPlan {
    banks: Vec<MemoryBank>,
}

impl MemoryPlan {
    /// Plans the memories for a configuration and code.
    pub fn new(config: &ArchConfig, dims: &CodeDims) -> Self {
        let f = config.frames_per_word as u64;
        let n = dims.n as u64;
        let checks = dims.n_checks as u64;
        let edges = dims.edges as u64;
        let q_msg = u64::from(config.fixed.q_msg);
        let q_ch = u64::from(config.fixed.q_ch);
        let q_app = u64::from(config.q_app);
        let mut banks = Vec::new();
        match config.storage {
            MessageStorage::Direct => {
                // Every edge message stored at full width.
                banks.push(MemoryBank {
                    name: "message memory".to_owned(),
                    words: edges,
                    width_bits: q_msg * f,
                });
                // Double-buffered input LLRs so loading overlaps decoding.
                let input_buffers = if config.io_overlap { 2 } else { 1 };
                banks.push(MemoryBank {
                    name: "input LLR memory".to_owned(),
                    words: input_buffers * n,
                    width_bits: q_ch * f,
                });
                banks.push(MemoryBank {
                    name: "output buffer".to_owned(),
                    words: n,
                    width_bits: f,
                });
            }
            MessageStorage::CompressedCn => {
                // Compressed CN record: two magnitudes, an argmin index and
                // one sign bit per edge of the check.
                let mag_bits = q_msg - 1;
                let argmin_bits = (dims.max_cn_degree as u64)
                    .next_power_of_two()
                    .trailing_zeros() as u64;
                let record = 2 * mag_bits + argmin_bits + dims.max_cn_degree as u64;
                banks.push(MemoryBank {
                    name: "check state memory".to_owned(),
                    words: checks,
                    width_bits: record * f,
                });
                // A-posteriori memory from which bit-to-check messages are
                // recomputed on the fly.
                banks.push(MemoryBank {
                    name: "posterior memory".to_owned(),
                    words: n,
                    width_bits: q_app * f,
                });
                // Single-buffered input: the posterior memory doubles as
                // the landing buffer during load.
                banks.push(MemoryBank {
                    name: "input LLR memory".to_owned(),
                    words: n,
                    width_bits: q_ch * f,
                });
                banks.push(MemoryBank {
                    name: "output buffer".to_owned(),
                    words: n,
                    width_bits: f,
                });
            }
        }
        Self { banks }
    }

    /// The individual banks.
    pub fn banks(&self) -> &[MemoryBank] {
        &self.banks
    }

    /// Total bits across all banks.
    pub fn total_bits(&self) -> u64 {
        self.banks.iter().map(MemoryBank::bits).sum()
    }
}

impl fmt::Display for MemoryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.banks {
            writeln!(
                f,
                "{:>22}: {:>7} x {:>3} b = {:>9} bits",
                b.name,
                b.words,
                b.width_bits,
                b.bits()
            )?;
        }
        write!(f, "{:>22}: {:>21} bits", "total", self.total_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArchConfig;

    #[test]
    fn low_cost_matches_paper_table_2_memory() {
        // Direct storage, C2 code:
        //   32704 x 6 + 2 x 8176 x 5 + 8176 = 286 160 bits ~ paper's "290k".
        let plan = MemoryPlan::new(&ArchConfig::low_cost(), &CodeDims::ccsds_c2());
        assert_eq!(plan.total_bits(), 286_160);
        // ~50% of the EP2C50's 594 432 bits, as Table 2 reports.
        let pct = 100.0 * plan.total_bits() as f64 / 594_432.0;
        assert!((pct - 50.0).abs() < 3.0, "memory {pct}%");
    }

    #[test]
    fn high_speed_matches_paper_table_3_memory() {
        // Compressed storage, 8 frames:
        //   CN state: 1022 x (2*5 + 5 + 32) x 8 = 384 272
        //   posterior: 8176 x 8 x 8          = 523 264
        //   input:     8176 x 5 x 8          = 327 040
        //   output:    8176 x 8              =  65 408
        //   total                            = 1 299 984 ~ paper's "1300kb".
        let plan = MemoryPlan::new(&ArchConfig::high_speed(), &CodeDims::ccsds_c2());
        assert_eq!(plan.total_bits(), 1_299_984);
    }

    #[test]
    fn compressed_storage_beats_direct_at_high_frame_counts() {
        let dims = CodeDims::ccsds_c2();
        let direct = MemoryPlan::new(
            &ArchConfig::high_speed().with_storage(MessageStorage::Direct),
            &dims,
        );
        let compressed = MemoryPlan::new(&ArchConfig::high_speed(), &dims);
        assert!(
            compressed.total_bits() < direct.total_bits(),
            "compressed {} >= direct {}",
            compressed.total_bits(),
            direct.total_bits()
        );
    }

    #[test]
    fn memory_scales_linearly_with_frames() {
        let dims = CodeDims::ccsds_c2();
        let one = MemoryPlan::new(&ArchConfig::high_speed().with_frames_per_word(1), &dims);
        let four = MemoryPlan::new(&ArchConfig::high_speed().with_frames_per_word(4), &dims);
        assert_eq!(4 * one.total_bits(), four.total_bits());
    }

    #[test]
    fn banks_enumerate_fig3_blocks() {
        let plan = MemoryPlan::new(&ArchConfig::low_cost(), &CodeDims::ccsds_c2());
        let names: Vec<&str> = plan.banks().iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"message memory"));
        assert!(names.contains(&"input LLR memory"));
        assert!(names.contains(&"output buffer"));
        let text = plan.to_string();
        assert!(text.contains("total"));
    }
}
