//! FPGA device capacity database and utilization reporting.

use crate::ResourceEstimate;
use std::fmt;

/// Capacity summary of an FPGA device, from vendor datasheets.
///
/// Altera Cyclone II counts logic elements (LEs); Stratix II counts ALUTs.
/// Both expose one register per logic cell, which is the convention the
/// paper's utilization percentages follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaDevice {
    /// Device name (e.g. `"EP2C50F"`).
    pub name: &'static str,
    /// Device family.
    pub family: &'static str,
    /// Logic cells (LEs or ALUTs).
    pub logic_cells: u64,
    /// Registers.
    pub registers: u64,
    /// Total embedded RAM bits.
    pub memory_bits: u64,
}

/// Altera Cyclone II EP2C50: 50 528 LEs, 594 432 RAM bits (datasheet).
/// The paper's low-cost decoder target (Table 2).
pub const CYCLONE_II_EP2C50: FpgaDevice = FpgaDevice {
    name: "EP2C50F",
    family: "Cyclone II",
    logic_cells: 50_528,
    registers: 50_528,
    memory_bits: 594_432,
};

/// Altera Cyclone II EP2C35: 33 216 LEs, 483 840 RAM bits (datasheet).
pub const CYCLONE_II_EP2C35: FpgaDevice = FpgaDevice {
    name: "EP2C35F",
    family: "Cyclone II",
    logic_cells: 33_216,
    registers: 33_216,
    memory_bits: 483_840,
};

/// Altera Stratix II EP2S180: 143 520 ALUTs, 9 383 040 RAM bits
/// (datasheet; M512 + M4K + M-RAM). The paper's high-speed decoder target
/// (Table 3). Note the paper's 20 % memory utilization implies a smaller
/// denominator (likely excluding M-RAM blocks); we report against the
/// full datasheet capacity and record the difference in EXPERIMENTS.md.
pub const STRATIX_II_EP2S180: FpgaDevice = FpgaDevice {
    name: "EP2S180",
    family: "Stratix II",
    logic_cells: 143_520,
    registers: 143_520,
    memory_bits: 9_383_040,
};

/// Altera Stratix II EP2S60: 48 352 ALUTs, 2 544 192 RAM bits (datasheet).
pub const STRATIX_II_EP2S60: FpgaDevice = FpgaDevice {
    name: "EP2S60",
    family: "Stratix II",
    logic_cells: 48_352,
    registers: 48_352,
    memory_bits: 2_544_192,
};

/// All devices known to the planner, smallest first per family.
pub fn devices() -> &'static [FpgaDevice] {
    &[
        CYCLONE_II_EP2C35,
        CYCLONE_II_EP2C50,
        STRATIX_II_EP2S60,
        STRATIX_II_EP2S180,
    ]
}

/// Percentage utilization of one device by one resource estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Logic-cell (ALUT/LE) utilization in percent.
    pub logic_pct: f64,
    /// Register utilization in percent.
    pub register_pct: f64,
    /// Embedded-memory utilization in percent.
    pub memory_pct: f64,
}

impl Utilization {
    /// `true` if every resource fits (≤ 100 %).
    pub fn fits(&self) -> bool {
        self.logic_pct <= 100.0 && self.register_pct <= 100.0 && self.memory_pct <= 100.0
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "logic {:.0}%, registers {:.0}%, memory {:.0}%",
            self.logic_pct, self.register_pct, self.memory_pct
        )
    }
}

impl FpgaDevice {
    /// Utilization of this device by the given estimate.
    pub fn utilization(&self, estimate: &ResourceEstimate) -> Utilization {
        Utilization {
            logic_pct: 100.0 * estimate.aluts as f64 / self.logic_cells as f64,
            register_pct: 100.0 * estimate.registers as f64 / self.registers as f64,
            memory_pct: 100.0 * estimate.memory_bits as f64 / self.memory_bits as f64,
        }
    }

    /// Returns `true` if the estimate fits on this device.
    pub fn fits(&self, estimate: &ResourceEstimate) -> bool {
        self.utilization(estimate).fits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_is_sane() {
        for d in devices() {
            assert!(d.logic_cells > 0);
            assert!(d.memory_bits > d.logic_cells);
        }
        assert_eq!(CYCLONE_II_EP2C50.memory_bits, 594_432);
        assert_eq!(STRATIX_II_EP2S180.logic_cells, 143_520);
    }

    #[test]
    fn utilization_math() {
        let est = ResourceEstimate {
            aluts: 25_264,
            registers: 12_632,
            memory_bits: 297_216,
        };
        let u = CYCLONE_II_EP2C50.utilization(&est);
        assert!((u.logic_pct - 50.0).abs() < 1e-9);
        assert!((u.register_pct - 25.0).abs() < 1e-9);
        assert!((u.memory_pct - 50.0).abs() < 1e-9);
        assert!(u.fits());
        assert!(CYCLONE_II_EP2C50.fits(&est));
    }

    #[test]
    fn overflow_detected() {
        let est = ResourceEstimate {
            aluts: 60_000,
            registers: 100,
            memory_bits: 100,
        };
        assert!(!CYCLONE_II_EP2C50.fits(&est));
        assert!(STRATIX_II_EP2S180.fits(&est));
    }

    #[test]
    fn display_formats() {
        let est = ResourceEstimate {
            aluts: 8_000,
            registers: 6_000,
            memory_bits: 286_160,
        };
        let text = CYCLONE_II_EP2C50.utilization(&est).to_string();
        assert!(text.contains("logic"));
        assert!(text.contains('%'));
    }
}
