//! Property-based tests of the architecture models: for arbitrary (sane)
//! configurations, the throughput model, memory plan, simulator and
//! reference decoder must stay mutually consistent.

use ldpc_core::codes::small::demo_code;
use ldpc_core::FixedDecoder;
use ldpc_hwsim::{
    ArchConfig, ArchSimulator, CodeDims, MemoryPlan, MessageStorage, ThroughputModel,
};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = ArchConfig> {
    (
        1usize..=8,                                        // cn parallelism
        prop::sample::select(vec![4usize, 8, 12, 16, 31]), // bn parallelism
        1usize..=8,                                        // frames per word
        prop::bool::ANY,                                   // storage
        prop::bool::ANY,                                   // io overlap
        0usize..=64,                                       // pipeline depth
    )
        .prop_map(|(cn, bn, frames, compressed, io_overlap, pipe)| {
            let mut cfg = ArchConfig::low_cost()
                .with_parallelism(cn, bn)
                .with_frames_per_word(frames)
                .with_storage(if compressed {
                    MessageStorage::CompressedCn
                } else {
                    MessageStorage::Direct
                });
            cfg.io_overlap = io_overlap;
            cfg.cn_pipeline = pipe;
            cfg.bn_pipeline = pipe;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulator's cycle count always equals the analytic model.
    #[test]
    fn simulator_and_model_agree_on_cycles(cfg in arb_config(), iters in 1u32..6) {
        let code = demo_code();
        let sim = ArchSimulator::new(cfg.clone(), code.clone());
        let model = ThroughputModel::new(cfg, CodeDims::from_code(&code, 180));
        let frame = vec![5i16; code.n()];
        let out = sim.decode(&[frame], iters);
        prop_assert_eq!(out.cycles, model.frame_cycles(iters));
    }

    /// The simulator is bit-exact with the reference fixed decoder for any
    /// schedule parameters (parallelism cannot change arithmetic).
    #[test]
    fn simulator_bit_exact_for_any_parallelism(cfg in arb_config(), seed in 0u64..50) {
        let code = demo_code();
        let sim = ArchSimulator::new(cfg.clone(), code.clone());
        let mut reference = FixedDecoder::new(code.clone(), cfg.fixed);
        // Deterministic pseudo-noise within the 5-bit channel range.
        let frame: Vec<i16> = (0..code.n())
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed);
                ((x >> 32) % 31) as i16 - 15
            })
            .collect();
        let sim_out = sim.decode(std::slice::from_ref(&frame), 6);
        let ref_out = reference.decode_quantized(&frame, 6);
        prop_assert_eq!(&sim_out.results[0], &ref_out);
    }

    /// Throughput is inversely proportional to iterations when I/O
    /// overlaps, and memory bits scale linearly with frame packing.
    #[test]
    fn model_scaling_laws(cfg in arb_config()) {
        let dims = CodeDims::ccsds_c2();
        let model = ThroughputModel::new(cfg.clone(), dims);
        let t2 = model.info_throughput_mbps(2);
        let t4 = model.info_throughput_mbps(4);
        if cfg.io_overlap {
            prop_assert!((t2 / t4 - 2.0).abs() < 1e-9);
        } else {
            prop_assert!(t2 / t4 < 2.0); // fixed I/O cost amortizes
        }
        let one = MemoryPlan::new(&cfg.clone().with_frames_per_word(1), &dims).total_bits();
        let f = cfg.frames_per_word as u64;
        let many = MemoryPlan::new(&cfg, &dims).total_bits();
        prop_assert_eq!(one * f, many);
    }

    /// More packed frames never reduce throughput; compressed storage
    /// never uses more memory than direct at 8+ frames.
    #[test]
    fn packing_monotonicity(cfg in arb_config()) {
        let dims = CodeDims::ccsds_c2();
        let low = ThroughputModel::new(cfg.clone().with_frames_per_word(1), dims)
            .info_throughput_mbps(10);
        let high = ThroughputModel::new(cfg.clone().with_frames_per_word(8), dims)
            .info_throughput_mbps(10);
        prop_assert!(high >= low * 7.9);
    }
}
