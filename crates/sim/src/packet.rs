//! The packet-loss workload: frames split into fixed-size packets,
//! packets dropped by the scenario's erasure/burst process, survivors
//! reassembled into zero-LLR-filled decoder input.
//!
//! Deep-space telemetry is framed: a codeword leaves the spacecraft as a
//! sequence of link-layer packets, and a fade or a synchronization loss
//! takes out *whole packets*, not individual symbols. This module models
//! that regime on top of the one Monte-Carlo engine:
//!
//! 1. the codeword is transmitted through an inner symbol channel
//!    (intact delivery for the loss-only channels, the spec-built
//!    channel otherwise);
//! 2. the LLR stream is split into packets of `packet_symbols` symbols
//!    (the final packet may be shorter when the length does not divide);
//! 3. a packet-granular drop process — derived from the scenario's
//!    channel spec by [`PacketDropModel::from_spec`] — erases whole
//!    packets by zeroing their LLRs;
//! 4. the surviving symbols go to the decoder unchanged.
//!
//! A zero-LLR symbol is exactly the erasure convention of
//! [`ErasureChannel`](ldpc_channel::ErasureChannel), so every decoder in
//! the registry accepts the reassembled input, and the peeling decoder
//! (`peeling`) treats dropped packets as the erasures they are.
//!
//! The workload is a *wrapper*, not a second engine:
//! [`run_point_packets`] drives the same worker loop, worker-seed
//! derivation, and error counting as
//! [`run_point_scenario`](crate::run_point_scenario). A drop model of
//! [`PacketDropModel::Never`] consumes no randomness at all, so a
//! packet-level run that drops nothing is bit-identical to the plain
//! channel path (pinned by tests here and in the golden-vector suite).

use crate::{run_point_engine_with, MonteCarloConfig, PointResult, Scenario, ScenarioError};
use gf2::BitVec;
use ldpc_channel::{Channel, ChannelKind, ERASURE_KNOWN_LLR};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Seed perturbation separating the packet-drop stream from the inner
/// channel's noise stream, so adding the wrapper never disturbs the
/// symbols the survivors carry.
const DROP_SEED_XOR: u64 = 0x9ACC_E77E_D00D_5EED;

/// How the packet-drop process decides each packet's fate.
///
/// Derived from a scenario's channel spec by [`Self::from_spec`]: the
/// loss-only channel families become packet-granular drop processes,
/// every other family keeps its symbol-level noise and drops nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketDropModel {
    /// No packet is ever dropped (and no randomness is consumed), so the
    /// packet path reproduces the plain channel path bit for bit.
    Never,
    /// Each packet is dropped independently with probability `p` — the
    /// packet-granular reading of `erasure:p`.
    Iid {
        /// Per-packet drop probability in (0, 1).
        p: f64,
    },
    /// A two-state Gilbert-Elliott process at packet granularity — the
    /// packet-granular reading of `burst:p_good,p_bad,p_switch`. The
    /// state toggles with probability `p_switch` per packet and the
    /// current state's probability decides the drop, so losses cluster.
    Burst {
        /// Drop probability while in the good state.
        p_good: f64,
        /// Drop probability while in the bad state.
        p_bad: f64,
        /// Per-packet probability of toggling between the states.
        p_switch: f64,
    },
}

impl PacketDropModel {
    /// Maps a channel spec to its packet-granular drop process:
    /// `erasure:p` → [`Iid`](Self::Iid), `burst:…` →
    /// [`Burst`](Self::Burst), anything else →
    /// [`Never`](Self::Never).
    pub fn from_spec(spec: &ldpc_channel::ChannelSpec) -> Self {
        match spec.kind {
            ChannelKind::Erasure { p } => Self::Iid { p },
            ChannelKind::Burst {
                p_good,
                p_bad,
                p_switch,
            } => Self::Burst {
                p_good,
                p_bad,
                p_switch,
            },
            _ => Self::Never,
        }
    }
}

/// Shared packet counters, aggregated across every worker's
/// [`PacketChannel`] clone of one run.
#[derive(Debug, Default)]
pub struct PacketStats {
    sent: AtomicU64,
    dropped: AtomicU64,
}

impl PacketStats {
    /// Snapshot of the counters as a [`PacketLossReport`].
    pub fn report(&self) -> PacketLossReport {
        PacketLossReport {
            packets: self.sent.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// Packet accounting of one packet-level run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketLossReport {
    /// Packets transmitted (every packet of every frame).
    pub packets: u64,
    /// Packets dropped by the loss process.
    pub dropped: u64,
}

impl PacketLossReport {
    /// Fraction of packets lost; [`f64::NAN`] when nothing was sent (a
    /// never-run workload must not masquerade as a lossless one).
    pub fn loss_rate(&self) -> f64 {
        if self.packets == 0 {
            return f64::NAN;
        }
        self.dropped as f64 / self.packets as f64
    }
}

/// Intact symbol delivery: every surviving symbol arrives with the full
/// known-symbol confidence [`ERASURE_KNOWN_LLR`], signed by the
/// transmitted bit. The loss-only channel families use this as the
/// inner channel so the packet drop process is the *only* impairment.
struct IntactChannel;

impl Channel for IntactChannel {
    fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        (0..codeword.len())
            .map(|i| {
                if codeword.get(i) {
                    -ERASURE_KNOWN_LLR
                } else {
                    ERASURE_KNOWN_LLR
                }
            })
            .collect()
    }
}

/// A [`Channel`] adapter that transmits through an inner channel, then
/// erases whole packets of the LLR stream according to a
/// [`PacketDropModel`].
///
/// The drop process draws from its own seeded stream, disjoint from the
/// inner channel's, and [`PacketDropModel::Never`] draws nothing — so
/// the wrapper composes with any inner channel without perturbing its
/// output. Markov drop state persists across frames, like the
/// symbol-level [`GilbertElliottChannel`](ldpc_channel::GilbertElliottChannel).
pub struct PacketChannel {
    inner: Box<dyn Channel>,
    packet_symbols: usize,
    drop: PacketDropModel,
    in_bad_state: bool,
    rng: StdRng,
    stats: Arc<PacketStats>,
}

impl PacketChannel {
    /// Wraps `inner`, splitting each transmission into packets of
    /// `packet_symbols` symbols and dropping them per `drop`, counting
    /// into `stats`.
    ///
    /// # Panics
    ///
    /// Panics if `packet_symbols` is zero.
    pub fn new(
        inner: Box<dyn Channel>,
        packet_symbols: usize,
        drop: PacketDropModel,
        seed: u64,
        stats: Arc<PacketStats>,
    ) -> Self {
        assert!(packet_symbols > 0, "packet size must be positive");
        Self {
            inner,
            packet_symbols,
            drop,
            in_bad_state: false,
            rng: StdRng::seed_from_u64(seed ^ DROP_SEED_XOR),
            stats,
        }
    }
}

impl Channel for PacketChannel {
    fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        let mut llrs = self.inner.transmit_codeword(codeword);
        let mut sent = 0u64;
        let mut dropped = 0u64;
        for packet in llrs.chunks_mut(self.packet_symbols) {
            sent += 1;
            let lost = match self.drop {
                PacketDropModel::Never => false,
                PacketDropModel::Iid { p } => self.rng.gen_bool(p),
                PacketDropModel::Burst {
                    p_good,
                    p_bad,
                    p_switch,
                } => {
                    if self.rng.gen_bool(p_switch) {
                        self.in_bad_state = !self.in_bad_state;
                    }
                    self.rng
                        .gen_bool(if self.in_bad_state { p_bad } else { p_good })
                }
            };
            if lost {
                dropped += 1;
                packet.fill(0.0);
            }
        }
        self.stats.sent.fetch_add(sent, Ordering::Relaxed);
        self.stats.dropped.fetch_add(dropped, Ordering::Relaxed);
        llrs
    }
}

/// Simulates one operating point of a [`Scenario`] under the
/// packet-loss workload, returning the error counts alongside the
/// packet accounting.
///
/// The scenario's channel spec plays a double role: it derives the
/// packet drop process ([`PacketDropModel::from_spec`]), and for the
/// families that are *not* loss processes (`awgn`, `bsc`, `rayleigh`,
/// quantized or not) it still builds the inner symbol channel — so a
/// packetized `awgn` run drops nothing and reproduces
/// [`run_point_scenario`](crate::run_point_scenario) bit for bit, while
/// `erasure:p` / `burst:…` runs deliver survivors intact and lose whole
/// packets.
///
/// Seeding, worker derivation, and error counting are those of the one
/// engine; the packet wrapper's drop stream is seeded disjointly from
/// the symbol stream.
///
/// # Errors
///
/// Returns [`ScenarioError::Code`] if the code spec cannot be built.
///
/// # Panics
///
/// Panics if `packet_symbols` is zero, `cfg.max_frames` is zero, or
/// `cfg.transmission` is [`Transmission::Random`](crate::Transmission::Random)
/// for a code that does not transmit every position.
pub fn run_point_packets(
    scenario: &Scenario,
    packet_symbols: usize,
    cfg: &MonteCarloConfig,
) -> Result<(PointResult, PacketLossReport), ScenarioError> {
    assert!(packet_symbols > 0, "packet size must be positive");
    let handle = scenario.build_code()?;
    let positions = handle.transmitted_positions();
    let rate = handle.rate();
    let drop = PacketDropModel::from_spec(&scenario.channel);
    let stats = Arc::new(PacketStats::default());
    let point = run_point_engine_with(
        handle.as_ref(),
        None,
        &positions,
        &|worker_seed| {
            let inner: Box<dyn Channel> = match drop {
                // Loss-only families: the drop process is the channel;
                // survivors arrive intact.
                PacketDropModel::Iid { .. } | PacketDropModel::Burst { .. } => {
                    Box::new(IntactChannel)
                }
                // Symbol-noise families keep their spec-built channel on
                // the same worker seed as the plain path.
                PacketDropModel::Never => scenario.channel.build(cfg.ebn0_db, rate, worker_seed),
            };
            Box::new(PacketChannel::new(
                inner,
                packet_symbols,
                drop,
                worker_seed,
                Arc::clone(&stats),
            ))
        },
        cfg,
        || scenario.decoder.build(handle.code()),
        None,
    );
    Ok((point, stats.report()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_point_scenario, Transmission};

    fn quick_cfg(threads: usize) -> MonteCarloConfig {
        MonteCarloConfig {
            ebn0_db: 3.0,
            max_frames: 150,
            target_frame_errors: 0,
            max_iterations: 30,
            seed: 21,
            threads,
            transmission: Transmission::AllZero,
        }
    }

    #[test]
    fn zero_drop_packet_path_is_bit_identical_to_the_plain_path() {
        // The load-bearing pin: a symbol-noise channel drops no packets,
        // so the packet door must reproduce the scenario door exactly.
        // Exact equality is pinned single-threaded only — with racing
        // workers the claim split (and therefore which worker's RNG
        // stream serves each frame) is scheduling-dependent, so two
        // separate multi-threaded runs need not see the same noise.
        for s in ["demo / awgn / nms:1.25", "demo / bsc:0.03 / fixed"] {
            let sc = Scenario::parse(s).unwrap();
            let cfg = quick_cfg(1);
            let plain = run_point_scenario(&sc, &cfg).unwrap();
            let (packetized, report) = run_point_packets(&sc, 32, &cfg).unwrap();
            assert_eq!(packetized, plain, "{s}");
            assert_eq!(report.dropped, 0, "{s}");
            // demo n=248 → 8 packets of ≤32 symbols per frame.
            assert_eq!(report.packets, 150 * 8, "{s}");
        }
    }

    #[test]
    fn zero_drop_packet_path_holds_its_invariants_multithreaded() {
        // Multi-threaded, only the scheduling-independent facts are
        // pinned: a symbol-noise channel never drops a packet, every
        // frame is simulated, and the packet count is exact.
        let sc = Scenario::parse("demo / bsc:0.03 / fixed").unwrap();
        let (point, report) = run_point_packets(&sc, 32, &quick_cfg(2)).unwrap();
        assert_eq!(point.frames, 150);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.packets, 150 * 8);
    }

    #[test]
    fn erasure_workload_drops_packets_at_the_specified_rate() {
        let sc = Scenario::parse("demo / erasure:0.1 / peeling").unwrap();
        let (_, report) = run_point_packets(&sc, 31, &quick_cfg(1)).unwrap();
        assert!(report.packets > 0);
        let rate = report.loss_rate();
        assert!(
            (rate - 0.1).abs() < 0.03,
            "loss rate {rate} far from erasure:0.1"
        );
    }

    #[test]
    fn peeling_recovers_frames_below_the_erasure_threshold() {
        // demo code: rate 0.75, so up to ~25% erasures are information-
        // theoretically recoverable; 5% packet loss sits well below the
        // peeling threshold and every frame must come back.
        let sc = Scenario::parse("demo / erasure:0.05 / peeling").unwrap();
        let (point, report) = run_point_packets(&sc, 8, &quick_cfg(2)).unwrap();
        assert!(report.dropped > 0, "workload dropped nothing");
        assert_eq!(point.frames, 150);
        assert_eq!(point.frame_errors, 0, "per={}", point.per());
    }

    #[test]
    fn burst_workload_clusters_losses_and_state_persists_across_frames() {
        // Slow chain, harsh bad state: losses must arrive far more
        // bursty than an iid process of the same average rate would.
        let sc = Scenario::parse("demo / burst:0.001,0.45,0.02 / peeling").unwrap();
        let cfg = MonteCarloConfig {
            max_frames: 400,
            ..quick_cfg(1)
        };
        let (_, report) = run_point_packets(&sc, 8, &cfg).unwrap();
        let rate = report.loss_rate();
        // Stationary mean (0.001 + 0.45)/2 ≈ 0.23, generously bracketed:
        // a 400-frame run sees only ~250 sojourns of the slow chain.
        assert!(
            (0.1..0.36).contains(&rate),
            "loss rate {rate} incompatible with the burst process"
        );
    }

    #[test]
    fn partial_final_packet_is_handled() {
        // demo n=248 = 3×80 + 8: the final packet of each frame is short.
        let sc = Scenario::parse("demo / erasure:0.1 / peeling").unwrap();
        let cfg = MonteCarloConfig {
            max_frames: 50,
            ..quick_cfg(1)
        };
        let (point, report) = run_point_packets(&sc, 80, &cfg).unwrap();
        assert_eq!(point.frames, 50);
        assert_eq!(report.packets, 50 * 4);
    }

    #[test]
    fn packet_runs_are_reproducible() {
        for s in [
            "demo / erasure:0.08 / peeling",
            "demo / burst:0.01,0.3,0.05 / nms:1.25",
        ] {
            let sc = Scenario::parse(s).unwrap();
            let cfg = quick_cfg(1);
            let (a, ra) = run_point_packets(&sc, 16, &cfg).unwrap();
            let (b, rb) = run_point_packets(&sc, 16, &cfg).unwrap();
            assert_eq!(a, b, "{s}");
            assert_eq!(ra, rb, "{s}");
        }
    }

    #[test]
    fn loss_report_of_an_empty_run_is_nan_not_zero() {
        let report = PacketLossReport {
            packets: 0,
            dropped: 0,
        };
        assert!(report.loss_rate().is_nan());
    }

    #[test]
    #[should_panic(expected = "packet size")]
    fn zero_packet_size_panics() {
        let sc = Scenario::parse("demo / erasure:0.1 / peeling").unwrap();
        let _ = run_point_packets(&sc, 0, &quick_cfg(1));
    }
}
