//! Multithreaded Monte-Carlo BER/PER evaluation (paper §5, Figure 4).
//!
//! The paper evaluates its decoder by simulating frames over a BPSK/AWGN
//! channel and counting bit and packet (frame) errors versus Eb/N0. This
//! crate is that harness — **one engine**, several doors:
//!
//! * [`MonteCarloConfig`] — one operating point: Eb/N0, iteration budget,
//!   stopping rules, seeding, thread count;
//! * [`Scenario`] — the fully declarative front door: one string names
//!   the code, the channel, and the decoder
//!   (`"c2 / awgn / nms:1.25"`, `"ar4ja:r=2/3 / bsc:0.02 / fixed"`), and
//!   [`run_point_scenario`] / [`run_curve_scenario`] simulate it;
//! * [`run_point_spec`] — any decoder named by a [`DecoderSpec`]
//!   (`"nms:1.25@batch=8"`, `"gallager-b@bitslice"`, …) over an explicit
//!   code, on the default AWGN channel;
//! * [`run_point_blocks`] — the same engine with an explicit
//!   [`BlockDecoder`] factory, for configurations the spec grammar does
//!   not cover (alpha schedules, custom quantization);
//! * [`run_curve_spec`] / [`run_curve_blocks`] — sweep a list of Eb/N0
//!   points (Figure 4's x-axis);
//! * [`run_sweep`] — the orchestrated door: a grid of (scenario, Eb/N0)
//!   units ([`sweep_grid`]) chunked over a work-stealing worker pool
//!   with adaptive per-point stopping (run to a frame-error target or a
//!   cap) and a content-addressed on-disk cache ([`SweepConfig`]) that
//!   makes re-runs and budget extensions incremental;
//! * [`run_point_packets`] — the packet-loss workload: frames leave as
//!   fixed-size packets, the scenario's `erasure`/`burst` channel drops
//!   whole packets, and survivors reassemble into zero-LLR-filled
//!   decoder input (dropping nothing reproduces the plain path bit for
//!   bit);
//! * [`PointResult`] — error counts with BER/PER accessors and Wilson
//!   confidence intervals; [`to_csv`] renders a sweep for plotting.
//!
//! Every door funnels into the same worker loop, which is generic over
//! the code's transmission profile ([`CodeHandle`]) and the channel
//! model ([`ChannelSpec`]) — AWGN is the default, not a hardcode.
//!
//! The historical per-API entry points [`run_point`],
//! [`run_point_batched`], [`run_point_bitsliced`], and [`run_curve`]
//! remain as thin deprecated shims over the same engine; their counts
//! are bit-identical to the corresponding spec-driven runs (pinned by
//! tests). Each shim's documentation names the exact [`run_point_spec`]
//! call that reproduces it.
//!
//! # Example
//!
//! ```
//! use ldpc_core::codes::small::demo_code;
//! use ldpc_core::DecoderSpec;
//! use ldpc_sim::{run_point_spec, MonteCarloConfig, Transmission};
//!
//! let code = demo_code();
//! let cfg = MonteCarloConfig {
//!     ebn0_db: 7.0,
//!     max_frames: 200,
//!     target_frame_errors: 10,
//!     max_iterations: 20,
//!     seed: 1,
//!     threads: 2,
//!     transmission: Transmission::AllZero,
//! };
//! let spec = DecoderSpec::parse("nms:1.25@batch=8")?;
//! let point = run_point_spec(&code, None, &cfg, &spec);
//! assert!(point.frames > 0);
//! assert!(point.ber() <= 1.0);
//! # Ok::<(), ldpc_core::SpecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gain;
mod orchestrator;
mod packet;
mod scenario;

pub use gain::{ebn0_at_per, gain_db, ThresholdResult};
pub use orchestrator::{
    chunk_key, run_sweep, sha256_hex, sweep_grid, SweepConfig, SweepError, SweepUnit,
    SweepUnitResult,
};
pub use packet::{
    run_point_packets, PacketChannel, PacketDropModel, PacketLossReport, PacketStats,
};
pub use scenario::{
    run_curve_scenario, run_curve_scenario_with, run_point_scenario, run_point_scenario_with,
    split_spec_list, Scenario, ScenarioError,
};

use gf2::BitVec;
use ldpc_channel::ChannelSpec;
use ldpc_core::{
    BatchDecoder, Batched, BlockDecoder, CodeHandle, Decoder, DecoderSpec, Encoder, LdpcCode,
    PerFrame, PlainCode,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What is transmitted in each simulated frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmission {
    /// The all-zero codeword (valid for any linear code; standard practice
    /// for symmetric channels and much faster — no encoder needed).
    AllZero,
    /// A fresh uniformly random message, encoded per frame. Requires an
    /// [`Encoder`] and additionally verifies the encoder/decoder pair
    /// end to end.
    Random,
}

/// Configuration of one Monte-Carlo operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloConfig {
    /// Channel Eb/N0 in dB (converted with the code's actual rate).
    pub ebn0_db: f64,
    /// Hard cap on simulated frames.
    pub max_frames: u64,
    /// Stop once this many frame errors are observed (0 = never stop
    /// early; statistical accuracy is then governed by `max_frames`).
    pub target_frame_errors: u64,
    /// Decoder iteration budget per frame.
    pub max_iterations: u32,
    /// Base seed; worker `t` derives its noise stream from `seed` and `t`.
    pub seed: u64,
    /// Worker threads (0 = use available parallelism).
    pub threads: usize,
    /// Frame content.
    pub transmission: Transmission,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self {
            ebn0_db: 4.0,
            max_frames: 1_000,
            target_frame_errors: 50,
            max_iterations: 18,
            seed: 0xCC5D5,
            threads: 0,
            transmission: Transmission::AllZero,
        }
    }
}

/// Accumulated statistics of one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointResult {
    /// Eb/N0 of the point in dB.
    pub ebn0_db: f64,
    /// Frames simulated.
    pub frames: u64,
    /// Information-bit errors.
    pub bit_errors: u64,
    /// Frames with at least one information-bit error.
    pub frame_errors: u64,
    /// Frames the decoder *converged* on (zero syndrome) that were still
    /// wrong — undetected errors, relevant to the paper's error-floor
    /// discussion.
    pub undetected_frame_errors: u64,
    /// Total decoder iterations across all frames.
    pub total_iterations: u64,
    /// Information bits counted per frame.
    pub info_bits_per_frame: u64,
}

impl PointResult {
    /// Information bit-error rate.
    ///
    /// [`f64::NAN`] when no frame was simulated — a never-run point must
    /// not masquerade as a genuinely error-free one (`0/N` and `0/0` are
    /// different claims; [`to_csv`] renders the latter as an empty field).
    pub fn ber(&self) -> f64 {
        if self.frames == 0 {
            return f64::NAN;
        }
        self.bit_errors as f64 / (self.frames * self.info_bits_per_frame) as f64
    }

    /// Packet (frame) error rate — the paper's PER.
    ///
    /// [`f64::NAN`] when no frame was simulated (see [`ber`](Self::ber)).
    pub fn per(&self) -> f64 {
        if self.frames == 0 {
            return f64::NAN;
        }
        self.frame_errors as f64 / self.frames as f64
    }

    /// Mean decoder iterations per frame.
    ///
    /// [`f64::NAN`] when no frame was simulated (see [`ber`](Self::ber)).
    pub fn avg_iterations(&self) -> f64 {
        if self.frames == 0 {
            return f64::NAN;
        }
        self.total_iterations as f64 / self.frames as f64
    }

    /// 95 % Wilson confidence interval on the frame-error rate.
    pub fn per_confidence(&self) -> (f64, f64) {
        wilson_interval(self.frame_errors, self.frames, 1.96)
    }

    /// 95 % Wilson confidence interval on the bit-error rate.
    pub fn ber_confidence(&self) -> (f64, f64) {
        wilson_interval(
            self.bit_errors,
            self.frames * self.info_bits_per_frame,
            1.96,
        )
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)`; for zero trials returns `(0, 1)`.
///
/// ```
/// let (lo, hi) = ldpc_sim::wilson_interval(5, 100, 1.96);
/// assert!(lo > 0.0 && lo < 0.05 && hi > 0.05 && hi < 0.2);
/// ```
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Simulates one Eb/N0 point with any decoder named by a
/// [`DecoderSpec`] — the declarative front door of the engine.
///
/// One decoder is built per worker thread via
/// [`DecoderSpec::build`]. The engine claims frames in blocks of the
/// decoder's preferred granularity
/// ([`BlockDecoder::block_frames`]): 1 for scalar families, the batch
/// capacity for `@batch=N`, 64 for `@bitslice`. Because the packed
/// mirrors are bit-exact against their scalar references, a
/// single-threaded run with `target_frame_errors == 0` produces counts
/// that depend only on the family, not on the packing (pinned by tests).
///
/// For [`Transmission::Random`] an encoder is required; with
/// [`Transmission::AllZero`] pass `None`. Information-bit errors are
/// counted over the encoder's systematic information positions when an
/// encoder is given, or over all code bits otherwise.
///
/// # Panics
///
/// Panics if `max_frames == 0`, if `Transmission::Random` is requested
/// without an encoder, or if the spec is invalid (a parsed spec never
/// is).
pub fn run_point_spec(
    code: &Arc<LdpcCode>,
    encoder: Option<&Arc<Encoder>>,
    cfg: &MonteCarloConfig,
    spec: &DecoderSpec,
) -> PointResult {
    run_point_blocks(code, encoder, cfg, || spec.build(code))
}

/// Simulates one Eb/N0 point, spreading frames over worker threads.
///
/// Thin deprecated shim over [`run_point_blocks`] with a per-frame
/// [`PerFrame`] adapter: counts are bit-identical to the historical
/// per-frame engine (block size 1).
///
/// # Replacement
///
/// Name the decoder your factory builds as a spec string and call
/// [`run_point_spec`] — the counts are bit-identical. For example,
///
/// ```
/// # use ldpc_core::codes::small::demo_code;
/// # use ldpc_core::{DecoderSpec, MinSumConfig, MinSumDecoder};
/// # use ldpc_sim::{run_point, run_point_spec, MonteCarloConfig};
/// # let code = demo_code();
/// # let cfg = MonteCarloConfig { max_frames: 20, threads: 1, ..MonteCarloConfig::default() };
/// # #[allow(deprecated)]
/// let old = run_point(&code, None, &cfg, || {
///     MinSumDecoder::new(demo_code(), MinSumConfig::normalized(1.25))
/// });
/// let new = run_point_spec(&code, None, &cfg, &DecoderSpec::parse("nms:1.25")?);
/// assert_eq!(old, new);
/// # Ok::<(), ldpc_core::SpecError>(())
/// ```
///
/// The spec strings for the other families: `SumProductDecoder` → `spa`,
/// plain `MinSumDecoder` → `ms`, offset → `oms:β`, `FixedDecoder` →
/// `fixed`, `LayeredMinSumDecoder` → `layered:α`,
/// `SelfCorrectedMinSumDecoder` → `self-corrected:α`,
/// `GallagerBDecoder` → `gallager-b:t=N`, `WeightedBitFlipDecoder` →
/// `wbf`. Configurations outside the grammar (alpha schedules, custom
/// quantization) keep using [`run_point_blocks`] with an explicit
/// factory.
///
/// # Panics
///
/// Panics if `max_frames == 0`, or if `Transmission::Random` is requested
/// without an encoder.
#[deprecated(
    since = "0.1.0",
    note = "use run_point_spec(&code, enc, &cfg, &DecoderSpec::parse(\"nms:1.25\")?) — \
            see the doc table for the spec string of each decoder type — \
            or run_point_blocks for configurations outside the grammar"
)]
pub fn run_point<F, D>(
    code: &Arc<LdpcCode>,
    encoder: Option<&Arc<Encoder>>,
    cfg: &MonteCarloConfig,
    factory: F,
) -> PointResult
where
    F: Fn() -> D + Sync,
    D: Decoder,
{
    run_point_blocks(code, encoder, cfg, || PerFrame::new(factory()))
}

/// The one Monte-Carlo engine: workers claim
/// [`block_frames`](BlockDecoder::block_frames) frames at a time from a
/// shared counter, generate them from deterministic per-worker noise
/// streams, decode through the object-safe [`BlockDecoder`] front door,
/// and accumulate error counts.
///
/// `factory` builds one decoder per worker (decoders are stateful
/// workspaces and not shared); use [`PerFrame`] / [`Batched`] to adapt
/// per-frame and batch decoders that are not registry-built. Every other
/// `run_point*` entry — including the scenario door with its non-AWGN
/// channels and punctured/shortened codes — is a thin wrapper over the
/// same engine loop, so seed derivation and error counting are identical
/// by construction across all of them.
///
/// # Panics
///
/// Panics if `max_frames == 0`, or if `Transmission::Random` is requested
/// without an encoder.
pub fn run_point_blocks<F, B>(
    code: &Arc<LdpcCode>,
    encoder: Option<&Arc<Encoder>>,
    cfg: &MonteCarloConfig,
    factory: F,
) -> PointResult
where
    F: Fn() -> B + Sync,
    B: BlockDecoder,
{
    if cfg.transmission == Transmission::Random {
        assert!(encoder.is_some(), "random transmission requires an encoder");
    }
    let handle = PlainCode::new(Arc::clone(code));
    // Error counting positions: systematic info bits if we know them.
    let info_positions: Vec<u32> = match encoder {
        Some(enc) => enc.info_positions().to_vec(),
        None => (0..code.n() as u32).collect(),
    };
    run_point_engine(
        &handle,
        encoder,
        &info_positions,
        &ChannelSpec::awgn(),
        cfg,
        factory,
        None,
    )
}

/// Seed offset between consecutive curve points (`run_curve_*` and the
/// sweep orchestrator derive point `i`'s seed as
/// `base.seed + i * CURVE_SEED_STRIDE`).
pub(crate) const CURVE_SEED_STRIDE: u64 = 0x5151_5151;

/// Seed offset between the engine's per-worker noise streams (worker
/// `t` of a point seeded `s` draws from `s + (t + 1) * WORKER_SEED_STRIDE`).
/// The orchestrator reuses the same stride for its chunk streams, so
/// chunk `c` (always single-threaded) draws exactly the stream worker
/// `t = c` of a multithreaded run of the same point would.
pub(crate) const WORKER_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The shared worker loop behind every `run_point*` door, generic over
/// the code's transmission profile and the channel model.
///
/// Per worker `t`: a deterministic seed is derived from `cfg.seed`, the
/// channel is built from `channel_spec` at the operating point
/// (`cfg.ebn0_db`, `handle.rate()`), and frames are claimed in blocks of
/// the decoder's preferred granularity. Each frame's transmitted bits go
/// through the channel; the received LLRs are expanded back to
/// full-length decoder input by the handle (identity for plain codes,
/// known-bit certainty for shortened positions, erasures for punctured
/// ones). Errors are counted over `count_positions`.
///
/// `progress` (when given) is incremented by the number of frames each
/// worker claims, at claim time. Because claims go through a capped CAS,
/// the increments over one engine run never exceed `cfg.max_frames` —
/// the counter is a live progress gauge, not an overshooting one (the
/// sweep orchestrator shares one counter across every chunk it runs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_point_engine<F, B>(
    handle: &dyn CodeHandle,
    encoder: Option<&Arc<Encoder>>,
    count_positions: &[u32],
    channel_spec: &ChannelSpec,
    cfg: &MonteCarloConfig,
    factory: F,
    progress: Option<&AtomicU64>,
) -> PointResult
where
    F: Fn() -> B + Sync,
    B: BlockDecoder,
{
    let rate = handle.rate();
    run_point_engine_with(
        handle,
        encoder,
        count_positions,
        &|worker_seed| channel_spec.build(cfg.ebn0_db, rate, worker_seed),
        cfg,
        factory,
        progress,
    )
}

/// [`run_point_engine`] with an explicit channel factory instead of a
/// [`ChannelSpec`]: `channel_factory(worker_seed)` builds worker `t`'s
/// channel from its derived seed. This is the door the packet-loss
/// workload uses to wrap the spec-built channel in a
/// [`PacketChannel`](crate::PacketChannel) — the worker-seed derivation
/// is shared, so a wrapper that drops nothing reproduces the plain
/// spec-built run bit for bit.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_point_engine_with<F, B>(
    handle: &dyn CodeHandle,
    encoder: Option<&Arc<Encoder>>,
    count_positions: &[u32],
    channel_factory: &(dyn Fn(u64) -> Box<dyn ldpc_channel::Channel> + Sync),
    cfg: &MonteCarloConfig,
    factory: F,
    progress: Option<&AtomicU64>,
) -> PointResult
where
    F: Fn() -> B + Sync,
    B: BlockDecoder,
{
    assert!(cfg.max_frames > 0, "max_frames must be positive");
    let n = handle.code().n();
    let tx_len = handle.transmitted_len();
    if cfg.transmission == Transmission::Random {
        assert!(encoder.is_some(), "random transmission requires an encoder");
        assert_eq!(
            tx_len, n,
            "random transmission requires a code that transmits every position \
             (punctured/shortened scenarios simulate the all-zero codeword)"
        );
    }
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        cfg.threads
    };
    let info_bits_per_frame = count_positions.len() as u64;

    let frames_claimed = AtomicU64::new(0);
    let frames_done = AtomicU64::new(0);
    let bit_errors = AtomicU64::new(0);
    let frame_errors = AtomicU64::new(0);
    let undetected = AtomicU64::new(0);
    let total_iterations = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..threads {
            let factory = &factory;
            let handle = &handle;
            let count_positions = &count_positions;
            let frames_claimed = &frames_claimed;
            let frames_done = &frames_done;
            let bit_errors = &bit_errors;
            let frame_errors = &frame_errors;
            let undetected = &undetected;
            let total_iterations = &total_iterations;
            let encoder = encoder.cloned();
            let cfg = cfg.clone();
            scope.spawn(move || {
                let mut decoder = factory();
                let block = decoder.block_frames() as u64;
                assert!(block > 0, "decoder claims zero frames per block");
                // Disjoint deterministic streams per worker.
                let worker_seed = cfg
                    .seed
                    .wrapping_add(WORKER_SEED_STRIDE.wrapping_mul(t as u64 + 1));
                let mut channel = channel_factory(worker_seed);
                let mut msg_rng = StdRng::seed_from_u64(worker_seed ^ 0xABCD_EF01);
                let zero = BitVec::zeros(n);
                let zero_tx = BitVec::zeros(tx_len);
                let mut llrs: Vec<f32> = Vec::with_capacity(block as usize * n);
                let mut codewords: Vec<BitVec> = Vec::with_capacity(block as usize);
                loop {
                    if cfg.target_frame_errors > 0
                        && frame_errors.load(Ordering::Relaxed) >= cfg.target_frame_errors
                    {
                        break;
                    }
                    // Claim up to one block, never past the cap: a capped
                    // CAS (instead of an unconditional fetch_add) keeps
                    // `frames_claimed` ≤ max_frames under any number of
                    // racing workers, so the counter doubles as an exact
                    // progress gauge. The final claim may be partial.
                    let mut current = frames_claimed.load(Ordering::Relaxed);
                    let count = loop {
                        if current >= cfg.max_frames {
                            break 0;
                        }
                        let next = cfg.max_frames.min(current + block);
                        match frames_claimed.compare_exchange_weak(
                            current,
                            next,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break next - current,
                            Err(seen) => current = seen,
                        }
                    };
                    if count == 0 {
                        break;
                    }
                    if let Some(progress) = progress {
                        progress.fetch_add(count, Ordering::Relaxed);
                    }
                    llrs.clear();
                    codewords.clear();
                    for _ in 0..count {
                        let codeword = match cfg.transmission {
                            Transmission::AllZero => zero.clone(),
                            Transmission::Random => {
                                let enc = encoder.as_ref().expect("checked above");
                                let msg: BitVec = (0..enc.dimension())
                                    .map(|_| msg_rng.gen_bool(0.5))
                                    .collect();
                                enc.encode(&msg).expect("message length matches dimension")
                            }
                        };
                        // With a partial transmission profile only the
                        // all-zero codeword is simulated (asserted above),
                        // so the transmitted bits are all zero too.
                        let received = if tx_len == n {
                            channel.transmit_codeword(&codeword)
                        } else {
                            channel.transmit_codeword(&zero_tx)
                        };
                        handle.expand_llrs_into(&received, &mut llrs);
                        codewords.push(codeword);
                    }
                    let results = decoder.decode_block(&llrs, cfg.max_iterations);
                    for (out, codeword) in results.iter().zip(&codewords) {
                        total_iterations.fetch_add(u64::from(out.iterations), Ordering::Relaxed);
                        let mut errors_this_frame = 0u64;
                        for &pos in count_positions.iter() {
                            if out.hard_decision.get(pos as usize) != codeword.get(pos as usize) {
                                errors_this_frame += 1;
                            }
                        }
                        if errors_this_frame > 0 {
                            bit_errors.fetch_add(errors_this_frame, Ordering::Relaxed);
                            frame_errors.fetch_add(1, Ordering::Relaxed);
                            if out.converged {
                                undetected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        frames_done.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    PointResult {
        ebn0_db: cfg.ebn0_db,
        frames: frames_done.load(Ordering::Relaxed),
        bit_errors: bit_errors.load(Ordering::Relaxed),
        frame_errors: frame_errors.load(Ordering::Relaxed),
        undetected_frame_errors: undetected.load(Ordering::Relaxed),
        total_iterations: total_iterations.load(Ordering::Relaxed),
        info_bits_per_frame,
    }
}

/// Simulates one Eb/N0 point with a frame-batched decoder: each worker
/// claims, generates, and decodes frames in blocks of the decoder's batch
/// capacity instead of one at a time.
///
/// This is the batched counterpart of [`run_point`] — the two share one
/// engine, differing only in how many frames a worker claims per step, so
/// per-worker noise streams and error counting are identical by
/// construction. Because the batched decoders are bit-exact against their
/// per-frame counterparts, a single-threaded run with
/// `target_frame_errors == 0` produces *identical* counts to [`run_point`]
/// with the matching per-frame decoder (a property the tests pin down);
/// it just gets there faster. `factory` builds one batched decoder per
/// worker.
///
/// Two block-granularity caveats:
///
/// * the final block a worker claims may be smaller than the batch
///   capacity (`max_frames` need not be a multiple of it); partial blocks
///   are decoded as-is;
/// * a `target_frame_errors` stop is checked between blocks, so a batched
///   run can decode up to one block beyond the per-frame engine's stop
///   point before noticing — its counts then differ from [`run_point`]'s
///   (more frames simulated), though both remain valid Monte-Carlo
///   estimates.
///
/// # Replacement
///
/// Append `@batch=N` to the decoder's spec string and call
/// [`run_point_spec`] — bit-identical counts. A call
/// `run_point_batched(&code, None, &cfg, || BatchFixedDecoder::new(code(),
/// FixedConfig::default(), 8))` is reproduced exactly by
/// `run_point_spec(&code, None, &cfg, &DecoderSpec::parse("fixed@batch=8")?)`,
/// and a normalized min-sum batch by
/// `DecoderSpec::parse("nms:1.25@batch=8")?` (likewise `ms@batch=N`,
/// `oms:β@batch=N`).
///
/// # Panics
///
/// Panics if `max_frames == 0`, or if [`Transmission::Random`] is
/// requested without an encoder.
#[deprecated(
    since = "0.1.0",
    note = "use run_point_spec(&code, enc, &cfg, &DecoderSpec::parse(\"fixed@batch=8\")?) \
            (or nms:α@batch=N / ms@batch=N / oms:β@batch=N), \
            or run_point_blocks with a Batched adapter"
)]
pub fn run_point_batched<F, D>(
    code: &Arc<LdpcCode>,
    encoder: Option<&Arc<Encoder>>,
    cfg: &MonteCarloConfig,
    factory: F,
) -> PointResult
where
    F: Fn() -> D + Sync,
    D: BatchDecoder,
{
    run_point_blocks(code, encoder, cfg, || Batched::new(factory()))
}

/// Simulates one Eb/N0 point with the bit-sliced hard-decision decoder:
/// each worker claims, generates, and decodes frames 64 at a time, one
/// `u64` lane word per bit position.
///
/// This is the hard-decision counterpart of [`run_point_batched`], built
/// on the same engine with a
/// [`BitsliceGallagerBDecoder`](ldpc_core::BitsliceGallagerBDecoder)
/// (majority threshold `flip_threshold`) per worker. Because the
/// bit-sliced decoder is bit-exact per lane against the scalar
/// [`GallagerBDecoder`](ldpc_core::GallagerBDecoder), a single-threaded
/// run with `target_frame_errors == 0` produces *identical* BER/PER
/// counts to [`run_point`] with the scalar decoder — it just decodes 64
/// frames per word pass. The block-granularity caveats of
/// [`run_point_batched`] (partial final block, between-block stop checks)
/// apply unchanged.
///
/// # Replacement
///
/// A call `run_point_bitsliced(&code, None, &cfg, 3)` is reproduced bit
/// for bit by
/// `run_point_spec(&code, None, &cfg, &DecoderSpec::parse("gallager-b:t=3@bitslice")?)`
/// — substitute the flip threshold into `t=N`.
///
/// # Panics
///
/// Panics if `max_frames == 0`, if [`Transmission::Random`] is requested
/// without an encoder, or if `flip_threshold` is zero.
#[deprecated(
    since = "0.1.0",
    note = "use run_point_spec(&code, enc, &cfg, \
            &DecoderSpec::parse(\"gallager-b:t=N@bitslice\")?) with your flip threshold as t=N"
)]
pub fn run_point_bitsliced(
    code: &Arc<LdpcCode>,
    encoder: Option<&Arc<Encoder>>,
    cfg: &MonteCarloConfig,
    flip_threshold: usize,
) -> PointResult {
    run_point_blocks(code, encoder, cfg, || {
        Batched::new(ldpc_core::BitsliceGallagerBDecoder::new(
            Arc::clone(code),
            flip_threshold,
        ))
    })
}

/// Sweeps a list of Eb/N0 points (the x-axis of the paper's Figure 4)
/// with any [`BlockDecoder`] factory.
///
/// Each point reuses `base` with its `ebn0_db` replaced and the seed
/// offset by the point index, so points are independent but reproducible.
/// Wrap per-frame decoders in [`PerFrame`] (batch decoders in
/// [`Batched`]), or use [`run_curve_spec`] for registered families.
pub fn run_curve_blocks<F, B>(
    code: &Arc<LdpcCode>,
    encoder: Option<&Arc<Encoder>>,
    ebn0_points: &[f64],
    base: &MonteCarloConfig,
    factory: F,
) -> Vec<PointResult>
where
    F: Fn() -> B + Sync,
    B: BlockDecoder,
{
    ebn0_points
        .iter()
        .enumerate()
        .map(|(i, &ebn0_db)| {
            let cfg = MonteCarloConfig {
                ebn0_db,
                seed: base.seed.wrapping_add(i as u64 * CURVE_SEED_STRIDE),
                ..base.clone()
            };
            run_point_blocks(code, encoder, &cfg, &factory)
        })
        .collect()
}

/// Sweeps a list of Eb/N0 points with a [`DecoderSpec`]-named decoder —
/// the declarative counterpart of [`run_curve_blocks`], with the same
/// per-point seed derivation.
pub fn run_curve_spec(
    code: &Arc<LdpcCode>,
    encoder: Option<&Arc<Encoder>>,
    ebn0_points: &[f64],
    base: &MonteCarloConfig,
    spec: &DecoderSpec,
) -> Vec<PointResult> {
    run_curve_blocks(code, encoder, ebn0_points, base, || spec.build(code))
}

/// Sweeps a list of Eb/N0 points with a per-frame [`Decoder`] factory.
///
/// Thin deprecated shim over [`run_curve_blocks`] with a [`PerFrame`]
/// adapter — the same migration story as [`run_point`]: old call sites
/// keep compiling (with a deprecation note) and produce bit-identical
/// results. The replacement is [`run_curve_spec`] with the factory's
/// decoder named as a spec string (see the table in [`run_point`]'s
/// docs): `run_curve(&code, None, &pts, &cfg, || MinSumDecoder::new(...,
/// MinSumConfig::normalized(1.25)))` becomes
/// `run_curve_spec(&code, None, &pts, &cfg, &DecoderSpec::parse("nms:1.25")?)`.
#[deprecated(
    since = "0.1.0",
    note = "use run_curve_spec(&code, enc, &points, &cfg, &DecoderSpec::parse(\"nms:1.25\")?) — \
            the spec string names the decoder your factory built — \
            or run_curve_blocks (explicit factory)"
)]
pub fn run_curve<F, D>(
    code: &Arc<LdpcCode>,
    encoder: Option<&Arc<Encoder>>,
    ebn0_points: &[f64],
    base: &MonteCarloConfig,
    factory: F,
) -> Vec<PointResult>
where
    F: Fn() -> D + Sync,
    D: Decoder,
{
    run_curve_blocks(
        code,
        encoder,
        ebn0_points,
        base,
        || PerFrame::new(factory()),
    )
}

/// Renders a sweep as CSV with header
/// `ebn0_db,frames,ber,per,avg_iterations,undetected`.
///
/// Statistics that are undefined because a point simulated zero frames
/// (NaN from [`PointResult::ber`] and friends) render as *empty* fields —
/// distinguishable from a genuine `0.000000e0` under any CSV reader.
pub fn to_csv(points: &[PointResult]) -> String {
    let rate = |x: f64| {
        if x.is_nan() {
            String::new()
        } else {
            format!("{x:.6e}")
        }
    };
    let mut out = String::from("ebn0_db,frames,ber,per,avg_iterations,undetected\n");
    for p in points {
        let iters = if p.avg_iterations().is_nan() {
            String::new()
        } else {
            format!("{:.2}", p.avg_iterations())
        };
        out.push_str(&format!(
            "{:.3},{},{},{},{},{}\n",
            p.ebn0_db,
            p.frames,
            rate(p.ber()),
            rate(p.per()),
            iters,
            p.undetected_frame_errors
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_core::codes::small::demo_code;
    use ldpc_core::{FixedConfig, FixedDecoder, MinSumConfig, MinSumDecoder};

    fn quick_cfg(ebn0_db: f64) -> MonteCarloConfig {
        MonteCarloConfig {
            ebn0_db,
            max_frames: 300,
            target_frame_errors: 0,
            max_iterations: 25,
            seed: 7,
            threads: 2,
            transmission: Transmission::AllZero,
        }
    }

    fn spec(s: &str) -> DecoderSpec {
        DecoderSpec::parse(s).unwrap()
    }

    #[test]
    fn high_snr_is_nearly_error_free() {
        let code = demo_code();
        let point = run_point_spec(&code, None, &quick_cfg(10.0), &spec("nms:1.25"));
        assert_eq!(point.frames, 300);
        assert_eq!(point.frame_errors, 0, "per={}", point.per());
    }

    #[test]
    fn low_snr_produces_errors() {
        let code = demo_code();
        let point = run_point_spec(&code, None, &quick_cfg(-2.0), &spec("nms:1.25"));
        assert!(point.frame_errors > 0);
        assert!(point.ber() > 0.0);
        assert!(point.per() >= point.ber());
    }

    #[test]
    fn ber_decreases_with_snr() {
        let code = demo_code();
        let points = run_curve_spec(
            &code,
            None,
            &[0.0, 3.0, 6.0],
            &quick_cfg(0.0),
            &spec("nms:1.25"),
        );
        assert_eq!(points.len(), 3);
        assert!(
            points[0].ber() > points[2].ber(),
            "ber(0dB)={} vs ber(6dB)={}",
            points[0].ber(),
            points[2].ber()
        );
    }

    #[test]
    fn target_frame_errors_stops_early() {
        let code = demo_code();
        let cfg = MonteCarloConfig {
            max_frames: 100_000,
            target_frame_errors: 5,
            ..quick_cfg(-3.0)
        };
        let point = run_point_spec(&code, None, &cfg, &spec("nms:1.25"));
        assert!(point.frame_errors >= 5);
        assert!(point.frames < 100_000);
    }

    #[test]
    fn random_transmission_matches_all_zero_statistics() {
        let code = demo_code();
        let enc = Arc::new(Encoder::new(&code).unwrap());
        let mut cfg = quick_cfg(2.5);
        cfg.max_frames = 400;
        let zero = run_point_spec(&code, Some(&enc), &cfg, &spec("fixed"));
        cfg.transmission = Transmission::Random;
        let random = run_point_spec(&code, Some(&enc), &cfg, &spec("fixed"));
        // Linear code + symmetric channel: the two BERs agree statistically.
        let (lo, hi) = zero.per_confidence();
        let margin = 0.12;
        assert!(
            random.per() >= (lo - margin).max(0.0) && random.per() <= (hi + margin).min(1.0),
            "all-zero per={} ({lo}..{hi}), random per={}",
            zero.per(),
            random.per()
        );
    }

    #[test]
    fn results_are_reproducible_for_fixed_seed_single_thread() {
        let code = demo_code();
        let cfg = MonteCarloConfig {
            threads: 1,
            ..quick_cfg(1.0)
        };
        let a = run_point_spec(&code, None, &cfg, &spec("nms:1.25"));
        let b = run_point_spec(&code, None, &cfg, &spec("nms:1.25"));
        assert_eq!(a, b);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let code = demo_code();
        let points = run_curve_spec(&code, None, &[5.0], &quick_cfg(5.0), &spec("nms:1.25"));
        let csv = to_csv(&points);
        assert!(csv.starts_with("ebn0_db,frames"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn zero_frame_point_statistics_are_nan_not_zero() {
        // A never-run (or cache-miss) point must not masquerade as a
        // genuinely error-free one: 0/0 is NaN, and the CSV renders it
        // as an empty field rather than 0.0e0.
        let empty = PointResult {
            ebn0_db: 4.0,
            frames: 0,
            bit_errors: 0,
            frame_errors: 0,
            undetected_frame_errors: 0,
            total_iterations: 0,
            info_bits_per_frame: 100,
        };
        assert!(empty.ber().is_nan());
        assert!(empty.per().is_nan());
        assert!(empty.avg_iterations().is_nan());
        assert_eq!(empty.per_confidence(), (0.0, 1.0));
        let csv = to_csv(&[empty]);
        assert_eq!(
            csv.lines().nth(1).unwrap(),
            "4.000,0,,,,0",
            "NaN statistics must render as empty CSV fields"
        );
        // A genuinely error-free point still renders explicit zeros.
        let clean = PointResult {
            frames: 10,
            total_iterations: 10,
            ..empty
        };
        assert_eq!(clean.ber(), 0.0);
        assert_eq!(clean.per(), 0.0);
        assert!(to_csv(&[clean])
            .lines()
            .nth(1)
            .unwrap()
            .contains("0.000000e0"));
    }

    /// Drives the engine directly with an external progress counter: the
    /// capped CAS claim must keep the claimed-frames gauge at or below
    /// `max_frames` no matter how many workers race over a tiny budget
    /// (the old unconditional `fetch_add` overshot by up to
    /// `threads × block`).
    #[test]
    fn claim_counter_never_overshoots_max_frames() {
        let code = demo_code();
        let handle = PlainCode::new(Arc::clone(&code));
        let positions: Vec<u32> = (0..code.n() as u32).collect();
        // 8 workers × block 8 over a 10-frame budget: maximal contention.
        let cfg = MonteCarloConfig {
            max_frames: 10,
            threads: 8,
            ..quick_cfg(4.0)
        };
        for _ in 0..5 {
            let progress = AtomicU64::new(0);
            let point = run_point_engine(
                &handle,
                None,
                &positions,
                &ChannelSpec::awgn(),
                &cfg,
                || spec("fixed@batch=8").build(&code),
                Some(&progress),
            );
            assert_eq!(point.frames, 10);
            assert_eq!(
                progress.load(Ordering::Relaxed),
                10,
                "claimed frames overshot the cap"
            );
        }
    }

    /// With a frame-error target, each worker can have at most one block
    /// in flight past the stop: at an SNR where every frame errors, the
    /// total simulated frames are bounded by the target's own stop point
    /// plus `threads × block`.
    #[test]
    fn target_stop_overshoot_is_bounded() {
        let code = demo_code();
        let block = 8u64;
        let threads = 4u64;
        let target = 5u64;
        let cfg = MonteCarloConfig {
            max_frames: 100_000,
            target_frame_errors: target,
            threads: threads as usize,
            ..quick_cfg(-10.0) // every frame is a frame error down here
        };
        let point = run_point_spec(&code, None, &cfg, &spec("fixed@batch=8"));
        assert_eq!(
            point.frame_errors, point.frames,
            "the bound below assumes every frame errors at -10 dB"
        );
        assert!(point.frames <= cfg.max_frames);
        let stop = target.div_ceil(block) * block; // frames a lone worker needs
        assert!(
            point.frames <= stop + threads * block,
            "frames={} > stop {stop} + threads×block {}",
            point.frames,
            threads * block
        );
    }

    #[test]
    fn wilson_interval_basics() {
        let (lo, hi) = wilson_interval(0, 0, 1.96);
        assert_eq!((lo, hi), (0.0, 1.0));
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi < 0.05);
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!(lo > 0.95);
        assert!(hi > 0.999);
        // Interval shrinks with more trials.
        let (_, hi_small) = wilson_interval(10, 100, 1.96);
        let (_, hi_large) = wilson_interval(100, 1000, 1.96);
        assert!(hi_large < hi_small);
    }

    #[test]
    fn batched_point_matches_per_frame_exactly_single_thread() {
        // The engine claims block_frames() frames per step; bit-exact
        // batched decoding then makes counts independent of the packing.
        let code = demo_code();
        let cfg = MonteCarloConfig {
            threads: 1,
            ..quick_cfg(2.0)
        };
        // Default alpha is the hardware's 4/3.
        let per_frame = run_point_spec(&code, None, &cfg, &spec("nms"));
        for batch in [1usize, 4, 8] {
            let batched =
                run_point_spec(&code, None, &cfg, &spec("nms").with_batch(batch).unwrap());
            assert_eq!(batched, per_frame, "batch={batch}");
        }
    }

    #[test]
    fn batched_fixed_point_matches_per_frame_exactly_single_thread() {
        let code = demo_code();
        let cfg = MonteCarloConfig {
            threads: 1,
            ..quick_cfg(2.5)
        };
        let per_frame = run_point_spec(&code, None, &cfg, &spec("fixed"));
        let batched = run_point_spec(&code, None, &cfg, &spec("fixed@batch=8"));
        assert_eq!(batched, per_frame);
    }

    #[test]
    fn batched_partial_final_block_counts_all_frames() {
        let code = demo_code();
        // 10 frames with a capacity-4 decoder: blocks of 4, 4, 2.
        let cfg = MonteCarloConfig {
            max_frames: 10,
            threads: 1,
            ..quick_cfg(6.0)
        };
        let point = run_point_spec(&code, None, &cfg, &spec("nms:1.25@batch=4"));
        assert_eq!(point.frames, 10);
    }

    #[test]
    fn batched_multi_thread_respects_max_frames() {
        let code = demo_code();
        let cfg = MonteCarloConfig {
            max_frames: 100,
            threads: 3,
            ..quick_cfg(3.0)
        };
        let point = run_point_spec(&code, None, &cfg, &spec("fixed@batch=8"));
        assert_eq!(point.frames, 100);
    }

    #[test]
    fn batched_target_frame_errors_stops_early() {
        let code = demo_code();
        let cfg = MonteCarloConfig {
            max_frames: 100_000,
            target_frame_errors: 5,
            ..quick_cfg(-3.0)
        };
        let point = run_point_spec(&code, None, &cfg, &spec("nms:1.25@batch=8"));
        assert!(point.frame_errors >= 5);
        assert!(point.frames < 100_000);
    }

    #[test]
    fn batched_random_transmission_works() {
        let code = demo_code();
        let enc = Arc::new(Encoder::new(&code).unwrap());
        let mut cfg = quick_cfg(2.5);
        cfg.transmission = Transmission::Random;
        cfg.threads = 1;
        let batched = run_point_spec(&code, Some(&enc), &cfg, &spec("fixed@batch=8"));
        let per_frame = run_point_spec(&code, Some(&enc), &cfg, &spec("fixed"));
        assert_eq!(batched, per_frame);
    }

    #[test]
    fn bitsliced_point_matches_scalar_gallager_b_single_thread() {
        // The hard-decision mirror of the batched equality: 64 frames per
        // word, same noise stream, bit-exact lanes, identical counts.
        let code = demo_code();
        for ebn0 in [3.0, 6.0] {
            let cfg = MonteCarloConfig {
                threads: 1,
                ..quick_cfg(ebn0)
            };
            let scalar = run_point_spec(&code, None, &cfg, &spec("gallager-b:t=3"));
            let sliced = run_point_spec(&code, None, &cfg, &spec("gallager-b:t=3@bitslice"));
            assert_eq!(sliced, scalar, "ebn0={ebn0}");
        }
    }

    #[test]
    fn bitsliced_partial_final_word_counts_all_frames() {
        // 100 frames with 64-lane words: blocks of 64 and 36.
        let code = demo_code();
        let cfg = MonteCarloConfig {
            max_frames: 100,
            threads: 1,
            ..quick_cfg(7.0)
        };
        let point = run_point_spec(&code, None, &cfg, &spec("gallager-b@bitslice"));
        assert_eq!(point.frames, 100);
    }

    #[test]
    fn bitsliced_multi_thread_respects_max_frames() {
        let code = demo_code();
        let cfg = MonteCarloConfig {
            max_frames: 200,
            threads: 3,
            ..quick_cfg(5.0)
        };
        let point = run_point_spec(&code, None, &cfg, &spec("gallager-b@bitslice"));
        assert_eq!(point.frames, 200);
    }

    #[test]
    fn avg_iterations_reported() {
        let code = demo_code();
        let point = run_point_spec(&code, None, &quick_cfg(8.0), &spec("nms:1.25"));
        // Clean channel: early termination keeps iterations near 1.
        assert!(point.avg_iterations() >= 1.0);
        assert!(point.avg_iterations() < 3.0);
    }

    #[test]
    fn blocks_engine_accepts_custom_configurations() {
        // Configurations outside the spec grammar (here: an alpha
        // schedule) drive the same engine through run_point_blocks.
        let code = demo_code();
        let cfg = MonteCarloConfig {
            threads: 1,
            ..quick_cfg(3.0)
        };
        let scheduled = run_point_blocks(&code, None, &cfg, || {
            PerFrame::new(MinSumDecoder::new(
                demo_code(),
                MinSumConfig::normalized(4.0 / 3.0).with_alpha_schedule(vec![1.0, 4.0 / 3.0]),
            ))
        });
        assert_eq!(scheduled.frames, 300);
        // And a plain config through run_point_blocks equals the spec run.
        let manual = run_point_blocks(&code, None, &cfg, || {
            PerFrame::new(MinSumDecoder::new(
                demo_code(),
                MinSumConfig::normalized(4.0 / 3.0),
            ))
        });
        assert_eq!(manual, run_point_spec(&code, None, &cfg, &spec("nms")));
    }

    /// The deprecated shims must reproduce the spec engine's counts
    /// bit-identically on pinned seeds — the regression contract that let
    /// the three historical entry points collapse into one engine.
    #[test]
    #[allow(deprecated)]
    fn legacy_shims_match_spec_engine_exactly() {
        let code = demo_code();
        for ebn0 in [1.5, 4.0] {
            let cfg = MonteCarloConfig {
                threads: 1,
                seed: 0xC0DE,
                ..quick_cfg(ebn0)
            };
            // run_point over a per-frame decoder == scalar spec.
            let legacy = run_point(&code, None, &cfg, || {
                MinSumDecoder::new(demo_code(), MinSumConfig::normalized(4.0 / 3.0))
            });
            assert_eq!(legacy, run_point_spec(&code, None, &cfg, &spec("nms")));
            // run_point_batched == @batch=8 spec.
            let legacy = run_point_batched(&code, None, &cfg, || {
                ldpc_core::BatchFixedDecoder::new(demo_code(), FixedConfig::default(), 8)
            });
            assert_eq!(
                legacy,
                run_point_spec(&code, None, &cfg, &spec("fixed@batch=8"))
            );
            // run_point_bitsliced == @bitslice spec.
            let legacy = run_point_bitsliced(&code, None, &cfg, 3);
            assert_eq!(
                legacy,
                run_point_spec(&code, None, &cfg, &spec("gallager-b:t=3@bitslice"))
            );
            // And the per-frame shim still matches its own engine door.
            let legacy = run_point(&code, None, &cfg, || {
                FixedDecoder::new(demo_code(), FixedConfig::default())
            });
            assert_eq!(
                legacy,
                run_point_blocks(&code, None, &cfg, || {
                    PerFrame::new(FixedDecoder::new(demo_code(), FixedConfig::default()))
                })
            );
            // run_curve's shim: same per-point seed derivation, same counts.
            let legacy = run_curve(&code, None, &[ebn0, ebn0 + 1.0], &cfg, || {
                MinSumDecoder::new(demo_code(), MinSumConfig::normalized(4.0 / 3.0))
            });
            assert_eq!(
                legacy,
                run_curve_spec(&code, None, &[ebn0, ebn0 + 1.0], &cfg, &spec("nms"))
            );
        }
    }

    /// Every registered family runs end to end through the spec door.
    #[test]
    fn every_registered_family_simulates() {
        let code = demo_code();
        let cfg = MonteCarloConfig {
            max_frames: 80,
            threads: 2,
            ..quick_cfg(6.0)
        };
        for family in DecoderSpec::all_families() {
            let point = run_point_spec(&code, None, &cfg, &family);
            assert_eq!(point.frames, 80, "{family}");
            assert!(point.ber() <= 1.0, "{family}");
        }
    }
}
