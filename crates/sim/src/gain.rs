//! Coding-gain measurement: the Eb/N0 a decoder needs to reach a target
//! error rate, and dB gaps between decoders.
//!
//! The paper's §5 headline — "BER and PER which are 0.05 dB better than
//! the CCSDS FPGA tests results" — is a statement about the *horizontal*
//! gap between two waterfall curves. [`ebn0_at_per`] finds where one curve
//! crosses a target PER by bisection on the (monotone) PER-vs-Eb/N0
//! characteristic, and [`gain_db`] subtracts two such thresholds.

use crate::{run_point_blocks, MonteCarloConfig, PointResult};
use ldpc_core::{Decoder, Encoder, LdpcCode, PerFrame};
use std::sync::Arc;

/// Result of a threshold search.
#[derive(Debug, Clone)]
pub struct ThresholdResult {
    /// Eb/N0 (dB) at which the decoder's PER crosses the target.
    pub ebn0_db: f64,
    /// The Monte-Carlo points evaluated during the search, in evaluation
    /// order (useful for plotting the probed curve).
    pub probes: Vec<PointResult>,
}

/// Finds the Eb/N0 at which the decoder's packet error rate equals
/// `target_per`, by bisection over `[lo_db, hi_db]`.
///
/// PER decreases monotonically with Eb/N0, so bisection converges; the
/// search runs `steps` halvings (each costing one Monte-Carlo point with
/// `cfg`'s frame budget). Accuracy is limited jointly by the bisection
/// resolution `(hi−lo)/2^steps` and the Monte-Carlo noise of each probe —
/// for fine gaps (hundredths of a dB, as in the paper's §5 claim) use
/// generous frame budgets.
///
/// # Panics
///
/// Panics if the bracket is invalid, `target_per` is not in (0, 1), or
/// `steps == 0`.
#[allow(clippy::too_many_arguments)]
pub fn ebn0_at_per<F, D>(
    code: &Arc<LdpcCode>,
    encoder: Option<&Arc<Encoder>>,
    cfg: &MonteCarloConfig,
    target_per: f64,
    lo_db: f64,
    hi_db: f64,
    steps: u32,
    factory: F,
) -> ThresholdResult
where
    F: Fn() -> D + Sync,
    D: Decoder,
{
    assert!(lo_db < hi_db, "invalid bisection bracket");
    assert!(
        target_per > 0.0 && target_per < 1.0,
        "target PER must be in (0,1)"
    );
    assert!(steps > 0, "need at least one bisection step");
    let mut lo = lo_db;
    let mut hi = hi_db;
    let mut probes = Vec::new();
    for step in 0..steps {
        let mid = 0.5 * (lo + hi);
        let point_cfg = MonteCarloConfig {
            ebn0_db: mid,
            // Fresh noise per probe, deterministic per step.
            seed: cfg.seed.wrapping_add(u64::from(step) * 0x9E37),
            ..cfg.clone()
        };
        let point = run_point_blocks(code, encoder, &point_cfg, || PerFrame::new(factory()));
        let per = point.per();
        probes.push(point);
        if per > target_per {
            lo = mid; // too noisy: need more Eb/N0
        } else {
            hi = mid;
        }
    }
    ThresholdResult {
        ebn0_db: 0.5 * (lo + hi),
        probes,
    }
}

/// Coding gain of decoder `a` over decoder `b` at a target PER, in dB
/// (positive = `a` needs less Eb/N0).
///
/// Both thresholds are measured with the same configuration and bracket.
#[allow(clippy::too_many_arguments)]
pub fn gain_db<Fa, Fb, Da, Db>(
    code: &Arc<LdpcCode>,
    encoder: Option<&Arc<Encoder>>,
    cfg: &MonteCarloConfig,
    target_per: f64,
    lo_db: f64,
    hi_db: f64,
    steps: u32,
    factory_a: Fa,
    factory_b: Fb,
) -> (f64, ThresholdResult, ThresholdResult)
where
    Fa: Fn() -> Da + Sync,
    Fb: Fn() -> Db + Sync,
    Da: Decoder,
    Db: Decoder,
{
    let a = ebn0_at_per(
        code, encoder, cfg, target_per, lo_db, hi_db, steps, factory_a,
    );
    let b = ebn0_at_per(
        code, encoder, cfg, target_per, lo_db, hi_db, steps, factory_b,
    );
    (b.ebn0_db - a.ebn0_db, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transmission;
    use ldpc_core::codes::small::demo_code;
    use ldpc_core::{MinSumConfig, MinSumDecoder};

    fn cfg() -> MonteCarloConfig {
        MonteCarloConfig {
            ebn0_db: 0.0,
            max_frames: 600,
            target_frame_errors: 0,
            max_iterations: 20,
            seed: 0x6A1,
            threads: 0,
            transmission: Transmission::AllZero,
        }
    }

    #[test]
    fn threshold_lands_inside_bracket_on_the_waterfall() {
        let code = demo_code();
        let t = ebn0_at_per(&code, None, &cfg(), 0.1, 0.0, 8.0, 5, || {
            MinSumDecoder::new(demo_code(), MinSumConfig::normalized(1.25))
        });
        assert!(
            t.ebn0_db > 0.5 && t.ebn0_db < 7.5,
            "threshold {}",
            t.ebn0_db
        );
        assert_eq!(t.probes.len(), 5);
    }

    #[test]
    fn stricter_target_needs_more_snr() {
        let code = demo_code();
        let loose = ebn0_at_per(&code, None, &cfg(), 0.3, 0.0, 8.0, 5, || {
            MinSumDecoder::new(demo_code(), MinSumConfig::normalized(1.25))
        });
        let strict = ebn0_at_per(&code, None, &cfg(), 0.01, 0.0, 8.0, 5, || {
            MinSumDecoder::new(demo_code(), MinSumConfig::normalized(1.25))
        });
        assert!(
            strict.ebn0_db > loose.ebn0_db,
            "PER 1e-2 at {} dB vs PER 0.3 at {} dB",
            strict.ebn0_db,
            loose.ebn0_db
        );
    }

    #[test]
    fn normalized_min_sum_gains_over_plain() {
        // The §5 mechanism: the correction factor buys a positive dB gain
        // at equal iteration count.
        let code = demo_code();
        let (gain, _, _) = gain_db(
            &code,
            None,
            &cfg(),
            0.1,
            0.0,
            8.0,
            5,
            || MinSumDecoder::new(demo_code(), MinSumConfig::normalized(4.0 / 3.0)),
            || MinSumDecoder::new(demo_code(), MinSumConfig::plain()),
        );
        assert!(
            gain > -0.3,
            "normalized should not lose to plain: gain {gain} dB"
        );
    }

    #[test]
    #[should_panic(expected = "bracket")]
    fn invalid_bracket_rejected() {
        let code = demo_code();
        let _ = ebn0_at_per(&code, None, &cfg(), 0.1, 5.0, 2.0, 3, || {
            MinSumDecoder::new(demo_code(), MinSumConfig::plain())
        });
    }
}
