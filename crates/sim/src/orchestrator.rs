//! Adaptive, resumable sweep orchestration — the scale-out door of the
//! Monte-Carlo engine (ROADMAP item "sweep orchestration at scale").
//!
//! Publication-depth waterfall curves (the paper's Fig. 4 at BER 1e-7)
//! need ~1e7 frames per point at high SNR but only thousands at low SNR.
//! Running every grid point to a fixed frame budget wastes work on the
//! easy points and starves the hard ones; running points one after
//! another lets a single slow point serialize the grid. This module
//! fixes both, and makes the whole computation incremental:
//!
//! * **Work stealing across points.** [`run_sweep`] decomposes every
//!   (scenario, Eb/N0) unit into fixed-size *chunks* and schedules
//!   chunks — not points — over the worker pool, so workers drain the
//!   whole grid together and a slow high-SNR point keeps every core
//!   busy instead of idle.
//! * **Adaptive stopping.** Each point runs until it has accumulated
//!   [`SweepConfig::target_frame_errors`] frame errors (standard
//!   Monte-Carlo practice: the relative error of a PER estimate depends
//!   on the *error count*, not the frame count) or until the frame cap,
//!   whichever comes first. Wilson confidence intervals on the merged
//!   counts come from [`PointResult::per_confidence`].
//! * **Content-addressed resume.** Every finished chunk is written to an
//!   on-disk cache keyed by the SHA-256 of its full identity (canonical
//!   scenario string, Eb/N0, seed, frame budget, iteration budget — see
//!   [`chunk_key`]). A re-run with a warm cache adopts the cached chunks
//!   and simulates nothing; a run with a *larger* budget or a different
//!   error target re-uses every chunk it can and simulates only the
//!   extension.
//!
//! # Determinism
//!
//! Chunk `c` of a unit seeded `s` runs single-threaded with engine seed
//! `s + c · WORKER_SEED_STRIDE` — exactly the noise stream worker `t = c`
//! of a multithreaded engine run of the same point would draw, and chunk
//! 0 is bit-identical to a plain single-threaded
//! [`run_point_scenario`](crate::run_point_scenario) run of the chunk
//! budget. A point stops at the shortest chunk *prefix* whose cumulative
//! frame errors reach the target, and its merged [`PointResult`] sums
//! exactly that prefix — so the merged counts are **invariant under the
//! worker-thread count and under cold/warm/resumed execution** (pinned
//! by tests). Speculative chunks beyond the stop prefix are bounded by
//! the in-flight window (one chunk per worker) and are cached for
//! future resumes rather than discarded.
//!
//! # Example
//!
//! ```
//! use ldpc_sim::{run_sweep, sweep_grid, Scenario, SweepConfig};
//!
//! let scenario = Scenario::parse("demo / awgn / nms:1.25")?;
//! let units = sweep_grid(&[scenario], &[4.0], 0xC11);
//! let cfg = SweepConfig {
//!     max_frames: 100,
//!     target_frame_errors: 10,
//!     chunk_frames: 50,
//!     ..SweepConfig::default()
//! };
//! let results = run_sweep(&units, &cfg).unwrap();
//! assert_eq!(results.len(), 1);
//! assert!(results[0].point.frames > 0);
//! # Ok::<(), ldpc_sim::ScenarioError>(())
//! ```

use crate::scenario::run_point_scenario_observed;
use crate::{
    MonteCarloConfig, PointResult, Scenario, ScenarioError, Transmission, CURVE_SEED_STRIDE,
    WORKER_SEED_STRIDE,
};
use ldpc_core::CodeHandle;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

// ---------------------------------------------------------------------------
// SHA-256 (the cache's content address; no external crates in this tree)
// ---------------------------------------------------------------------------

#[rustfmt::skip]
const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 digest of `data`, as 64 lowercase hex characters.
///
/// This is the cache's content-address function (FIPS 180-4,
/// hand-rolled because the workspace vendors no hashing crate), exposed
/// so external tooling — the CI resume smoke test, plotting scripts —
/// can locate or verify chunk files without re-deriving the algorithm.
///
/// ```
/// assert_eq!(
///     ldpc_sim::sha256_hex(b"abc"),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
pub fn sha256_hex(data: &[u8]) -> String {
    use fmt::Write;
    let mut out = String::with_capacity(64);
    for byte in sha256(data) {
        let _ = write!(out, "{byte:02x}");
    }
    out
}

fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09_e667,
        0xbb67_ae85,
        0x3c6e_f372,
        0xa54f_f53a,
        0x510e_527f,
        0x9b05_688c,
        0x1f83_d9ab,
        0x5be0_cd19,
    ];
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (word, bytes) in w.iter_mut().zip(block.chunks_exact(4)) {
            *word = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (state, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *state = state.wrapping_add(v);
        }
    }

    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

// ---------------------------------------------------------------------------
// Chunk cache
// ---------------------------------------------------------------------------

/// Raw additive counts of one finished chunk — the unit of caching and
/// merging. A chunk is a single-threaded engine run of a fixed frame
/// budget with no early stopping, so its counts are a pure function of
/// its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChunkCounts {
    frames: u64,
    bit_errors: u64,
    frame_errors: u64,
    undetected_frame_errors: u64,
    total_iterations: u64,
    info_bits_per_frame: u64,
}

impl ChunkCounts {
    fn from_point(point: &PointResult) -> Self {
        Self {
            frames: point.frames,
            bit_errors: point.bit_errors,
            frame_errors: point.frame_errors,
            undetected_frame_errors: point.undetected_frame_errors,
            total_iterations: point.total_iterations,
            info_bits_per_frame: point.info_bits_per_frame,
        }
    }

    fn render(&self) -> String {
        format!(
            "frames={}\nbit_errors={}\nframe_errors={}\nundetected_frame_errors={}\n\
             total_iterations={}\ninfo_bits_per_frame={}\n",
            self.frames,
            self.bit_errors,
            self.frame_errors,
            self.undetected_frame_errors,
            self.total_iterations,
            self.info_bits_per_frame
        )
    }

    fn parse(text: &str) -> Option<Self> {
        let mut counts = Self {
            frames: 0,
            bit_errors: 0,
            frame_errors: 0,
            undetected_frame_errors: 0,
            total_iterations: 0,
            info_bits_per_frame: 0,
        };
        let mut seen = 0u32;
        for line in text.lines() {
            let (key, value) = line.split_once('=')?;
            let value: u64 = value.parse().ok()?;
            let field = match key {
                "frames" => &mut counts.frames,
                "bit_errors" => &mut counts.bit_errors,
                "frame_errors" => &mut counts.frame_errors,
                "undetected_frame_errors" => &mut counts.undetected_frame_errors,
                "total_iterations" => &mut counts.total_iterations,
                "info_bits_per_frame" => &mut counts.info_bits_per_frame,
                _ => return None,
            };
            *field = value;
            seen += 1;
        }
        (seen == 6).then_some(counts)
    }
}

/// Separator between the embedded key and the counts in a chunk file.
const CHUNK_SEPARATOR: &str = "----\n";

/// The canonical, versioned identity of one chunk — the preimage of its
/// cache address.
///
/// Everything that determines the chunk's counts is in the key: the
/// canonical scenario string (specs render canonically, so `minsum` and
/// `ms` address the same chunks), the operating point (`{:?}` on `f64`
/// is the shortest round-trip form), the chunk's own engine seed, its
/// frame budget, and the decoder iteration budget. The error *target*
/// is deliberately absent: chunks always run their full budget with no
/// early stop, so the same cache serves any target — adaptive stopping
/// is applied between chunks at merge time.
///
/// The chunk file stored at `sha256_hex(key).chunk` embeds this key and
/// is rejected on mismatch, so a (astronomically unlikely) hash
/// collision or a torn file degrades to a cache miss, never to wrong
/// counts.
pub fn chunk_key(
    scenario: &Scenario,
    ebn0_db: f64,
    seed: u64,
    frames: u64,
    max_iterations: u32,
) -> String {
    format!(
        "ldpc-sweep-chunk-v1\nscenario={scenario}\nebn0_db={ebn0_db:?}\nseed={seed}\n\
         frames={frames}\nmax_iterations={max_iterations}\ntransmission=all-zero\n"
    )
}

fn chunk_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{}.chunk", sha256_hex(key.as_bytes())))
}

/// Loads a chunk from the cache; any miss, parse failure, key mismatch,
/// or frame-count mismatch is a plain `None` (the chunk is re-simulated
/// and the file overwritten — corruption can cost work, never
/// correctness).
fn load_chunk(dir: &Path, key: &str, expect_frames: u64) -> Option<ChunkCounts> {
    let text = fs::read_to_string(chunk_path(dir, key)).ok()?;
    let (stored_key, body) = text.split_once(CHUNK_SEPARATOR)?;
    if stored_key != key.strip_suffix('\n').unwrap_or(key) {
        return None;
    }
    let counts = ChunkCounts::parse(body)?;
    (counts.frames == expect_frames).then_some(counts)
}

/// Distinguishes concurrent writers' temporary files within one process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Persists a finished chunk: write-to-temp + rename, so a reader never
/// observes a torn file and concurrent sweeps over the same cache
/// directory last-write-win identical content.
fn store_chunk(dir: &Path, key: &str, counts: &ChunkCounts) -> Result<(), SweepError> {
    let cache_err = |path: &Path, e: std::io::Error| SweepError::Cache {
        path: path.to_path_buf(),
        message: e.to_string(),
    };
    fs::create_dir_all(dir).map_err(|e| cache_err(dir, e))?;
    let path = chunk_path(dir, key);
    let tmp = dir.join(format!(
        "{}.tmp-{}-{}",
        sha256_hex(key.as_bytes()),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let body = format!(
        "{}{CHUNK_SEPARATOR}{}",
        key.strip_suffix('\n').unwrap_or(key),
        counts.render()
    );
    fs::write(&tmp, body).map_err(|e| cache_err(&tmp, e))?;
    fs::rename(&tmp, &path).map_err(|e| cache_err(&path, e))
}

// ---------------------------------------------------------------------------
// Public sweep types
// ---------------------------------------------------------------------------

/// One work unit of a sweep: a scenario at one operating point with its
/// own base seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepUnit {
    /// The experiment (code / channel / decoder).
    pub scenario: Scenario,
    /// Operating point in dB.
    pub ebn0_db: f64,
    /// Base seed of this point; chunk `c` derives its engine seed as
    /// `seed + c · WORKER_SEED_STRIDE`.
    pub seed: u64,
}

impl SweepUnit {
    fn chunk_seed(&self, chunk_index: usize) -> u64 {
        self.seed
            .wrapping_add(WORKER_SEED_STRIDE.wrapping_mul(chunk_index as u64))
    }
}

/// Expands scenarios × Eb/N0 points into [`SweepUnit`]s with the
/// workspace's standard seed derivation: point `i` of every scenario is
/// seeded `base_seed + i · CURVE_SEED_STRIDE`, exactly like
/// [`run_curve_scenario`](crate::run_curve_scenario) — so an orchestrated
/// sweep at `target_frame_errors: 0` with a whole-budget chunk
/// reproduces the legacy curve bit for bit (pinned by tests). Unit
/// order is scenario-major with Eb/N0 innermost, matching `ldpc-tool
/// sweep`'s CSV row order.
pub fn sweep_grid(scenarios: &[Scenario], ebn0_points: &[f64], base_seed: u64) -> Vec<SweepUnit> {
    let mut units = Vec::with_capacity(scenarios.len() * ebn0_points.len());
    for scenario in scenarios {
        for (i, &ebn0_db) in ebn0_points.iter().enumerate() {
            units.push(SweepUnit {
                scenario: scenario.clone(),
                ebn0_db,
                seed: base_seed.wrapping_add(i as u64 * CURVE_SEED_STRIDE),
            });
        }
    }
    units
}

/// Configuration of one orchestrated sweep (applies to every unit).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Frame cap per point, rounded **up** to a whole number of chunks
    /// (see [`SweepUnitResult::effective_max_frames`]) so resumed and
    /// cold runs decompose identically.
    pub max_frames: u64,
    /// Stop a point once its merged chunk prefix has this many frame
    /// errors (0 = run every point to the cap).
    pub target_frame_errors: u64,
    /// Frames per chunk — the scheduling and caching quantum. Clamped
    /// to `1..=max_frames`. Smaller chunks stop more precisely and
    /// parallelize better; larger chunks amortize per-chunk setup.
    pub chunk_frames: u64,
    /// Decoder iteration budget per frame (part of the cache key).
    pub max_iterations: u32,
    /// Worker threads (0 = available parallelism). Merged counts do not
    /// depend on this; only wall time and speculative overshoot do.
    pub threads: usize,
    /// Chunk cache directory (`None` disables caching and resume).
    pub cache_dir: Option<PathBuf>,
    /// Optional live gauge: incremented by every frame the sweep
    /// accounts for — simulated frames at claim time, cached frames at
    /// adoption time — for progress reporting from another thread.
    pub progress_frames: Option<Arc<AtomicU64>>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            max_frames: 10_000,
            target_frame_errors: 100,
            chunk_frames: 1_000,
            max_iterations: 18,
            threads: 0,
            cache_dir: None,
            progress_frames: None,
        }
    }
}

/// The outcome of one [`SweepUnit`]: merged statistics plus the
/// accounting that makes resume auditable.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepUnitResult {
    /// The experiment this point belongs to.
    pub scenario: Scenario,
    /// Operating point in dB.
    pub ebn0_db: f64,
    /// Merged counts of the stop prefix — invariant under thread count
    /// and cold/warm/resumed execution.
    pub point: PointResult,
    /// Frames actually simulated by this run (0 on a fully warm cache).
    pub frames_simulated: u64,
    /// Frames adopted from the cache instead of simulated.
    pub frames_from_cache: u64,
    /// Chunks merged into `point` (the stop prefix length).
    pub chunks_merged: u64,
    /// The cap after rounding up to whole chunks.
    pub effective_max_frames: u64,
    /// `true` if the point stopped on reaching the frame-error target,
    /// `false` if it exhausted `effective_max_frames`.
    pub hit_target: bool,
}

/// Error produced by [`run_sweep`].
#[derive(Debug)]
pub enum SweepError {
    /// A unit's code spec failed to build.
    Code(ScenarioError),
    /// The chunk cache could not be written.
    Cache {
        /// The file or directory the operation failed on.
        path: PathBuf,
        /// The underlying I/O error.
        message: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Code(e) => write!(f, "building a sweep unit's code: {e}"),
            Self::Cache { path, message } => {
                write!(f, "writing sweep cache entry {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for SweepError {}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

/// Stop decision of one point: how many prefix chunks are merged, and
/// whether the error target (rather than the cap) ended it.
#[derive(Debug, Clone, Copy)]
struct Stop {
    chunks: usize,
    hit_target: bool,
}

/// Per-point scheduling state. Chunks complete in any order; the merge
/// prefix only ever advances over contiguous completed chunks from 0,
/// and the stop rule is evaluated on that prefix alone — which is what
/// makes the merged result independent of scheduling.
struct PointState {
    n_chunks: usize,
    /// Next chunk index not yet handed to a worker.
    next: usize,
    /// Chunks handed out but not yet recorded.
    in_flight: usize,
    completed: Vec<Option<ChunkCounts>>,
    /// Contiguous completed chunks from 0 already counted into the
    /// prefix error tally.
    prefix_len: usize,
    prefix_errors: u64,
    stop: Option<Stop>,
    frames_simulated: u64,
    frames_from_cache: u64,
}

impl PointState {
    fn new(n_chunks: usize) -> Self {
        Self {
            n_chunks,
            next: 0,
            in_flight: 0,
            completed: vec![None; n_chunks],
            prefix_len: 0,
            prefix_errors: 0,
            stop: None,
            frames_simulated: 0,
            frames_from_cache: 0,
        }
    }

    /// Advances the merge prefix over newly contiguous chunks and
    /// applies the stop rule.
    fn advance(&mut self, target_frame_errors: u64) {
        while self.stop.is_none() {
            let Some(Some(counts)) = self.completed.get(self.prefix_len) else {
                break;
            };
            self.prefix_errors += counts.frame_errors;
            self.prefix_len += 1;
            if target_frame_errors > 0 && self.prefix_errors >= target_frame_errors {
                self.stop = Some(Stop {
                    chunks: self.prefix_len,
                    hit_target: true,
                });
            } else if self.prefix_len == self.n_chunks {
                self.stop = Some(Stop {
                    chunks: self.n_chunks,
                    hit_target: false,
                });
            }
        }
    }
}

struct Sched {
    points: Vec<PointState>,
    /// Points whose stop rule has not fired yet.
    unresolved: usize,
    error: Option<SweepError>,
}

impl Sched {
    /// Hands out the lowest unscheduled chunk of the first point that
    /// can still make progress. The per-point speculation window
    /// (`prefix_len + window`) bounds wasted work past an undecided
    /// stop rule to one chunk per worker; when a point's window is
    /// full, workers flow to the next point — work stealing across the
    /// grid.
    fn take_job(&mut self, window: usize) -> Option<(usize, usize)> {
        for (p, point) in self.points.iter_mut().enumerate() {
            if point.stop.is_none()
                && point.next < point.n_chunks
                && point.next < point.prefix_len + window
            {
                let c = point.next;
                point.next += 1;
                point.in_flight += 1;
                return Some((p, c));
            }
        }
        None
    }
}

/// Builds (or reuses) the code handle of a scenario. Handles are shared
/// across every unit of the sweep by canonical code spec, so each code
/// is constructed exactly once — and never at all when the cache fully
/// resolves every unit that needs it.
fn code_handle(
    handles: &Mutex<HashMap<String, Arc<dyn CodeHandle>>>,
    scenario: &Scenario,
) -> Result<Arc<dyn CodeHandle>, SweepError> {
    let key = scenario.code.to_string();
    let mut map = handles.lock().unwrap();
    if let Some(handle) = map.get(&key) {
        return Ok(Arc::clone(handle));
    }
    let handle = scenario.build_code().map_err(SweepError::Code)?;
    map.insert(key, Arc::clone(&handle));
    Ok(handle)
}

/// Runs a sweep: every unit chunked, scheduled across the worker pool,
/// stopped adaptively, and (with a cache directory) resumable.
///
/// DESIGN.md §7 records the scheduling and determinism contract.
/// Returns one [`SweepUnitResult`] per unit, in unit order.
///
/// # Errors
///
/// [`SweepError::Code`] if a unit's code spec cannot be built;
/// [`SweepError::Cache`] if a finished chunk cannot be persisted.
/// Cache *read* problems are never errors — unreadable or corrupt
/// entries are re-simulated.
///
/// # Panics
///
/// Panics if `cfg.max_frames == 0`.
pub fn run_sweep(
    units: &[SweepUnit],
    cfg: &SweepConfig,
) -> Result<Vec<SweepUnitResult>, SweepError> {
    assert!(cfg.max_frames > 0, "max_frames must be positive");
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        cfg.threads
    };
    let chunk = cfg.chunk_frames.clamp(1, cfg.max_frames);
    let n_chunks = usize::try_from(cfg.max_frames.div_ceil(chunk)).expect("chunk count fits usize");
    let progress = cfg.progress_frames.as_deref();

    // Phase 1: adopt each unit's contiguous cached prefix serially. A
    // fully warm cache resolves every point here — no worker threads,
    // no code construction, no simulation.
    let mut points = Vec::with_capacity(units.len());
    for unit in units {
        let mut state = PointState::new(n_chunks);
        if let Some(dir) = &cfg.cache_dir {
            while state.stop.is_none() && state.prefix_len < n_chunks {
                let c = state.prefix_len;
                let key = chunk_key(
                    &unit.scenario,
                    unit.ebn0_db,
                    unit.chunk_seed(c),
                    chunk,
                    cfg.max_iterations,
                );
                let Some(counts) = load_chunk(dir, &key, chunk) else {
                    break;
                };
                state.frames_from_cache += counts.frames;
                if let Some(progress) = progress {
                    progress.fetch_add(counts.frames, Ordering::Relaxed);
                }
                state.completed[c] = Some(counts);
                state.advance(cfg.target_frame_errors);
            }
            state.next = state.prefix_len;
        }
        points.push(state);
    }

    let unresolved = points.iter().filter(|p| p.stop.is_none()).count();
    let sched = Mutex::new(Sched {
        points,
        unresolved,
        error: None,
    });
    let work_cv = Condvar::new();
    let handles: Mutex<HashMap<String, Arc<dyn CodeHandle>>> = Mutex::new(HashMap::new());

    // Phase 2: the worker pool drains chunks until every point's stop
    // rule has fired (or an error aborts the sweep).
    if unresolved > 0 {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let (p, c) = {
                        let mut st = sched.lock().unwrap();
                        loop {
                            if st.error.is_some() || st.unresolved == 0 {
                                return;
                            }
                            if let Some(job) = st.take_job(threads) {
                                break job;
                            }
                            st = work_cv.wait(st).unwrap();
                        }
                    };
                    let unit = &units[p];
                    let key = chunk_key(
                        &unit.scenario,
                        unit.ebn0_db,
                        unit.chunk_seed(c),
                        chunk,
                        cfg.max_iterations,
                    );
                    let mut from_cache = false;
                    let outcome = (|| {
                        if let Some(dir) = &cfg.cache_dir {
                            // Beyond-prefix chunks cached by an earlier
                            // speculative run are found here, after the
                            // serial preload stopped at its first miss.
                            if let Some(counts) = load_chunk(dir, &key, chunk) {
                                from_cache = true;
                                if let Some(progress) = progress {
                                    progress.fetch_add(counts.frames, Ordering::Relaxed);
                                }
                                return Ok(counts);
                            }
                        }
                        let handle = code_handle(&handles, &unit.scenario)?;
                        let mc = MonteCarloConfig {
                            ebn0_db: unit.ebn0_db,
                            max_frames: chunk,
                            target_frame_errors: 0,
                            max_iterations: cfg.max_iterations,
                            seed: unit.chunk_seed(c),
                            threads: 1,
                            transmission: Transmission::AllZero,
                        };
                        let point =
                            run_point_scenario_observed(&handle, &unit.scenario, &mc, progress);
                        let counts = ChunkCounts::from_point(&point);
                        if let Some(dir) = &cfg.cache_dir {
                            store_chunk(dir, &key, &counts)?;
                        }
                        Ok(counts)
                    })();
                    let mut st = sched.lock().unwrap();
                    match outcome {
                        Ok(counts) => {
                            let point = &mut st.points[p];
                            point.in_flight -= 1;
                            if from_cache {
                                point.frames_from_cache += counts.frames;
                            } else {
                                point.frames_simulated += counts.frames;
                            }
                            point.completed[c] = Some(counts);
                            let was_resolved = point.stop.is_some();
                            point.advance(cfg.target_frame_errors);
                            if !was_resolved && point.stop.is_some() {
                                st.unresolved -= 1;
                            }
                        }
                        Err(e) => {
                            st.error.get_or_insert(e);
                        }
                    }
                    work_cv.notify_all();
                });
            }
        });
    }

    let sched = sched.into_inner().unwrap();
    if let Some(e) = sched.error {
        return Err(e);
    }

    Ok(units
        .iter()
        .zip(sched.points)
        .map(|(unit, state)| {
            let stop = state.stop.expect("every point resolved");
            let mut point = PointResult {
                ebn0_db: unit.ebn0_db,
                frames: 0,
                bit_errors: 0,
                frame_errors: 0,
                undetected_frame_errors: 0,
                total_iterations: 0,
                info_bits_per_frame: 0,
            };
            for counts in state.completed[..stop.chunks]
                .iter()
                .map(|c| c.expect("merged prefix is complete"))
            {
                debug_assert!(
                    point.frames == 0 || point.info_bits_per_frame == counts.info_bits_per_frame,
                    "chunks of one unit must count the same positions"
                );
                point.frames += counts.frames;
                point.bit_errors += counts.bit_errors;
                point.frame_errors += counts.frame_errors;
                point.undetected_frame_errors += counts.undetected_frame_errors;
                point.total_iterations += counts.total_iterations;
                point.info_bits_per_frame = counts.info_bits_per_frame;
            }
            SweepUnitResult {
                scenario: unit.scenario.clone(),
                ebn0_db: unit.ebn0_db,
                point,
                frames_simulated: state.frames_simulated,
                frames_from_cache: state.frames_from_cache,
                chunks_merged: stop.chunks as u64,
                effective_max_frames: n_chunks as u64 * chunk,
                hit_target: stop.hit_target,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_curve_scenario_with, run_point_scenario_with};

    fn sc(s: &str) -> Scenario {
        Scenario::parse(s).unwrap()
    }

    fn quick_sweep_cfg() -> SweepConfig {
        SweepConfig {
            max_frames: 200,
            target_frame_errors: 0,
            chunk_frames: 200,
            max_iterations: 20,
            threads: 1,
            cache_dir: None,
            progress_frames: None,
        }
    }

    fn point_cfg(ebn0_db: f64, seed: u64, max_frames: u64) -> MonteCarloConfig {
        MonteCarloConfig {
            ebn0_db,
            max_frames,
            target_frame_errors: 0,
            max_iterations: 20,
            seed,
            threads: 1,
            transmission: Transmission::AllZero,
        }
    }

    fn temp_cache(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ldpc-sweep-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Two-block message (FIPS 180-4 example B.2).
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn chunk_cache_roundtrips_and_rejects_corruption() {
        let dir = temp_cache("roundtrip");
        let key = chunk_key(&sc("demo / awgn / nms:1.25"), 4.0, 42, 100, 20);
        let counts = ChunkCounts {
            frames: 100,
            bit_errors: 7,
            frame_errors: 3,
            undetected_frame_errors: 1,
            total_iterations: 250,
            info_bits_per_frame: 128,
        };
        assert_eq!(load_chunk(&dir, &key, 100), None, "cold cache is a miss");
        store_chunk(&dir, &key, &counts).unwrap();
        assert_eq!(load_chunk(&dir, &key, 100), Some(counts));
        // A frame-budget mismatch is a miss even with matching content.
        assert_eq!(load_chunk(&dir, &key, 200), None);
        // Truncation and key tampering degrade to misses, not bad counts.
        let path = chunk_path(&dir, &key);
        fs::write(&path, "garbage").unwrap();
        assert_eq!(load_chunk(&dir, &key, 100), None);
        let other = chunk_key(&sc("demo / awgn / nms:1.25"), 4.0, 43, 100, 20);
        let body = format!(
            "{}{CHUNK_SEPARATOR}{}",
            other.strip_suffix('\n').unwrap(),
            counts.render()
        );
        fs::write(&path, body).unwrap();
        assert_eq!(load_chunk(&dir, &key, 100), None, "embedded key must match");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn whole_budget_chunk_matches_curve_door_exactly() {
        // target 0 + one chunk per point ≡ the legacy curve run: same
        // seeds, same single-threaded engine, bit-identical counts.
        let scenario = sc("demo / awgn / nms:1.25");
        let ebn0s = [2.0, 4.0];
        let units = sweep_grid(std::slice::from_ref(&scenario), &ebn0s, 99);
        assert_eq!(units[1].seed, 99u64.wrapping_add(CURVE_SEED_STRIDE));
        let results = run_sweep(&units, &quick_sweep_cfg()).unwrap();
        let handle = scenario.build_code().unwrap();
        let curve = run_curve_scenario_with(&handle, &scenario, &ebn0s, &point_cfg(0.0, 99, 200));
        assert_eq!(results.len(), 2);
        for (r, expected) in results.iter().zip(curve) {
            assert_eq!(r.point, expected);
            assert_eq!(r.frames_simulated, 200);
            assert_eq!(r.frames_from_cache, 0);
            assert_eq!(r.chunks_merged, 1);
            assert!(!r.hit_target);
        }
    }

    #[test]
    fn chunked_merge_is_the_exact_sum_of_chunk_runs() {
        let scenario = sc("demo / awgn / fixed");
        let units = sweep_grid(std::slice::from_ref(&scenario), &[3.0], 7);
        let cfg = SweepConfig {
            max_frames: 150,
            chunk_frames: 50,
            ..quick_sweep_cfg()
        };
        let result = &run_sweep(&units, &cfg).unwrap()[0];
        let handle = scenario.build_code().unwrap();
        let mut expected = (0u64, 0u64, 0u64, 0u64);
        for c in 0..3 {
            let seed = 7u64.wrapping_add(WORKER_SEED_STRIDE.wrapping_mul(c));
            let p = run_point_scenario_with(&handle, &scenario, &point_cfg(3.0, seed, 50));
            expected.0 += p.frames;
            expected.1 += p.bit_errors;
            expected.2 += p.frame_errors;
            expected.3 += p.total_iterations;
        }
        assert_eq!(result.point.frames, expected.0);
        assert_eq!(result.point.bit_errors, expected.1);
        assert_eq!(result.point.frame_errors, expected.2);
        assert_eq!(result.point.total_iterations, expected.3);
        assert_eq!(result.chunks_merged, 3);
    }

    #[test]
    fn adaptive_stop_halts_at_the_first_satisfying_prefix() {
        // At -4 dB essentially every frame errors: the first chunk
        // already satisfies the target, so exactly one chunk is merged.
        let units = sweep_grid(&[sc("demo / awgn / nms:1.25")], &[-4.0], 3);
        let cfg = SweepConfig {
            max_frames: 400,
            target_frame_errors: 5,
            chunk_frames: 40,
            ..quick_sweep_cfg()
        };
        let result = &run_sweep(&units, &cfg).unwrap()[0];
        assert!(result.hit_target);
        assert_eq!(result.point.frames, 40);
        assert!(result.point.frame_errors >= 5);
        assert_eq!(result.chunks_merged, 1);
    }

    #[test]
    fn cap_rounds_up_to_whole_chunks() {
        let units = sweep_grid(&[sc("demo / awgn / fixed")], &[4.0], 1);
        let cfg = SweepConfig {
            max_frames: 250,
            chunk_frames: 100,
            ..quick_sweep_cfg()
        };
        let result = &run_sweep(&units, &cfg).unwrap()[0];
        assert_eq!(result.effective_max_frames, 300);
        assert_eq!(result.point.frames, 300);
        assert!(!result.hit_target);
    }

    #[test]
    fn warm_cache_rerun_simulates_nothing() {
        let dir = temp_cache("warm");
        let units = sweep_grid(&[sc("demo / awgn / nms:1.25")], &[2.0, 4.0], 5);
        let progress = Arc::new(AtomicU64::new(0));
        let cfg = SweepConfig {
            max_frames: 120,
            chunk_frames: 60,
            cache_dir: Some(dir.clone()),
            progress_frames: Some(Arc::clone(&progress)),
            ..quick_sweep_cfg()
        };
        let cold = run_sweep(&units, &cfg).unwrap();
        assert!(cold.iter().all(|r| r.frames_simulated == 120));
        assert_eq!(progress.load(Ordering::Relaxed), 240);
        let warm = run_sweep(&units, &cfg).unwrap();
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.point, w.point);
            assert_eq!(w.frames_simulated, 0);
            assert_eq!(w.frames_from_cache, 120);
        }
        assert_eq!(progress.load(Ordering::Relaxed), 480);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_extends_budget_and_matches_cold_run_bit_for_bit() {
        let dir = temp_cache("resume");
        let units = sweep_grid(&[sc("demo / awgn / nms:1.25")], &[1.0], 21);
        let small = SweepConfig {
            max_frames: 100,
            chunk_frames: 50,
            cache_dir: Some(dir.clone()),
            ..quick_sweep_cfg()
        };
        let first = &run_sweep(&units, &small).unwrap()[0];
        assert_eq!(first.frames_simulated, 100);
        // Double the budget: only the extension is simulated…
        let big = SweepConfig {
            max_frames: 200,
            ..small.clone()
        };
        let resumed = &run_sweep(&units, &big).unwrap()[0];
        assert_eq!(resumed.frames_from_cache, 100);
        assert_eq!(resumed.frames_simulated, 100);
        // …and the merged counts equal a cold cacheless run of the
        // combined budget.
        let cold_cfg = SweepConfig {
            cache_dir: None,
            ..big
        };
        let cold = &run_sweep(&units, &cold_cfg).unwrap()[0];
        assert_eq!(resumed.point, cold.point);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_chunks_serve_any_error_target() {
        // The target is not part of the chunk key: chunks cached by a
        // capped run are reused verbatim by an adaptive run.
        let dir = temp_cache("targets");
        let units = sweep_grid(&[sc("demo / awgn / nms:1.25")], &[-2.0], 13);
        let full = SweepConfig {
            max_frames: 120,
            chunk_frames: 40,
            cache_dir: Some(dir.clone()),
            ..quick_sweep_cfg()
        };
        run_sweep(&units, &full).unwrap();
        let adaptive = SweepConfig {
            target_frame_errors: 3,
            ..full
        };
        let result = &run_sweep(&units, &adaptive).unwrap()[0];
        assert_eq!(result.frames_simulated, 0, "warm chunks cover the target");
        assert!(result.hit_target);
        assert_eq!(result.point.frames, 40);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merged_point_is_thread_count_invariant() {
        // The prefix stop rule makes the merged counts a pure function
        // of the unit — speculative chunks never leak into the result.
        let units = sweep_grid(
            &[sc("demo / awgn / nms:1.25"), sc("demo / bsc:0.04 / fixed")],
            &[0.0, 2.0],
            17,
        );
        let cfg = SweepConfig {
            max_frames: 200,
            target_frame_errors: 3,
            chunk_frames: 40,
            ..quick_sweep_cfg()
        };
        let serial = run_sweep(&units, &cfg).unwrap();
        let parallel = run_sweep(&units, &SweepConfig { threads: 4, ..cfg }).unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.hit_target, b.hit_target);
            assert_eq!(a.chunks_merged, b.chunks_merged);
        }
    }

    #[test]
    fn bad_code_spec_surfaces_as_an_error() {
        let units = sweep_grid(&[sc("shortened:demo,k=9999 / awgn / nms")], &[4.0], 1);
        let err = run_sweep(&units, &quick_sweep_cfg()).unwrap_err();
        assert!(err.to_string().contains("code"), "{err}");
    }
}
