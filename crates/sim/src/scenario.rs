//! The scenario front door: one string names a complete experiment.
//!
//! A [`Scenario`] composes the three spec grammars of the workspace —
//! [`CodeSpec`] (`ldpc-core`), [`ChannelSpec`] (`ldpc-channel`), and
//! [`DecoderSpec`] (`ldpc-core`) — into a single serializable record:
//!
//! ```text
//!   <code> / <channel> / <decoder>
//! ```
//!
//! ```
//! use ldpc_sim::Scenario;
//!
//! let sc = Scenario::parse("c2 / awgn / nms:1.25")?;
//! assert_eq!(sc.to_string(), "c2 / awgn / nms:1.25");
//!
//! // Parameters nest freely; the separator is a slash with whitespace
//! // around it, so AR4JA's rate fraction is unambiguous.
//! let sc = Scenario::parse("ar4ja:r=2/3,k=1024 / bsc:0.02 / fixed@batch=8")?;
//! assert_eq!(sc.code.to_string(), "ar4ja:r=2/3");
//!
//! // Two-part shorthand: `code / decoder`, channel defaults to awgn.
//! // The serving wire protocol (`ldpc-served`) and the docs share this
//! // parser, so "c2 / fixed@pack=8" is a complete spec there.
//! let sc = Scenario::parse("c2 / fixed@pack=8")?;
//! assert_eq!(sc.to_string(), "c2 / awgn / fixed@pack=8");
//! # Ok::<(), ldpc_sim::ScenarioError>(())
//! ```
//!
//! [`run_point_scenario`] and [`run_curve_scenario`] drive the same
//! Monte-Carlo engine as every other door in this crate: the code spec
//! builds a [`CodeHandle`] (transmission profile included), the channel
//! spec builds one [`Channel`](ldpc_channel::Channel) per worker, and
//! the decoder spec builds one [`BlockDecoder`](ldpc_core::BlockDecoder)
//! per worker. For plain codes on `awgn`, single-threaded counts are
//! bit-identical to [`run_point_spec`](crate::run_point_spec) (pinned by
//! tests) — the scenario door adds scope, not a second engine.
//!
//! Scenario runs simulate the all-zero codeword (standard practice for
//! linear codes on symmetric channels; also the only transmission the
//! punctured/shortened profiles support). Error counting runs over the
//! transmitted positions.
//!
//! The full grammar, the registry tables, and copy-pasteable recipes
//! live in `docs/scenarios.md`.

use crate::{run_point_engine, MonteCarloConfig, PointResult};
use ldpc_channel::{ChannelSpec, ChannelSpecError};
use ldpc_core::{CodeHandle, CodeSpec, CodeSpecError, DecoderSpec, SpecError};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A complete, serializable experiment description: code × channel ×
/// decoder.
///
/// Parse one from `"<code> / <channel> / <decoder>"`, from the two-part
/// shorthand `"<code> / <decoder>"` (channel defaults to `awgn`), or
/// assemble the three specs directly — the fields are public.
/// [`Display`](fmt::Display) renders the canonical three-part form of
/// each part joined by `" / "`, and `parse(display(s)) == s` for every
/// valid scenario (proptested).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// What is transmitted: the code and its transmission profile.
    pub code: CodeSpec,
    /// What it is transmitted over.
    pub channel: ChannelSpec,
    /// What decodes it.
    pub decoder: DecoderSpec,
}

impl Scenario {
    /// Parses a scenario string — alias of the [`FromStr`] impl.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] naming the offending part (code,
    /// channel, or decoder) with that grammar's own actionable message.
    pub fn parse(s: &str) -> Result<Self, ScenarioError> {
        s.parse()
    }

    /// Builds the code handle of this scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Code`] if the code spec cannot be built
    /// (e.g. a `shortened:` k at or above the base dimension).
    pub fn build_code(&self) -> Result<Arc<dyn CodeHandle>, ScenarioError> {
        self.code.build().map_err(ScenarioError::Code)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {} / {}", self.code, self.channel, self.decoder)
    }
}

/// Splits a scenario string on standalone slashes (whitespace on at
/// least one side), so `ar4ja:r=1/2` survives intact. A compact string
/// with no standalone slash falls back to splitting on every slash —
/// fine for `c2/awgn/nms`, rejected with a hint otherwise.
fn split_parts(s: &str) -> Vec<&str> {
    let bytes = s.as_bytes();
    let mut parts = Vec::new();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'/' {
            continue;
        }
        let space_before = i > 0 && bytes[i - 1].is_ascii_whitespace();
        let space_after = i + 1 < bytes.len() && bytes[i + 1].is_ascii_whitespace();
        if space_before || space_after {
            parts.push(s[start..i].trim());
            start = i + 1;
        }
    }
    parts.push(s[start..].trim());
    if parts.len() == 1 && matches!(s.matches('/').count(), 1 | 2) {
        return s.split('/').map(str::trim).collect();
    }
    parts
}

impl FromStr for Scenario {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, ScenarioError> {
        let parts = split_parts(s.trim());
        match parts.len() {
            2 => {
                let code = parts[0].parse().map_err(ScenarioError::Code)?;
                let decoder = match parts[1].parse() {
                    Ok(d) => d,
                    // A channel where the decoder belongs means the caller
                    // meant the 3-part form and stopped early — name it.
                    Err(_) if parts[1].parse::<ChannelSpec>().is_ok() => {
                        return Err(ScenarioError::ChannelNeedsDecoder {
                            channel: parts[1].to_string(),
                        });
                    }
                    Err(e) => return Err(ScenarioError::Decoder(e)),
                };
                Ok(Scenario {
                    code,
                    channel: ChannelSpec::awgn(),
                    decoder,
                })
            }
            3 => Ok(Scenario {
                code: parts[0].parse().map_err(ScenarioError::Code)?,
                channel: parts[1].parse().map_err(ScenarioError::Channel)?,
                decoder: parts[2].parse().map_err(ScenarioError::Decoder)?,
            }),
            found => Err(ScenarioError::Shape { found }),
        }
    }
}

/// Error produced while parsing or building a [`Scenario`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The string did not split into code / channel / decoder (or the
    /// two-part code / decoder shorthand).
    Shape {
        /// How many parts were found.
        found: usize,
    },
    /// A two-part scenario put a channel where the decoder belongs.
    ChannelNeedsDecoder {
        /// The channel spec found in the decoder position.
        channel: String,
    },
    /// The code part failed to parse or build.
    Code(CodeSpecError),
    /// The channel part failed to parse.
    Channel(ChannelSpecError),
    /// The decoder part failed to parse.
    Decoder(SpecError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shape { found } => write!(
                f,
                "a scenario is `code / channel / decoder` \
                 (e.g. \"c2 / awgn / nms:1.25\") or the two-part shorthand \
                 `code / decoder` (channel defaults to awgn), but {found} \
                 part(s) were found; separate the parts with ` / ` (slash \
                 needs whitespace when a spec itself contains one, as in \
                 ar4ja:r=1/2)"
            ),
            Self::ChannelNeedsDecoder { channel } => write!(
                f,
                "two-part scenarios are `code / decoder` (channel defaults \
                 to awgn), but \"{channel}\" is a channel; name the decoder \
                 too, as in the full form `code / channel / decoder`"
            ),
            Self::Code(e) => write!(f, "in the code part: {e}"),
            Self::Channel(e) => write!(f, "in the channel part: {e}"),
            Self::Decoder(e) => write!(f, "in the decoder part: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Simulates one Eb/N0 point of a [`Scenario`] — the fully declarative
/// door of the one Monte-Carlo engine.
///
/// The code handle is built once; each worker thread builds its own
/// channel (from the scenario's channel spec at `cfg.ebn0_db` and the
/// code's effective rate, with the worker's derived seed) and its own
/// decoder. `cfg.ebn0_db` sets σ for the Gaussian models; a `bsc:p`
/// channel's severity is its fixed crossover probability, so Eb/N0 is
/// bookkeeping there.
///
/// Error counting runs over the transmitted positions, and
/// `cfg.transmission` must be [`Transmission::AllZero`](crate::Transmission::AllZero) (the engine
/// asserts; punctured and shortened profiles have no random-codeword
/// path).
///
/// # Errors
///
/// Returns [`ScenarioError::Code`] if the code spec cannot be built.
///
/// # Panics
///
/// Panics if `cfg.max_frames == 0` or `cfg.transmission` is
/// [`Transmission::Random`](crate::Transmission::Random) for a code that does not transmit every
/// position.
pub fn run_point_scenario(
    scenario: &Scenario,
    cfg: &MonteCarloConfig,
) -> Result<PointResult, ScenarioError> {
    let handle = scenario.build_code()?;
    Ok(run_point_scenario_with(&handle, scenario, cfg))
}

/// [`run_point_scenario`] over an already-built code handle (normally
/// `scenario.build_code()`), so grid sweeps can build each code once
/// and reuse it across channels and decoders. Only the scenario's
/// channel and decoder specs are consulted; the code comes from
/// `handle`.
pub fn run_point_scenario_with(
    handle: &Arc<dyn CodeHandle>,
    scenario: &Scenario,
    cfg: &MonteCarloConfig,
) -> PointResult {
    run_point_scenario_observed(handle, scenario, cfg, None)
}

/// [`run_point_scenario_with`] plus an optional external progress
/// counter, incremented at frame-claim time (the orchestrator's live
/// gauge; see `run_point_engine`).
pub(crate) fn run_point_scenario_observed(
    handle: &Arc<dyn CodeHandle>,
    scenario: &Scenario,
    cfg: &MonteCarloConfig,
    progress: Option<&std::sync::atomic::AtomicU64>,
) -> PointResult {
    let positions = handle.transmitted_positions();
    run_point_engine(
        handle.as_ref(),
        None,
        &positions,
        &scenario.channel,
        cfg,
        || scenario.decoder.build(handle.code()),
        progress,
    )
}

/// Sweeps a list of Eb/N0 points of a [`Scenario`] — the declarative
/// counterpart of [`run_curve_blocks`](crate::run_curve_blocks), with
/// the same per-point seed derivation (`base.seed + i · 0x5151_5151`),
/// so a scenario sweep's point `i` reproduces a
/// [`run_point_scenario`] run with that point's config exactly.
///
/// The code is built once for the whole curve.
///
/// # Errors
///
/// Returns [`ScenarioError::Code`] if the code spec cannot be built.
pub fn run_curve_scenario(
    scenario: &Scenario,
    ebn0_points: &[f64],
    base: &MonteCarloConfig,
) -> Result<Vec<PointResult>, ScenarioError> {
    let handle = scenario.build_code()?;
    Ok(run_curve_scenario_with(
        &handle,
        scenario,
        ebn0_points,
        base,
    ))
}

/// [`run_curve_scenario`] over an already-built code handle — the
/// curve-shaped counterpart of [`run_point_scenario_with`], with the
/// same per-point seed derivation.
pub fn run_curve_scenario_with(
    handle: &Arc<dyn CodeHandle>,
    scenario: &Scenario,
    ebn0_points: &[f64],
    base: &MonteCarloConfig,
) -> Vec<PointResult> {
    ebn0_points
        .iter()
        .enumerate()
        .map(|(i, &ebn0_db)| {
            let cfg = MonteCarloConfig {
                ebn0_db,
                seed: base.seed.wrapping_add(i as u64 * crate::CURVE_SEED_STRIDE),
                ..base.clone()
            };
            run_point_scenario_with(handle, scenario, &cfg)
        })
        .collect()
}

/// Splits a comma-separated list of spec strings, re-attaching
/// parameter continuations to the previous element so parameterized
/// specs survive: `demo,ar4ja:r=2/3,k=1024` splits into `demo` and
/// `ar4ja:r=2/3,k=1024`, because `k=1024` is a parameter continuation,
/// not a spec. A continuation is either a `key=value` token or a bare
/// number (optionally carrying an `@modifier` tail), so the burst
/// channel's probability triple holds together too:
/// `awgn,burst:0.01,0.3,0.05@quant=4` splits into `awgn` and
/// `burst:0.01,0.3,0.05@quant=4`. No spec grammar in the workspace
/// starts with a bare number, so the rule is unambiguous.
///
/// This is the one list-splitting rule of the workspace: `ldpc-tool`'s
/// `sweep --codes/--channels/--decoders` flags use it, and the docs
/// link-check validates the cookbook's recipes with it — so documented
/// commands and the CLI can never disagree about where one spec ends.
///
/// ```
/// assert_eq!(
///     ldpc_sim::split_spec_list("demo,ar4ja:r=2/3,k=1024"),
///     vec!["demo".to_string(), "ar4ja:r=2/3,k=1024".to_string()]
/// );
/// assert_eq!(
///     ldpc_sim::split_spec_list("erasure:0.05,burst:0.01,0.3,0.05"),
///     vec!["erasure:0.05".to_string(), "burst:0.01,0.3,0.05".to_string()]
/// );
/// ```
pub fn split_spec_list(list: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for token in list.split(',') {
        let continuation = match token.split_once('=') {
            Some((key, _)) => !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric()),
            // A bare number (with an optional @modifier tail) can only be
            // the next field of the previous spec's parameter list.
            None => {
                let head = token.split('@').next().unwrap_or(token);
                !head.is_empty() && head.parse::<f64>().is_ok()
            }
        };
        match out.last_mut() {
            Some(prev) if continuation => {
                prev.push(',');
                prev.push_str(token);
            }
            _ => out.push(token.to_string()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_point_spec, Transmission};

    fn quick_cfg(ebn0_db: f64) -> MonteCarloConfig {
        MonteCarloConfig {
            ebn0_db,
            max_frames: 200,
            target_frame_errors: 0,
            max_iterations: 20,
            seed: 11,
            threads: 1,
            transmission: Transmission::AllZero,
        }
    }

    #[test]
    fn parses_and_displays_canonically() {
        let sc = Scenario::parse("c2 / awgn / nms:1.25").unwrap();
        assert_eq!(sc.code, CodeSpec::C2);
        assert_eq!(sc.channel, ChannelSpec::awgn());
        assert_eq!(sc.to_string(), "c2 / awgn / nms:1.25");

        // Compact form without embedded slashes.
        let sc = Scenario::parse("demo/bsc:0.02/fixed").unwrap();
        assert_eq!(sc.to_string(), "demo / bsc:0.02 / fixed");

        // Embedded slash in the code part survives.
        let sc = Scenario::parse("ar4ja:r=2/3,k=2048 / rayleigh / gallager-b@bitslice").unwrap();
        assert_eq!(
            sc.to_string(),
            "ar4ja:r=2/3,k=2048 / rayleigh / gallager-b@bitslice"
        );
        let again = Scenario::parse(&sc.to_string()).unwrap();
        assert_eq!(again, sc);
    }

    #[test]
    fn two_part_shorthand_defaults_the_channel_to_awgn() {
        let sc = Scenario::parse("c2 / fixed@pack=8").unwrap();
        assert_eq!(sc.code, CodeSpec::C2);
        assert_eq!(sc.channel, ChannelSpec::awgn());
        // Display stays canonical three-part.
        assert_eq!(sc.to_string(), "c2 / awgn / fixed@pack=8");
        assert_eq!(Scenario::parse(&sc.to_string()).unwrap(), sc);

        // Compact form without embedded slashes.
        let sc = Scenario::parse("demo/nms:1.25").unwrap();
        assert_eq!(sc.to_string(), "demo / awgn / nms:1.25");

        // Embedded slash in the code part survives with whitespace.
        let sc = Scenario::parse("ar4ja:r=2/3,k=2048 / gallager-b@bitslice").unwrap();
        assert_eq!(
            sc.to_string(),
            "ar4ja:r=2/3,k=2048 / awgn / gallager-b@bitslice"
        );
    }

    #[test]
    fn errors_name_the_offending_part() {
        // A channel in the decoder slot of a two-part scenario points at
        // the full three-part form.
        let err = Scenario::parse("c2 / awgn").unwrap_err();
        assert!(
            err.to_string().contains("code / channel / decoder"),
            "{err}"
        );
        let err = Scenario::parse("c2 / bsc:0.02").unwrap_err();
        assert!(err.to_string().contains("name the decoder"), "{err}");

        // One part is a shape error naming both accepted forms.
        let err = Scenario::parse("c2").unwrap_err();
        assert!(err.to_string().contains("code / decoder"), "{err}");
        assert!(
            err.to_string().contains("code / channel / decoder"),
            "{err}"
        );

        // Garbage in the decoder slot of a two-part scenario is a
        // decoder error, not a channel error.
        let err = Scenario::parse("c2 / zeta").unwrap_err();
        assert!(err.to_string().contains("decoder part"), "{err}");

        let err = Scenario::parse("zeta / awgn / nms").unwrap_err();
        assert!(err.to_string().contains("code part"), "{err}");
        assert!(err.to_string().contains("known families"), "{err}");

        let err = Scenario::parse("c2 / zeta / nms").unwrap_err();
        assert!(err.to_string().contains("channel part"), "{err}");

        let err = Scenario::parse("c2 / awgn / zeta").unwrap_err();
        assert!(err.to_string().contains("decoder part"), "{err}");

        // Compact form with an embedded slash cannot split cleanly.
        let err = Scenario::parse("ar4ja:r=1/2/awgn/nms").unwrap_err();
        assert!(err.to_string().contains("whitespace"), "{err}");
    }

    #[test]
    fn plain_awgn_scenario_matches_run_point_spec_exactly() {
        // The scenario door is the same engine: for a plain code on awgn
        // the single-threaded counts are bit-identical to the decoder-only
        // door.
        let cfg = quick_cfg(2.0);
        let sc = Scenario::parse("demo / awgn / nms:1.25").unwrap();
        let via_scenario = run_point_scenario(&sc, &cfg).unwrap();
        let code = ldpc_core::codes::small::demo_code();
        let via_spec = run_point_spec(&code, None, &cfg, &sc.decoder);
        assert_eq!(via_scenario, via_spec);
    }

    #[test]
    fn bsc_and_rayleigh_scenarios_run_and_are_reproducible() {
        for s in [
            "demo / bsc:0.02 / nms:1.25",
            "demo / rayleigh / fixed",
            "demo / awgn@quant=5 / fixed@batch=8",
        ] {
            let sc = Scenario::parse(s).unwrap();
            let cfg = quick_cfg(4.0);
            let a = run_point_scenario(&sc, &cfg).unwrap();
            let b = run_point_scenario(&sc, &cfg).unwrap();
            assert_eq!(a, b, "{s}");
            assert_eq!(a.frames, 200, "{s}");
            assert!(a.ber() <= 1.0, "{s}");
        }
    }

    #[test]
    fn shortened_scenario_counts_only_transmitted_positions() {
        let sc = Scenario::parse("shortened:demo,k=120 / awgn / nms:1.25").unwrap();
        let handle = sc.build_code().unwrap();
        let point = run_point_scenario(&sc, &quick_cfg(3.0)).unwrap();
        assert_eq!(point.info_bits_per_frame as usize, handle.transmitted_len());
    }

    #[test]
    fn ar4ja_scenario_decodes_cleanly_at_high_snr() {
        let sc = Scenario::parse("ar4ja:r=1/2,k=256 / awgn / nms:1.25").unwrap();
        let cfg = MonteCarloConfig {
            max_frames: 60,
            max_iterations: 40,
            ..quick_cfg(6.0)
        };
        let point = run_point_scenario(&sc, &cfg).unwrap();
        assert_eq!(point.frames, 60);
        assert_eq!(point.frame_errors, 0, "per={}", point.per());
    }

    #[test]
    fn quantized_channel_changes_counts_but_not_frames() {
        let cfg = quick_cfg(2.0);
        let exact =
            run_point_scenario(&Scenario::parse("demo / awgn / fixed").unwrap(), &cfg).unwrap();
        let coarse = run_point_scenario(
            &Scenario::parse("demo / awgn@quant=3 / fixed").unwrap(),
            &cfg,
        )
        .unwrap();
        assert_eq!(exact.frames, coarse.frames);
        // 3-bit channel LLRs are a measurably worse front end at 2 dB.
        assert!(coarse.bit_errors >= exact.bit_errors);
    }

    #[test]
    fn curve_points_match_individual_runs() {
        let sc = Scenario::parse("demo / bsc:0.04 / nms:1.25").unwrap();
        let base = quick_cfg(3.0);
        let points = run_curve_scenario(&sc, &[2.0, 4.0], &base).unwrap();
        assert_eq!(points.len(), 2);
        let second = run_point_scenario(
            &sc,
            &MonteCarloConfig {
                ebn0_db: 4.0,
                seed: base.seed.wrapping_add(0x5151_5151),
                ..base
            },
        )
        .unwrap();
        assert_eq!(points[1], second);
    }

    #[test]
    fn bad_code_build_is_an_error_not_a_panic() {
        let sc = Scenario::parse("shortened:demo,k=9999 / awgn / nms").unwrap();
        let err = run_point_scenario(&sc, &quick_cfg(3.0)).expect_err("oversized k");
        assert!(err.to_string().contains("dimension"), "{err}");
    }
}
