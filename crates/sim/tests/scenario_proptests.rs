//! Property-based tests of the scenario grammar: `Scenario::from_str` /
//! `Display` round-trip across random combinations of the three
//! underlying spec grammars (acceptance criterion of the scenario front
//! door).

use ldpc_channel::{ChannelKind, ChannelSpec};
use ldpc_core::codes::ar4ja::Ar4jaRate;
use ldpc_core::{CodeSpec, DecoderSpec, ShortenedBase};
use ldpc_sim::Scenario;
use proptest::prelude::*;

fn code_spec(family_idx: usize, rate_idx: usize, m: usize, base_demo: bool, k: usize) -> CodeSpec {
    match family_idx {
        0 => CodeSpec::Demo,
        1 => CodeSpec::C2,
        2 => {
            let rate = [Ar4jaRate::Half, Ar4jaRate::TwoThirds, Ar4jaRate::FourFifths][rate_idx];
            CodeSpec::Ar4ja {
                rate,
                k: m * (rate.var_blocks() - 3),
            }
        }
        _ => CodeSpec::Shortened {
            base: if base_demo {
                ShortenedBase::Demo
            } else {
                ShortenedBase::C2
            },
            k,
        },
    }
}

fn channel_spec(family_idx: usize, p: f64, quant: Option<u32>) -> ChannelSpec {
    let kind = match family_idx {
        0 => ChannelKind::Awgn,
        1 => ChannelKind::Bsc { p },
        _ => ChannelKind::Rayleigh,
    };
    ChannelSpec { kind, quant }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(display(scenario)) == scenario` for random valid scenarios,
    /// and display is canonical (a fixpoint). This composes all three
    /// grammars, so an ar4ja rate fraction (`r=2/3`), a bsc crossover,
    /// and a decoder modifier must all survive the ` / ` joins.
    #[test]
    fn scenario_roundtrips(
        code_idx in 0usize..4,
        rate_idx in 0usize..3,
        m in 8usize..600,
        base_demo in any::<bool>(),
        k in 1usize..8000,
        chan_idx in 0usize..3,
        p in 0.001f64..0.499,
        quantized in any::<bool>(),
        quant_bits in 2u32..16,
        dec_idx in 0usize..DecoderSpec::family_names().len(),
        alpha in 1.0f32..4.0,
        batched in any::<bool>(),
        batch in 1usize..65,
    ) {
        let dec_name = DecoderSpec::family_names()[dec_idx];
        let head = match dec_name {
            "nms" | "layered" | "self-corrected" => format!("{dec_name}:{alpha}"),
            other => other.to_string(),
        };
        let mut decoder = DecoderSpec::parse(&head).unwrap();
        if batched {
            if decoder.family.supports_batch() {
                decoder = decoder.with_batch(batch).unwrap();
            } else if decoder.family.supports_bitslice() {
                decoder = decoder.with_bitslice().unwrap();
            }
        }
        let scenario = Scenario {
            code: code_spec(code_idx, rate_idx, m, base_demo, k),
            channel: channel_spec(chan_idx, p, quantized.then_some(quant_bits)),
            decoder,
        };
        let rendered = scenario.to_string();
        let reparsed: Scenario = rendered
            .parse()
            .unwrap_or_else(|e| panic!("{rendered}: {e}"));
        prop_assert_eq!(&reparsed, &scenario, "{} did not round trip", rendered);
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    /// Malformed scenarios never panic: wrong part counts and per-part
    /// garbage all surface as errors naming the offending part.
    #[test]
    fn malformed_scenarios_error_actionably(junk_idx in 0usize..5) {
        let junk = ["zz", "", "a / b", "c2 / awgn / nms / extra", "ar4ja:r=1/2/awgn/nms"][junk_idx];
        let err = Scenario::parse(junk).expect_err("malformed scenario accepted");
        prop_assert!(!err.to_string().is_empty());
    }
}
