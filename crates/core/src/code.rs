//! The [`LdpcCode`] type tying together parity-check matrix, Tanner graph,
//! and derived code parameters.

use crate::{CodeError, QcLdpcSpec, TannerGraph};
use gf2::{BitVec, SparseMatrix};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// An LDPC code defined by its sparse parity-check matrix.
///
/// Owns the [`TannerGraph`] used by every decoder and lazily computes the
/// rank of H (and hence the true code dimension — for the CCSDS C2 matrix
/// the 1022 rows have rank 1020, giving the (8176, 7156) code of the paper).
///
/// Codes are shared as `Arc<LdpcCode>` between encoders, decoders, the
/// Monte-Carlo engine, and the hardware simulator.
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
///
/// let code = demo_code();
/// assert_eq!(code.n(), 248);
/// assert_eq!(code.n_checks(), 62);
/// assert_eq!(code.dimension(), code.n() - code.rank());
/// ```
pub struct LdpcCode {
    name: String,
    h: SparseMatrix,
    graph: TannerGraph,
    rank: OnceLock<usize>,
    qc: OnceLock<Option<QcLdpcSpec>>,
}

impl LdpcCode {
    /// Builds a code from a parity-check matrix (rows = parity checks).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if the matrix is empty, a row has weight zero,
    /// or a column has weight zero (an unprotected bit).
    pub fn from_parity_check(
        name: impl Into<String>,
        h: SparseMatrix,
    ) -> Result<Arc<Self>, CodeError> {
        Self::build(name, h, OnceLock::new())
    }

    /// Builds a code directly from a quasi-cyclic block description.
    ///
    /// The spec is expanded to the parity-check matrix and retained, so
    /// [`qc_structure`](Self::qc_structure) returns it without running
    /// structure recovery.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] under the same conditions as
    /// [`from_parity_check`](Self::from_parity_check) (e.g. a spec with an
    /// all-zero block row or block column).
    pub fn from_qc_spec(name: impl Into<String>, spec: QcLdpcSpec) -> Result<Arc<Self>, CodeError> {
        let h = spec.expand();
        let qc = OnceLock::new();
        qc.set(Some(spec)).expect("fresh OnceLock");
        Self::build(name, h, qc)
    }

    fn build(
        name: impl Into<String>,
        h: SparseMatrix,
        qc: OnceLock<Option<QcLdpcSpec>>,
    ) -> Result<Arc<Self>, CodeError> {
        if h.rows() == 0 || h.cols() == 0 {
            return Err(CodeError::EmptyMatrix);
        }
        for r in 0..h.rows() {
            if h.row_weight(r) == 0 {
                return Err(CodeError::EmptyCheck { row: r });
            }
        }
        if let Some(column) = h.col_weights().iter().position(|&w| w == 0) {
            return Err(CodeError::UnprotectedBit { column });
        }
        let graph = TannerGraph::from_parity_check(&h);
        Ok(Arc::new(Self {
            name: name.into(),
            h,
            graph,
            rank: OnceLock::new(),
            qc,
        }))
    }

    /// Human-readable code name (e.g. `"CCSDS C2 (8176,7156)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sparse parity-check matrix.
    pub fn h(&self) -> &SparseMatrix {
        &self.h
    }

    /// The Tanner graph.
    pub fn graph(&self) -> &TannerGraph {
        &self.graph
    }

    /// Code length n (number of bit nodes / columns of H).
    pub fn n(&self) -> usize {
        self.h.cols()
    }

    /// Number of parity checks (rows of H — not necessarily independent).
    pub fn n_checks(&self) -> usize {
        self.h.rows()
    }

    /// Rank of H over GF(2), computed once on first use.
    pub fn rank(&self) -> usize {
        *self.rank.get_or_init(|| self.h.to_dense().rank())
    }

    /// True code dimension `n − rank(H)`.
    pub fn dimension(&self) -> usize {
        self.n() - self.rank()
    }

    /// Code rate `dimension / n`.
    pub fn rate(&self) -> f64 {
        self.dimension() as f64 / self.n() as f64
    }

    /// Returns `true` if `word` is a codeword (`H·word = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `word.len() != self.n()`.
    pub fn is_codeword(&self, word: &BitVec) -> bool {
        self.h.in_nullspace(word)
    }

    /// The quasi-cyclic block structure of H, if it has one.
    ///
    /// Codes built with [`from_qc_spec`](Self::from_qc_spec) return their
    /// originating spec directly; codes built from a raw matrix run
    /// [`QcLdpcSpec::recover`] once on first call and cache the outcome.
    /// Matrices without block-circulant form (shortened codes, AR4JA
    /// expansions) yield `None` — callers fall back to the generic
    /// edge-list datapath.
    pub fn qc_structure(&self) -> Option<&QcLdpcSpec> {
        self.qc
            .get_or_init(|| QcLdpcSpec::recover(&self.h))
            .as_ref()
    }
}

impl fmt::Debug for LdpcCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LdpcCode({}: n={}, checks={}, edges={})",
            self.name,
            self.n(),
            self.n_checks(),
            self.graph.n_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h_fixture() -> SparseMatrix {
        SparseMatrix::from_entries(
            3,
            6,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 0),
                (2, 4),
                (2, 5),
            ],
        )
    }

    #[test]
    fn builds_and_reports_parameters() {
        let code = LdpcCode::from_parity_check("fixture", h_fixture()).unwrap();
        assert_eq!(code.n(), 6);
        assert_eq!(code.n_checks(), 3);
        assert_eq!(code.rank(), 3);
        assert_eq!(code.dimension(), 3);
        assert!((code.rate() - 0.5).abs() < 1e-12);
        assert_eq!(code.graph().n_edges(), 9);
        assert_eq!(code.name(), "fixture");
        assert!(format!("{code:?}").contains("n=6"));
    }

    #[test]
    fn codeword_membership() {
        let code = LdpcCode::from_parity_check("fixture", h_fixture()).unwrap();
        let zero = BitVec::zeros(6);
        assert!(code.is_codeword(&zero));
        let basis = code.h().to_dense().nullspace_basis();
        for v in basis {
            assert!(code.is_codeword(&v));
        }
        let mut not_cw = BitVec::zeros(6);
        not_cw.set(0, true);
        assert!(!code.is_codeword(&not_cw));
    }

    #[test]
    fn rejects_empty_matrix() {
        let h = SparseMatrix::from_entries(0, 0, &[]);
        assert_eq!(
            LdpcCode::from_parity_check("bad", h).err(),
            Some(CodeError::EmptyMatrix)
        );
    }

    #[test]
    fn rejects_empty_check() {
        let h = SparseMatrix::from_rows(3, vec![vec![0, 1], vec![]]);
        assert_eq!(
            LdpcCode::from_parity_check("bad", h).err(),
            Some(CodeError::EmptyCheck { row: 1 })
        );
    }

    #[test]
    fn rejects_unprotected_bit() {
        let h = SparseMatrix::from_entries(2, 3, &[(0, 0), (1, 0), (0, 1), (1, 1)]);
        assert_eq!(
            LdpcCode::from_parity_check("bad", h).err(),
            Some(CodeError::UnprotectedBit { column: 2 })
        );
    }

    #[test]
    fn rank_deficient_rows_increase_dimension() {
        // Duplicate a row: rank stays 2 on 3 rows.
        let h = SparseMatrix::from_rows(3, vec![vec![0, 1], vec![1, 2], vec![0, 1]]);
        let code = LdpcCode::from_parity_check("dup", h).unwrap();
        assert_eq!(code.rank(), 2);
        assert_eq!(code.dimension(), 1);
    }

    fn qc_fixture() -> QcLdpcSpec {
        let mut spec = QcLdpcSpec::new(5, 1, 2);
        spec.set_block(0, 0, gf2::Circulant::new(5, &[0, 2]));
        spec.set_block(0, 1, gf2::Circulant::new(5, &[1]));
        spec
    }

    #[test]
    fn from_qc_spec_carries_the_structure() {
        let spec = qc_fixture();
        let code = LdpcCode::from_qc_spec("qc", spec.clone()).unwrap();
        assert_eq!(code.h(), &spec.expand());
        assert_eq!(code.qc_structure(), Some(&spec));
    }

    #[test]
    fn qc_structure_is_recovered_from_a_raw_matrix() {
        let spec = qc_fixture();
        let code = LdpcCode::from_parity_check("raw", spec.expand()).unwrap();
        assert_eq!(code.qc_structure(), Some(&spec));
        // Second call hits the cache, same answer.
        assert_eq!(code.qc_structure(), Some(&spec));
    }

    #[test]
    fn qc_structure_is_none_for_unstructured_matrices() {
        let code = LdpcCode::from_parity_check("fixture", h_fixture()).unwrap();
        assert_eq!(code.qc_structure(), None);
    }
}
