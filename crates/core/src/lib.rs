//! Quasi-cyclic LDPC codes and decoders for CCSDS near-earth applications.
//!
//! This crate is the primary contribution layer of the `ccsds-ldpc`
//! workspace, reproducing the code and decoding algorithms of
//! *"A Generic Architecture of CCSDS Low Density Parity Check Decoder for
//! Near-Earth Applications"* (Demangel et al., DATE 2009):
//!
//! * [`QcLdpcSpec`] — quasi-cyclic parity-check matrices described as block
//!   arrays of circulants, expanded into sparse matrices.
//! * [`codes::ccsds_c2`] — the CCSDS 131.1-O-2 near-earth (8176, 7156) code
//!   built from a 2×16 array of 511×511 circulants of row weight two.
//! * [`TannerGraph`] — the bipartite bit-node / check-node graph with the
//!   edge-indexed message layout used by every decoder.
//! * [`Encoder`] — systematic encoding via reduced row-echelon form of H.
//! * [`decoder`] — the decoder family: floating-point sum-product
//!   ([`SumProductDecoder`]), normalized/offset min-sum ([`MinSumDecoder`]),
//!   the bit-accurate fixed-point datapath of the paper's FPGA architecture
//!   ([`FixedDecoder`]), and a serial-schedule variant
//!   ([`LayeredMinSumDecoder`]).
//!
//! # Quickstart
//!
//! ```
//! use ldpc_core::codes::small::demo_code;
//! use ldpc_core::decoder::{Decoder, MinSumDecoder, MinSumConfig};
//!
//! let code = demo_code();
//! let mut dec = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.25));
//! // A noiseless all-zero codeword: every LLR votes for bit 0.
//! let llrs = vec![5.0_f32; code.n()];
//! let out = dec.decode(&llrs, 10);
//! assert!(out.converged);
//! assert!(out.hard_decision.is_zero());
//! ```

// The crate is `unsafe`-free; the only exception is the feature-gated
// SSE4.1 mirror of the packed SWAR datapath, whose intrinsics module
// carries a scoped `allow` — so `forbid` must relax to `deny` when the
// `simd` feature is enabled.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod analysis;
pub mod codes;
mod codespec;
pub mod decoder;
mod encoder;
mod error;
mod llr;
mod qc;
mod shorten;
mod tanner;

mod code;

pub use code::LdpcCode;
pub use codespec::{
    CodeHandle, CodeSpec, CodeSpecError, PlainCode, ShortenedBase, AR4JA_LIFT_SEED, DEFAULT_AR4JA_K,
};
pub use decoder::{
    decode_frames, BatchDecoder, BatchFixedDecoder, BatchMinSumDecoder, Batched,
    BitsliceGallagerBDecoder, BlockDecoder, DecodeResult, DecodeTrace, Decoder, DecoderFamily,
    DecoderSpec, FixedConfig, FixedDecoder, GallagerBDecoder, IterationStats, LayeredMinSumDecoder,
    MinSumConfig, MinSumDecoder, MinSumVariant, PackedFixedDecoder, PeelingDecoder, PerFrame,
    QcLayeredDecoder, Scaling, SelfCorrectedMinSumDecoder, SpecError, SumProductDecoder,
    WeightedBitFlipDecoder, PACK_LANES, PEELING_ERASURE_FRACTION,
};
pub use encoder::Encoder;
pub use error::{CodeError, EncodeError};
pub use llr::LlrQuantizer;
pub use qc::QcLdpcSpec;
pub use shorten::ShortenedCode;
pub use tanner::TannerGraph;
