//! Systematic encoding via reduced row-echelon form of the parity-check
//! matrix.

use crate::{EncodeError, LdpcCode};
use gf2::BitVec;
use std::fmt;

/// A systematic encoder derived from the parity-check matrix.
///
/// Construction reduces H to reduced row-echelon form, **preferring pivots
/// in the last `m` columns** (the parity region of a systematic code). The
/// remaining *free* columns carry the message; each pivot column is then a
/// parity bit equal to a fixed XOR combination of message bits.
///
/// For the CCSDS C2 code all 1020 pivots land in the last 1022 columns, so
/// the first 7154 positions are systematic information bits and the code
/// matches the CCSDS transmission profile (see
/// [`codes::ccsds_c2::encode_frame`](crate::codes::ccsds_c2::encode_frame)).
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::Encoder;
///
/// # fn main() -> Result<(), ldpc_core::EncodeError> {
/// let code = demo_code();
/// let enc = Encoder::new(&code)?;
/// let msg = vec![1u8; enc.dimension()];
/// let cw = enc.encode_bits(&msg)?;
/// assert!(code.is_codeword(&cw));
/// # Ok(())
/// # }
/// ```
pub struct Encoder {
    n: usize,
    /// Free (message-carrying) columns, ascending. Length = dimension k.
    info_cols: Vec<u32>,
    /// Pivot column of each parity equation.
    pivot_cols: Vec<u32>,
    /// Per parity equation: the message bits (indices into `info_cols`
    /// order) whose XOR gives the pivot bit.
    combos: Vec<BitVec>,
}

impl Encoder {
    /// Builds the encoder for a code.
    ///
    /// This performs dense Gaussian elimination on H — O(m²·n/64) — which
    /// for the C2 code takes a fraction of a second. Cache the encoder if
    /// you encode many frames (see
    /// [`codes::ccsds_c2::encoder`](crate::codes::ccsds_c2::encoder)).
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::ZeroDimension`] if H has full column rank.
    pub fn new(code: &LdpcCode) -> Result<Self, EncodeError> {
        let n = code.n();
        let m = code.n_checks();
        let dense = code.h().to_dense();
        // Pivot priority: parity region (last m columns) first, then the
        // information region left-to-right.
        let order: Vec<usize> = (n.saturating_sub(m)..n)
            .chain(0..n.saturating_sub(m))
            .collect();
        let rref = dense.rref_with_column_order(&order);
        let rank = rref.rank();
        if rank >= n {
            return Err(EncodeError::ZeroDimension);
        }
        let info_cols: Vec<u32> = rref.free_cols().into_iter().map(|c| c as u32).collect();
        let k = info_cols.len();
        // Map column index -> message position for O(1) combo construction.
        let mut msg_index = vec![u32::MAX; n];
        for (j, &c) in info_cols.iter().enumerate() {
            msg_index[c as usize] = j as u32;
        }
        let mut pivot_cols = Vec::with_capacity(rank);
        let mut combos = Vec::with_capacity(rank);
        for (row_idx, &pc) in rref.pivot_cols.iter().enumerate() {
            pivot_cols.push(pc as u32);
            let mut combo = BitVec::zeros(k);
            for c in rref.matrix.row(row_idx).iter_ones() {
                if c != pc {
                    let j = msg_index[c];
                    debug_assert_ne!(j, u32::MAX, "non-pivot column must be free");
                    combo.set(j as usize, true);
                }
            }
            combos.push(combo);
        }
        Ok(Self {
            n,
            info_cols,
            pivot_cols,
            combos,
        })
    }

    /// Code length n.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Code dimension k (message length).
    pub fn dimension(&self) -> usize {
        self.info_cols.len()
    }

    /// The message-carrying codeword positions, ascending.
    pub fn info_positions(&self) -> &[u32] {
        &self.info_cols
    }

    /// Returns `true` if the message occupies a contiguous prefix
    /// `0..dimension()` of the codeword.
    pub fn is_systematic_prefix(&self) -> bool {
        self.info_cols
            .iter()
            .enumerate()
            .all(|(j, &c)| c as usize == j)
    }

    /// Encodes a message given as a [`BitVec`] of length
    /// [`dimension()`](Self::dimension).
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::MessageLength`] on length mismatch.
    pub fn encode(&self, message: &BitVec) -> Result<BitVec, EncodeError> {
        if message.len() != self.dimension() {
            return Err(EncodeError::MessageLength {
                expected: self.dimension(),
                actual: message.len(),
            });
        }
        let mut cw = BitVec::zeros(self.n);
        for (j, &c) in self.info_cols.iter().enumerate() {
            if message.get(j) {
                cw.set(c as usize, true);
            }
        }
        for (eq, &pc) in self.combos.iter().zip(&self.pivot_cols) {
            if eq.dot(message) {
                cw.set(pc as usize, true);
            }
        }
        Ok(cw)
    }

    /// Encodes a message given as 0/1 bytes.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::MessageLength`] on length mismatch.
    pub fn encode_bits(&self, message: &[u8]) -> Result<BitVec, EncodeError> {
        self.encode(&BitVec::from_bits(message))
    }

    /// Extracts the message bits back out of a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != self.n()`.
    pub fn extract_message(&self, codeword: &BitVec) -> BitVec {
        assert_eq!(codeword.len(), self.n, "codeword length mismatch");
        let mut msg = BitVec::zeros(self.dimension());
        for (j, &c) in self.info_cols.iter().enumerate() {
            if codeword.get(c as usize) {
                msg.set(j, true);
            }
        }
        msg
    }
}

impl fmt::Debug for Encoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Encoder(n={}, k={}, systematic_prefix={})",
            self.n,
            self.dimension(),
            self.is_systematic_prefix()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::{demo_code, random_c2_like};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn encodes_valid_codewords() {
        let code = demo_code();
        let enc = Encoder::new(&code).unwrap();
        assert_eq!(enc.dimension(), code.dimension());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let msg: Vec<u8> = (0..enc.dimension())
                .map(|_| rng.gen_range(0..2u8))
                .collect();
            let cw = enc.encode_bits(&msg).unwrap();
            assert!(code.is_codeword(&cw));
        }
    }

    #[test]
    fn encoding_is_linear() {
        let code = demo_code();
        let enc = Encoder::new(&code).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let a: BitVec = (0..enc.dimension()).map(|_| rng.gen_bool(0.5)).collect();
        let b: BitVec = (0..enc.dimension()).map(|_| rng.gen_bool(0.5)).collect();
        let sum = &a ^ &b;
        let cw_sum = enc.encode(&sum).unwrap();
        let sum_cw = &enc.encode(&a).unwrap() ^ &enc.encode(&b).unwrap();
        assert_eq!(cw_sum, sum_cw);
    }

    #[test]
    fn zero_message_gives_zero_codeword() {
        let code = demo_code();
        let enc = Encoder::new(&code).unwrap();
        let cw = enc.encode(&BitVec::zeros(enc.dimension())).unwrap();
        assert!(cw.is_zero());
    }

    #[test]
    fn message_roundtrips_through_codeword() {
        let code = demo_code();
        let enc = Encoder::new(&code).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let msg: BitVec = (0..enc.dimension()).map(|_| rng.gen_bool(0.5)).collect();
            let cw = enc.encode(&msg).unwrap();
            assert_eq!(enc.extract_message(&cw), msg);
        }
    }

    #[test]
    fn distinct_messages_give_distinct_codewords() {
        let code = demo_code();
        let enc = Encoder::new(&code).unwrap();
        let mut a = BitVec::zeros(enc.dimension());
        a.set(0, true);
        let mut b = BitVec::zeros(enc.dimension());
        b.set(1, true);
        assert_ne!(enc.encode(&a).unwrap(), enc.encode(&b).unwrap());
    }

    #[test]
    fn rejects_wrong_length() {
        let code = demo_code();
        let enc = Encoder::new(&code).unwrap();
        let err = enc.encode(&BitVec::zeros(3)).unwrap_err();
        assert!(matches!(err, EncodeError::MessageLength { .. }));
    }

    #[test]
    fn works_on_random_qc_codes() {
        for seed in 0..3 {
            let code = random_c2_like(seed, 13, 4);
            let enc = Encoder::new(&code).unwrap();
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let msg: Vec<u8> = (0..enc.dimension())
                .map(|_| rng.gen_range(0..2u8))
                .collect();
            let cw = enc.encode_bits(&msg).unwrap();
            assert!(code.is_codeword(&cw), "seed {seed}");
        }
    }

    #[test]
    fn info_positions_sorted_and_in_range() {
        let code = demo_code();
        let enc = Encoder::new(&code).unwrap();
        let pos = enc.info_positions();
        for w in pos.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!((*pos.last().unwrap() as usize) < code.n());
    }
}
