//! Floating-point min-sum decoders (plain, normalized, offset).

use crate::decoder::{DecodeResult, Decoder};
use crate::LdpcCode;
use gf2::BitVec;
use std::sync::Arc;

/// Check-node approximation variant (paper eq. 2 and its reference \[4\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MinSumVariant {
    /// Plain sign-min (α = 1). Overestimates magnitudes.
    Plain,
    /// Normalized min-sum: magnitudes divided by `alpha` (> 1). This is the
    /// paper's eq. (2) with its normalization factor α.
    Normalized {
        /// Normalization constant α > 1.
        alpha: f32,
    },
    /// Offset min-sum: magnitudes reduced by `beta`, floored at zero.
    Offset {
        /// Subtractive offset β ≥ 0.
        beta: f32,
    },
}

/// Configuration of a [`MinSumDecoder`].
#[derive(Debug, Clone, PartialEq)]
pub struct MinSumConfig {
    /// Check-node rule.
    pub variant: MinSumVariant,
    /// Optional per-iteration α override ("fine scaled correction factor",
    /// paper §5): iteration `i` uses `alpha_schedule[min(i, len-1)]`.
    /// Only meaningful with [`MinSumVariant::Normalized`].
    pub alpha_schedule: Option<Vec<f32>>,
    /// Stop as soon as the syndrome is zero (software behaviour); disable
    /// to emulate the fixed-latency hardware.
    pub early_stop: bool,
}

impl MinSumConfig {
    /// Plain sign-min configuration.
    pub fn plain() -> Self {
        Self {
            variant: MinSumVariant::Plain,
            alpha_schedule: None,
            early_stop: true,
        }
    }

    /// Normalized min-sum with a constant α.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 1.0`.
    pub fn normalized(alpha: f32) -> Self {
        assert!(alpha >= 1.0, "normalization factor must be >= 1");
        Self {
            variant: MinSumVariant::Normalized { alpha },
            alpha_schedule: None,
            early_stop: true,
        }
    }

    /// Offset min-sum with offset β.
    ///
    /// # Panics
    ///
    /// Panics if `beta < 0.0`.
    pub fn offset(beta: f32) -> Self {
        assert!(beta >= 0.0, "offset must be non-negative");
        Self {
            variant: MinSumVariant::Offset { beta },
            alpha_schedule: None,
            early_stop: true,
        }
    }

    /// Sets a per-iteration α schedule (fine scaling).
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty or contains values below 1.
    pub fn with_alpha_schedule(mut self, schedule: Vec<f32>) -> Self {
        assert!(!schedule.is_empty(), "alpha schedule cannot be empty");
        assert!(
            schedule.iter().all(|&a| a >= 1.0),
            "all schedule values must be >= 1"
        );
        self.alpha_schedule = Some(schedule);
        self
    }

    /// Disables or enables early termination.
    pub fn with_early_stop(mut self, early_stop: bool) -> Self {
        self.early_stop = early_stop;
        self
    }
}

/// Report name of a min-sum configuration, parameters included — shared
/// by [`MinSumDecoder`] and [`BatchMinSumDecoder`](crate::BatchMinSumDecoder)
/// so the per-frame and batched mirrors agree on what they are called.
pub(crate) fn variant_name(config: &MinSumConfig) -> String {
    match config.variant {
        MinSumVariant::Plain => "min-sum".to_owned(),
        MinSumVariant::Normalized { alpha } => match &config.alpha_schedule {
            Some(schedule) => format!(
                "normalized min-sum (scheduled alpha, {} steps)",
                schedule.len()
            ),
            None => format!("normalized min-sum (alpha={alpha})"),
        },
        MinSumVariant::Offset { beta } => format!("offset min-sum (beta={beta})"),
    }
}

/// Effective α of `config` for a 0-based iteration index: the schedule
/// entry (last value holding past the end) or the constant α. The single
/// definition shared by [`MinSumDecoder`] and
/// [`BatchMinSumDecoder`](crate::BatchMinSumDecoder).
pub(crate) fn alpha_for_iteration(config: &MinSumConfig, iter: usize) -> Option<f32> {
    match (&config.alpha_schedule, config.variant) {
        (Some(schedule), MinSumVariant::Normalized { .. }) => {
            Some(schedule[iter.min(schedule.len() - 1)])
        }
        (None, MinSumVariant::Normalized { alpha }) => Some(alpha),
        _ => None,
    }
}

/// Applies the check-node correction (paper eq. 2) to a min magnitude.
/// The single definition shared by the per-frame and batched min-sum
/// decoders, so their bit-exactness holds by construction.
#[inline]
pub(crate) fn apply_correction(variant: MinSumVariant, alpha: Option<f32>, mag: f32) -> f32 {
    match (variant, alpha) {
        (MinSumVariant::Plain, _) => mag,
        (MinSumVariant::Normalized { .. }, Some(a)) => mag / a,
        (MinSumVariant::Normalized { alpha }, None) => mag / alpha,
        (MinSumVariant::Offset { beta }, _) => (mag - beta).max(0.0),
    }
}

/// Serial two-minimum check-node scan in `f32` — the floating-point
/// analog of [`CnState`](crate::decoder::kernels::CnState), and the
/// single scan definition shared by [`MinSumDecoder`] and the batched
/// decoder's lane-masked path (the lockstep path uses a select-based
/// formulation that is value-identical; proptests pin the equality).
pub(crate) struct CnScanF32 {
    min1: f32,
    min2: f32,
    argmin: usize,
    /// XOR of all absorbed sign bits (`true` = negative product).
    pub sign_product: bool,
}

impl CnScanF32 {
    /// Initial state; `first_edge` seeds the argmin like the hardware
    /// scan (any absorbed edge replaces it on the first strict minimum).
    pub fn new(first_edge: usize) -> Self {
        Self {
            min1: f32::INFINITY,
            min2: f32::INFINITY,
            argmin: first_edge,
            sign_product: false,
        }
    }

    /// Absorbs the message of edge `e`.
    #[inline]
    pub fn absorb(&mut self, e: usize, x: f32) {
        let mag = x.abs();
        if x < 0.0 {
            self.sign_product = !self.sign_product;
        }
        if mag < self.min1 {
            self.min2 = self.min1;
            self.min1 = mag;
            self.argmin = e;
        } else if mag < self.min2 {
            self.min2 = mag;
        }
    }

    /// Output magnitude toward edge `e`: the minimum excluding `e`'s own
    /// input.
    #[inline]
    pub fn magnitude(&self, e: usize) -> f32 {
        if e == self.argmin {
            self.min2
        } else {
            self.min1
        }
    }
}

/// Min-sum decoder with optional normalization ("sign-min" of the paper)
/// or offset correction, in `f32` arithmetic.
///
/// The normalized variant with α = 4/3 is the floating-point reference of
/// the hardware datapath implemented by
/// [`FixedDecoder`](crate::FixedDecoder).
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::{Decoder, MinSumConfig, MinSumDecoder};
///
/// let code = demo_code();
/// let mut dec = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0));
/// let out = dec.decode(&vec![2.5; code.n()], 10);
/// assert!(out.converged);
/// ```
pub struct MinSumDecoder {
    code: Arc<LdpcCode>,
    config: MinSumConfig,
    bc: Vec<f32>,
    cb: Vec<f32>,
    hard: Vec<u8>,
}

impl MinSumDecoder {
    /// Creates a decoder with the given configuration.
    pub fn new(code: Arc<LdpcCode>, config: MinSumConfig) -> Self {
        let edges = code.graph().n_edges();
        let n = code.n();
        Self {
            code,
            config,
            bc: vec![0.0; edges],
            cb: vec![0.0; edges],
            hard: vec![0; n],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MinSumConfig {
        &self.config
    }

    /// The code this decoder operates on.
    pub fn code(&self) -> &Arc<LdpcCode> {
        &self.code
    }

    /// Effective α for a given 0-based iteration index.
    fn alpha_for_iteration(&self, iter: usize) -> Option<f32> {
        alpha_for_iteration(&self.config, iter)
    }

    fn cn_phase(&mut self, iter: usize) {
        let code = self.code.clone();
        let graph = code.graph();
        let alpha = self.alpha_for_iteration(iter);
        for m in 0..graph.n_checks() {
            let range = graph.cn_edge_range(m);
            let mut scan = CnScanF32::new(range.start);
            for e in range.clone() {
                scan.absorb(e, self.bc[e]);
            }
            for e in range {
                let mag = apply_correction(self.config.variant, alpha, scan.magnitude(e));
                let negative = scan.sign_product ^ (self.bc[e] < 0.0);
                self.cb[e] = if negative { -mag } else { mag };
            }
        }
    }

    #[allow(clippy::needless_range_loop)] // n indexes llrs, hard, and the graph in lockstep
    fn bn_phase(&mut self, llrs: &[f32]) {
        let code = self.code.clone();
        let graph = code.graph();
        for n in 0..graph.n_bits() {
            let edges = graph.bn_edge_ids(n);
            let mut total = llrs[n];
            for &e in edges {
                total += self.cb[e as usize];
            }
            for &e in edges {
                self.bc[e as usize] = total - self.cb[e as usize];
            }
            self.hard[n] = u8::from(total < 0.0);
        }
    }
}

impl Decoder for MinSumDecoder {
    fn decode(&mut self, channel_llrs: &[f32], max_iterations: u32) -> DecodeResult {
        let code = self.code.clone();
        let graph = code.graph();
        assert_eq!(
            channel_llrs.len(),
            graph.n_bits(),
            "channel LLR length mismatch"
        );
        for e in 0..graph.n_edges() {
            self.bc[e] = channel_llrs[graph.edge_bit(e)];
        }
        let mut iterations = 0;
        let mut converged = false;
        for iter in 0..max_iterations {
            self.cn_phase(iter as usize);
            self.bn_phase(channel_llrs);
            iterations += 1;
            if graph.syndrome_ok(&self.hard) {
                converged = true;
                if self.config.early_stop {
                    break;
                }
            } else {
                converged = false;
            }
        }
        DecodeResult {
            hard_decision: BitVec::from_bits(&self.hard),
            iterations,
            converged,
        }
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        variant_name(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;

    #[test]
    fn names_reflect_variant() {
        let code = demo_code();
        assert_eq!(
            MinSumDecoder::new(code.clone(), MinSumConfig::plain()).name(),
            "min-sum"
        );
        // Parameters are part of the name, so reports never conflate two
        // configurations of the same variant.
        assert_eq!(
            MinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.5)).name(),
            "normalized min-sum (alpha=1.5)"
        );
        assert_eq!(
            MinSumDecoder::new(code, MinSumConfig::offset(0.1)).name(),
            "offset min-sum (beta=0.1)"
        );
    }

    #[test]
    fn normalized_shrinks_magnitudes_vs_plain() {
        let code = demo_code();
        let llrs: Vec<f32> = (0..code.n())
            .map(|i| if i % 7 == 0 { -1.0 } else { 2.0 })
            .collect();
        let mut plain =
            MinSumDecoder::new(code.clone(), MinSumConfig::plain().with_early_stop(false));
        let mut norm = MinSumDecoder::new(
            code.clone(),
            MinSumConfig::normalized(2.0).with_early_stop(false),
        );
        let _ = plain.decode(&llrs, 1);
        let _ = norm.decode(&llrs, 1);
        // After one iteration the normalized messages are exactly half.
        for (p, n) in plain.cb.iter().zip(&norm.cb) {
            assert!((n - p / 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn offset_never_flips_sign() {
        let code = demo_code();
        let llrs: Vec<f32> = (0..code.n()).map(|i| (i % 5) as f32 - 2.0).collect();
        let mut dec = MinSumDecoder::new(code, MinSumConfig::offset(10.0).with_early_stop(false));
        let _ = dec.decode(&llrs, 2);
        // A huge offset can zero magnitudes but never produce the wrong sign.
        for &m in &dec.cb {
            assert_eq!(m, 0.0);
        }
    }

    #[test]
    fn alpha_schedule_is_applied_per_iteration() {
        let code = demo_code();
        let cfg = MinSumConfig::normalized(1.0)
            .with_alpha_schedule(vec![1.0, 2.0])
            .with_early_stop(false);
        let dec = MinSumDecoder::new(code, cfg);
        assert_eq!(dec.alpha_for_iteration(0), Some(1.0));
        assert_eq!(dec.alpha_for_iteration(1), Some(2.0));
        // Past the end the last value holds.
        assert_eq!(dec.alpha_for_iteration(9), Some(2.0));
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn normalized_rejects_alpha_below_one() {
        MinSumConfig::normalized(0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn offset_rejects_negative_beta() {
        MinSumConfig::offset(-0.1);
    }

    #[test]
    fn corrects_single_error_burst() {
        let code = demo_code();
        let mut llrs = vec![3.0_f32; code.n()];
        llrs[100] = -2.0;
        llrs[101] = -2.0;
        for cfg in [
            MinSumConfig::plain(),
            MinSumConfig::normalized(4.0 / 3.0),
            MinSumConfig::offset(0.3),
        ] {
            let mut dec = MinSumDecoder::new(code.clone(), cfg);
            let out = dec.decode(&llrs, 30);
            assert!(out.converged, "{}", dec.name());
            assert!(out.hard_decision.is_zero(), "{}", dec.name());
        }
    }
}
