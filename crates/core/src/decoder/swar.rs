//! SWAR (SIMD-within-a-register) kernels: lane-wise fixed-point
//! arithmetic on `u64` words of 8 × `i8` lanes (and 2 × `u64` words of
//! 8 × `u16` lanes for the wide bit-node accumulator).
//!
//! These are the word-parallel mirrors of the scalar kernels in
//! [`kernels`](crate::decoder::kernels): one call advances 8 frames'
//! messages at once, which is how the paper's high-speed variant gets
//! its throughput from packing 8 frames per memory word (Table 3). The
//! packed decoder ([`PackedFixedDecoder`](crate::PackedFixedDecoder))
//! composes them into check-node and bit-node phases that are **bit-exact
//! lane by lane** against [`FixedDecoder`](crate::FixedDecoder); the
//! kernel-level contract (every primitive equals an 8-iteration scalar
//! loop) is pinned by `swar_proptests`.
//!
//! Lane order is little-endian, matching [`gf2::lanes`]: lane `f` is
//! byte `f` (`u64::to_le_bytes`). Two primitive tiers:
//!
//! * **General** primitives ([`adds_i8`], [`abs_i8`], [`min_mag_i8`],
//!   [`clamp_i8`], [`sign_mask8`], …) are defined for arbitrary `i8`
//!   lane patterns — the proptested public contract.
//! * **Bounded** fast paths ([`ltu7_mask`], [`eq7_mask`],
//!   [`scale_mag8`], the `u16` helpers) document a lane-domain
//!   precondition (values already saturated below the `0x80` carry
//!   boundary) that the decoder's quantized messages guarantee, and
//!   spend fewer ops by letting the sign bit absorb borrows.
//!
//! When the `simd` cargo feature is enabled the packed decoder runs a
//! `core::arch` SSE4.1 mirror of the composed phases instead (runtime
//! feature-detected, same results bit for bit); these portable kernels
//! remain the reference and the fallback.

use crate::decoder::kernels::Scaling;

/// Lanes per word (frames advanced per word op).
pub const LANES: usize = 8;

/// High (sign) bit of every i8 lane.
const H8: u64 = 0x8080_8080_8080_8080;
/// Low bit of every i8 lane.
const L8: u64 = 0x0101_0101_0101_0101;
/// High bit of every u16 lane.
const H16: u64 = 0x8000_8000_8000_8000;
/// Low byte of every u16 lane (byte widening mask).
const M16: u64 = 0x00FF_00FF_00FF_00FF;

/// A word with `x` in every lane (re-export of [`gf2::lanes::splat`]).
#[inline(always)]
pub fn splat8(x: i8) -> u64 {
    gf2::lanes::splat(x)
}

/// Lane-wise wrapping add: lane `f` of the result is
/// `a[f].wrapping_add(b[f])` — carries never cross lane boundaries.
#[inline(always)]
pub fn add_wrap8(a: u64, b: u64) -> u64 {
    // Add the low 7 bits of every lane (carries stop below the masked-off
    // sign bits), then restore the sign bits as a carry-less XOR.
    ((a & !H8).wrapping_add(b & !H8)) ^ ((a ^ b) & H8)
}

/// Lane-wise wrapping subtract: lane `f` is `a[f].wrapping_sub(b[f])` —
/// borrows never cross lane boundaries.
#[inline(always)]
pub fn sub_wrap8(a: u64, b: u64) -> u64 {
    // Bias every minuend lane's sign bit so the low-7-bit borrow is
    // absorbed inside the lane, then patch the sign bits back.
    ((a | H8).wrapping_sub(b & !H8)) ^ ((a ^ !b) & H8)
}

/// Lane-wise mask of the negative lanes: `0xFF` where `a[f] < 0`.
#[inline(always)]
pub fn sign_mask8(a: u64) -> u64 {
    ((a & H8) >> 7).wrapping_mul(0xFF)
}

/// Lane-wise select: lane `f` of the result is `a[f]` where `mask`'s
/// lane is `0xFF` and `b[f]` where it is `0x00`.
///
/// `mask` must hold only `0x00` / `0xFF` lanes (as produced by the
/// `*_mask` primitives).
#[inline(always)]
pub fn select8(mask: u64, a: u64, b: u64) -> u64 {
    b ^ ((a ^ b) & mask)
}

/// Lane-wise saturating signed add: lane `f` is
/// `a[f].saturating_add(b[f])`.
#[inline(always)]
pub fn adds_i8(a: u64, b: u64) -> u64 {
    let sum = add_wrap8(a, b);
    // Overflow iff the operands agree in sign and the sum does not.
    let ovf = !(a ^ b) & (a ^ sum) & H8;
    // Saturation value: 0x7F for positive overflow, 0x80 for negative.
    let sat = splat8(0x7F) ^ sign_mask8(a);
    select8((ovf >> 7).wrapping_mul(0xFF), sat, sum)
}

/// Lane-wise wrapping absolute value: lane `f` is
/// `a[f].wrapping_abs()` (so `-128` stays `-128`, as in scalar `i8`).
#[inline(always)]
pub fn abs_i8(a: u64) -> u64 {
    let m = sign_mask8(a);
    // (a ^ m) + (m & 1) per lane: complement-and-increment the negative
    // lanes only.
    add_wrap8(a ^ m, m & L8)
}

/// Lane-wise unsigned `<` over full-range lanes: `0xFF` where
/// `(a[f] as u8) < (b[f] as u8)`.
#[inline(always)]
pub fn ltu_mask(a: u64, b: u64) -> u64 {
    // Borrow out of the low 7 bits of each lane's a - b.
    let d = (a | H8).wrapping_sub(b & !H8);
    // Unsigned a < b at bit 7: either a's top bit is 0 and b's is 1, or
    // the top bits agree and the low bits borrowed.
    let lt = ((!a & b) | (!(a ^ b) & !d)) & H8;
    (lt >> 7).wrapping_mul(0xFF)
}

/// Lane-wise "take the smaller magnitude": lane `f` is `b[f]` if
/// `|b[f]| < |a[f]|` (as `i8::wrapping_abs` compared unsigned, so
/// `-128` counts as magnitude 128) and `a[f]` otherwise — ties keep `a`,
/// matching the strict-`<` update order of
/// [`CnState::absorb`](crate::decoder::kernels::CnState::absorb).
#[inline(always)]
pub fn min_mag_i8(a: u64, b: u64) -> u64 {
    select8(ltu_mask(abs_i8(b), abs_i8(a)), b, a)
}

/// Lane-wise sign product as a mask: `0xFF` where exactly one of the two
/// lanes is negative — the XOR accumulation rule of the check-node sign
/// product (eq. 2).
#[inline(always)]
pub fn sign_xor8(a: u64, b: u64) -> u64 {
    sign_mask8(a ^ b)
}

/// Applies a sign mask to non-negative magnitudes: lane `f` is
/// `-mag[f]` where the mask lane is `0xFF` and `mag[f]` otherwise.
///
/// `mask` must hold only `0x00` / `0xFF` lanes.
#[inline(always)]
pub fn apply_sign8(mag: u64, mask: u64) -> u64 {
    // Conditional two's-complement negate: (mag ^ mask) + (mask & 1).
    add_wrap8(mag ^ mask, mask & L8)
}

/// Lane-wise rail clamp to the symmetric range `[-max, max]`: lane `f`
/// is `a[f].clamp(-max, max)` — the word form of
/// [`saturate`](crate::decoder::kernels::saturate).
///
/// # Panics
///
/// Panics in debug builds if `max < 0`.
#[inline(always)]
pub fn clamp_i8(a: u64, max: i8) -> u64 {
    debug_assert!(max >= 0, "clamp rail must be non-negative");
    // Bias by 0x80 so signed order becomes unsigned order, clamp there,
    // and un-bias.
    let ab = a ^ H8;
    let hi = splat8(max) ^ H8;
    let lo = splat8(max.wrapping_neg()) ^ H8;
    let t = select8(ltu_mask(ab, lo), lo, ab);
    let t = select8(ltu_mask(hi, t), hi, t);
    t ^ H8
}

// ---------------------------------------------------------------------
// Bounded fast paths: lanes already saturated below the 0x80 boundary.
// ---------------------------------------------------------------------

/// Lane-wise unsigned `<` for lanes in `0..=127`: `0xFF` where
/// `a[f] < b[f]`.
///
/// Cheaper than [`ltu_mask`] because with both operands below `0x80` the
/// borrow of `a - b` lands exactly on the spare sign bit.
///
/// # Panics
///
/// Panics in debug builds if any lane has its top bit set.
#[inline(always)]
pub fn ltu7_mask(a: u64, b: u64) -> u64 {
    debug_assert_eq!(a & H8, 0, "ltu7_mask lane out of 0..=127");
    debug_assert_eq!(b & H8, 0, "ltu7_mask lane out of 0..=127");
    // Per lane: 0x80 + a - b keeps bit 7 set iff a >= b; no lane ever
    // reaches zero, so borrows cannot cross lanes.
    let d = (a | H8).wrapping_sub(b);
    ((!d & H8) >> 7).wrapping_mul(0xFF)
}

/// Lane-wise equality for lanes in `0..=127`: `0xFF` where
/// `a[f] == b[f]`.
///
/// # Panics
///
/// Panics in debug builds if any lane has its top bit set.
#[inline(always)]
pub fn eq7_mask(a: u64, b: u64) -> u64 {
    debug_assert_eq!(a & H8, 0, "eq7_mask lane out of 0..=127");
    debug_assert_eq!(b & H8, 0, "eq7_mask lane out of 0..=127");
    let x = a ^ b; // per lane in 0..=127
                   // 0x80 - x has bit 7 set iff x == 0; x < 0x80 means no lane borrows.
    let z = H8.wrapping_sub(x);
    ((z & H8) >> 7).wrapping_mul(0xFF)
}

/// Lane-wise [`Scaling::apply`] on non-negative magnitudes in `0..=127`:
/// the shift-add normalization `x - (x >> k)` of the paper's §5, 8 lanes
/// per op.
///
/// # Panics
///
/// Panics in debug builds if any lane has its top bit set.
#[inline(always)]
pub fn scale_mag8(mag: u64, scaling: Scaling) -> u64 {
    debug_assert_eq!(mag & H8, 0, "scale_mag8 lane out of 0..=127");
    // Per-lane x >> k: shift the word and mask off bits shifted in from
    // the lane above. x >= x >> k per lane, so the subtraction borrows
    // nowhere and plain word arithmetic is exact.
    match scaling {
        Scaling::Unity => mag,
        Scaling::SevenEighths => mag.wrapping_sub((mag >> 3) & splat8(0x0F)),
        Scaling::ThreeQuarters => mag.wrapping_sub((mag >> 2) & splat8(0x1F)),
        Scaling::Half => (mag >> 1) & splat8(0x3F),
    }
}

// ---------------------------------------------------------------------
// u16-lane helpers: the wide bit-node accumulator (two words of 8 x u16
// lanes per 8-frame quantity, lo lanes = frames 0..4, hi = frames 4..8).
// ---------------------------------------------------------------------

/// Widens the even byte lanes (frames 0, 2, 4, 6) of a byte word into
/// u16 lanes.
#[inline(always)]
pub fn widen_even(bytes: u64) -> u64 {
    bytes & M16
}

/// Widens the odd byte lanes (frames 1, 3, 5, 7) of a byte word into
/// u16 lanes.
#[inline(always)]
pub fn widen_odd(bytes: u64) -> u64 {
    (bytes >> 8) & M16
}

/// Narrows two u16-lane words (even / odd frames, as produced by
/// [`widen_even`] / [`widen_odd`]) back to one byte word. Lane values
/// must fit a byte.
///
/// # Panics
///
/// Panics in debug builds if any u16 lane exceeds `0xFF`.
#[inline(always)]
pub fn narrow_bytes(even: u64, odd: u64) -> u64 {
    debug_assert_eq!(even & !M16, 0, "narrow_bytes even lane exceeds a byte");
    debug_assert_eq!(odd & !M16, 0, "narrow_bytes odd lane exceeds a byte");
    even | (odd << 8)
}

/// u16-lane unsigned `<` for lanes in `0..=0x7FFF`: `0xFFFF` where
/// `a[f] < b[f]`.
///
/// # Panics
///
/// Panics in debug builds if any lane has its top bit set.
#[inline(always)]
pub fn ltu15_mask16(a: u64, b: u64) -> u64 {
    debug_assert_eq!(a & H16, 0, "ltu15_mask16 lane out of 0..=0x7FFF");
    debug_assert_eq!(b & H16, 0, "ltu15_mask16 lane out of 0..=0x7FFF");
    let d = (a | H16).wrapping_sub(b);
    ((!d & H16) >> 15).wrapping_mul(0xFFFF)
}

/// u16-lane unsigned minimum for lanes in `0..=0x7FFF`.
///
/// # Panics
///
/// Panics in debug builds if any lane has its top bit set.
#[inline(always)]
pub fn min_u16(a: u64, b: u64) -> u64 {
    select8(ltu15_mask16(a, b), a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::lanes::{pack_lanes, unpack_lanes};

    /// A handful of adversarial lane patterns: rails, extremes, mixed
    /// signs, and carry-boundary neighbours in adjacent lanes.
    fn corpus() -> Vec<[i8; 8]> {
        vec![
            [0; 8],
            [31, -31, 31, -31, 31, -31, 31, -31],
            [127, -128, 1, -1, 0, 127, -128, 64],
            [-1, -1, -1, -1, 1, 1, 1, 1],
            [15, -15, 31, -31, 127, -128, 0, -1],
            [100, -100, 27, -27, 90, -90, 63, -64],
            [1, 2, 3, 4, 5, 6, 7, 8],
            [-128, -128, 127, 127, -128, 127, 0, 0],
        ]
    }

    #[test]
    fn wrapping_add_sub_match_scalar_lanes() {
        for a in corpus() {
            for b in corpus() {
                let (wa, wb) = (pack_lanes(a), pack_lanes(b));
                let sum = unpack_lanes(add_wrap8(wa, wb));
                let diff = unpack_lanes(sub_wrap8(wa, wb));
                for f in 0..8 {
                    assert_eq!(sum[f], a[f].wrapping_add(b[f]), "add lane {f}");
                    assert_eq!(diff[f], a[f].wrapping_sub(b[f]), "sub lane {f}");
                }
            }
        }
    }

    #[test]
    fn saturating_add_matches_scalar_lanes() {
        for a in corpus() {
            for b in corpus() {
                let got = unpack_lanes(adds_i8(pack_lanes(a), pack_lanes(b)));
                for f in 0..8 {
                    assert_eq!(got[f], a[f].saturating_add(b[f]), "lane {f}");
                }
            }
        }
    }

    #[test]
    fn abs_sign_and_min_mag_match_scalar_lanes() {
        for a in corpus() {
            for b in corpus() {
                let (wa, wb) = (pack_lanes(a), pack_lanes(b));
                let abs = unpack_lanes(abs_i8(wa));
                let sign = unpack_lanes(sign_mask8(wa));
                let mm = unpack_lanes(min_mag_i8(wa, wb));
                for f in 0..8 {
                    assert_eq!(abs[f], a[f].wrapping_abs(), "abs lane {f}");
                    assert_eq!(sign[f], if a[f] < 0 { -1 } else { 0 }, "sign lane {f}");
                    let want = if (b[f].wrapping_abs() as u8) < (a[f].wrapping_abs() as u8) {
                        b[f]
                    } else {
                        a[f]
                    };
                    assert_eq!(mm[f], want, "min_mag lane {f}");
                }
            }
        }
    }

    #[test]
    fn clamp_matches_scalar_lanes() {
        for a in corpus() {
            for max in [0i8, 1, 15, 31, 63, 127] {
                let got = unpack_lanes(clamp_i8(pack_lanes(a), max));
                for f in 0..8 {
                    assert_eq!(got[f], a[f].clamp(-max, max), "lane {f} max {max}");
                }
            }
        }
    }

    #[test]
    fn unsigned_compare_matches_scalar_lanes() {
        for a in corpus() {
            for b in corpus() {
                let got = unpack_lanes(ltu_mask(pack_lanes(a), pack_lanes(b)));
                for f in 0..8 {
                    let want = (a[f] as u8) < (b[f] as u8);
                    assert_eq!(got[f] as u8, if want { 0xFF } else { 0 }, "lane {f}");
                }
            }
        }
    }

    #[test]
    fn bounded_compare_and_equality_match_scalar() {
        let bounded: Vec<[i8; 8]> = vec![
            [0, 1, 31, 127, 64, 100, 5, 99],
            [31; 8],
            [127, 0, 127, 0, 1, 1, 2, 2],
        ];
        for a in &bounded {
            for b in &bounded {
                let lt = unpack_lanes(ltu7_mask(pack_lanes(*a), pack_lanes(*b)));
                let eq = unpack_lanes(eq7_mask(pack_lanes(*a), pack_lanes(*b)));
                for f in 0..8 {
                    assert_eq!(lt[f] as u8, if a[f] < b[f] { 0xFF } else { 0 }, "lt {f}");
                    assert_eq!(eq[f] as u8, if a[f] == b[f] { 0xFF } else { 0 }, "eq {f}");
                }
            }
        }
    }

    #[test]
    fn scaling_matches_scalar_kernel() {
        for mags in [[0i8, 1, 2, 3, 12, 13, 31, 127], [127; 8], [31; 8]] {
            for s in [
                Scaling::Unity,
                Scaling::SevenEighths,
                Scaling::ThreeQuarters,
                Scaling::Half,
            ] {
                let got = unpack_lanes(scale_mag8(pack_lanes(mags), s));
                for f in 0..8 {
                    assert_eq!(got[f] as i16, s.apply(mags[f] as i16), "lane {f} {s:?}");
                }
            }
        }
    }

    #[test]
    fn sign_product_and_apply_sign_compose() {
        let a = pack_lanes([1, -1, 2, -2, 0, 5, -5, 127]);
        let b = pack_lanes([1, 1, -2, -2, -3, 5, 5, -127]);
        let sp = unpack_lanes(sign_xor8(a, b));
        for (f, &s) in sp.iter().enumerate() {
            let want = (gf2::lanes::lane(a, f) < 0) != (gf2::lanes::lane(b, f) < 0);
            assert_eq!(s, if want { -1 } else { 0 }, "lane {f}");
        }
        let mags = pack_lanes([3, 3, 3, 3, 3, 3, 3, 3]);
        let signed = unpack_lanes(apply_sign8(mags, sign_xor8(a, b)));
        for (f, &v) in signed.iter().enumerate() {
            let want = (gf2::lanes::lane(a, f) < 0) != (gf2::lanes::lane(b, f) < 0);
            assert_eq!(v, if want { -3 } else { 3 }, "lane {f}");
        }
    }

    #[test]
    fn widen_narrow_roundtrip() {
        let w = pack_lanes([1, -1, 31, -31, 0, 127, -128, 64]);
        // Widening treats lanes as unsigned bytes.
        let even = widen_even(w);
        let odd = widen_odd(w);
        assert_eq!(narrow_bytes(even, odd), w);
        for f in 0..4 {
            assert_eq!(
                (even >> (16 * f)) & 0xFFFF,
                (w >> (16 * f)) & 0xFF,
                "even lane {f}"
            );
            assert_eq!(
                (odd >> (16 * f)) & 0xFFFF,
                (w >> (16 * f + 8)) & 0xFF,
                "odd lane {f}"
            );
        }
    }

    #[test]
    fn u16_compare_and_min_match_scalar() {
        let words: Vec<[u16; 4]> = vec![
            [0, 1, 0x7FFF, 500],
            [500, 500, 500, 500],
            [1, 0x7FFF, 2, 499],
        ];
        let pack = |l: [u16; 4]| -> u64 {
            l.iter()
                .enumerate()
                .map(|(i, &v)| u64::from(v) << (16 * i))
                .sum()
        };
        for a in &words {
            for b in &words {
                let lt = ltu15_mask16(pack(*a), pack(*b));
                let mn = min_u16(pack(*a), pack(*b));
                for f in 0..4 {
                    let got_lt = (lt >> (16 * f)) & 0xFFFF;
                    assert_eq!(got_lt, if a[f] < b[f] { 0xFFFF } else { 0 }, "lt lane {f}");
                    let got_mn = (mn >> (16 * f)) & 0xFFFF;
                    assert_eq!(got_mn, u64::from(a[f].min(b[f])), "min lane {f}");
                }
            }
        }
    }
}
