//! Bit-sliced hard-decision decoding: 64 frames per `u64` word.
//!
//! The paper's high-speed architecture packs several frames into every
//! message-memory word so one access feeds one datapath step of each
//! in-flight frame (Table 3). For *hard-decision* decoding that idea
//! reaches its logical extreme: a frame contributes exactly one bit per
//! variable node, so a `u64` word carries **64 frames in lockstep** and
//! every boolean operation advances all of them at once.
//!
//! [`BitsliceGallagerBDecoder`] runs the classical Gallager-B bit-flipping
//! iteration entirely in this word-sliced domain:
//!
//! * **parity planes** — check `m`'s unsatisfied mask is the XOR of the
//!   hard-decision planes of its neighbourhood, one word op per edge;
//! * **majority vote** — the number of failing checks around a bit is
//!   accumulated in saturating carry-save counter planes (`at_least[j]` =
//!   lanes with ≥ j+1 failures), whose top plane is directly the
//!   word-parallel flip mask;
//! * **per-lane convergence mask** — lanes whose syndrome reaches zero,
//!   stall, or exhaust the budget are removed from the active mask, so
//!   finished frames freeze while the rest keep iterating.
//!
//! Every lane follows exactly the trajectory of the scalar
//! [`GallagerBDecoder`](crate::GallagerBDecoder) on that frame alone —
//! same flips, same iteration count, same convergence flag — which the
//! unit tests, proptests, and the `decoder_conformance` suite pin down.
//! The word width is a constant of the machine, not the algorithm: the
//! same plane walk widens to `u128` or SIMD registers.

use crate::decoder::{BatchDecoder, DecodeResult};
use crate::LdpcCode;
use gf2::{BitSlices, BitVec, WORD_LANES};
use std::sync::Arc;

/// Bit-sliced Gallager-B hard-decision decoder: up to 64 frames per call,
/// one `u64` lane word per bit position.
///
/// Per lane the decoder is **bit-exact** against the scalar
/// [`GallagerBDecoder`](crate::GallagerBDecoder) with the same flip
/// threshold — it differs only in doing the work of the whole word at
/// once. Partial words (fewer than 64 frames) are handled by masking the
/// unused lanes out of every vote.
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::{BatchDecoder, BitsliceGallagerBDecoder};
///
/// let code = demo_code();
/// let mut dec = BitsliceGallagerBDecoder::new(code.clone(), 3);
/// // Ten noiseless all-zero frames share one lane word.
/// let llrs = vec![2.0_f32; 10 * code.n()];
/// let out = dec.decode_batch(&llrs, 10);
/// assert_eq!(out.len(), 10);
/// assert!(out.iter().all(|r| r.converged && r.iterations == 0));
/// ```
pub struct BitsliceGallagerBDecoder {
    code: Arc<LdpcCode>,
    flip_threshold: usize,
    /// Hard-decision planes: `hard[b]` lane `f` = frame `f`'s bit `b`.
    hard: Vec<u64>,
    /// Unsatisfied-check planes, one word per check node.
    unsat: Vec<u64>,
    /// Saturating carry-save counter planes: `at_least[j]` accumulates
    /// the lanes with ≥ `j + 1` failing checks around the current bit.
    at_least: Vec<u64>,
}

impl BitsliceGallagerBDecoder {
    /// Creates a bit-sliced decoder flipping bits with ≥ `flip_threshold`
    /// failing checks (same rule as the scalar decoder).
    ///
    /// # Panics
    ///
    /// Panics if `flip_threshold` is zero.
    pub fn new(code: Arc<LdpcCode>, flip_threshold: usize) -> Self {
        assert!(flip_threshold > 0, "flip threshold must be positive");
        let n = code.n();
        let m = code.n_checks();
        // The counter saturates at the threshold: counts beyond it flip
        // just the same. A threshold above every bit degree can never
        // flip, so the counter is not needed at all then.
        let deg = code.graph().max_bn_degree();
        Self {
            code,
            flip_threshold,
            hard: vec![0; n],
            unsat: vec![0; m],
            at_least: vec![0; flip_threshold.min(deg + 1)],
        }
    }

    /// The flip threshold.
    pub fn flip_threshold(&self) -> usize {
        self.flip_threshold
    }

    /// The code this decoder operates on.
    pub fn code(&self) -> &Arc<LdpcCode> {
        &self.code
    }

    /// Decodes up to 64 word-sliced hard-decision frames.
    ///
    /// `slices` holds the channel hard decisions (1 = received bit 1) in
    /// plane form — see [`BitSlices::from_frames`]. Returns one
    /// [`DecodeResult`] per frame, in lane order, each identical to what
    /// the scalar Gallager-B decoder produces on that frame alone.
    ///
    /// # Panics
    ///
    /// Panics if `slices.bits()` differs from the code length or if the
    /// frame count is zero or exceeds 64.
    pub fn decode_hard_slices(
        &mut self,
        slices: &BitSlices,
        max_iterations: u32,
    ) -> Vec<DecodeResult> {
        let n = self.code.n();
        assert_eq!(slices.bits(), n, "sliced frame length mismatch");
        let frames = slices.frames();
        assert!(
            (1..=WORD_LANES).contains(&frames),
            "bitslice decodes 1..=64 frames per word, got {frames}"
        );
        for b in 0..n {
            self.hard[b] = slices.plane(b)[0];
        }
        self.decode_planes(frames, max_iterations)
    }

    /// The lockstep Gallager-B iteration over the already-loaded planes.
    fn decode_planes(&mut self, frames: usize, max_iterations: u32) -> Vec<DecodeResult> {
        let code = self.code.clone();
        let graph = code.graph();
        let full: u64 = if frames == WORD_LANES {
            u64::MAX
        } else {
            (1u64 << frames) - 1
        };
        let mut active = full;
        let mut converged = 0u64;
        let mut retire_iter = vec![0u32; frames];
        let mut iter = 0u32;
        loop {
            // Parity planes: check m's unsatisfied lanes in one XOR chain.
            let mut unsat_any = 0u64;
            for m in 0..graph.n_checks() {
                let mut parity = 0u64;
                for &bn in graph.cn_bits(m) {
                    parity ^= self.hard[bn as usize];
                }
                self.unsat[m] = parity;
                unsat_any |= parity;
            }
            // Lanes with a clean syndrome converge (scalar: bottom-of-loop
            // syndrome check / the pre-loop check when iter == 0).
            let newly = active & !unsat_any;
            if newly != 0 {
                converged |= newly;
                active &= !newly;
                record_retirement(&mut retire_iter, newly, iter);
            }
            if active == 0 || iter == max_iterations {
                record_retirement(&mut retire_iter, active, iter);
                break;
            }
            // Majority vote: a saturating carry-save counter network per
            // bit. `at_least[j]` accumulates the lanes where ≥ j+1 of
            // the neighbourhood checks fail — branchless word ops only —
            // and the top plane *is* the flip mask, no comparator needed.
            // Flips are masked to active lanes, so finished frames stay
            // frozen. Common thresholds get a fully unrolled counter in
            // registers; a threshold above every bit degree can never
            // flip, so all active lanes stall after this flipless pass.
            let flipped_any = if self.flip_threshold <= graph.max_bn_degree() {
                match self.flip_threshold {
                    1 => self.flip_phase::<1>(active),
                    2 => self.flip_phase::<2>(active),
                    3 => self.flip_phase::<3>(active),
                    4 => self.flip_phase::<4>(active),
                    5 => self.flip_phase::<5>(active),
                    6 => self.flip_phase::<6>(active),
                    _ => self.flip_phase_generic(active),
                }
            } else {
                0
            };
            iter += 1;
            // Lanes where no bit met the threshold have stalled: the
            // scalar decoder breaks after this iteration, unconverged
            // (its syndrome is unchanged, hence still non-zero).
            let stalled = active & !flipped_any;
            if stalled != 0 {
                active &= !stalled;
                record_retirement(&mut retire_iter, stalled, iter);
                if active == 0 {
                    break; // skip the now-pointless loop-top parity sweep
                }
            }
        }
        // Transpose the final planes back to per-frame hard decisions,
        // one 64×64 block at a time, straight into packed words.
        let n = self.code.n();
        let words_per_frame = n.div_ceil(WORD_LANES);
        let mut frame_words = vec![vec![0u64; words_per_frame]; frames];
        let mut block = [0u64; WORD_LANES];
        for w in 0..words_per_frame {
            let lo = w * WORD_LANES;
            let hi = (lo + WORD_LANES).min(n);
            block[..hi - lo].copy_from_slice(&self.hard[lo..hi]);
            block[hi - lo..].fill(0);
            transpose64(&mut block);
            for (f, words) in frame_words.iter_mut().enumerate() {
                words[w] = block[f];
            }
        }
        frame_words
            .into_iter()
            .enumerate()
            .map(|(f, words)| DecodeResult {
                hard_decision: BitVec::from_words(n, words),
                iterations: retire_iter[f],
                converged: (converged >> f) & 1 == 1,
            })
            .collect()
    }

    /// Flip phase with the counter depth `T` known at compile time: the
    /// `at_least` planes live in registers and the update unrolls fully.
    fn flip_phase<const T: usize>(&mut self, active: u64) -> u64 {
        let code = self.code.clone();
        let graph = code.graph();
        let mut flipped_any = 0u64;
        for b in 0..graph.n_bits() {
            let mut acc = [0u64; T];
            for &m in graph.bn_checks(b) {
                let x = self.unsat[m as usize];
                for j in (1..T).rev() {
                    acc[j] |= acc[j - 1] & x;
                }
                acc[0] |= x;
            }
            let flip = acc[T - 1] & active;
            self.hard[b] ^= flip;
            flipped_any |= flip;
        }
        flipped_any
    }

    /// Flip phase for uncommon (large) thresholds: same counter network
    /// with the planes in the reusable `at_least` buffer.
    fn flip_phase_generic(&mut self, active: u64) -> u64 {
        let code = self.code.clone();
        let graph = code.graph();
        let t = self.flip_threshold;
        let mut flipped_any = 0u64;
        for b in 0..graph.n_bits() {
            self.at_least[..t].fill(0);
            for &m in graph.bn_checks(b) {
                let x = self.unsat[m as usize];
                for j in (1..t).rev() {
                    self.at_least[j] |= self.at_least[j - 1] & x;
                }
                self.at_least[0] |= x;
            }
            let flip = self.at_least[t - 1] & active;
            self.hard[b] ^= flip;
            flipped_any |= flip;
        }
        flipped_any
    }
}

/// In-place transpose of a 64×64 bit matrix stored as one `u64` per row
/// (LSB-first columns): afterwards row `f` bit `i` holds the old row `i`
/// bit `f`. The classic recursive block-swap (Hacker's Delight §7-3),
/// with the off-diagonal exchange oriented for LSB-first columns.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            // Swap the high-column half of row k with the low-column
            // half of row k+j (both halves land transposed).
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Stamps the retirement iteration of every lane in `mask`.
fn record_retirement(retire_iter: &mut [u32], mask: u64, iter: u32) {
    let mut m = mask;
    while m != 0 {
        let f = m.trailing_zeros() as usize;
        m &= m - 1;
        retire_iter[f] = iter;
    }
}

impl BatchDecoder for BitsliceGallagerBDecoder {
    fn decode_batch(&mut self, llrs: &[f32], max_iterations: u32) -> Vec<DecodeResult> {
        let n = self.code.n();
        assert!(
            !llrs.is_empty() && llrs.len().is_multiple_of(n),
            "LLR length must be a positive multiple of the code length"
        );
        let frames = llrs.len() / n;
        assert!(
            frames <= WORD_LANES,
            "batch of {frames} frames exceeds capacity {WORD_LANES}"
        );
        // Hard decisions straight into plane form: the same `llr < 0`
        // slicing rule as the scalar decoder, one lane bit per frame
        // (branchless — noisy-bit branches would mispredict).
        self.hard.fill(0);
        for (f, frame) in llrs.chunks_exact(n).enumerate() {
            for (h, &llr) in self.hard.iter_mut().zip(frame) {
                *h |= u64::from(llr < 0.0) << f;
            }
        }
        self.decode_planes(frames, max_iterations)
    }

    fn capacity(&self) -> usize {
        WORD_LANES
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        format!("bitsliced gallager-b (t={})", self.flip_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;
    use crate::decoder::{decode_frames, Decoder, GallagerBDecoder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Mixed-quality LLR frames: clean, single-error, bursty, garbage.
    fn mixed_frames(frames: usize, seed: u64) -> Vec<f32> {
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut llrs = Vec::with_capacity(frames * code.n());
        for f in 0..frames {
            for b in 0..code.n() {
                let v = match f % 4 {
                    0 => 3.0,
                    1 => {
                        if b == (f * 13) % code.n() {
                            -2.0
                        } else {
                            3.0
                        }
                    }
                    2 => 2.0 + rng.gen_range(-2.5f32..0.5),
                    _ => rng.gen_range(-3.0f32..3.0),
                };
                llrs.push(v);
            }
        }
        llrs
    }

    #[test]
    fn transpose64_is_the_bit_transpose() {
        // Deterministic pseudo-random matrix: verify a[f] bit i == old
        // a[i] bit f for every (i, f), and that it is an involution.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut a = [0u64; 64];
        for row in a.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *row = state;
        }
        let orig = a;
        transpose64(&mut a);
        for (i, &orig_row) in orig.iter().enumerate() {
            for (f, &row) in a.iter().enumerate() {
                assert_eq!((row >> i) & 1, (orig_row >> f) & 1, "({i},{f})");
            }
        }
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn threshold_above_degree_stalls_like_scalar() {
        // No bit can ever reach the threshold: both decoders must run
        // exactly one (flipless) iteration and report the stall.
        let code = demo_code();
        let deg = code.graph().max_bn_degree();
        let llrs = mixed_frames(5, 77);
        let mut sliced = BitsliceGallagerBDecoder::new(code.clone(), deg + 1);
        let mut scalar = GallagerBDecoder::new(code.clone(), deg + 1);
        let got = sliced.decode_batch(&llrs, 10);
        let want = decode_frames(&mut scalar, &llrs, 10);
        assert_eq!(got, want);
        assert!(got.iter().any(|r| !r.converged && r.iterations == 1));
    }

    #[test]
    fn clean_word_converges_in_zero_iterations() {
        let code = demo_code();
        let mut dec = BitsliceGallagerBDecoder::new(code.clone(), 3);
        let out = dec.decode_batch(&vec![3.0_f32; 64 * code.n()], 10);
        assert_eq!(out.len(), 64);
        for r in out {
            assert!(r.converged);
            assert_eq!(r.iterations, 0);
            assert!(r.hard_decision.is_zero());
        }
    }

    #[test]
    fn bit_exact_against_scalar_over_mixed_word() {
        let code = demo_code();
        for (frames, seed) in [(64usize, 1u64), (17, 2), (1, 3)] {
            let llrs = mixed_frames(frames, seed);
            let mut sliced = BitsliceGallagerBDecoder::new(code.clone(), 3);
            let mut scalar = GallagerBDecoder::new(code.clone(), 3);
            let got = sliced.decode_batch(&llrs, 20);
            let want = decode_frames(&mut scalar, &llrs, 20);
            assert_eq!(got, want, "frames={frames} seed={seed}");
        }
    }

    #[test]
    fn decode_hard_slices_matches_decode_batch() {
        let code = demo_code();
        let llrs = mixed_frames(9, 5);
        let frames: Vec<BitVec> = llrs
            .chunks_exact(code.n())
            .map(|frame| frame.iter().map(|&l| l < 0.0).collect())
            .collect();
        let slices = BitSlices::from_frames(&frames);
        let mut a = BitsliceGallagerBDecoder::new(code.clone(), 3);
        let mut b = BitsliceGallagerBDecoder::new(code.clone(), 3);
        assert_eq!(a.decode_hard_slices(&slices, 15), b.decode_batch(&llrs, 15));
    }

    #[test]
    fn finished_lanes_freeze_while_others_iterate() {
        let code = demo_code();
        // Lane 0 clean, lane 1 garbage: lane 0 must retire at iteration 0
        // with its decision untouched by lane 1's ongoing flips.
        let mut llrs = vec![4.0_f32; 2 * code.n()];
        let mut rng = StdRng::seed_from_u64(8);
        for v in llrs[code.n()..].iter_mut() {
            *v = if rng.gen_bool(0.5) { 4.0 } else { -4.0 };
        }
        let mut dec = BitsliceGallagerBDecoder::new(code.clone(), 3);
        let out = dec.decode_batch(&llrs, 30);
        assert!(out[0].converged);
        assert_eq!(out[0].iterations, 0);
        assert!(out[0].hard_decision.is_zero());
        if !out[1].converged {
            assert!(out[1].iterations >= 1);
        }
    }

    #[test]
    fn stall_reported_per_lane_like_scalar() {
        let code = demo_code();
        let llrs = mixed_frames(32, 44);
        let mut sliced = BitsliceGallagerBDecoder::new(code.clone(), 3);
        let got = sliced.decode_batch(&llrs, 50);
        let mut scalar = GallagerBDecoder::new(code.clone(), 3);
        for (f, r) in got.iter().enumerate() {
            let want = scalar.decode(&llrs[f * code.n()..(f + 1) * code.n()], 50);
            assert_eq!(r.iterations, want.iterations, "lane {f}");
            assert_eq!(r.converged, want.converged, "lane {f}");
        }
        // The mixed corpus must actually exercise a stall (early
        // unconverged retirement) for this test to mean anything.
        assert!(got.iter().any(|r| !r.converged && r.iterations < 50));
    }

    #[test]
    fn results_stable_across_reuse() {
        let code = demo_code();
        let llrs = mixed_frames(20, 6);
        let mut dec = BitsliceGallagerBDecoder::new(code.clone(), 3);
        let a = dec.decode_batch(&llrs, 12);
        let b = dec.decode_batch(&llrs, 12);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_iteration_budget_matches_scalar() {
        let code = demo_code();
        let llrs = mixed_frames(7, 9);
        let mut sliced = BitsliceGallagerBDecoder::new(code.clone(), 3);
        let mut scalar = GallagerBDecoder::new(code.clone(), 3);
        assert_eq!(
            sliced.decode_batch(&llrs, 0),
            decode_frames(&mut scalar, &llrs, 0)
        );
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_word_panics() {
        let code = demo_code();
        let mut dec = BitsliceGallagerBDecoder::new(code.clone(), 3);
        let _ = dec.decode_batch(&vec![1.0_f32; 65 * code.n()], 1);
    }

    #[test]
    #[should_panic(expected = "multiple of the code length")]
    fn ragged_word_panics() {
        let code = demo_code();
        let mut dec = BitsliceGallagerBDecoder::new(code.clone(), 3);
        let _ = dec.decode_batch(&vec![1.0_f32; code.n() + 1], 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        BitsliceGallagerBDecoder::new(demo_code(), 0);
    }
}
