//! SWAR-packed fixed-point decoder: 8 frames per `u64` word, one word op
//! per edge visit — the soft-decision realization of the paper's
//! frames-per-word packing (Table 3), bit-exact lane by lane against
//! [`FixedDecoder`](crate::decoder::FixedDecoder).

use crate::decoder::batch::{drive_batch, BatchDecoder, BatchPhases, BatchState};
use crate::decoder::swar::{
    self, abs_i8, add_wrap8, apply_sign8, clamp_i8, eq7_mask, ltu15_mask16, ltu7_mask, min_u16,
    narrow_bytes, scale_mag8, select8, sign_mask8, splat8, widen_even, widen_odd,
};
use crate::decoder::{DecodeResult, FixedConfig};
use crate::{LdpcCode, LlrQuantizer};
use std::sync::Arc;

#[cfg(feature = "simd")]
mod sse;

/// Lanes (frames) packed into each message word.
pub const PACK_LANES: usize = swar::LANES;

/// Low byte of every u16 lane.
const M16: u64 = 0x00FF_00FF_00FF_00FF;

/// Low bit of every i8 lane.
const L8: u64 = 0x0101_0101_0101_0101;

/// Largest bit-node degree the stack-resident per-edge caches cover.
const MAX_BN_DEGREE: usize = 64;

/// A word with `x` in all four u16 lanes.
#[inline(always)]
fn splat16(x: u16) -> u64 {
    u64::from(x) * 0x0001_0001_0001_0001
}

/// Frame-packed fixed-point normalized min-sum decoder.
///
/// Eight frames' messages share each `u64`: edge `e`'s word carries frame
/// `f`'s message in byte lane `f` (the [`gf2::ByteSlices`] transpose), and
/// every check-node and bit-node update is a handful of SWAR word ops from
/// [`swar`](crate::decoder::swar) that advance all 8 lanes at once. Each
/// direction keeps **one** signed-byte word per edge (not separate sign
/// and magnitude planes), so an iteration streams exactly two words per
/// edge visit — the check node splits sign from magnitude on the fly
/// (the sign product is the XOR of the raw words: sign bits XOR in
/// place) and the bit node re-signs on the way out. The bit-node sum
/// runs in biased u16 lanes (bias `B = ch_max + max_bn_degree ·
/// msg_max`), which keeps every partial sum non-negative in any
/// accumulation order; the sum therefore never wraps a lane and matches
/// the scalar datapath's widen-accumulate-then-clamp exactly.
///
/// The result is **bit-exact per lane** against [`FixedDecoder`](crate::decoder::FixedDecoder) with the
/// same [`FixedConfig`] — same messages, same hard decisions, same
/// iteration counts — which the conformance and golden suites pin.
///
/// With the `simd` cargo feature enabled (and SSE4.1 present at runtime)
/// the same phases run on 128-bit vector instructions; the results are
/// identical bit for bit.
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::{BatchDecoder, FixedConfig, PackedFixedDecoder};
///
/// let code = demo_code();
/// let mut dec = PackedFixedDecoder::new(code.clone(), FixedConfig::default());
/// // Eight noiseless all-zero frames, stored back to back.
/// let llrs = vec![3.0_f32; 8 * code.n()];
/// let out = dec.decode_batch(&llrs, 10);
/// assert!(out.iter().all(|r| r.converged));
/// ```
pub struct PackedFixedDecoder {
    code: Arc<LdpcCode>,
    config: FixedConfig,
    quantizer: LlrQuantizer,
    /// Bit-node bias: u16 accumulator lanes hold `bias + value`.
    bias: u16,
    /// Bit→check messages: one signed-byte lane word per edge.
    bc: Vec<u64>,
    /// Check→bit messages: one signed-byte lane word per edge.
    cb: Vec<u64>,
    /// Channel LLRs saturated to the message width, one word per bit
    /// (the initial bit→check message of every adjacent edge).
    ch_sat: Vec<u64>,
    /// Biased channel LLRs, u16 lanes, even frames (0, 2, 4, 6).
    chb_even: Vec<u64>,
    /// Biased channel LLRs, u16 lanes, odd frames (1, 3, 5, 7).
    chb_odd: Vec<u64>,
    /// Hard-decision masks: `0xFF` in lane `f` where frame `f` decides 1.
    hard_mask: Vec<u64>,
    /// Frame-major hard-decision bytes (frame `f` at `f*n..(f+1)*n`),
    /// materialized per frame on demand from `hard_mask`.
    hard: Vec<u8>,
    /// Per-lane unsatisfied-check mask: byte `f` is zero iff frame `f`'s
    /// syndrome is zero after the last iteration.
    unsat: u64,
}

impl PackedFixedDecoder {
    /// Creates a packed decoder for the given code and datapath
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configured widths do not fit the packed datapath
    /// (`q_msg` or `q_ch` above 8 bits, or a bias that overflows the u16
    /// bit-node lanes), if any check node has degree outside `2..=127`
    /// (the two-minimum lane scan needs at least two absorbs to mirror
    /// the scalar kernel, and edge indices must fit a lane), or if any
    /// bit node has degree above 64 (the per-edge contribution caches
    /// are stack-sized).
    pub fn new(code: Arc<LdpcCode>, config: FixedConfig) -> Self {
        assert!(
            config.q_msg <= 8,
            "packed datapath requires q_msg <= 8 (i8 lanes), got {}",
            config.q_msg
        );
        assert!(
            config.q_ch <= 8,
            "packed datapath requires q_ch <= 8 (i8 lanes), got {}",
            config.q_ch
        );
        let quantizer = config.channel_quantizer();
        let graph = code.graph();
        for m in 0..graph.n_checks() {
            let deg = graph.cn_degree(m);
            assert!(
                (2..=127).contains(&deg),
                "packed datapath requires check degrees in 2..=127, check {m} has {deg}"
            );
        }
        assert!(
            graph.max_bn_degree() <= MAX_BN_DEGREE,
            "packed datapath requires bit degrees <= {MAX_BN_DEGREE}, got {}",
            graph.max_bn_degree()
        );
        let ch_max = quantizer.max_level() as u32;
        let msg_max = config.msg_max() as u32;
        let bias = ch_max + graph.max_bn_degree() as u32 * msg_max;
        assert!(
            2 * bias <= 0x7FFF,
            "bit-node bias {bias} overflows the u16 accumulator lanes"
        );
        let edges = graph.n_edges();
        let n = code.n();
        Self {
            quantizer,
            config,
            bias: bias as u16,
            bc: vec![0; edges],
            cb: vec![0; edges],
            ch_sat: vec![0; n],
            chb_even: vec![0; n],
            chb_odd: vec![0; n],
            hard_mask: vec![0; n],
            hard: vec![0; n * PACK_LANES],
            unsat: 0,
            code,
        }
    }

    /// The datapath configuration.
    pub fn config(&self) -> &FixedConfig {
        &self.config
    }

    /// The code this decoder operates on.
    pub fn code(&self) -> &Arc<LdpcCode> {
        &self.code
    }

    /// Whether the 128-bit SSE4.1 mirror is compiled in (`simd` feature)
    /// **and** supported by the running CPU. When `false` the portable
    /// SWAR kernels run; the results are identical either way.
    pub fn simd_active() -> bool {
        #[cfg(feature = "simd")]
        {
            sse::available()
        }
        #[cfg(not(feature = "simd"))]
        {
            false
        }
    }

    /// Decodes a batch of already-quantized frames stored back to back
    /// (frame `f` occupies `channel[f*n .. (f+1)*n]`), the hardware input
    /// format. See [`BatchDecoder::decode_batch`] for the result contract.
    ///
    /// # Panics
    ///
    /// Panics if `channel.len()` is not a positive multiple of the code
    /// length, if the frame count exceeds [`PACK_LANES`], or if any value
    /// exceeds the channel quantizer range.
    pub fn decode_quantized_batch(
        &mut self,
        channel: &[i16],
        max_iterations: u32,
    ) -> Vec<DecodeResult> {
        let code = self.code.clone();
        let graph = code.graph();
        let n = graph.n_bits();
        assert!(
            !channel.is_empty() && channel.len().is_multiple_of(n),
            "channel length must be a positive multiple of the code length"
        );
        let frames = channel.len() / n;
        assert!(
            frames <= PACK_LANES,
            "batch of {frames} frames exceeds the {PACK_LANES} lanes of one word"
        );
        let ch_max = self.quantizer.max_level();
        assert!(
            channel.iter().all(|&c| (-ch_max..=ch_max).contains(&c)),
            "channel value outside quantizer range"
        );

        // Transpose the channel into lane words: saturated signed bytes
        // for message initialization, biased u16 lanes for the bit-node
        // accumulator. Unused lanes stay at channel 0 (bias B), which
        // keeps every lane inside the proven value ranges.
        let bias = u64::from(self.bias);
        let msg_max = self.config.msg_max() as u8 as i8;
        for b in 0..n {
            let mut sat = 0u64;
            let mut even = 0u64;
            let mut odd = 0u64;
            for f in 0..PACK_LANES {
                // Unused lanes stay at channel 0 (bias B in the u16
                // plane), keeping every lane inside the proven ranges.
                let c = if f < frames { channel[f * n + b] } else { 0 };
                sat |= u64::from(c as i8 as u8) << (8 * f);
                let biased = bias.wrapping_add(c as u64) & 0xFFFF;
                if f % 2 == 0 {
                    even |= biased << (8 * f);
                } else {
                    odd |= biased << (8 * (f - 1));
                }
            }
            self.ch_sat[b] = clamp_i8(sat, msg_max);
            self.chb_even[b] = even;
            self.chb_odd[b] = odd;
        }
        // Initial bit→check messages: the saturated channel value of the
        // edge's bit, in every lane at once.
        for e in 0..graph.n_edges() {
            self.bc[e] = self.ch_sat[graph.edge_bit(e)];
        }
        drive_batch(self, frames, max_iterations)
    }

    /// Check-node phase, all 8 lanes per word op: sign product by XOR of
    /// the raw message words (sign bits XOR in place; the low bits are
    /// masked off at output), two-minimum magnitude scan via lane
    /// compares — the word form of
    /// [`cn_scan`](crate::decoder::kernels::cn_scan) +
    /// [`CnState::output`](crate::decoder::kernels::CnState::output).
    ///
    /// The scan seeds `min1 = min2 = 127`, which coincides with the
    /// scalar kernel's `i16::MAX` seed for degrees >= 2 because lane
    /// magnitudes never exceed 127: the first two absorbs pull both
    /// minima down to real message values either way, through the same
    /// strict-`<` first-wins tie rule.
    fn cn_phase(&mut self) {
        let code = self.code.clone();
        let graph = code.graph();
        let scaling = self.config.scaling;
        for m in 0..graph.n_checks() {
            let range = graph.cn_edge_range(m);
            let mut sp = 0u64;
            let mut min1 = splat8(0x7F);
            let mut min2 = splat8(0x7F);
            let mut argmin = 0u64;
            for (idx, e) in range.clone().enumerate() {
                let v = self.bc[e];
                sp ^= v;
                let mag = abs_i8(v);
                let lt1 = ltu7_mask(mag, min1);
                let lt2 = ltu7_mask(mag, min2);
                min2 = select8(lt1, min1, select8(lt2, mag, min2));
                min1 = select8(lt1, mag, min1);
                argmin = select8(lt1, splat8(idx as i8), argmin);
            }
            // Scaling commutes with the excluded-self select, so scale the
            // two minima once per check instead of once per edge.
            let s1 = scale_mag8(min1, scaling);
            let s2 = scale_mag8(min2, scaling);
            for (idx, e) in range.enumerate() {
                let eq = eq7_mask(argmin, splat8(idx as i8));
                let smag = select8(eq, s2, s1);
                // Output sign = sign product excluding self = sign bits
                // of the XOR accumulator XOR this edge's own sign.
                let sign = sign_mask8(sp ^ self.bc[e]);
                self.cb[e] = apply_sign8(smag, sign);
            }
        }
    }

    /// Bit-node phase, all 8 lanes per word op, in biased u16 lanes.
    ///
    /// Lane values stay in `[0, 2·bias]` through every partial sum (each
    /// check→bit magnitude is at most `msg_max` and at most
    /// `max_bn_degree` of them are subtracted), so the plain `u64`
    /// add/sub never borrows across lanes and the accumulator is exact —
    /// the packed equivalent of the scalar datapath's i32 widening. The
    /// per-edge output `bias + ch + total − own` then saturates to
    /// `msg_max` exactly like
    /// [`bn_output`](crate::decoder::kernels::bn_output), and the hard
    /// decision `t < bias` is [`bn_posterior`](crate::decoder::kernels::bn_posterior)` < 0`.
    fn bn_phase(&mut self) {
        let code = self.code.clone();
        let graph = code.graph();
        let b16 = splat16(self.bias);
        let m16 = splat16(self.config.msg_max() as u16);
        let mut pms = [0u64; MAX_BN_DEGREE];
        let mut nms = [0u64; MAX_BN_DEGREE];
        for n in 0..graph.n_bits() {
            let edges = graph.bn_edge_ids(n);
            let mut te = self.chb_even[n];
            let mut to = self.chb_odd[n];
            for (i, &e) in edges.iter().enumerate() {
                let v = self.cb[e as usize];
                // Split the signed lanes into positive / negative
                // magnitude planes: conditional two's-complement via the
                // shared sign mask, then mask each half.
                let s = sign_mask8(v);
                let mag = add_wrap8(v ^ s, s & L8);
                let pm = mag & !s;
                let nm = mag & s;
                pms[i] = pm;
                nms[i] = nm;
                te = te.wrapping_add(widen_even(pm)).wrapping_sub(widen_even(nm));
                to = to.wrapping_add(widen_odd(pm)).wrapping_sub(widen_odd(nm));
            }
            for (i, &e) in edges.iter().enumerate() {
                let (pm, nm) = (pms[i], nms[i]);
                let ue = te.wrapping_sub(widen_even(pm)).wrapping_add(widen_even(nm));
                let uo = to.wrapping_sub(widen_odd(pm)).wrapping_add(widen_odd(nm));
                // Sign: the extrinsic sum is negative iff u < bias.
                let lte = ltu15_mask16(ue, b16);
                let lto = ltu15_mask16(uo, b16);
                // Magnitude: |u - bias| via max/min (xor recovers the
                // other of the pair), saturated to the message width.
                let mxe = select8(lte, b16, ue);
                let mage = min_u16(mxe.wrapping_sub(ue ^ b16 ^ mxe), m16);
                let mxo = select8(lto, b16, uo);
                let mago = min_u16(mxo.wrapping_sub(uo ^ b16 ^ mxo), m16);
                let sign = narrow_bytes(lte & M16, lto & M16);
                let mag = narrow_bytes(mage, mago);
                self.bc[e as usize] = apply_sign8(mag, sign);
            }
            // Hard decision: posterior < 0 iff the biased total < bias.
            let he = ltu15_mask16(te, b16);
            let ho = ltu15_mask16(to, b16);
            self.hard_mask[n] = narrow_bytes(he & M16, ho & M16);
        }
    }

    /// Word-parallel syndrome: XOR the hard masks of each check's bits —
    /// lane `f` of `unsat` becomes non-zero iff frame `f` leaves some
    /// check unsatisfied.
    fn syndrome_pass(&mut self) {
        let code = self.code.clone();
        let graph = code.graph();
        let mut unsat = 0u64;
        for m in 0..graph.n_checks() {
            let mut parity = 0u64;
            for &bn in graph.cn_bits(m) {
                parity ^= self.hard_mask[bn as usize];
            }
            unsat |= parity;
        }
        self.unsat = unsat;
    }
}

impl BatchPhases for PackedFixedDecoder {
    fn run_phases(&mut self, _iter: u32, _frames: usize, _state: &BatchState) {
        // All 8 lanes always advance — a retired lane's results were
        // snapshotted by the driver, so its lanes idling along is free
        // (that is the whole point of the packing: no masking, ever).
        #[cfg(feature = "simd")]
        if self.simd_phases() {
            self.syndrome_pass();
            return;
        }
        self.cn_phase();
        self.bn_phase();
        self.syndrome_pass();
    }

    fn materialize_hard(&mut self, f: usize) {
        // Transpose frame f's lane out of the hard-decision masks, on
        // demand — once per frame per decode instead of every iteration.
        let n = self.code.n();
        for (b, &mask) in self.hard_mask.iter().enumerate() {
            self.hard[f * n + b] = ((mask >> (8 * f)) & 1) as u8;
        }
    }

    fn hard_frame(&self, f: usize) -> &[u8] {
        let n = self.code.n();
        &self.hard[f * n..(f + 1) * n]
    }

    fn syndrome_ok_frame(&self, f: usize) -> bool {
        (self.unsat >> (8 * f)) & 0xFF == 0
    }

    fn early_stop(&self) -> bool {
        self.config.early_stop
    }
}

impl BatchDecoder for PackedFixedDecoder {
    fn decode_batch(&mut self, llrs: &[f32], max_iterations: u32) -> Vec<DecodeResult> {
        let n = self.code.n();
        assert!(
            !llrs.is_empty() && llrs.len().is_multiple_of(n),
            "LLR length must be a positive multiple of the code length"
        );
        let quantized = self.quantizer.quantize_slice(llrs);
        self.decode_quantized_batch(&quantized, max_iterations)
    }

    fn capacity(&self) -> usize {
        PACK_LANES
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        format!(
            "packed fixed-point normalized min-sum ({} frames/word, {}b msg)",
            PACK_LANES, self.config.q_msg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;
    use crate::decoder::kernels::Scaling;
    use crate::FixedDecoder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A batch of frames spanning the convergence spectrum: clean frames
    /// that converge immediately, noisy ones that take several
    /// iterations, and garbage that stalls — so lanes retire at
    /// different iterations.
    fn mixed_batch(code: &Arc<LdpcCode>, frames: usize, seed: u64) -> Vec<i16> {
        let n = code.n();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(frames * n);
        for f in 0..frames {
            match f % 3 {
                0 => out.extend(std::iter::repeat_n(10i16, n)),
                1 => out.extend((0..n).map(|_| {
                    let v: i16 = rng.gen_range(1..=8);
                    if rng.gen_bool(0.12) {
                        -v
                    } else {
                        v
                    }
                })),
                _ => out.extend((0..n).map(|_| rng.gen_range(-15i16..=15))),
            }
        }
        out
    }

    fn assert_lanes_match_scalar(config: FixedConfig, frames: usize, seed: u64, iters: u32) {
        let code = demo_code();
        let ch = mixed_batch(&code, frames, seed);
        let n = code.n();
        let mut packed = PackedFixedDecoder::new(code.clone(), config);
        let mut scalar = FixedDecoder::new(code.clone(), config);
        let got = packed.decode_quantized_batch(&ch, iters);
        assert_eq!(got.len(), frames);
        for (f, out) in got.iter().enumerate() {
            let want = scalar.decode_quantized(&ch[f * n..(f + 1) * n], iters);
            assert_eq!(out, &want, "lane {f} diverged from scalar fixed");
        }
    }

    #[test]
    fn full_word_matches_scalar_lane_by_lane() {
        assert_lanes_match_scalar(FixedConfig::default(), 8, 40, 25);
    }

    #[test]
    fn partial_words_match_scalar_lane_by_lane() {
        for frames in 1..8 {
            assert_lanes_match_scalar(FixedConfig::default(), frames, 41 + frames as u64, 20);
        }
    }

    #[test]
    fn fixed_latency_mode_matches_scalar() {
        assert_lanes_match_scalar(FixedConfig::default().with_early_stop(false), 8, 42, 12);
    }

    #[test]
    fn every_scaling_matches_scalar() {
        for s in [
            Scaling::Unity,
            Scaling::SevenEighths,
            Scaling::ThreeQuarters,
            Scaling::Half,
        ] {
            assert_lanes_match_scalar(FixedConfig::default().with_scaling(s), 8, 43, 15);
        }
    }

    #[test]
    fn narrow_quantization_matches_scalar() {
        let cfg = FixedConfig::default().with_q_msg(4).with_q_ch(3);
        let code = demo_code();
        let n = code.n();
        // Regenerate the batch within the narrow channel range.
        let mut rng = StdRng::seed_from_u64(44);
        let ch: Vec<i16> = (0..8 * n).map(|_| rng.gen_range(-3i16..=3)).collect();
        let mut packed = PackedFixedDecoder::new(code.clone(), cfg);
        let mut scalar = FixedDecoder::new(code.clone(), cfg);
        for (f, out) in packed.decode_quantized_batch(&ch, 20).iter().enumerate() {
            let want = scalar.decode_quantized(&ch[f * n..(f + 1) * n], 20);
            assert_eq!(out, &want, "lane {f}");
        }
    }

    #[test]
    fn wide_eight_bit_quantization_matches_scalar() {
        // q_msg = q_ch = 8: magnitudes up to 127 exercise the lane-scan
        // seed coincidence at the i8 boundary.
        let cfg = FixedConfig::default().with_q_msg(8).with_q_ch(8);
        let code = demo_code();
        let n = code.n();
        let mut rng = StdRng::seed_from_u64(45);
        let ch: Vec<i16> = (0..8 * n).map(|_| rng.gen_range(-127i16..=127)).collect();
        let mut packed = PackedFixedDecoder::new(code.clone(), cfg);
        let mut scalar = FixedDecoder::new(code.clone(), cfg);
        for (f, out) in packed.decode_quantized_batch(&ch, 15).iter().enumerate() {
            let want = scalar.decode_quantized(&ch[f * n..(f + 1) * n], 15);
            assert_eq!(out, &want, "lane {f}");
        }
    }

    #[test]
    fn float_entry_point_quantizes_like_scalar() {
        let code = demo_code();
        let n = code.n();
        let mut rng = StdRng::seed_from_u64(46);
        let llrs: Vec<f32> = (0..8 * n).map(|_| rng.gen_range(-6.0..6.0)).collect();
        let mut packed = PackedFixedDecoder::new(code.clone(), FixedConfig::default());
        let mut scalar = FixedDecoder::new(code.clone(), FixedConfig::default());
        use crate::decoder::Decoder;
        for (f, out) in packed.decode_batch(&llrs, 18).iter().enumerate() {
            let want = scalar.decode(&llrs[f * n..(f + 1) * n], 18);
            assert_eq!(out, &want, "lane {f}");
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let code = demo_code();
        let ch = mixed_batch(&code, 8, 47);
        let mut dec = PackedFixedDecoder::new(code, FixedConfig::default());
        let a = dec.decode_quantized_batch(&ch, 18);
        let b = dec.decode_quantized_batch(&ch, 18);
        assert_eq!(a, b);
    }

    #[test]
    #[ignore = "manual profiling aid: run with --release --nocapture"]
    fn profile_phase_split() {
        let code = crate::codes::ccsds_c2::code();
        let mut dec = PackedFixedDecoder::new(code.clone(), FixedConfig::default());
        let ch = mixed_batch(&code, 8, 99);
        let _ = dec.decode_quantized_batch(&ch, 2); // warm buffers
        let reps = 200u32;
        let time = |label: &str, f: &mut dyn FnMut()| {
            let start = std::time::Instant::now();
            for _ in 0..reps {
                f();
            }
            println!("  {label}: {:?}/iter", start.elapsed() / reps);
        };
        time("full decode ", &mut || {
            let _ = dec.decode_quantized_batch(&ch, 18);
        });
        time("decode 1 it ", &mut || {
            let _ = dec.decode_quantized_batch(&ch, 1);
        });
        #[cfg(feature = "simd")]
        time("simd phases ", &mut || {
            let _ = dec.simd_phases();
        });
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        #[allow(unsafe_code)]
        if PackedFixedDecoder::simd_active() {
            // SAFETY: feature presence checked on the line above.
            time("cn (sse)    ", &mut || unsafe { dec.cn_phase_sse() });
            time("bn (sse)    ", &mut || unsafe { dec.bn_phase_sse() });
        }
        time("cn (swar)   ", &mut || dec.cn_phase());
        time("bn (swar)   ", &mut || dec.bn_phase());
        time("syndrome    ", &mut || dec.syndrome_pass());
        time("materialize ", &mut || {
            for f in 0..8 {
                dec.materialize_hard(f);
            }
        });
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn nine_frames_rejected() {
        let code = demo_code();
        let mut dec = PackedFixedDecoder::new(code.clone(), FixedConfig::default());
        let _ = dec.decode_quantized_batch(&vec![0i16; 9 * code.n()], 1);
    }

    #[test]
    #[should_panic(expected = "q_msg <= 8")]
    fn too_wide_messages_rejected() {
        let _ = PackedFixedDecoder::new(demo_code(), FixedConfig::default().with_q_msg(9));
    }

    #[test]
    #[should_panic(expected = "quantizer range")]
    fn out_of_range_channel_rejected() {
        let code = demo_code();
        let mut dec = PackedFixedDecoder::new(code.clone(), FixedConfig::default());
        let mut ch = vec![0i16; code.n()];
        ch[0] = 16;
        let _ = dec.decode_quantized_batch(&ch, 1);
    }
}
