//! Bit-exact fixed-point datapath primitives.
//!
//! These free functions are the single source of truth for the hardware
//! arithmetic: [`FixedDecoder`](crate::FixedDecoder) uses them for whole-
//! frame decoding and the `ldpc-hwsim` architecture simulator drives the
//! same kernels cycle by cycle, which is what makes the two bit-identical.
//!
//! All magnitudes are non-negative `i16` values; messages are sign ×
//! magnitude with saturation at the quantizer maximum (the most negative
//! two's-complement code is never produced).

/// Hardware normalization factor 1/α applied to check-node magnitudes,
/// realized as shift-and-add so an FPGA needs no multiplier (paper §5:
/// the "fine scaled correction factor").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scaling {
    /// No scaling (plain sign-min, α = 1).
    Unity,
    /// ×0.875 = `x − (x >> 3)` (α = 8/7).
    SevenEighths,
    /// ×0.75 = `x − (x >> 2)` (α = 4/3). The paper's operating point.
    #[default]
    ThreeQuarters,
    /// ×0.5 = `x >> 1` (α = 2).
    Half,
}

impl Scaling {
    /// The multiplicative factor 1/α this scaling realizes.
    pub fn factor(self) -> f32 {
        match self {
            Self::Unity => 1.0,
            Self::SevenEighths => 0.875,
            Self::ThreeQuarters => 0.75,
            Self::Half => 0.5,
        }
    }

    /// The normalization constant α = 1/factor.
    pub fn alpha(self) -> f32 {
        1.0 / self.factor()
    }

    /// Applies the scaling to a non-negative magnitude, exactly as the
    /// shift-add hardware would.
    ///
    /// ```
    /// use ldpc_core::decoder::kernels::Scaling;
    /// assert_eq!(Scaling::ThreeQuarters.apply(12), 9);
    /// assert_eq!(Scaling::ThreeQuarters.apply(13), 10); // 13 - (13>>2) = 13 - 3
    /// assert_eq!(Scaling::Unity.apply(13), 13);
    /// assert_eq!(Scaling::Half.apply(13), 6);
    /// ```
    #[inline]
    pub fn apply(self, magnitude: i16) -> i16 {
        debug_assert!(magnitude >= 0);
        match self {
            Self::Unity => magnitude,
            Self::SevenEighths => magnitude - (magnitude >> 3),
            Self::ThreeQuarters => magnitude - (magnitude >> 2),
            Self::Half => magnitude >> 1,
        }
    }
}

/// Running state of a serial check-node scan: the two smallest input
/// magnitudes, the position of the smallest, and the XOR of input signs.
///
/// This is also exactly the compressed check-node record the high-speed
/// decoder variant stores in memory (DESIGN.md §9.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CnState {
    /// Smallest input magnitude.
    pub min1: i16,
    /// Second-smallest input magnitude.
    pub min2: i16,
    /// Index (within the check's edge list) of the smallest magnitude.
    pub argmin: u32,
    /// XOR of all input sign bits (`true` = negative product).
    pub sign_product: bool,
    /// Individual input sign bits, LSB first (`true` = negative). Supports
    /// check degrees up to 64; the CCSDS C2 degree is 32.
    pub signs: u64,
}

impl CnState {
    /// Initial state before any input is absorbed.
    pub fn new() -> Self {
        Self {
            min1: i16::MAX,
            min2: i16::MAX,
            argmin: 0,
            sign_product: false,
            signs: 0,
        }
    }

    /// Absorbs input number `idx` with the given signed message value,
    /// exactly as a serial CN unit would per clock cycle.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `idx >= 64`.
    #[inline]
    pub fn absorb(&mut self, idx: u32, message: i16) {
        debug_assert!(idx < 64, "CnState supports degrees up to 64");
        let negative = message < 0;
        let mag = if negative { -message } else { message }; // |i16::MIN| never produced
        if negative {
            self.sign_product = !self.sign_product;
            self.signs |= 1u64 << idx;
        }
        if mag < self.min1 {
            self.min2 = self.min1;
            self.min1 = mag;
            self.argmin = idx;
        } else if mag < self.min2 {
            self.min2 = mag;
        }
    }

    /// Extrinsic output toward input `idx`: sign-product excluding own sign,
    /// magnitude min-excluding-self, scaled by the normalization factor.
    #[inline]
    pub fn output(&self, idx: u32, scaling: Scaling) -> i16 {
        let mag = if idx == self.argmin {
            self.min2
        } else {
            self.min1
        };
        let mag = scaling.apply(mag);
        let own_negative = (self.signs >> idx) & 1 == 1;
        let negative = self.sign_product ^ own_negative;
        if negative {
            -mag
        } else {
            mag
        }
    }
}

impl Default for CnState {
    fn default() -> Self {
        Self::new()
    }
}

/// Scans all inputs of one check node (eq. 1–2 of the paper in fixed point).
pub fn cn_scan(messages: &[i16]) -> CnState {
    let mut state = CnState::new();
    for (idx, &m) in messages.iter().enumerate() {
        state.absorb(idx as u32, m);
    }
    state
}

/// Saturates a wide accumulator to the symmetric range `[-max, max]`.
#[inline]
pub fn saturate(value: i32, max: i16) -> i16 {
    let max = i32::from(max);
    value.clamp(-max, max) as i16
}

/// Bit-node update (eq. 3) in fixed point: given the channel LLR, the sum
/// of all incoming check messages, and one incoming message, produces the
/// extrinsic message back to that check, saturated to `max`.
#[inline]
pub fn bn_output(channel: i16, total_in: i32, own_in: i16, max: i16) -> i16 {
    saturate(i32::from(channel) + total_in - i32::from(own_in), max)
}

/// A-posteriori value of a bit node: channel LLR plus all incoming check
/// messages, saturated to `max`.
#[inline]
pub fn bn_posterior(channel: i16, total_in: i32, max: i16) -> i16 {
    saturate(i32::from(channel) + total_in, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_factors_match_shift_add() {
        for mag in 0i16..200 {
            assert_eq!(Scaling::Unity.apply(mag), mag);
            assert_eq!(Scaling::SevenEighths.apply(mag), mag - (mag >> 3));
            assert_eq!(Scaling::ThreeQuarters.apply(mag), mag - (mag >> 2));
            assert_eq!(Scaling::Half.apply(mag), mag >> 1);
        }
    }

    #[test]
    fn scaling_alpha_is_reciprocal() {
        for s in [
            Scaling::Unity,
            Scaling::SevenEighths,
            Scaling::ThreeQuarters,
            Scaling::Half,
        ] {
            assert!((s.factor() * s.alpha() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn cn_scan_finds_two_minima() {
        let st = cn_scan(&[5, -3, 7, 2, -6]);
        assert_eq!(st.min1, 2);
        assert_eq!(st.min2, 3);
        assert_eq!(st.argmin, 3);
        // Two negative inputs -> even sign product.
        assert!(!st.sign_product);
        assert_eq!(st.signs, 0b10010);
    }

    #[test]
    fn cn_output_excludes_self() {
        let st = cn_scan(&[5, -3, 7, 2, -6]);
        // Toward index 3 (the argmin) the magnitude is min2 = 3.
        assert_eq!(st.output(3, Scaling::Unity), 3);
        // Toward any other index it is min1 = 2.
        assert_eq!(st.output(0, Scaling::Unity).abs(), 2);
    }

    #[test]
    fn cn_output_sign_is_product_of_others() {
        // inputs: [+, -, +]: product is negative.
        let st = cn_scan(&[4, -2, 9]);
        // Toward index 1 the remaining signs are (+, +) -> positive.
        assert!(st.output(1, Scaling::Unity) > 0);
        // Toward index 0 the remaining signs are (-, +) -> negative.
        assert!(st.output(0, Scaling::Unity) < 0);
        assert!(st.output(2, Scaling::Unity) < 0);
    }

    #[test]
    fn cn_output_applies_scaling() {
        let st = cn_scan(&[8, 12]);
        assert_eq!(st.output(0, Scaling::ThreeQuarters), 9); // min toward 0 is 12
        assert_eq!(st.output(1, Scaling::ThreeQuarters), 6);
    }

    #[test]
    fn cn_matches_naive_reference() {
        // Brute-force check against the direct definition of eq. (1)-(2).
        let cases: Vec<Vec<i16>> = vec![
            vec![1, 2, 3],
            vec![-5, 4, -4, 4],
            vec![0, -7, 3, 3, -3, 9],
            vec![-1, -1],
        ];
        for inputs in cases {
            let st = cn_scan(&inputs);
            for i in 0..inputs.len() {
                let mut mag = i16::MAX;
                let mut neg = false;
                for (j, &x) in inputs.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    mag = mag.min(x.abs());
                    neg ^= x < 0;
                }
                let expect = if neg { -mag } else { mag };
                assert_eq!(
                    st.output(i as u32, Scaling::Unity),
                    expect,
                    "inputs {inputs:?} idx {i}"
                );
            }
        }
    }

    #[test]
    fn saturate_clamps_symmetrically() {
        assert_eq!(saturate(100, 31), 31);
        assert_eq!(saturate(-100, 31), -31);
        assert_eq!(saturate(7, 31), 7);
        assert_eq!(saturate(i32::MAX, 31), 31);
        assert_eq!(saturate(i32::MIN, 31), -31);
    }

    #[test]
    fn bn_output_subtracts_own_message() {
        // channel 3, messages sum 10, own message 4 -> 3 + 10 - 4 = 9.
        assert_eq!(bn_output(3, 10, 4, 31), 9);
        // Saturation engages.
        assert_eq!(bn_output(20, 30, 0, 31), 31);
        assert_eq!(bn_output(-20, -30, 0, 31), -31);
    }

    #[test]
    fn bn_posterior_is_full_sum() {
        assert_eq!(bn_posterior(3, 10, 31), 13);
        assert_eq!(bn_posterior(-3, -40, 31), -31);
    }

    #[test]
    fn zero_magnitude_dominates_min() {
        let st = cn_scan(&[0, 5, -9]);
        // Outputs toward non-zero inputs have magnitude 0.
        assert_eq!(st.output(1, Scaling::ThreeQuarters), 0);
        assert_eq!(st.output(2, Scaling::ThreeQuarters), 0);
        // Output toward the zero input uses min2 = 5.
        assert_eq!(st.output(0, Scaling::Unity).abs(), 5);
    }
}
