//! The decoder family: message-passing decoders over the Tanner graph.
//!
//! All decoders implement [`Decoder`] and share the same edge-indexed
//! message layout defined by [`TannerGraph`](crate::TannerGraph). The
//! classical flooding iteration follows the paper's §2.1: bit nodes send
//! messages to check nodes, check nodes process (eq. 1–2), send back, and
//! bit nodes update (eq. 3).
//!
//! | Decoder | Arithmetic | CN rule | Paper role |
//! |---------|-----------|---------|------------|
//! | [`SumProductDecoder`] | `f32` | tanh product | reference ("BP") |
//! | [`MinSumDecoder`] | `f32` | sign·min with normalization/offset | eq. (2) |
//! | [`FixedDecoder`] | saturating integer | sign·min, shift-add scaling | the FPGA datapath |
//! | [`LayeredMinSumDecoder`] | `f32` | sign·min, serial schedule | ablation (A3) |
//! | [`QcLayeredDecoder`] | `f32` | sign·min, block-layered over rotate-indexed circulant planes | the banked-memory datapath (Fig. 3) |
//! | [`BatchMinSumDecoder`] / [`BatchFixedDecoder`] | as above, ×F frames | lockstep over interleaved memory | frames-per-word packing (Table 3) |
//! | [`PackedFixedDecoder`] | SWAR i8 lanes, ×8 frames per word | sign·min on byte lanes, one word op per edge | frames-per-word packing at register width |
//! | [`BitsliceGallagerBDecoder`] | boolean planes, ×64 frames | majority vote via carry-save counters | frames-per-word at the hard-decision limit |
//! | [`PeelingDecoder`] | GF(2) | degree-1 erasure peeling + dense inactivation solve | fountain-code baseline for the packet-loss workload |
//!
//! Every family is also reachable declaratively: [`DecoderSpec`] parses a
//! spec string (`nms:1.25@batch=8`, `gallager-b@bitslice`, …) and builds
//! the decoder behind the object-safe [`BlockDecoder`] front door — the
//! registry the simulator, CLI, conformance suite, and benches all drive.

mod alpha;
mod batch;
mod bitflip;
mod bitslice;
mod block;
mod fixed;
pub mod kernels;
mod layered;
mod minsum;
mod packed;
mod peeling;
mod qc_layered;
mod selfcorrect;
mod spa;
mod spec;
pub mod swar;

pub use alpha::{fine_alpha_schedule, mean_matching_alpha, nearest_hardware_scaling};
pub use batch::{decode_frames, BatchDecoder, BatchFixedDecoder, BatchMinSumDecoder};
pub use bitflip::{GallagerBDecoder, WeightedBitFlipDecoder};
pub use bitslice::BitsliceGallagerBDecoder;
pub use block::{Batched, BlockDecoder, PerFrame};
pub use fixed::{DecodeTrace, FixedConfig, FixedDecoder, IterationStats};
pub use kernels::Scaling;
pub use layered::LayeredMinSumDecoder;
pub use minsum::{MinSumConfig, MinSumDecoder, MinSumVariant};
pub use packed::{PackedFixedDecoder, PACK_LANES};
pub use peeling::{PeelingDecoder, PEELING_ERASURE_FRACTION};
pub use qc_layered::QcLayeredDecoder;
pub use selfcorrect::SelfCorrectedMinSumDecoder;
pub use spa::SumProductDecoder;
pub use spec::{
    DecoderFamily, DecoderSpec, SpecError, DEFAULT_ALPHA, DEFAULT_BATCH, DEFAULT_BETA,
    DEFAULT_GALLAGER_THRESHOLD,
};

use gf2::BitVec;

/// Outcome of a decoding attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeResult {
    /// Hard decision on every code bit after the final iteration.
    pub hard_decision: BitVec,
    /// Number of iterations actually performed.
    pub iterations: u32,
    /// `true` if the hard decision satisfies every parity check
    /// (zero syndrome).
    pub converged: bool,
}

/// A message-passing LDPC decoder.
///
/// Implementations are stateful only for workspace reuse: `decode` is
/// deterministic in its inputs and implementations may be called repeatedly
/// on different frames.
///
/// LLR sign convention: positive = bit 0, negative = bit 1.
pub trait Decoder {
    /// Decodes one frame of channel LLRs.
    ///
    /// Runs at most `max_iterations` iterations, stopping early when the
    /// syndrome becomes zero if the implementation supports early
    /// termination (all of the provided ones do, unless configured
    /// otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `channel_llrs.len()` differs from the code length.
    fn decode(&mut self, channel_llrs: &[f32], max_iterations: u32) -> DecodeResult;

    /// Code length n this decoder expects.
    fn n(&self) -> usize;

    /// Human-readable name for reports, including the parameters that
    /// distinguish one configuration from another ("normalized min-sum
    /// (alpha=1.25)", …) — so a report never conflates `nms:1.25` with
    /// `nms:1.0`.
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;
    use crate::Encoder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    /// Builds one of each decoder over the demo code.
    fn all_decoders() -> Vec<Box<dyn Decoder>> {
        let code = demo_code();
        vec![
            Box::new(SumProductDecoder::new(code.clone())),
            Box::new(MinSumDecoder::new(code.clone(), MinSumConfig::plain())),
            Box::new(MinSumDecoder::new(
                code.clone(),
                MinSumConfig::normalized(1.25),
            )),
            Box::new(MinSumDecoder::new(code.clone(), MinSumConfig::offset(0.15))),
            Box::new(FixedDecoder::new(code.clone(), FixedConfig::default())),
            Box::new(LayeredMinSumDecoder::new(code.clone(), 1.25)),
        ]
    }

    #[test]
    fn all_decoders_accept_noiseless_zero_codeword() {
        let code = demo_code();
        let llrs = vec![4.0_f32; code.n()];
        for mut dec in all_decoders() {
            let out = dec.decode(&llrs, 20);
            assert!(out.converged, "{} failed to converge", dec.name());
            assert!(out.hard_decision.is_zero(), "{} wrong output", dec.name());
            assert!(
                out.iterations <= 2,
                "{} took {} iterations",
                dec.name(),
                out.iterations
            );
        }
    }

    #[test]
    fn all_decoders_recover_noiseless_random_codeword() {
        let code = demo_code();
        let enc = Encoder::new(&code).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let msg: Vec<u8> = (0..enc.dimension())
            .map(|_| rng.gen_range(0..2u8))
            .collect();
        let cw = enc.encode_bits(&msg).unwrap();
        let llrs: Vec<f32> = (0..code.n())
            .map(|i| if cw.get(i) { -4.0 } else { 4.0 })
            .collect();
        for mut dec in all_decoders() {
            let out = dec.decode(&llrs, 20);
            assert!(out.converged, "{}", dec.name());
            assert_eq!(out.hard_decision, cw, "{}", dec.name());
        }
    }

    #[test]
    fn all_decoders_correct_a_few_flipped_bits() {
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(12);
        // All-zero codeword with 4 bits pushed toward 1 and mild noise.
        let mut llrs: Vec<f32> = (0..code.n()).map(|_| 2.0 + rng.gen::<f32>()).collect();
        for &i in &[5usize, 60, 130, 200] {
            llrs[i] = -1.5;
        }
        for mut dec in all_decoders() {
            let out = dec.decode(&llrs, 50);
            assert!(out.converged, "{} did not converge", dec.name());
            assert!(
                out.hard_decision.is_zero(),
                "{} failed to correct",
                dec.name()
            );
        }
    }

    #[test]
    fn unconverged_result_reports_honestly() {
        let code = demo_code();
        // Adversarial garbage: strong wrong beliefs everywhere.
        let mut rng = StdRng::seed_from_u64(13);
        let llrs: Vec<f32> = (0..code.n())
            .map(|_| if rng.gen_bool(0.5) { -6.0 } else { 6.0 })
            .collect();
        let mut dec = MinSumDecoder::new(code, MinSumConfig::plain());
        let out = dec.decode(&llrs, 3);
        if !out.converged {
            assert_eq!(out.iterations, 3);
        }
    }

    #[test]
    #[should_panic(expected = "length")]
    fn wrong_llr_length_panics() {
        let mut dec = SumProductDecoder::new(demo_code());
        dec.decode(&[0.0; 5], 1);
    }

    #[test]
    fn decoders_are_send() {
        fn assert_send<T: Send>(_t: &T) {}
        let code: Arc<_> = demo_code();
        let dec = SumProductDecoder::new(code);
        assert_send(&dec);
    }
}
