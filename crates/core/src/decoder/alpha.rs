//! Correction-factor optimization (paper §5, following Chen & Fossorier).
//!
//! The sign-min simplification of eq. (2) systematically over-estimates
//! check-node magnitudes relative to the exact sum-product rule. The paper
//! recovers the loss with a "fine scaled correction factor": choose α so
//! that the *mean* magnitude of min-sum check outputs matches the mean
//! magnitude of sum-product check outputs at the decoder's operating point.
//!
//! The mismatch depends on the distribution of the incoming messages, which
//! evolves across iterations: early iterations see channel-sized LLRs where
//! min-sum over-estimation is severe, while converged iterations see large
//! LLRs where a factor of ~4/3 suffices. [`fine_alpha_schedule`] tracks
//! that evolution with the one-dimensional consistent-Gaussian density
//! evolution of the paper's reference [4] and returns one α per iteration;
//! [`mean_matching_alpha`] evaluates a single point.

use crate::decoder::kernels::Scaling;
use rand::Rng;

/// Mean magnitudes of the exact sum-product and min-sum check outputs for a
/// degree-`dc` check fed with consistent-Gaussian messages `N(m, 2m)`.
fn cn_output_means<R: Rng + ?Sized>(
    dc: usize,
    mean_llr: f64,
    samples: usize,
    rng: &mut R,
) -> (f64, f64) {
    let sigma = (2.0 * mean_llr).sqrt();
    let mut sum_spa = 0.0f64;
    let mut sum_ms = 0.0f64;
    for _ in 0..samples {
        let mut prod_tanh = 1.0f64;
        let mut min_mag = f64::INFINITY;
        for _ in 0..dc - 1 {
            let x = mean_llr + sigma * standard_normal(rng);
            prod_tanh *= (x * 0.5).tanh();
            min_mag = min_mag.min(x.abs());
        }
        sum_spa += 2.0 * atanh_clamped(prod_tanh.abs());
        sum_ms += min_mag;
    }
    (sum_spa / samples as f64, sum_ms / samples as f64)
}

/// Estimates the mean-matching normalization factor α for a check node of
/// degree `dc` when incoming messages have mean LLR `mean_llr`.
///
/// Messages are modeled with the consistent-Gaussian density of density
/// evolution, `N(m, 2m)`. The returned factor is
/// `α = E[min|x|] / E[2 atanh Π tanh(x/2)] ≥ 1`.
///
/// Note that α depends strongly on the operating point: at channel-level
/// means the min-sum over-estimation is large, while for the message means
/// seen by a converging decoder (tens of LLR units at check degree 32) the
/// factor settles near the 4/3 the paper implements in hardware. Use
/// [`fine_alpha_schedule`] for a per-iteration profile.
///
/// # Panics
///
/// Panics if `dc < 2`, `mean_llr <= 0`, or `samples == 0`.
///
/// # Example
///
/// ```
/// use ldpc_core::decoder::mean_matching_alpha;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// // CCSDS C2 check degree 32 at a converged operating point.
/// let alpha = mean_matching_alpha(32, 24.0, 20_000, &mut rng);
/// assert!(alpha > 1.0 && alpha < 1.7, "alpha = {alpha}");
/// ```
pub fn mean_matching_alpha<R: Rng + ?Sized>(
    dc: usize,
    mean_llr: f64,
    samples: usize,
    rng: &mut R,
) -> f32 {
    assert!(dc >= 2, "check degree must be at least 2");
    assert!(mean_llr > 0.0, "mean LLR must be positive");
    assert!(samples > 0, "need at least one sample");
    let (mean_spa, mean_ms) = cn_output_means(dc, mean_llr, samples, rng);
    ((mean_ms / mean_spa) as f32).max(1.0)
}

/// Computes a per-iteration α schedule — the paper's "fine scaled
/// correction factor" — by evolving the message mean with one-dimensional
/// consistent-Gaussian density evolution.
///
/// Starting from the channel mean `m₀ = channel_mean_llr`, each iteration
/// computes the matched α at the current bit-to-check mean and then
/// advances the mean with the bit-node update of a degree-`dv` bit:
/// `m_{t+1} = m₀ + (dv − 1) · E[check output]`.
///
/// The resulting schedule is large in the first iterations and decays
/// toward the asymptotic factor; feed it to
/// [`MinSumConfig::with_alpha_schedule`](crate::MinSumConfig::with_alpha_schedule).
///
/// # Panics
///
/// Panics if `dc < 2`, `dv < 2`, `channel_mean_llr <= 0`, `iterations == 0`
/// or `samples == 0`.
///
/// # Example
///
/// ```
/// use ldpc_core::decoder::fine_alpha_schedule;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(2);
/// // C2 degrees: dc = 32, dv = 4.
/// let schedule = fine_alpha_schedule(32, 4, 7.0, 6, 10_000, &mut rng);
/// assert_eq!(schedule.len(), 6);
/// assert!(schedule[0] > *schedule.last().unwrap()); // decaying profile
/// ```
pub fn fine_alpha_schedule<R: Rng + ?Sized>(
    dc: usize,
    dv: usize,
    channel_mean_llr: f64,
    iterations: usize,
    samples: usize,
    rng: &mut R,
) -> Vec<f32> {
    assert!(dc >= 2, "check degree must be at least 2");
    assert!(dv >= 2, "bit degree must be at least 2");
    assert!(channel_mean_llr > 0.0, "channel mean LLR must be positive");
    assert!(iterations > 0, "need at least one iteration");
    assert!(samples > 0, "need at least one sample");
    let mut schedule = Vec::with_capacity(iterations);
    let mut mean = channel_mean_llr;
    for _ in 0..iterations {
        let (mean_spa, mean_ms) = cn_output_means(dc, mean, samples, rng);
        schedule.push(((mean_ms / mean_spa) as f32).max(1.0));
        // Bit-node update: channel plus dv-1 extrinsic check messages. The
        // mean is capped where f64 tanh saturates; beyond ~30 LLR units the
        // matched factor is 1 to three decimals anyway.
        mean = (channel_mean_llr + (dv - 1) as f64 * mean_spa).min(30.0);
    }
    schedule
}

/// Picks the shift-add [`Scaling`] whose factor 1/α is closest to `1/alpha`.
///
/// This maps an optimized real-valued correction factor onto what the FPGA
/// datapath can realize without multipliers.
///
/// ```
/// use ldpc_core::decoder::nearest_hardware_scaling;
/// use ldpc_core::Scaling;
///
/// assert_eq!(nearest_hardware_scaling(4.0 / 3.0), Scaling::ThreeQuarters);
/// assert_eq!(nearest_hardware_scaling(1.0), Scaling::Unity);
/// assert_eq!(nearest_hardware_scaling(2.2), Scaling::Half);
/// ```
pub fn nearest_hardware_scaling(alpha: f32) -> Scaling {
    let target = 1.0 / alpha.max(1.0);
    let candidates = [
        Scaling::Unity,
        Scaling::SevenEighths,
        Scaling::ThreeQuarters,
        Scaling::Half,
    ];
    let mut best = Scaling::Unity;
    let mut best_err = f32::INFINITY;
    for s in candidates {
        let err = (s.factor() - target).abs();
        if err < best_err {
            best_err = err;
            best = s;
        }
    }
    best
}

/// Standard normal deviate via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

fn atanh_clamped(x: f64) -> f64 {
    let x = x.clamp(0.0, 1.0 - 1e-12);
    0.5 * ((1.0 + x) / (1.0 - x)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alpha_is_at_least_one() {
        let mut rng = StdRng::seed_from_u64(5);
        for dc in [3usize, 8, 32] {
            for m in [1.0, 4.0, 9.0, 25.0] {
                let a = mean_matching_alpha(dc, m, 4_000, &mut rng);
                assert!(a >= 1.0, "dc={dc} m={m} alpha={a}");
            }
        }
    }

    #[test]
    fn alpha_grows_with_check_degree() {
        // More inputs -> min-sum over-estimation worsens -> larger alpha.
        let mut rng = StdRng::seed_from_u64(6);
        let a_small = mean_matching_alpha(3, 8.0, 30_000, &mut rng);
        let a_large = mean_matching_alpha(32, 8.0, 30_000, &mut rng);
        assert!(
            a_large > a_small,
            "alpha(32)={a_large} should exceed alpha(3)={a_small}"
        );
    }

    #[test]
    fn alpha_decays_toward_converged_operating_point() {
        let mut rng = StdRng::seed_from_u64(8);
        let early = mean_matching_alpha(32, 4.0, 20_000, &mut rng);
        let late = mean_matching_alpha(32, 30.0, 20_000, &mut rng);
        assert!(late < early, "late={late} early={early}");
        assert!(late < 1.6, "late operating point alpha={late}");
    }

    #[test]
    fn converged_c2_operating_point_maps_to_hardware_scaling() {
        // At the C2 check degree (32) and converged message means, the
        // matched factor is realizable by the paper's shift-add scalings
        // (x0.75 at the nominal point).
        let mut rng = StdRng::seed_from_u64(7);
        let alpha = mean_matching_alpha(32, 11.0, 50_000, &mut rng);
        let s = nearest_hardware_scaling(alpha);
        assert!(
            s == Scaling::ThreeQuarters || s == Scaling::SevenEighths,
            "alpha={alpha} mapped to {s:?}"
        );
    }

    #[test]
    fn fine_schedule_is_decaying_and_bounded() {
        let mut rng = StdRng::seed_from_u64(12);
        let schedule = fine_alpha_schedule(32, 4, 7.0, 8, 8_000, &mut rng);
        assert_eq!(schedule.len(), 8);
        assert!(schedule.iter().all(|&a| a >= 1.0));
        // Monotone decay within sampling noise: last well below first.
        assert!(schedule[0] > schedule[7] * 1.5, "schedule = {schedule:?}");
        // Tail settles in hardware-scaling territory.
        assert!(schedule[7] < 2.0, "tail alpha = {}", schedule[7]);
    }

    #[test]
    fn estimate_is_reproducible_per_seed() {
        let a1 = mean_matching_alpha(16, 4.0, 10_000, &mut StdRng::seed_from_u64(9));
        let a2 = mean_matching_alpha(16, 4.0, 10_000, &mut StdRng::seed_from_u64(9));
        assert_eq!(a1, a2);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn rejects_degree_one() {
        let mut rng = StdRng::seed_from_u64(1);
        mean_matching_alpha(1, 4.0, 10, &mut rng);
    }
}
