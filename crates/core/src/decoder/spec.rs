//! Declarative decoder specification: one grammar, one registry, one
//! front door for every decoder family in the workspace.
//!
//! The paper's thesis is that a *single generic architecture* serves
//! every CCSDS near-earth decoding configuration; [`DecoderSpec`] is the
//! software mirror of that idea. A spec is a small string —
//!
//! ```text
//!   family[:param][@modifier[@modifier...]]
//! ```
//!
//! | Spec | Decoder | Parameter |
//! |------|---------|-----------|
//! | `spa` | [`SumProductDecoder`] | — |
//! | `ms` | [`MinSumDecoder`] (plain) | — |
//! | `nms:1.25` | [`MinSumDecoder`] (normalized) | α ≥ 1 (default 4/3) |
//! | `oms:0.15` | [`MinSumDecoder`] (offset) | β ≥ 0 (default 0.15) |
//! | `fixed` | [`FixedDecoder`] | — (default datapath) |
//! | `layered:1.25` | [`LayeredMinSumDecoder`] | α ≥ 1 (default 4/3) |
//! | `qc-layered:1.25` | [`QcLayeredDecoder`] | α ≥ 1 (default 4/3) |
//! | `self-corrected:1.25` | [`SelfCorrectedMinSumDecoder`] | α ≥ 1 (default 4/3) |
//! | `gallager-b:t=2` | [`GallagerBDecoder`] | flip threshold ≥ 1 (default 3) |
//! | `wbf` | [`WeightedBitFlipDecoder`] | — |
//! | `peeling` | [`PeelingDecoder`] | — (erasure peeling + inactivation) |
//!
//! Modifiers change *how* the family runs, not *what* it computes (the
//! packed mirrors are bit-exact against their scalar references):
//!
//! | Modifier | Effect | Applies to |
//! |----------|--------|------------|
//! | `@batch=8` | lockstep frame batching ([`BatchMinSumDecoder`] / [`BatchFixedDecoder`]) | `ms`, `nms`, `oms`, `fixed` |
//! | `@bitslice` | 64 frames per `u64` word ([`BitsliceGallagerBDecoder`]) | `gallager-b` |
//! | `@pack=8` | SWAR soft datapath: 8 frames' i8 messages per `u64` word ([`PackedFixedDecoder`]) | `fixed` |
//!
//! Parsing ([`FromStr`]) and rendering ([`Display`](fmt::Display)) round
//! trip: `parse(display(spec)) == spec` for every valid spec (pinned by
//! proptests). [`DecoderSpec::all_families`] enumerates one canonical
//! spec per registered family, and [`DecoderSpec::build`] constructs any
//! of them behind the object-safe [`BlockDecoder`] trait:
//!
//! ```
//! use ldpc_core::codes::small::demo_code;
//! use ldpc_core::{BlockDecoder, DecoderSpec};
//!
//! let code = demo_code();
//! let mut decoder = DecoderSpec::parse("nms:1.25@batch=8")?.build(&code);
//! let results = decoder.decode_block(&vec![2.5; 3 * code.n()], 20);
//! assert!(results.iter().all(|r| r.converged));
//! # Ok::<(), ldpc_core::SpecError>(())
//! ```

use crate::decoder::block::{Batched, BlockDecoder, PerFrame};
use crate::decoder::{
    BatchFixedDecoder, BatchMinSumDecoder, BitsliceGallagerBDecoder, FixedConfig, FixedDecoder,
    GallagerBDecoder, LayeredMinSumDecoder, MinSumConfig, MinSumDecoder, PackedFixedDecoder,
    PeelingDecoder, QcLayeredDecoder, SelfCorrectedMinSumDecoder, SumProductDecoder,
    WeightedBitFlipDecoder, PACK_LANES,
};
use crate::LdpcCode;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Default normalization factor α — the hardware's ×0.75 shift-add.
pub const DEFAULT_ALPHA: f32 = 4.0 / 3.0;
/// Default offset β for offset min-sum.
pub const DEFAULT_BETA: f32 = 0.15;
/// Default Gallager-B flip threshold (majority rule at column weight 4).
pub const DEFAULT_GALLAGER_THRESHOLD: usize = 3;
/// Canonical batch capacity (Table 3 packs 8 frames per memory word).
pub const DEFAULT_BATCH: usize = 8;

/// A decoder family with its algorithmic parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecoderFamily {
    /// Sum-product ("BP") in `f32` — the reference decoder.
    SumProduct,
    /// Plain min-sum (no correction).
    MinSum,
    /// Normalized min-sum, magnitudes divided by `alpha`.
    NormalizedMinSum {
        /// Normalization factor α ≥ 1.
        alpha: f32,
    },
    /// Offset min-sum, magnitudes reduced by `beta` (floored at 0).
    OffsetMinSum {
        /// Subtractive offset β ≥ 0.
        beta: f32,
    },
    /// Bit-accurate fixed-point normalized min-sum (default datapath).
    Fixed,
    /// Serial-schedule (layered) normalized min-sum.
    Layered {
        /// Normalization factor α ≥ 1.
        alpha: f32,
    },
    /// Block-layered normalized min-sum over the quasi-cyclic structure
    /// (rotate-indexed circulant planes; requires a QC code).
    QcLayered {
        /// Normalization factor α ≥ 1.
        alpha: f32,
    },
    /// Self-corrected normalized min-sum (Savin).
    SelfCorrected {
        /// Normalization factor α ≥ 1.
        alpha: f32,
    },
    /// Gallager-B hard-decision bit flipping.
    GallagerB {
        /// Flip threshold ≥ 1 (failing checks required to flip a bit).
        threshold: usize,
    },
    /// Weighted bit-flipping (hard decisions + channel reliabilities).
    WeightedBitFlip,
    /// Degree-1 erasure peeling with a dense inactivation fallback.
    Peeling,
}

impl DecoderFamily {
    /// The grammar keyword of this family (`nms`, `gallager-b`, …).
    pub fn keyword(&self) -> &'static str {
        match self {
            Self::SumProduct => "spa",
            Self::MinSum => "ms",
            Self::NormalizedMinSum { .. } => "nms",
            Self::OffsetMinSum { .. } => "oms",
            Self::Fixed => "fixed",
            Self::Layered { .. } => "layered",
            Self::QcLayered { .. } => "qc-layered",
            Self::SelfCorrected { .. } => "self-corrected",
            Self::GallagerB { .. } => "gallager-b",
            Self::WeightedBitFlip => "wbf",
            Self::Peeling => "peeling",
        }
    }

    /// Whether `@batch=N` applies to this family.
    pub fn supports_batch(&self) -> bool {
        matches!(
            self,
            Self::MinSum | Self::NormalizedMinSum { .. } | Self::OffsetMinSum { .. } | Self::Fixed
        )
    }

    /// Whether `@bitslice` applies to this family.
    pub fn supports_bitslice(&self) -> bool {
        matches!(self, Self::GallagerB { .. })
    }

    /// Whether `@pack=8` applies to this family. Only the fixed-point
    /// datapath has a SWAR-packed mirror: packing relies on i8 message
    /// lanes, so float-message families cannot support it.
    pub fn supports_pack(&self) -> bool {
        matches!(self, Self::Fixed)
    }
}

/// A complete decoder specification: a family plus execution modifiers.
///
/// See the module docs above for the grammar. Construct by parsing
/// ([`DecoderSpec::parse`] / [`FromStr`]) — which validates — or from the
/// public fields directly (then [`build`](DecoderSpec::build) panics on
/// combinations the parser would have rejected).
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderSpec {
    /// The decoder family and its parameters.
    pub family: DecoderFamily,
    /// `@batch=N`: decode N frames in lockstep (families with a batched
    /// mirror only). `None` = scalar per-frame decoding.
    pub batch: Option<usize>,
    /// `@bitslice`: 64 frames per `u64` word (`gallager-b` only).
    pub bitslice: bool,
    /// `@pack=8`: SWAR soft datapath, 8 frames' i8 messages per `u64`
    /// word (`fixed` only). The lane count is fixed by the word width,
    /// so the only valid value is [`PACK_LANES`].
    pub pack: Option<usize>,
}

impl DecoderSpec {
    /// A scalar spec for `family` (no modifiers).
    pub fn scalar(family: DecoderFamily) -> Self {
        Self {
            family,
            batch: None,
            bitslice: false,
            pack: None,
        }
    }

    /// Parses a spec string — alias of the [`FromStr`] impl.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] with an actionable message on unknown
    /// families, malformed parameters, or unsupported modifier
    /// combinations.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        s.parse()
    }

    /// The grammar keywords of every registered family, in registry
    /// order. Parsing any of these (without parameters) yields that
    /// family with default parameters.
    pub fn family_names() -> &'static [&'static str] {
        &[
            "spa",
            "ms",
            "nms",
            "oms",
            "fixed",
            "layered",
            "qc-layered",
            "self-corrected",
            "gallager-b",
            "wbf",
            "peeling",
        ]
    }

    /// One canonical spec per registered decoder family: the eleven scalar
    /// families of [`family_names`](Self::family_names) plus the four
    /// packed mirrors (`nms@batch=8`, `fixed@batch=8`, `fixed@pack=8`,
    /// `gallager-b@bitslice`).
    ///
    /// The conformance suite derives its decoder list from this registry,
    /// so a family registered here is automatically covered; one missing
    /// fails the suite's completeness test.
    pub fn all_families() -> Vec<DecoderSpec> {
        let mut specs: Vec<DecoderSpec> = Self::family_names()
            .iter()
            .map(|name| Self::parse(name).expect("registry keyword must parse"))
            .collect();
        for packed in ["nms", "fixed"] {
            specs.push(
                Self::parse(packed)
                    .expect("registry keyword must parse")
                    .with_batch(DEFAULT_BATCH)
                    .expect("registry family supports @batch"),
            );
        }
        specs.push(
            Self::parse("fixed")
                .expect("registry keyword must parse")
                .with_pack(PACK_LANES)
                .expect("fixed supports @pack"),
        );
        specs.push(
            Self::parse("gallager-b")
                .expect("registry keyword must parse")
                .with_bitslice()
                .expect("gallager-b supports @bitslice"),
        );
        specs
    }

    /// This spec with `@batch=N` applied.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the family has no batched mirror, the
    /// spec is already bit-sliced, or `n` is zero.
    pub fn with_batch(mut self, n: usize) -> Result<Self, SpecError> {
        self.batch = Some(n);
        self.validated()
    }

    /// This spec with `@bitslice` applied.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the family has no bit-sliced mirror or
    /// the spec is already batched.
    pub fn with_bitslice(mut self) -> Result<Self, SpecError> {
        self.bitslice = true;
        self.validated()
    }

    /// This spec with `@pack=n` applied.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the family has no SWAR-packed mirror,
    /// `n` is not [`PACK_LANES`], or another packing modifier is already
    /// present.
    pub fn with_pack(mut self, n: usize) -> Result<Self, SpecError> {
        self.pack = Some(n);
        self.validated()
    }

    /// Validates parameters and modifier combinations.
    fn validated(self) -> Result<Self, SpecError> {
        match self.family {
            DecoderFamily::NormalizedMinSum { alpha }
            | DecoderFamily::Layered { alpha }
            | DecoderFamily::QcLayered { alpha }
            | DecoderFamily::SelfCorrected { alpha }
                if alpha < 1.0 || !alpha.is_finite() =>
            {
                return Err(SpecError::InvalidParameter {
                    family: self.family.keyword(),
                    value: alpha.to_string(),
                    expected: "a finite normalization factor >= 1 (e.g. nms:1.25)",
                });
            }
            DecoderFamily::OffsetMinSum { beta } if beta < 0.0 || !beta.is_finite() => {
                return Err(SpecError::InvalidParameter {
                    family: "oms",
                    value: beta.to_string(),
                    expected: "a finite offset >= 0 (e.g. oms:0.15)",
                });
            }
            DecoderFamily::GallagerB { threshold: 0 } => {
                return Err(SpecError::InvalidParameter {
                    family: "gallager-b",
                    value: "t=0".to_string(),
                    expected: "a flip threshold >= 1 (e.g. gallager-b:t=2)",
                });
            }
            _ => {}
        }
        if let Some(batch) = self.batch {
            if !self.family.supports_batch() {
                return Err(SpecError::UnsupportedModifier {
                    modifier: "@batch",
                    family: self.family.keyword(),
                    supported: "ms, nms, oms, fixed",
                });
            }
            if batch == 0 {
                return Err(SpecError::InvalidParameter {
                    family: self.family.keyword(),
                    value: "batch=0".to_string(),
                    expected: "a batch size >= 1 (e.g. @batch=8)",
                });
            }
        }
        if self.bitslice && !self.family.supports_bitslice() {
            return Err(SpecError::UnsupportedModifier {
                modifier: "@bitslice",
                family: self.family.keyword(),
                supported: "gallager-b",
            });
        }
        if let Some(pack) = self.pack {
            if !self.family.supports_pack() {
                return Err(SpecError::UnsupportedModifier {
                    modifier: "@pack",
                    family: self.family.keyword(),
                    supported: "fixed (SWAR packing needs i8 message lanes; float-message families have none)",
                });
            }
            if pack != PACK_LANES {
                return Err(SpecError::InvalidParameter {
                    family: self.family.keyword(),
                    value: format!("pack={pack}"),
                    expected: "the word-width lane count @pack=8 (8 i8 lanes per u64)",
                });
            }
        }
        if self.bitslice && self.batch.is_some() {
            return Err(SpecError::ConflictingModifiers("@batch", "@bitslice"));
        }
        if self.pack.is_some() && self.batch.is_some() {
            return Err(SpecError::ConflictingModifiers("@batch", "@pack"));
        }
        if self.pack.is_some() && self.bitslice {
            return Err(SpecError::ConflictingModifiers("@bitslice", "@pack"));
        }
        Ok(self)
    }

    /// Constructs the specified decoder over `code`, behind the
    /// object-safe [`BlockDecoder`] front door.
    ///
    /// # Panics
    ///
    /// Panics on modifier/parameter combinations the parser rejects
    /// (reachable only by constructing invalid specs from the public
    /// fields directly).
    pub fn build(&self, code: &Arc<LdpcCode>) -> Box<dyn BlockDecoder> {
        self.clone()
            .validated()
            .unwrap_or_else(|e| panic!("invalid decoder spec: {e}"));
        let code = Arc::clone(code);
        if self.bitslice {
            let DecoderFamily::GallagerB { threshold } = self.family else {
                unreachable!("validated above");
            };
            return Box::new(Batched::new(BitsliceGallagerBDecoder::new(code, threshold)));
        }
        if self.pack.is_some() {
            // Validation pinned the family to `fixed` and the lane count
            // to PACK_LANES, so the packed mirror is the only target.
            return Box::new(Batched::new(PackedFixedDecoder::new(
                code,
                FixedConfig::default(),
            )));
        }
        if let Some(batch) = self.batch {
            return match self.family {
                DecoderFamily::MinSum => Box::new(Batched::new(BatchMinSumDecoder::new(
                    code,
                    MinSumConfig::plain(),
                    batch,
                ))),
                DecoderFamily::NormalizedMinSum { alpha } => Box::new(Batched::new(
                    BatchMinSumDecoder::new(code, MinSumConfig::normalized(alpha), batch),
                )),
                DecoderFamily::OffsetMinSum { beta } => Box::new(Batched::new(
                    BatchMinSumDecoder::new(code, MinSumConfig::offset(beta), batch),
                )),
                DecoderFamily::Fixed => Box::new(Batched::new(BatchFixedDecoder::new(
                    code,
                    FixedConfig::default(),
                    batch,
                ))),
                _ => unreachable!("validated above"),
            };
        }
        match self.family {
            DecoderFamily::SumProduct => Box::new(PerFrame::new(SumProductDecoder::new(code))),
            DecoderFamily::MinSum => Box::new(PerFrame::new(MinSumDecoder::new(
                code,
                MinSumConfig::plain(),
            ))),
            DecoderFamily::NormalizedMinSum { alpha } => Box::new(PerFrame::new(
                MinSumDecoder::new(code, MinSumConfig::normalized(alpha)),
            )),
            DecoderFamily::OffsetMinSum { beta } => Box::new(PerFrame::new(MinSumDecoder::new(
                code,
                MinSumConfig::offset(beta),
            ))),
            DecoderFamily::Fixed => Box::new(PerFrame::new(FixedDecoder::new(
                code,
                FixedConfig::default(),
            ))),
            DecoderFamily::Layered { alpha } => {
                Box::new(PerFrame::new(LayeredMinSumDecoder::new(code, alpha)))
            }
            DecoderFamily::QcLayered { alpha } => {
                Box::new(PerFrame::new(QcLayeredDecoder::new(code, alpha)))
            }
            DecoderFamily::SelfCorrected { alpha } => {
                Box::new(PerFrame::new(SelfCorrectedMinSumDecoder::new(code, alpha)))
            }
            DecoderFamily::GallagerB { threshold } => {
                Box::new(PerFrame::new(GallagerBDecoder::new(code, threshold)))
            }
            DecoderFamily::WeightedBitFlip => {
                Box::new(PerFrame::new(WeightedBitFlipDecoder::new(code)))
            }
            DecoderFamily::Peeling => Box::new(PerFrame::new(PeelingDecoder::new(code))),
        }
    }
}

impl fmt::Display for DecoderSpec {
    /// Canonical rendering: parameters equal to their defaults are
    /// omitted, so `parse("nms").to_string() == "nms"` while
    /// `parse("nms:1.25").to_string() == "nms:1.25"`. Always round trips
    /// through [`FromStr`] to an equal spec.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.family {
            DecoderFamily::SumProduct
            | DecoderFamily::MinSum
            | DecoderFamily::Fixed
            | DecoderFamily::WeightedBitFlip
            | DecoderFamily::Peeling => write!(f, "{}", self.family.keyword())?,
            DecoderFamily::NormalizedMinSum { alpha }
            | DecoderFamily::Layered { alpha }
            | DecoderFamily::QcLayered { alpha }
            | DecoderFamily::SelfCorrected { alpha } => {
                if alpha == DEFAULT_ALPHA {
                    write!(f, "{}", self.family.keyword())?;
                } else {
                    write!(f, "{}:{alpha}", self.family.keyword())?;
                }
            }
            DecoderFamily::OffsetMinSum { beta } => {
                if beta == DEFAULT_BETA {
                    write!(f, "oms")?;
                } else {
                    write!(f, "oms:{beta}")?;
                }
            }
            DecoderFamily::GallagerB { threshold } => {
                if threshold == DEFAULT_GALLAGER_THRESHOLD {
                    write!(f, "gallager-b")?;
                } else {
                    write!(f, "gallager-b:t={threshold}")?;
                }
            }
        }
        if let Some(batch) = self.batch {
            write!(f, "@batch={batch}")?;
        }
        if self.bitslice {
            write!(f, "@bitslice")?;
        }
        if let Some(pack) = self.pack {
            write!(f, "@pack={pack}")?;
        }
        Ok(())
    }
}

impl FromStr for DecoderSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecError::Empty);
        }
        let mut parts = s.split('@');
        let head = parts.next().expect("split yields at least one part");
        let (keyword, param) = match head.split_once(':') {
            Some((k, p)) => (k, Some(p)),
            None => (head, None),
        };
        let family = parse_family(keyword, param)?;
        let mut spec = DecoderSpec::scalar(family);
        for modifier in parts {
            if modifier == "bitslice" {
                if spec.bitslice {
                    return Err(SpecError::DuplicateModifier("@bitslice"));
                }
                spec.bitslice = true;
            } else if let Some(value) = modifier.strip_prefix("batch=") {
                if spec.batch.is_some() {
                    return Err(SpecError::DuplicateModifier("@batch"));
                }
                let batch: usize = value.parse().map_err(|_| SpecError::InvalidParameter {
                    family: family.keyword(),
                    value: format!("batch={value}"),
                    expected: "a batch size >= 1 (e.g. @batch=8)",
                })?;
                spec.batch = Some(batch);
            } else if let Some(value) = modifier.strip_prefix("pack=") {
                if spec.pack.is_some() {
                    return Err(SpecError::DuplicateModifier("@pack"));
                }
                let pack: usize = value.parse().map_err(|_| SpecError::InvalidParameter {
                    family: family.keyword(),
                    value: format!("pack={value}"),
                    expected: "the word-width lane count @pack=8 (8 i8 lanes per u64)",
                })?;
                spec.pack = Some(pack);
            } else {
                return Err(SpecError::UnknownModifier(modifier.to_string()));
            }
        }
        spec.validated()
    }
}

/// Parses a family keyword plus its optional `:param` tail.
fn parse_family(keyword: &str, param: Option<&str>) -> Result<DecoderFamily, SpecError> {
    let no_param = |family: DecoderFamily| match param {
        None => Ok(family),
        Some(p) => Err(SpecError::UnexpectedParameter {
            family: family.keyword(),
            value: p.to_string(),
        }),
    };
    let alpha_param = |make: fn(f32) -> DecoderFamily, example: &'static str| match param {
        None => Ok(make(DEFAULT_ALPHA)),
        Some(p) => p
            .parse::<f32>()
            .map(make)
            .map_err(|_| SpecError::InvalidParameter {
                family: keyword_of(make),
                value: p.to_string(),
                expected: example,
            }),
    };
    fn keyword_of(make: fn(f32) -> DecoderFamily) -> &'static str {
        make(DEFAULT_ALPHA).keyword()
    }
    match keyword {
        "spa" | "sum-product" => no_param(DecoderFamily::SumProduct),
        "ms" | "min-sum" => no_param(DecoderFamily::MinSum),
        "nms" => alpha_param(
            |alpha| DecoderFamily::NormalizedMinSum { alpha },
            "a normalization factor >= 1 (e.g. nms:1.25)",
        ),
        "layered" => alpha_param(
            |alpha| DecoderFamily::Layered { alpha },
            "a normalization factor >= 1 (e.g. layered:1.25)",
        ),
        "qc-layered" | "qcl" => alpha_param(
            |alpha| DecoderFamily::QcLayered { alpha },
            "a normalization factor >= 1 (e.g. qc-layered:1.25)",
        ),
        "self-corrected" | "scms" => alpha_param(
            |alpha| DecoderFamily::SelfCorrected { alpha },
            "a normalization factor >= 1 (e.g. self-corrected:1.25)",
        ),
        "oms" => match param {
            None => Ok(DecoderFamily::OffsetMinSum { beta: DEFAULT_BETA }),
            Some(p) => p
                .parse::<f32>()
                .map(|beta| DecoderFamily::OffsetMinSum { beta })
                .map_err(|_| SpecError::InvalidParameter {
                    family: "oms",
                    value: p.to_string(),
                    expected: "an offset >= 0 (e.g. oms:0.15)",
                }),
        },
        "fixed" => no_param(DecoderFamily::Fixed),
        "gallager-b" | "gb" => match param {
            None => Ok(DecoderFamily::GallagerB {
                threshold: DEFAULT_GALLAGER_THRESHOLD,
            }),
            Some(p) => {
                let value = p.strip_prefix("t=").unwrap_or(p);
                value
                    .parse::<usize>()
                    .map(|threshold| DecoderFamily::GallagerB { threshold })
                    .map_err(|_| SpecError::InvalidParameter {
                        family: "gallager-b",
                        value: p.to_string(),
                        expected: "a flip threshold >= 1 (e.g. gallager-b:t=2)",
                    })
            }
        },
        "wbf" | "weighted-bit-flip" => no_param(DecoderFamily::WeightedBitFlip),
        "peeling" => no_param(DecoderFamily::Peeling),
        other => Err(SpecError::UnknownFamily(other.to_string())),
    }
}

/// Error produced while parsing or validating a [`DecoderSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec string was empty.
    Empty,
    /// The family keyword is not registered.
    UnknownFamily(String),
    /// A parameter failed to parse or is out of range.
    InvalidParameter {
        /// Family keyword the parameter belongs to.
        family: &'static str,
        /// The offending raw value.
        value: String,
        /// What a valid value looks like.
        expected: &'static str,
    },
    /// A parameter was given to a family that takes none.
    UnexpectedParameter {
        /// Family keyword.
        family: &'static str,
        /// The offending raw value.
        value: String,
    },
    /// A modifier keyword is not registered.
    UnknownModifier(String),
    /// The same modifier was given twice.
    DuplicateModifier(&'static str),
    /// A modifier was applied to a family without that execution mirror.
    UnsupportedModifier {
        /// The modifier (`@batch` / `@bitslice` / `@pack`).
        modifier: &'static str,
        /// Family keyword it was applied to.
        family: &'static str,
        /// Families that do support it.
        supported: &'static str,
    },
    /// Two frame-packing execution mirrors were combined.
    ConflictingModifiers(&'static str, &'static str),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(
                f,
                "empty decoder spec; expected family[:param][@modifier], e.g. nms:1.25@batch=8"
            ),
            Self::UnknownFamily(name) => write!(
                f,
                "unknown decoder family {name:?}; known families: {}",
                DecoderSpec::family_names().join(", ")
            ),
            Self::InvalidParameter {
                family,
                value,
                expected,
            } => write!(
                f,
                "invalid parameter {value:?} for {family}: expected {expected}"
            ),
            Self::UnexpectedParameter { family, value } => {
                write!(f, "{family} takes no parameter, but got {value:?}")
            }
            Self::UnknownModifier(name) => write!(
                f,
                "unknown modifier {name:?}; known modifiers: @batch=N, @bitslice, @pack=8"
            ),
            Self::DuplicateModifier(name) => write!(f, "modifier {name} given more than once"),
            Self::UnsupportedModifier {
                modifier,
                family,
                supported,
            } => write!(
                f,
                "{modifier} is not supported for {family}; supported families: {supported}"
            ),
            Self::ConflictingModifiers(a, b) => write!(
                f,
                "{a} and {b} cannot be combined (pick one frame-packing execution mirror)"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;

    #[test]
    fn parses_every_family_keyword_with_defaults() {
        for name in DecoderSpec::family_names() {
            let spec = DecoderSpec::parse(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.to_string(), *name, "canonical display of {name}");
            assert!(spec.batch.is_none());
            assert!(!spec.bitslice);
        }
    }

    #[test]
    fn parses_parameters_and_modifiers() {
        let spec = DecoderSpec::parse("nms:1.25@batch=8").unwrap();
        assert_eq!(spec.family, DecoderFamily::NormalizedMinSum { alpha: 1.25 });
        assert_eq!(spec.batch, Some(8));
        assert_eq!(spec.to_string(), "nms:1.25@batch=8");

        let spec = DecoderSpec::parse("gallager-b:t=2@bitslice").unwrap();
        assert_eq!(spec.family, DecoderFamily::GallagerB { threshold: 2 });
        assert!(spec.bitslice);
        assert_eq!(spec.to_string(), "gallager-b:t=2@bitslice");

        assert_eq!(
            DecoderSpec::parse("oms:0.2").unwrap().family,
            DecoderFamily::OffsetMinSum { beta: 0.2 }
        );
        assert_eq!(
            DecoderSpec::parse("layered:1.5").unwrap().family,
            DecoderFamily::Layered { alpha: 1.5 }
        );
    }

    #[test]
    fn default_parameters_are_the_hardware_ones() {
        assert_eq!(
            DecoderSpec::parse("nms").unwrap().family,
            DecoderFamily::NormalizedMinSum {
                alpha: DEFAULT_ALPHA
            }
        );
        assert_eq!(
            DecoderSpec::parse("gallager-b").unwrap().family,
            DecoderFamily::GallagerB { threshold: 3 }
        );
    }

    #[test]
    fn aliases_parse_to_the_same_family() {
        assert_eq!(
            DecoderSpec::parse("gb:t=2").unwrap(),
            DecoderSpec::parse("gallager-b:t=2").unwrap()
        );
        assert_eq!(
            DecoderSpec::parse("sum-product").unwrap(),
            DecoderSpec::parse("spa").unwrap()
        );
        assert_eq!(
            DecoderSpec::parse("min-sum").unwrap(),
            DecoderSpec::parse("ms").unwrap()
        );
        assert_eq!(
            DecoderSpec::parse("scms:1.5").unwrap(),
            DecoderSpec::parse("self-corrected:1.5").unwrap()
        );
        assert_eq!(
            DecoderSpec::parse("qcl:1.5").unwrap(),
            DecoderSpec::parse("qc-layered:1.5").unwrap()
        );
        assert_eq!(
            DecoderSpec::parse("weighted-bit-flip").unwrap(),
            DecoderSpec::parse("wbf").unwrap()
        );
    }

    #[test]
    fn display_omits_default_parameters_only() {
        assert_eq!(
            DecoderSpec::parse("nms:1.3333334").unwrap().to_string(),
            "nms"
        );
        assert_eq!(
            DecoderSpec::parse("nms:1.25").unwrap().to_string(),
            "nms:1.25"
        );
        assert_eq!(
            DecoderSpec::parse("gallager-b:t=3").unwrap().to_string(),
            "gallager-b"
        );
        assert_eq!(DecoderSpec::parse("oms:0.15").unwrap().to_string(), "oms");
    }

    #[test]
    fn errors_are_actionable() {
        let err = DecoderSpec::parse("magic").unwrap_err();
        assert!(matches!(err, SpecError::UnknownFamily(_)));
        assert!(err.to_string().contains("known families"));
        assert!(err.to_string().contains("nms"));

        let err = DecoderSpec::parse("nms:zero").unwrap_err();
        assert!(err.to_string().contains("nms:1.25"), "{err}");

        let err = DecoderSpec::parse("nms:0.5").unwrap_err();
        assert!(err.to_string().contains(">= 1"), "{err}");

        let err = DecoderSpec::parse("qc-layered:0.5").unwrap_err();
        assert!(err.to_string().contains(">= 1"), "{err}");

        let err = DecoderSpec::parse("qcl:fast").unwrap_err();
        assert!(err.to_string().contains("qc-layered:1.25"), "{err}");

        let err = DecoderSpec::parse("qc-layered@batch=8").unwrap_err();
        assert!(
            err.to_string().contains("not supported for qc-layered"),
            "{err}"
        );

        let err = DecoderSpec::parse("spa:1.5").unwrap_err();
        assert!(err.to_string().contains("takes no parameter"), "{err}");

        let err = DecoderSpec::parse("spa@batch=8").unwrap_err();
        assert!(err.to_string().contains("not supported for spa"), "{err}");

        let err = DecoderSpec::parse("nms@bitslice").unwrap_err();
        assert!(err.to_string().contains("gallager-b"), "{err}");

        let err = DecoderSpec::parse("nms@turbo").unwrap_err();
        assert!(err.to_string().contains("known modifiers"), "{err}");

        let err = DecoderSpec::parse("nms@batch=0").unwrap_err();
        assert!(err.to_string().contains(">= 1"), "{err}");

        let err = DecoderSpec::parse("gallager-b:t=0").unwrap_err();
        assert!(err.to_string().contains(">= 1"), "{err}");

        let err = DecoderSpec::parse("gallager-b@bitslice@bitslice").unwrap_err();
        assert!(matches!(err, SpecError::DuplicateModifier(_)));

        let err = DecoderSpec::parse("").unwrap_err();
        assert_eq!(err, SpecError::Empty);
    }

    #[test]
    fn pack_modifier_parses_and_round_trips() {
        let spec = DecoderSpec::parse("fixed@pack=8").unwrap();
        assert_eq!(spec.family, DecoderFamily::Fixed);
        assert_eq!(spec.pack, Some(8));
        assert_eq!(spec.to_string(), "fixed@pack=8");
        assert_eq!(DecoderSpec::parse(&spec.to_string()).unwrap(), spec);
        assert_eq!(
            DecoderSpec::parse("fixed").unwrap().with_pack(8).unwrap(),
            spec
        );
    }

    #[test]
    fn pack_modifier_rejections_are_actionable() {
        // Only the word-width lane count exists.
        let err = DecoderSpec::parse("fixed@pack=7").unwrap_err();
        assert!(err.to_string().contains("@pack=8"), "{err}");
        let err = DecoderSpec::parse("fixed@pack=16").unwrap_err();
        assert!(err.to_string().contains("8 i8 lanes per u64"), "{err}");
        let err = DecoderSpec::parse("fixed@pack=fast").unwrap_err();
        assert!(err.to_string().contains("@pack=8"), "{err}");

        // Float-message families have no i8 lanes to pack.
        let err = DecoderSpec::parse("spa@pack=8").unwrap_err();
        assert!(err.to_string().contains("not supported for spa"), "{err}");
        assert!(err.to_string().contains("fixed"), "{err}");
        assert!(err.to_string().contains("i8 message lanes"), "{err}");
        let err = DecoderSpec::parse("nms:1.25@pack=8").unwrap_err();
        assert!(err.to_string().contains("not supported for nms"), "{err}");

        // One frame-packing mirror at a time, and no duplicates.
        let err = DecoderSpec::parse("fixed@batch=8@pack=8").unwrap_err();
        assert!(
            matches!(err, SpecError::ConflictingModifiers(_, _)),
            "{err}"
        );
        assert!(err.to_string().contains("@pack"), "{err}");
        let err = DecoderSpec::parse("fixed@pack=8@pack=8").unwrap_err();
        assert_eq!(err, SpecError::DuplicateModifier("@pack"));
        assert!(DecoderSpec::parse("gallager-b@bitslice@pack=8").is_err());
    }

    #[test]
    fn pack_spec_builds_the_packed_mirror() {
        let code = demo_code();
        let mut dec = DecoderSpec::parse("fixed@pack=8").unwrap().build(&code);
        assert_eq!(dec.block_frames(), PACK_LANES);
        assert!(dec.name().contains("packed"), "{}", dec.name());
        let out = dec.decode_block(&vec![3.0_f32; 2 * code.n()], 10);
        assert!(out.iter().all(|r| r.converged && r.hard_decision.is_zero()));
    }

    #[test]
    fn every_registered_family_builds_and_decodes() {
        let code = demo_code();
        let llrs = vec![3.0_f32; 2 * code.n()];
        for spec in DecoderSpec::all_families() {
            let mut dec = spec.build(&code);
            assert_eq!(dec.n(), code.n(), "{spec}");
            assert!(dec.block_frames() >= 1, "{spec}");
            let out = dec.decode_block(&llrs, 10);
            assert_eq!(out.len(), 2, "{spec}");
            assert!(
                out.iter().all(|r| r.converged && r.hard_decision.is_zero()),
                "{spec} failed on noiseless frames"
            );
        }
    }

    #[test]
    fn builder_modifiers_validate() {
        let nms = DecoderSpec::parse("nms").unwrap();
        assert_eq!(
            nms.clone().with_batch(4).unwrap().to_string(),
            "nms@batch=4"
        );
        assert!(nms.clone().with_batch(0).is_err());
        assert!(nms.with_bitslice().is_err());
        let gb = DecoderSpec::parse("gallager-b").unwrap();
        assert_eq!(
            gb.with_bitslice().unwrap().to_string(),
            "gallager-b@bitslice"
        );
    }

    /// Non-circular registry completeness, at the variant level: one
    /// instance of every `DecoderFamily` variant must surface through
    /// `family_names()` / `all_families()`. Adding a variant makes the
    /// guard match below stop compiling until the list gains it, and a
    /// listed variant whose keyword is missing from `family_names()`
    /// fails the assertions — so a new family cannot be parseable
    /// without being registered.
    #[test]
    fn every_family_variant_is_registered() {
        use DecoderFamily as F;
        let one_of_each = [
            F::SumProduct,
            F::MinSum,
            F::NormalizedMinSum {
                alpha: DEFAULT_ALPHA,
            },
            F::OffsetMinSum { beta: DEFAULT_BETA },
            F::Fixed,
            F::Layered {
                alpha: DEFAULT_ALPHA,
            },
            F::QcLayered {
                alpha: DEFAULT_ALPHA,
            },
            F::SelfCorrected {
                alpha: DEFAULT_ALPHA,
            },
            F::GallagerB {
                threshold: DEFAULT_GALLAGER_THRESHOLD,
            },
            F::WeightedBitFlip,
            F::Peeling,
        ];
        for family in one_of_each {
            // Exhaustiveness guard: extend `one_of_each` when this match
            // gains an arm.
            match family {
                F::SumProduct
                | F::MinSum
                | F::NormalizedMinSum { .. }
                | F::OffsetMinSum { .. }
                | F::Fixed
                | F::Layered { .. }
                | F::QcLayered { .. }
                | F::SelfCorrected { .. }
                | F::GallagerB { .. }
                | F::WeightedBitFlip
                | F::Peeling => {}
            }
            let keyword = family.keyword();
            assert!(
                DecoderSpec::family_names().contains(&keyword),
                "{keyword} has no entry in family_names()"
            );
            let parsed = DecoderSpec::parse(keyword).unwrap();
            assert_eq!(
                std::mem::discriminant(&parsed.family),
                std::mem::discriminant(&family),
                "{keyword} parses to a different family"
            );
            assert!(
                DecoderSpec::all_families().iter().any(|s| {
                    std::mem::discriminant(&s.family) == std::mem::discriminant(&family)
                }),
                "{keyword} missing from all_families()"
            );
        }
        assert_eq!(one_of_each.len(), DecoderSpec::family_names().len());
    }

    #[test]
    #[should_panic(expected = "invalid decoder spec")]
    fn build_rejects_hand_rolled_invalid_combinations() {
        let spec = DecoderSpec {
            family: DecoderFamily::SumProduct,
            batch: Some(8),
            bitslice: false,
            pack: None,
        };
        spec.build(&demo_code());
    }
}
