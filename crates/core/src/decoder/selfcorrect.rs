//! Self-corrected min-sum (Savin): sign-flip erasure of unreliable
//! messages.
//!
//! A bit-to-check message whose sign flips between consecutive iterations
//! is unreliable; the self-corrected variant *erases* it (sends zero)
//! instead of propagating the oscillation. On top of normalization this
//! recovers a further slice of the sum-product gap at negligible hardware
//! cost (one sign register per edge) — a natural extension of the paper's
//! datapath and part of the ablation set.

use crate::decoder::{DecodeResult, Decoder};
use crate::LdpcCode;
use gf2::BitVec;
use std::sync::Arc;

/// Self-corrected normalized min-sum decoder.
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::decoder::{Decoder, SelfCorrectedMinSumDecoder};
///
/// let code = demo_code();
/// let mut dec = SelfCorrectedMinSumDecoder::new(code.clone(), 4.0 / 3.0);
/// let out = dec.decode(&vec![3.0; code.n()], 10);
/// assert!(out.converged);
/// ```
pub struct SelfCorrectedMinSumDecoder {
    code: Arc<LdpcCode>,
    alpha: f32,
    bc: Vec<f32>,
    cb: Vec<f32>,
    /// Sign of the previous iteration's bit-to-check message per edge:
    /// 0 = unset, 1 = positive, 2 = negative.
    prev_sign: Vec<u8>,
    hard: Vec<u8>,
    early_stop: bool,
}

impl SelfCorrectedMinSumDecoder {
    /// Creates a self-corrected decoder with normalization `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 1.0`.
    pub fn new(code: Arc<LdpcCode>, alpha: f32) -> Self {
        assert!(alpha >= 1.0, "normalization factor must be >= 1");
        let edges = code.graph().n_edges();
        let n = code.n();
        Self {
            code,
            alpha,
            bc: vec![0.0; edges],
            cb: vec![0.0; edges],
            prev_sign: vec![0; edges],
            hard: vec![0; n],
            early_stop: true,
        }
    }

    /// Disables or enables early termination.
    pub fn with_early_stop(mut self, early_stop: bool) -> Self {
        self.early_stop = early_stop;
        self
    }

    fn cn_phase(&mut self) {
        let code = self.code.clone();
        let graph = code.graph();
        for m in 0..graph.n_checks() {
            let range = graph.cn_edge_range(m);
            let mut min1 = f32::INFINITY;
            let mut min2 = f32::INFINITY;
            let mut argmin = range.start;
            let mut sign_product = false;
            for e in range.clone() {
                let x = self.bc[e];
                let mag = x.abs();
                if x < 0.0 {
                    sign_product = !sign_product;
                }
                if mag < min1 {
                    min2 = min1;
                    min1 = mag;
                    argmin = e;
                } else if mag < min2 {
                    min2 = mag;
                }
            }
            for e in range {
                let mag = if e == argmin { min2 } else { min1 } / self.alpha;
                let negative = sign_product ^ (self.bc[e] < 0.0);
                self.cb[e] = if negative { -mag } else { mag };
            }
        }
    }

    #[allow(clippy::needless_range_loop)] // n indexes llrs, hard, and the graph in lockstep
    fn bn_phase(&mut self, llrs: &[f32]) {
        let code = self.code.clone();
        let graph = code.graph();
        for n in 0..graph.n_bits() {
            let edges = graph.bn_edge_ids(n);
            let mut total = llrs[n];
            for &e in edges {
                total += self.cb[e as usize];
            }
            for &e in edges {
                let e = e as usize;
                let raw = total - self.cb[e];
                // Self-correction: erase messages whose sign flipped since
                // the previous iteration.
                let sign_now = if raw > 0.0 {
                    1u8
                } else if raw < 0.0 {
                    2u8
                } else {
                    0u8
                };
                let flipped =
                    self.prev_sign[e] != 0 && sign_now != 0 && sign_now != self.prev_sign[e];
                self.bc[e] = if flipped { 0.0 } else { raw };
                if sign_now != 0 {
                    self.prev_sign[e] = sign_now;
                }
            }
            self.hard[n] = u8::from(total < 0.0);
        }
    }
}

impl Decoder for SelfCorrectedMinSumDecoder {
    fn decode(&mut self, channel_llrs: &[f32], max_iterations: u32) -> DecodeResult {
        let code = self.code.clone();
        let graph = code.graph();
        assert_eq!(
            channel_llrs.len(),
            graph.n_bits(),
            "channel LLR length mismatch"
        );
        for e in 0..graph.n_edges() {
            self.bc[e] = channel_llrs[graph.edge_bit(e)];
            self.prev_sign[e] = 0;
        }
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..max_iterations {
            self.cn_phase();
            self.bn_phase(channel_llrs);
            iterations += 1;
            if graph.syndrome_ok(&self.hard) {
                converged = true;
                if self.early_stop {
                    break;
                }
            } else {
                converged = false;
            }
        }
        DecodeResult {
            hard_decision: BitVec::from_bits(&self.hard),
            iterations,
            converged,
        }
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        format!("self-corrected min-sum (alpha={})", self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clean_and_noisy_frames_decode() {
        let code = demo_code();
        let mut dec = SelfCorrectedMinSumDecoder::new(code.clone(), 4.0 / 3.0);
        let out = dec.decode(&vec![4.0; code.n()], 10);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());

        let mut llrs = vec![2.5f32; code.n()];
        for &i in &[3usize, 77, 150] {
            llrs[i] = -1.5;
        }
        let out = dec.decode(&llrs, 30);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn state_resets_between_frames() {
        let code = demo_code();
        let mut dec = SelfCorrectedMinSumDecoder::new(code.clone(), 1.25);
        let mut rng = StdRng::seed_from_u64(40);
        let garbage: Vec<f32> = (0..code.n()).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let _ = dec.decode(&garbage, 10);
        let out = dec.decode(&vec![4.0; code.n()], 5);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn no_worse_than_plain_normalized_on_hard_frames() {
        use crate::{MinSumConfig, MinSumDecoder};
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(41);
        let mut sc_ok = 0;
        let mut nms_ok = 0;
        for _ in 0..60 {
            let llrs: Vec<f32> = (0..code.n())
                .map(|_| 1.1 + rng.gen_range(-1.6f32..1.0))
                .collect();
            let mut sc = SelfCorrectedMinSumDecoder::new(code.clone(), 4.0 / 3.0);
            if sc.decode(&llrs, 30).converged {
                sc_ok += 1;
            }
            let mut nms = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0));
            if nms.decode(&llrs, 30).converged {
                nms_ok += 1;
            }
        }
        // Self-correction should hold its own (allow small statistical slack).
        assert!(
            sc_ok + 3 >= nms_ok,
            "self-corrected {sc_ok} vs normalized {nms_ok}"
        );
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_alpha_below_one() {
        SelfCorrectedMinSumDecoder::new(demo_code(), 0.5);
    }
}
