//! Hard-decision baselines: Gallager-B and weighted bit-flipping.
//!
//! These are the classical low-complexity alternatives that hardware
//! papers (including this one's references) compare message-passing
//! decoders against. They operate on hard decisions only, so they need a
//! fraction of the logic of a min-sum datapath but give up a substantial
//! part of the coding gain — the benchmark harness quantifies exactly how
//! much on the C2 code structure.

use crate::decoder::{DecodeResult, Decoder};
use crate::LdpcCode;
use gf2::BitVec;
use std::sync::Arc;

/// Gallager-B hard-decision decoder.
///
/// Each iteration computes every parity check on the current hard
/// decisions and flips the bits that participate in at least
/// `flip_threshold` unsatisfied checks. With the C2 column weight of 4,
/// a threshold of 3 is the classical majority rule.
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::decoder::{Decoder, GallagerBDecoder};
///
/// let code = demo_code();
/// let mut dec = GallagerBDecoder::new(code.clone(), 3);
/// let out = dec.decode(&vec![2.0; code.n()], 10);
/// assert!(out.converged);
/// ```
pub struct GallagerBDecoder {
    code: Arc<LdpcCode>,
    flip_threshold: usize,
    hard: Vec<u8>,
    unsatisfied: Vec<u8>,
}

impl GallagerBDecoder {
    /// Creates a decoder flipping bits with ≥ `flip_threshold` failing
    /// checks.
    ///
    /// # Panics
    ///
    /// Panics if `flip_threshold` is zero.
    pub fn new(code: Arc<LdpcCode>, flip_threshold: usize) -> Self {
        assert!(flip_threshold > 0, "flip threshold must be positive");
        let n = code.n();
        let m = code.n_checks();
        Self {
            code,
            flip_threshold,
            hard: vec![0; n],
            unsatisfied: vec![0; m],
        }
    }

    /// The flip threshold.
    pub fn flip_threshold(&self) -> usize {
        self.flip_threshold
    }
}

impl Decoder for GallagerBDecoder {
    fn decode(&mut self, channel_llrs: &[f32], max_iterations: u32) -> DecodeResult {
        let code = self.code.clone();
        let graph = code.graph();
        assert_eq!(
            channel_llrs.len(),
            graph.n_bits(),
            "channel LLR length mismatch"
        );
        for (h, &llr) in self.hard.iter_mut().zip(channel_llrs) {
            *h = u8::from(llr < 0.0);
        }
        let mut iterations = 0;
        let mut converged = graph.syndrome_ok(&self.hard);
        while iterations < max_iterations && !converged {
            // Evaluate all checks.
            let mut any_unsatisfied = false;
            for m in 0..graph.n_checks() {
                let mut parity = 0u8;
                for &bn in graph.cn_bits(m) {
                    parity ^= self.hard[bn as usize];
                }
                self.unsatisfied[m] = parity;
                any_unsatisfied |= parity != 0;
            }
            if !any_unsatisfied {
                converged = true;
                break;
            }
            // Flip bits with enough failing checks.
            let mut flipped = false;
            for n in 0..graph.n_bits() {
                let fails = graph
                    .bn_checks(n)
                    .iter()
                    .filter(|&&m| self.unsatisfied[m as usize] != 0)
                    .count();
                if fails >= self.flip_threshold {
                    self.hard[n] ^= 1;
                    flipped = true;
                }
            }
            iterations += 1;
            converged = graph.syndrome_ok(&self.hard);
            if !flipped {
                break; // stalled: no bit met the threshold
            }
        }
        DecodeResult {
            hard_decision: BitVec::from_bits(&self.hard),
            iterations,
            converged,
        }
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> &'static str {
        "gallager-b"
    }
}

/// Weighted bit-flipping decoder.
///
/// Each bit accumulates a flip metric combining the number of failing
/// checks it touches with the (magnitude of the) channel LLR holding it in
/// place; per iteration the single worst bit is flipped. Slower to
/// converge than Gallager-B but noticeably better at equal hardware cost,
/// since it reuses the channel reliabilities.
pub struct WeightedBitFlipDecoder {
    code: Arc<LdpcCode>,
    hard: Vec<u8>,
    unsatisfied: Vec<u8>,
}

impl WeightedBitFlipDecoder {
    /// Creates a weighted bit-flipping decoder.
    pub fn new(code: Arc<LdpcCode>) -> Self {
        let n = code.n();
        let m = code.n_checks();
        Self {
            code,
            hard: vec![0; n],
            unsatisfied: vec![0; m],
        }
    }
}

impl Decoder for WeightedBitFlipDecoder {
    fn decode(&mut self, channel_llrs: &[f32], max_iterations: u32) -> DecodeResult {
        let code = self.code.clone();
        let graph = code.graph();
        assert_eq!(
            channel_llrs.len(),
            graph.n_bits(),
            "channel LLR length mismatch"
        );
        for (h, &llr) in self.hard.iter_mut().zip(channel_llrs) {
            *h = u8::from(llr < 0.0);
        }
        let mut iterations = 0;
        let mut converged = graph.syndrome_ok(&self.hard);
        while iterations < max_iterations && !converged {
            for m in 0..graph.n_checks() {
                let mut parity = 0u8;
                for &bn in graph.cn_bits(m) {
                    parity ^= self.hard[bn as usize];
                }
                self.unsatisfied[m] = parity;
            }
            // Flip metric: failing checks minus a reliability penalty.
            let mut best_bit = None;
            let mut best_metric = f32::NEG_INFINITY;
            #[allow(clippy::needless_range_loop)] // n indexes llrs and the graph
            for n in 0..graph.n_bits() {
                let fails = graph
                    .bn_checks(n)
                    .iter()
                    .filter(|&&m| self.unsatisfied[m as usize] != 0)
                    .count() as f32;
                let metric = fails - channel_llrs[n].abs() * 0.5;
                if metric > best_metric {
                    best_metric = metric;
                    best_bit = Some(n);
                }
            }
            if let Some(bit) = best_bit {
                self.hard[bit] ^= 1;
            }
            iterations += 1;
            converged = graph.syndrome_ok(&self.hard);
        }
        DecodeResult {
            hard_decision: BitVec::from_bits(&self.hard),
            iterations,
            converged,
        }
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> &'static str {
        "weighted bit-flip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;
    use crate::{MinSumConfig, MinSumDecoder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clean_frames_pass_through_unchanged() {
        let code = demo_code();
        let llrs = vec![3.0f32; code.n()];
        let mut gb = GallagerBDecoder::new(code.clone(), 3);
        let out = gb.decode(&llrs, 10);
        assert!(out.converged);
        assert_eq!(out.iterations, 0, "no iteration needed on a codeword");
        assert!(out.hard_decision.is_zero());
        let mut wbf = WeightedBitFlipDecoder::new(code.clone());
        let out = wbf.decode(&llrs, 10);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn gallager_b_corrects_isolated_errors() {
        let code = demo_code();
        let mut llrs = vec![3.0f32; code.n()];
        llrs[17] = -3.0; // one hard error
        let mut dec = GallagerBDecoder::new(code.clone(), 3);
        let out = dec.decode(&llrs, 20);
        assert!(out.converged, "single error should be majority-corrected");
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn weighted_bit_flip_corrects_small_bursts() {
        let code = demo_code();
        let mut llrs = vec![3.0f32; code.n()];
        llrs[17] = -1.0;
        llrs[90] = -1.0;
        let mut dec = WeightedBitFlipDecoder::new(code.clone());
        let out = dec.decode(&llrs, 50);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn message_passing_beats_bit_flipping() {
        // The reason the paper builds a min-sum datapath: at moderate
        // noise, min-sum succeeds on frames that defeat Gallager-B.
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(33);
        let mut gb_fail = 0;
        let mut ms_fail = 0;
        for _ in 0..60 {
            let mut llrs: Vec<f32> = (0..code.n())
                .map(|_| 2.0 + rng.gen_range(-0.5f32..0.5))
                .collect();
            for _ in 0..7 {
                llrs[rng.gen_range(0..code.n())] = rng.gen_range(-2.0f32..-0.5);
            }
            let mut gb = GallagerBDecoder::new(code.clone(), 3);
            if !gb.decode(&llrs, 30).converged {
                gb_fail += 1;
            }
            let mut ms = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0));
            if !ms.decode(&llrs, 30).converged {
                ms_fail += 1;
            }
        }
        assert!(
            ms_fail <= gb_fail,
            "min-sum failed {ms_fail} vs gallager-b {gb_fail}"
        );
    }

    #[test]
    fn gallager_b_reports_stall_honestly() {
        // Random garbage: the decoder must terminate (stall or budget) and
        // report non-convergence rather than loop forever.
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(34);
        let llrs: Vec<f32> = (0..code.n())
            .map(|_| if rng.gen_bool(0.5) { 4.0 } else { -4.0 })
            .collect();
        let mut dec = GallagerBDecoder::new(code.clone(), 3);
        let out = dec.decode(&llrs, 50);
        assert!(!out.converged);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        GallagerBDecoder::new(demo_code(), 0);
    }
}
