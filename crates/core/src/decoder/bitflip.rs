//! Hard-decision baselines: Gallager-B and weighted bit-flipping.
//!
//! These are the classical low-complexity alternatives that hardware
//! papers (including this one's references) compare message-passing
//! decoders against. They operate on hard decisions only, so they need a
//! fraction of the logic of a min-sum datapath but give up a substantial
//! part of the coding gain — the benchmark harness quantifies exactly how
//! much on the C2 code structure.

use crate::decoder::{DecodeResult, DecodeTrace, Decoder, IterationStats};
use crate::LdpcCode;
use gf2::BitVec;
use std::sync::Arc;

/// Number of unsatisfied parity checks of a hard-decision word.
fn unsatisfied_count(graph: &crate::TannerGraph, hard: &[u8]) -> usize {
    (0..graph.n_checks())
        .filter(|&m| {
            let mut parity = 0u8;
            for &bn in graph.cn_bits(m) {
                parity ^= hard[bn as usize];
            }
            parity != 0
        })
        .count()
}

/// Gallager-B hard-decision decoder.
///
/// Each iteration computes every parity check on the current hard
/// decisions and flips the bits that participate in at least
/// `flip_threshold` unsatisfied checks. With the C2 column weight of 4,
/// a threshold of 3 is the classical majority rule.
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::decoder::{Decoder, GallagerBDecoder};
///
/// let code = demo_code();
/// let mut dec = GallagerBDecoder::new(code.clone(), 3);
/// let out = dec.decode(&vec![2.0; code.n()], 10);
/// assert!(out.converged);
/// ```
pub struct GallagerBDecoder {
    code: Arc<LdpcCode>,
    flip_threshold: usize,
    hard: Vec<u8>,
    unsatisfied: Vec<u8>,
}

impl GallagerBDecoder {
    /// Creates a decoder flipping bits with ≥ `flip_threshold` failing
    /// checks.
    ///
    /// # Panics
    ///
    /// Panics if `flip_threshold` is zero.
    pub fn new(code: Arc<LdpcCode>, flip_threshold: usize) -> Self {
        assert!(flip_threshold > 0, "flip threshold must be positive");
        let n = code.n();
        let m = code.n_checks();
        Self {
            code,
            flip_threshold,
            hard: vec![0; n],
            unsatisfied: vec![0; m],
        }
    }

    /// The flip threshold.
    pub fn flip_threshold(&self) -> usize {
        self.flip_threshold
    }

    /// Decodes one frame while recording per-iteration statistics in the
    /// same [`IterationStats`] format the soft decoders report (see
    /// [`FixedDecoder::decode_quantized_traced`](crate::FixedDecoder::decode_quantized_traced)):
    /// unsatisfied checks after the iteration and hard-decision flips per
    /// iteration. Hard-decision decoding has no saturating datapath, so
    /// `saturated_fraction` is always `0.0`.
    ///
    /// The [`DecodeResult`] is identical to [`Decoder::decode`]'s.
    ///
    /// # Panics
    ///
    /// Panics if `channel_llrs.len()` differs from the code length.
    pub fn decode_traced(
        &mut self,
        channel_llrs: &[f32],
        max_iterations: u32,
    ) -> (DecodeResult, DecodeTrace) {
        let mut trace = DecodeTrace::default();
        let result = self.decode_impl(channel_llrs, max_iterations, Some(&mut trace));
        (result, trace)
    }

    fn decode_impl(
        &mut self,
        channel_llrs: &[f32],
        max_iterations: u32,
        mut trace: Option<&mut DecodeTrace>,
    ) -> DecodeResult {
        let code = self.code.clone();
        let graph = code.graph();
        assert_eq!(
            channel_llrs.len(),
            graph.n_bits(),
            "channel LLR length mismatch"
        );
        for (h, &llr) in self.hard.iter_mut().zip(channel_llrs) {
            *h = u8::from(llr < 0.0);
        }
        let mut iterations = 0;
        let mut converged = graph.syndrome_ok(&self.hard);
        while iterations < max_iterations && !converged {
            // Evaluate all checks.
            let mut any_unsatisfied = false;
            for m in 0..graph.n_checks() {
                let mut parity = 0u8;
                for &bn in graph.cn_bits(m) {
                    parity ^= self.hard[bn as usize];
                }
                self.unsatisfied[m] = parity;
                any_unsatisfied |= parity != 0;
            }
            if !any_unsatisfied {
                converged = true;
                break;
            }
            // Flip bits with enough failing checks.
            let mut flips = 0usize;
            for n in 0..graph.n_bits() {
                let fails = graph
                    .bn_checks(n)
                    .iter()
                    .filter(|&&m| self.unsatisfied[m as usize] != 0)
                    .count();
                if fails >= self.flip_threshold {
                    self.hard[n] ^= 1;
                    flips += 1;
                }
            }
            iterations += 1;
            match trace.as_deref_mut() {
                Some(t) => {
                    let unsat = unsatisfied_count(graph, &self.hard);
                    converged = unsat == 0;
                    t.iterations.push(IterationStats {
                        unsatisfied_checks: unsat,
                        bit_flips: flips,
                        saturated_fraction: 0.0,
                    });
                }
                None => converged = graph.syndrome_ok(&self.hard),
            }
            if flips == 0 {
                break; // stalled: no bit met the threshold
            }
        }
        DecodeResult {
            hard_decision: BitVec::from_bits(&self.hard),
            iterations,
            converged,
        }
    }
}

impl Decoder for GallagerBDecoder {
    fn decode(&mut self, channel_llrs: &[f32], max_iterations: u32) -> DecodeResult {
        self.decode_impl(channel_llrs, max_iterations, None)
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        format!("gallager-b (t={})", self.flip_threshold)
    }
}

/// Weighted bit-flipping decoder.
///
/// Each bit accumulates a flip metric combining the number of failing
/// checks it touches with the (magnitude of the) channel LLR holding it in
/// place; per iteration the single worst bit is flipped. Slower to
/// converge than Gallager-B but noticeably better at equal hardware cost,
/// since it reuses the channel reliabilities.
pub struct WeightedBitFlipDecoder {
    code: Arc<LdpcCode>,
    hard: Vec<u8>,
    unsatisfied: Vec<u8>,
}

impl WeightedBitFlipDecoder {
    /// Creates a weighted bit-flipping decoder.
    pub fn new(code: Arc<LdpcCode>) -> Self {
        let n = code.n();
        let m = code.n_checks();
        Self {
            code,
            hard: vec![0; n],
            unsatisfied: vec![0; m],
        }
    }
}

impl WeightedBitFlipDecoder {
    /// Decodes one frame while recording per-iteration statistics in the
    /// shared [`IterationStats`] format (see
    /// [`GallagerBDecoder::decode_traced`]); `saturated_fraction` is
    /// always `0.0` for hard-decision decoding.
    ///
    /// # Panics
    ///
    /// Panics if `channel_llrs.len()` differs from the code length.
    pub fn decode_traced(
        &mut self,
        channel_llrs: &[f32],
        max_iterations: u32,
    ) -> (DecodeResult, DecodeTrace) {
        let mut trace = DecodeTrace::default();
        let result = self.decode_impl(channel_llrs, max_iterations, Some(&mut trace));
        (result, trace)
    }

    fn decode_impl(
        &mut self,
        channel_llrs: &[f32],
        max_iterations: u32,
        mut trace: Option<&mut DecodeTrace>,
    ) -> DecodeResult {
        let code = self.code.clone();
        let graph = code.graph();
        assert_eq!(
            channel_llrs.len(),
            graph.n_bits(),
            "channel LLR length mismatch"
        );
        for (h, &llr) in self.hard.iter_mut().zip(channel_llrs) {
            *h = u8::from(llr < 0.0);
        }
        let mut iterations = 0;
        let mut converged = graph.syndrome_ok(&self.hard);
        while iterations < max_iterations && !converged {
            for m in 0..graph.n_checks() {
                let mut parity = 0u8;
                for &bn in graph.cn_bits(m) {
                    parity ^= self.hard[bn as usize];
                }
                self.unsatisfied[m] = parity;
            }
            // Flip metric: failing checks minus a reliability penalty.
            let mut best_bit = None;
            let mut best_metric = f32::NEG_INFINITY;
            #[allow(clippy::needless_range_loop)] // n indexes llrs and the graph
            for n in 0..graph.n_bits() {
                let fails = graph
                    .bn_checks(n)
                    .iter()
                    .filter(|&&m| self.unsatisfied[m as usize] != 0)
                    .count() as f32;
                let metric = fails - channel_llrs[n].abs() * 0.5;
                if metric > best_metric {
                    best_metric = metric;
                    best_bit = Some(n);
                }
            }
            if let Some(bit) = best_bit {
                self.hard[bit] ^= 1;
            }
            iterations += 1;
            match trace.as_deref_mut() {
                Some(t) => {
                    let unsat = unsatisfied_count(graph, &self.hard);
                    converged = unsat == 0;
                    t.iterations.push(IterationStats {
                        unsatisfied_checks: unsat,
                        bit_flips: usize::from(best_bit.is_some()),
                        saturated_fraction: 0.0,
                    });
                }
                None => converged = graph.syndrome_ok(&self.hard),
            }
        }
        DecodeResult {
            hard_decision: BitVec::from_bits(&self.hard),
            iterations,
            converged,
        }
    }
}

impl Decoder for WeightedBitFlipDecoder {
    fn decode(&mut self, channel_llrs: &[f32], max_iterations: u32) -> DecodeResult {
        self.decode_impl(channel_llrs, max_iterations, None)
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        "weighted bit-flip".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;
    use crate::{MinSumConfig, MinSumDecoder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clean_frames_pass_through_unchanged() {
        let code = demo_code();
        let llrs = vec![3.0f32; code.n()];
        let mut gb = GallagerBDecoder::new(code.clone(), 3);
        let out = gb.decode(&llrs, 10);
        assert!(out.converged);
        assert_eq!(out.iterations, 0, "no iteration needed on a codeword");
        assert!(out.hard_decision.is_zero());
        let mut wbf = WeightedBitFlipDecoder::new(code.clone());
        let out = wbf.decode(&llrs, 10);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn gallager_b_corrects_isolated_errors() {
        let code = demo_code();
        let mut llrs = vec![3.0f32; code.n()];
        llrs[17] = -3.0; // one hard error
        let mut dec = GallagerBDecoder::new(code.clone(), 3);
        let out = dec.decode(&llrs, 20);
        assert!(out.converged, "single error should be majority-corrected");
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn weighted_bit_flip_corrects_small_bursts() {
        let code = demo_code();
        let mut llrs = vec![3.0f32; code.n()];
        llrs[17] = -1.0;
        llrs[90] = -1.0;
        let mut dec = WeightedBitFlipDecoder::new(code.clone());
        let out = dec.decode(&llrs, 50);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn message_passing_beats_bit_flipping() {
        // The reason the paper builds a min-sum datapath: at moderate
        // noise, min-sum succeeds on frames that defeat Gallager-B.
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(33);
        let mut gb_fail = 0;
        let mut ms_fail = 0;
        for _ in 0..60 {
            let mut llrs: Vec<f32> = (0..code.n())
                .map(|_| 2.0 + rng.gen_range(-0.5f32..0.5))
                .collect();
            for _ in 0..7 {
                llrs[rng.gen_range(0..code.n())] = rng.gen_range(-2.0f32..-0.5);
            }
            let mut gb = GallagerBDecoder::new(code.clone(), 3);
            if !gb.decode(&llrs, 30).converged {
                gb_fail += 1;
            }
            let mut ms = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0));
            if !ms.decode(&llrs, 30).converged {
                ms_fail += 1;
            }
        }
        assert!(
            ms_fail <= gb_fail,
            "min-sum failed {ms_fail} vs gallager-b {gb_fail}"
        );
    }

    #[test]
    fn gallager_b_reports_stall_honestly() {
        // Random garbage: the decoder must terminate (stall or budget) and
        // report non-convergence rather than loop forever.
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(34);
        let llrs: Vec<f32> = (0..code.n())
            .map(|_| if rng.gen_bool(0.5) { 4.0 } else { -4.0 })
            .collect();
        let mut dec = GallagerBDecoder::new(code.clone(), 3);
        let out = dec.decode(&llrs, 50);
        assert!(!out.converged);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        GallagerBDecoder::new(demo_code(), 0);
    }

    #[test]
    fn gallager_b_traced_matches_untraced_and_reports_stats() {
        let code = demo_code();
        let mut llrs = vec![3.0f32; code.n()];
        llrs[17] = -3.0; // one hard error: corrected after >= 1 iteration
        let mut plain = GallagerBDecoder::new(code.clone(), 3);
        let want = plain.decode(&llrs, 20);
        let mut traced = GallagerBDecoder::new(code.clone(), 3);
        let (got, trace) = traced.decode_traced(&llrs, 20);
        assert_eq!(got, want, "tracing must not change the decode");
        // Same reporting contract as the soft decoders: one stats entry
        // per executed iteration, zero syndrome exactly at convergence,
        // and no saturation in a hard-decision datapath.
        assert_eq!(trace.iterations.len() as u32, got.iterations);
        assert!(got.converged);
        assert_eq!(trace.first_zero_syndrome(), Some(got.iterations as usize));
        assert!(trace.iterations[0].bit_flips > 0);
        assert!(trace.iterations.iter().all(|s| s.saturated_fraction == 0.0));
    }

    #[test]
    fn gallager_b_traced_reports_stall_iterations() {
        // Garbage input: the trace must cover every executed iteration and
        // end with a non-zero unsatisfied count.
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(35);
        let llrs: Vec<f32> = (0..code.n())
            .map(|_| if rng.gen_bool(0.5) { 4.0 } else { -4.0 })
            .collect();
        let mut dec = GallagerBDecoder::new(code.clone(), 3);
        let (out, trace) = dec.decode_traced(&llrs, 50);
        assert!(!out.converged);
        assert_eq!(trace.iterations.len() as u32, out.iterations);
        assert!(trace.iterations.last().unwrap().unsatisfied_checks > 0);
        assert_eq!(trace.first_zero_syndrome(), None);
    }

    #[test]
    fn weighted_bit_flip_traced_flips_one_bit_per_iteration() {
        let code = demo_code();
        let mut llrs = vec![3.0f32; code.n()];
        llrs[17] = -1.0;
        llrs[90] = -1.0;
        let mut plain = WeightedBitFlipDecoder::new(code.clone());
        let want = plain.decode(&llrs, 50);
        let mut traced = WeightedBitFlipDecoder::new(code.clone());
        let (got, trace) = traced.decode_traced(&llrs, 50);
        assert_eq!(got, want);
        assert_eq!(trace.iterations.len() as u32, got.iterations);
        assert!(trace.iterations.iter().all(|s| s.bit_flips == 1));
        assert!(trace.iterations.iter().all(|s| s.saturated_fraction == 0.0));
    }
}
