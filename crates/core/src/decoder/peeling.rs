//! Erasure peeling with inactivation fallback — the fountain-code-style
//! decoder for packet-loss workloads.
//!
//! RaptorQ-class codes recover lost packets with *peeling*: any parity
//! check with exactly one erased neighbor determines that neighbor as the
//! XOR of its known ones, and each recovery can unlock further checks.
//! When peeling stalls (no degree-1 check remains), production solvers
//! "inactivate" the residual unknowns and finish with dense Gaussian
//! elimination over GF(2). [`PeelingDecoder`] brings that algorithm to
//! the workspace's LDPC codes so the C2/AR4JA soft-decision machinery can
//! be compared head-to-head against a pure erasure solver on the same
//! erasure and burst channels.
//!
//! Soft input is mapped to the erasure domain by an adaptive threshold:
//! a symbol is *erased* when its LLR magnitude falls below
//! [`PEELING_ERASURE_FRACTION`] of the frame's mean magnitude (an exact
//! zero is always an erasure), and *known* with the sign's hard decision
//! otherwise. On a true erasure channel — zero LLRs for lost symbols,
//! full-confidence values elsewhere — this classifies every symbol
//! exactly. Known symbols are never revised, so the decoder reports
//! convergence only when the final word satisfies every parity check:
//! success always means a valid codeword, even under channels that flip
//! bits instead of erasing them.

use crate::decoder::{DecodeResult, Decoder};
use crate::LdpcCode;
use gf2::BitVec;
use std::sync::Arc;

/// Fraction of the frame's mean LLR magnitude below which a symbol is
/// treated as erased by [`PeelingDecoder`].
pub const PEELING_ERASURE_FRACTION: f32 = 0.3;

/// Degree-1 erasure peeling with dense GF(2) inactivation fallback.
///
/// Each peeling sweep over the checks counts as one iteration; the
/// fallback elimination, when it runs, counts as one more. The decoder
/// is deterministic and, like every other family, reports `converged`
/// only for words with a zero syndrome.
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::decoder::{Decoder, PeelingDecoder};
///
/// let code = demo_code();
/// let mut dec = PeelingDecoder::new(code.clone());
/// // A handful of erasures (zero LLR) in an otherwise certain frame.
/// let mut llrs = vec![8.0; code.n()];
/// for i in [3, 40, 77, 200] {
///     llrs[i] = 0.0;
/// }
/// let out = dec.decode(&llrs, 10);
/// assert!(out.converged);
/// assert!(out.hard_decision.is_zero());
/// ```
pub struct PeelingDecoder {
    code: Arc<LdpcCode>,
    hard: Vec<u8>,
    erased: Vec<bool>,
}

impl PeelingDecoder {
    /// Creates a peeling decoder for `code`.
    pub fn new(code: Arc<LdpcCode>) -> Self {
        let n = code.n();
        Self {
            code,
            hard: vec![0; n],
            erased: vec![false; n],
        }
    }

    /// Resolves the remaining erasures by dense Gaussian elimination over
    /// GF(2): one row per check touching an erased bit (unknowns = the
    /// erased positions, right-hand side = the XOR of the check's known
    /// neighbors), free variables set to zero. The subsequent syndrome
    /// check validates whatever assignment comes out, so an inconsistent
    /// or underdetermined system can never masquerade as success.
    fn solve_inactivated(&mut self, graph: &crate::TannerGraph) {
        let unknowns: Vec<usize> = (0..graph.n_bits()).filter(|&i| self.erased[i]).collect();
        if unknowns.is_empty() {
            return;
        }
        let mut column_of = vec![usize::MAX; graph.n_bits()];
        for (col, &bit) in unknowns.iter().enumerate() {
            column_of[bit] = col;
        }
        let words = unknowns.len().div_ceil(64);
        // Row layout: `words` mask words then one RHS bit in the LSB of
        // an extra word.
        let mut rows: Vec<Vec<u64>> = Vec::new();
        for m in 0..graph.n_checks() {
            let mut row = vec![0u64; words + 1];
            let mut touches = false;
            let mut rhs = 0u64;
            for &bn in graph.cn_bits(m) {
                let bit = bn as usize;
                let col = column_of[bit];
                if col != usize::MAX {
                    row[col / 64] ^= 1u64 << (col % 64);
                    touches = true;
                } else {
                    rhs ^= u64::from(self.hard[bit]);
                }
            }
            if touches {
                row[words] = rhs;
                rows.push(row);
            }
        }
        // Forward elimination to row echelon form, pivoting per column.
        let mut solution = vec![0u8; unknowns.len()];
        let mut pivot_row = 0usize;
        let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row, col)
        for col in 0..unknowns.len() {
            let (w, b) = (col / 64, 1u64 << (col % 64));
            let Some(r) = (pivot_row..rows.len()).find(|&r| rows[r][w] & b != 0) else {
                continue; // free variable: stays zero
            };
            rows.swap(pivot_row, r);
            let pivot = rows[pivot_row].clone();
            for row in rows.iter_mut().skip(pivot_row + 1) {
                if row[w] & b != 0 {
                    for (dst, src) in row.iter_mut().zip(&pivot) {
                        *dst ^= src;
                    }
                }
            }
            pivots.push((pivot_row, col));
            pivot_row += 1;
            if pivot_row == rows.len() {
                break;
            }
        }
        // Back substitution in reverse pivot order.
        for &(r, col) in pivots.iter().rev() {
            let mut value = rows[r][words] & 1;
            for c in col + 1..unknowns.len() {
                if rows[r][c / 64] & (1u64 << (c % 64)) != 0 {
                    value ^= u64::from(solution[c]);
                }
            }
            solution[col] = value as u8;
        }
        for (col, &bit) in unknowns.iter().enumerate() {
            self.hard[bit] = solution[col];
            self.erased[bit] = false;
        }
    }
}

impl Decoder for PeelingDecoder {
    fn decode(&mut self, channel_llrs: &[f32], max_iterations: u32) -> DecodeResult {
        let code = self.code.clone();
        let graph = code.graph();
        assert_eq!(
            channel_llrs.len(),
            graph.n_bits(),
            "channel LLR length mismatch"
        );
        let mean_magnitude =
            channel_llrs.iter().map(|l| l.abs()).sum::<f32>() / channel_llrs.len() as f32;
        let threshold = PEELING_ERASURE_FRACTION * mean_magnitude;
        let mut remaining = 0usize;
        for (i, &llr) in channel_llrs.iter().enumerate() {
            self.hard[i] = u8::from(llr < 0.0);
            self.erased[i] = llr == 0.0 || llr.abs() < threshold;
            remaining += usize::from(self.erased[i]);
        }
        let mut iterations = 0u32;
        // Phase 1: degree-1 peeling. Each sweep resolves every check with
        // exactly one erased neighbor; resolutions cascade within the
        // sweep because counts are recomputed per check.
        while remaining > 0 && iterations < max_iterations {
            let mut progressed = false;
            for m in 0..graph.n_checks() {
                let mut erased_neighbor = None;
                let mut parity = 0u8;
                let mut erased_count = 0u32;
                for &bn in graph.cn_bits(m) {
                    let bit = bn as usize;
                    if self.erased[bit] {
                        erased_count += 1;
                        erased_neighbor = Some(bit);
                    } else {
                        parity ^= self.hard[bit];
                    }
                }
                if erased_count == 1 {
                    let bit = erased_neighbor.expect("count == 1 implies a neighbor");
                    self.hard[bit] = parity;
                    self.erased[bit] = false;
                    remaining -= 1;
                    progressed = true;
                }
            }
            iterations += 1;
            if !progressed {
                break;
            }
        }
        // Phase 2: inactivation fallback for whatever peeling left.
        if remaining > 0 && iterations < max_iterations {
            self.solve_inactivated(graph);
            remaining = 0;
            iterations += 1;
        }
        let converged = remaining == 0 && graph.syndrome_ok(&self.hard);
        DecodeResult {
            hard_decision: BitVec::from_bits(&self.hard),
            iterations,
            converged,
        }
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        "peeling".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;
    use crate::Encoder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clean_frame_passes_through() {
        let code = demo_code();
        let mut dec = PeelingDecoder::new(code.clone());
        let out = dec.decode(&vec![4.0; code.n()], 10);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn peels_scattered_erasures() {
        let code = demo_code();
        let mut llrs = vec![6.0f32; code.n()];
        for i in (0..code.n()).step_by(17) {
            llrs[i] = 0.0;
        }
        let mut dec = PeelingDecoder::new(code.clone());
        let out = dec.decode(&llrs, 20);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
        assert!(out.iterations >= 1);
    }

    #[test]
    fn recovers_erased_random_codeword() {
        let code = demo_code();
        let enc = Encoder::new(&code).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let msg: Vec<u8> = (0..enc.dimension())
            .map(|_| rng.gen_range(0..2u8))
            .collect();
        let cw = enc.encode_bits(&msg).unwrap();
        let mut llrs: Vec<f32> = (0..code.n())
            .map(|i| if cw.get(i) { -6.0 } else { 6.0 })
            .collect();
        // 10% random erasures.
        for _ in 0..code.n() / 10 {
            let i = rng.gen_range(0..code.n());
            llrs[i] = 0.0;
        }
        let mut dec = PeelingDecoder::new(code.clone());
        let out = dec.decode(&llrs, 20);
        assert!(out.converged);
        assert_eq!(out.hard_decision, cw);
    }

    #[test]
    fn inactivation_solves_what_peeling_cannot() {
        // Erase every neighbor of a few checks so no degree-1 check
        // exists among them; dense heavy erasure patterns exercise the
        // GF(2) fallback. At 35% erasures peeling alone stalls with high
        // probability on a column-weight-4 code.
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(5);
        let mut llrs = vec![6.0f32; code.n()];
        let mut erased = 0;
        for llr in llrs.iter_mut() {
            if rng.gen_bool(0.35) {
                *llr = 0.0;
                erased += 1;
            }
        }
        assert!(erased > 60, "pattern not dense enough to be interesting");
        let mut dec = PeelingDecoder::new(code.clone());
        let out = dec.decode(&llrs, 30);
        assert!(out.converged, "inactivation failed at {erased} erasures");
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn flipped_known_bits_fail_honestly() {
        // Peeling trusts known symbols; a high-confidence flip must
        // surface as non-convergence, never as a "successful" wrong word.
        let code = demo_code();
        let mut llrs = vec![6.0f32; code.n()];
        llrs[42] = -6.0;
        let mut dec = PeelingDecoder::new(code.clone());
        let out = dec.decode(&llrs, 20);
        assert!(!out.converged);
    }

    #[test]
    fn soft_awgn_like_input_erases_the_weak_symbols() {
        // Mild noise around ±4 with a couple of near-zero symbols: the
        // adaptive threshold must erase exactly the weak ones and the
        // decoder recovers them.
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(8);
        let mut llrs: Vec<f32> = (0..code.n())
            .map(|_| 4.0 + rng.gen_range(-1.0f32..1.0))
            .collect();
        llrs[10] = 0.3;
        llrs[99] = -0.2;
        let mut dec = PeelingDecoder::new(code.clone());
        let out = dec.decode(&llrs, 20);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn zero_iteration_budget_reports_unconverged_on_erasures() {
        let code = demo_code();
        let mut llrs = vec![5.0f32; code.n()];
        llrs[0] = 0.0;
        let mut dec = PeelingDecoder::new(code.clone());
        let out = dec.decode(&llrs, 0);
        assert!(!out.converged);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn decode_is_deterministic() {
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(30);
        let llrs: Vec<f32> = (0..code.n())
            .map(|_| {
                if rng.gen_bool(0.2) {
                    0.0
                } else {
                    rng.gen_range(1.0f32..8.0)
                }
            })
            .collect();
        let a = PeelingDecoder::new(code.clone()).decode(&llrs, 20);
        let b = PeelingDecoder::new(code.clone()).decode(&llrs, 20);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn wrong_length_panics() {
        PeelingDecoder::new(demo_code()).decode(&[0.0; 3], 5);
    }
}
