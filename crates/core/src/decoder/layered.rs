//! Serial-schedule ("layered") normalized min-sum decoder.

use crate::decoder::{DecodeResult, Decoder};
use crate::LdpcCode;
use gf2::BitVec;
use std::sync::Arc;

/// Normalized min-sum with a serial check-node schedule.
///
/// Instead of the flooding schedule of the paper's base architecture
/// (all checks, then all bits), check nodes are processed one after the
/// other and the a-posteriori values are updated immediately. The serial
/// schedule typically converges in roughly half the iterations of flooding
/// — this decoder exists to quantify that trade-off (ablation A3 in
/// DESIGN.md), since the paper's architecture deliberately chooses flooding
/// to exploit the QC code's parallelism.
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::{Decoder, LayeredMinSumDecoder};
///
/// let code = demo_code();
/// let mut dec = LayeredMinSumDecoder::new(code.clone(), 4.0 / 3.0);
/// let out = dec.decode(&vec![3.0; code.n()], 10);
/// assert!(out.converged);
/// ```
pub struct LayeredMinSumDecoder {
    code: Arc<LdpcCode>,
    alpha: f32,
    /// A-posteriori LLR of each bit.
    app: Vec<f32>,
    /// Stored check→bit message of each edge.
    cb: Vec<f32>,
    /// Scratch: bit→check messages of the check being processed.
    scratch: Vec<f32>,
    hard: Vec<u8>,
    early_stop: bool,
}

impl LayeredMinSumDecoder {
    /// Creates a serial-schedule decoder with normalization factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 1.0`.
    pub fn new(code: Arc<LdpcCode>, alpha: f32) -> Self {
        assert!(alpha >= 1.0, "normalization factor must be >= 1");
        let n = code.n();
        let edges = code.graph().n_edges();
        let max_deg = code.graph().max_cn_degree();
        Self {
            code,
            alpha,
            app: vec![0.0; n],
            cb: vec![0.0; edges],
            scratch: vec![0.0; max_deg],
            hard: vec![0; n],
            early_stop: true,
        }
    }

    /// Disables or enables early termination.
    pub fn with_early_stop(mut self, early_stop: bool) -> Self {
        self.early_stop = early_stop;
        self
    }

    /// The normalization factor α.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Decoder for LayeredMinSumDecoder {
    fn decode(&mut self, channel_llrs: &[f32], max_iterations: u32) -> DecodeResult {
        let code = self.code.clone();
        let graph = code.graph();
        assert_eq!(
            channel_llrs.len(),
            graph.n_bits(),
            "channel LLR length mismatch"
        );
        self.app.copy_from_slice(channel_llrs);
        self.cb.iter_mut().for_each(|m| *m = 0.0);
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..max_iterations {
            for m in 0..graph.n_checks() {
                let range = graph.cn_edge_range(m);
                let deg = range.len();
                // Reconstruct bit→check messages from APP minus stored cb.
                for (i, e) in range.clone().enumerate() {
                    let bn = graph.edge_bit(e);
                    self.scratch[i] = self.app[bn] - self.cb[e];
                }
                // Two-minimum min-sum over the scratch messages.
                let mut min1 = f32::INFINITY;
                let mut min2 = f32::INFINITY;
                let mut argmin = 0usize;
                let mut sign_product = false;
                for (i, &x) in self.scratch[..deg].iter().enumerate() {
                    let mag = x.abs();
                    if x < 0.0 {
                        sign_product = !sign_product;
                    }
                    if mag < min1 {
                        min2 = min1;
                        min1 = mag;
                        argmin = i;
                    } else if mag < min2 {
                        min2 = mag;
                    }
                }
                // Write back new messages and update APP in place.
                for (i, e) in range.enumerate() {
                    let mag = if i == argmin { min2 } else { min1 } / self.alpha;
                    let negative = sign_product ^ (self.scratch[i] < 0.0);
                    let new_cb = if negative { -mag } else { mag };
                    let bn = graph.edge_bit(e);
                    self.app[bn] = self.scratch[i] + new_cb;
                    self.cb[e] = new_cb;
                }
            }
            for n in 0..graph.n_bits() {
                self.hard[n] = u8::from(self.app[n] < 0.0);
            }
            iterations += 1;
            if graph.syndrome_ok(&self.hard) {
                converged = true;
                if self.early_stop {
                    break;
                }
            } else {
                converged = false;
            }
        }
        DecodeResult {
            hard_decision: BitVec::from_bits(&self.hard),
            iterations,
            converged,
        }
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        format!("layered normalized min-sum (alpha={})", self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;
    use crate::{MinSumConfig, MinSumDecoder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn converges_on_clean_frames() {
        let code = demo_code();
        let mut dec = LayeredMinSumDecoder::new(code.clone(), 4.0 / 3.0);
        let out = dec.decode(&vec![5.0; code.n()], 10);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn converges_at_least_as_fast_as_flooding_on_average() {
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(30);
        let mut layered_total = 0u32;
        let mut flooding_total = 0u32;
        let mut compared = 0u32;
        for _ in 0..40 {
            // Mild background noise plus a handful of confidently wrong bits.
            let mut llrs: Vec<f32> = (0..code.n())
                .map(|_| 2.5 + rng.gen_range(-0.8f32..0.8))
                .collect();
            for _ in 0..6 {
                llrs[rng.gen_range(0..code.n())] = -2.0;
            }
            let mut layered = LayeredMinSumDecoder::new(code.clone(), 4.0 / 3.0);
            let mut flooding =
                MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0));
            let a = layered.decode(&llrs, 50);
            let b = flooding.decode(&llrs, 50);
            if a.converged && b.converged {
                layered_total += a.iterations;
                flooding_total += b.iterations;
                compared += 1;
            }
        }
        assert!(compared >= 10, "too few converging frames to compare");
        assert!(
            layered_total <= flooding_total,
            "layered {layered_total} iters vs flooding {flooding_total}"
        );
    }

    #[test]
    fn state_resets_between_frames() {
        let code = demo_code();
        let mut dec = LayeredMinSumDecoder::new(code.clone(), 1.25);
        let mut rng = StdRng::seed_from_u64(31);
        let noisy: Vec<f32> = (0..code.n()).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let _ = dec.decode(&noisy, 5);
        let out = dec.decode(&vec![5.0; code.n()], 5);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_alpha_below_one() {
        LayeredMinSumDecoder::new(demo_code(), 0.9);
    }
}
