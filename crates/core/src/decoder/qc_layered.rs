//! Block-layered normalized min-sum over the quasi-cyclic structure.
//!
//! Where [`LayeredMinSumDecoder`](crate::LayeredMinSumDecoder) walks H
//! check-by-check through per-edge index lists, this decoder exploits the
//! block-circulant form directly: one circulant block row (a *layer*) of
//! `L` checks is processed at a time, and within a layer every non-zero
//! tap of every block column becomes a *plane* of `L` contiguous
//! messages. Lane `i` of a plane with shift `p` in block column `bc`
//! talks to bit `bc·L + (p + i) mod L` — a cyclically contiguous range,
//! so the gather is two slice copies instead of `L` indexed loads, and
//! the two-minimum reduction runs lane-parallel over whole planes. This
//! is the software image of the paper's conflict-free banked memory
//! layout (one bank per block, rotate-indexed addressing).

use crate::decoder::{DecodeResult, Decoder};
use crate::LdpcCode;
use gf2::BitVec;
use std::sync::Arc;

const SIGN_MASK: u32 = 0x8000_0000;

/// One circulant tap inside a layer: `L` messages between the layer's
/// checks and block column `base / L`, rotate-indexed by `shift`.
struct Plane {
    /// First bit index of the block column (`bc · L`).
    base: usize,
    /// Circulant shift of this tap.
    shift: usize,
    /// Offset of this plane's messages in the flat `cb` array.
    cb_offset: usize,
}

/// Normalized min-sum with a block-layered (circulant-aware) schedule.
///
/// Check updates are Gauss–Seidel *across* block rows — a-posteriori
/// values refresh between layers, like the serial schedule — and Jacobi
/// *within* a block row: all `L` checks of a layer see the a-posteriori
/// values from the start of the layer. (Bit-exact agreement with the
/// fully serial [`LayeredMinSumDecoder`](crate::LayeredMinSumDecoder) is
/// impossible for weight-2 circulants, where two checks of one layer
/// share a bit; the schedules coincide exactly when every block column
/// of every layer has weight ≤ 1.) Because two taps of one block column
/// *do* land on the same bit within a layer, the a-posteriori writeback
/// is a delta update (`app += new − old`), never an overwrite.
///
/// Requires the code to expose its quasi-cyclic structure via
/// [`LdpcCode::qc_structure`].
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::{Decoder, QcLayeredDecoder};
///
/// let code = demo_code();
/// let mut dec = QcLayeredDecoder::new(code.clone(), 4.0 / 3.0);
/// let out = dec.decode(&vec![3.0; code.n()], 10);
/// assert!(out.converged);
/// ```
pub struct QcLayeredDecoder {
    code: Arc<LdpcCode>,
    alpha: f32,
    /// Circulant dimension `L` (checks per layer).
    l: usize,
    /// Planes of each layer, in block-column-then-tap order.
    layers: Vec<Vec<Plane>>,
    /// Stored check→bit messages, one `L`-lane block per plane.
    cb: Vec<f32>,
    /// Scratch bit→check messages of the layer in flight, per plane.
    m: Vec<f32>,
    /// Per-lane two-minimum state of the layer in flight.
    min1: Vec<f32>,
    min2: Vec<f32>,
    /// Per-lane running sign product (as f32 sign bits).
    signs: Vec<u32>,
    /// A-posteriori LLR of each bit.
    app: Vec<f32>,
    hard: Vec<u8>,
    early_stop: bool,
}

impl QcLayeredDecoder {
    /// Creates a block-layered decoder with normalization factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 1.0` or the code has no quasi-cyclic structure
    /// (see [`try_new`](Self::try_new) for the fallible form).
    pub fn new(code: Arc<LdpcCode>, alpha: f32) -> Self {
        Self::try_new(code, alpha).expect(
            "qc-layered needs a quasi-cyclic code: LdpcCode::qc_structure() returned None \
             (shortened and punctured matrices lose the block-circulant form)",
        )
    }

    /// Creates a block-layered decoder, or `None` if the code's
    /// parity-check matrix has no quasi-cyclic block structure.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 1.0`.
    pub fn try_new(code: Arc<LdpcCode>, alpha: f32) -> Option<Self> {
        assert!(alpha >= 1.0, "normalization factor must be >= 1");
        let spec = code.qc_structure()?.clone();
        let l = spec.circulant_size();
        let mut layers = Vec::with_capacity(spec.block_rows());
        let mut cb_offset = 0;
        let mut max_planes = 0;
        for br in 0..spec.block_rows() {
            let mut planes = Vec::new();
            for bc in 0..spec.block_cols() {
                for &p in spec.block(br, bc).first_row() {
                    planes.push(Plane {
                        base: bc * l,
                        shift: p as usize,
                        cb_offset,
                    });
                    cb_offset += l;
                }
            }
            max_planes = max_planes.max(planes.len());
            layers.push(planes);
        }
        let n = code.n();
        Some(Self {
            code,
            alpha,
            l,
            layers,
            cb: vec![0.0; cb_offset],
            m: vec![0.0; max_planes * l],
            min1: vec![0.0; l],
            min2: vec![0.0; l],
            signs: vec![0; l],
            app: vec![0.0; n],
            hard: vec![0; n],
            early_stop: true,
        })
    }

    /// Disables or enables early termination.
    pub fn with_early_stop(mut self, early_stop: bool) -> Self {
        self.early_stop = early_stop;
        self
    }

    /// The normalization factor α.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Decoder for QcLayeredDecoder {
    fn decode(&mut self, channel_llrs: &[f32], max_iterations: u32) -> DecodeResult {
        let graph = self.code.graph();
        assert_eq!(
            channel_llrs.len(),
            graph.n_bits(),
            "channel LLR length mismatch"
        );
        self.app.copy_from_slice(channel_llrs);
        self.cb.iter_mut().for_each(|m| *m = 0.0);
        let l = self.l;
        let inv_alpha = 1.0 / self.alpha;
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..max_iterations {
            for planes in &self.layers {
                self.min1.iter_mut().for_each(|x| *x = f32::INFINITY);
                self.min2.iter_mut().for_each(|x| *x = f32::INFINITY);
                self.signs.iter_mut().for_each(|s| *s = 0);
                // Pass A: reconstruct bit→check messages (APP minus stored
                // cb) plane by plane, folding each into the lane-parallel
                // two-minimum / sign-product state. The rotate-indexed
                // gather is two contiguous zips, split at the wraparound.
                for (k, plane) in planes.iter().enumerate() {
                    let split = l - plane.shift;
                    let app_blk = &self.app[plane.base..plane.base + l];
                    let cb_plane = &self.cb[plane.cb_offset..plane.cb_offset + l];
                    let m_plane = &mut self.m[k * l..(k + 1) * l];
                    for seg in 0..2 {
                        let (lanes, cols) = if seg == 0 {
                            (0..split, plane.shift..l)
                        } else {
                            (split..l, 0..plane.shift)
                        };
                        let mins = self.min1[lanes.clone()]
                            .iter_mut()
                            .zip(&mut self.min2[lanes.clone()])
                            .zip(&mut self.signs[lanes.clone()]);
                        for (((m, &a), &c), ((m1, m2), s)) in m_plane[lanes.clone()]
                            .iter_mut()
                            .zip(&app_blk[cols])
                            .zip(&cb_plane[lanes])
                            .zip(mins)
                        {
                            let x = a - c;
                            *m = x;
                            let mag = x.abs();
                            *s ^= x.to_bits() & SIGN_MASK;
                            *m2 = m2.min(mag.max(*m1));
                            *m1 = m1.min(mag);
                        }
                    }
                }
                // Pass B: per plane, select the extrinsic minimum (the
                // runner-up where this plane holds the minimum — value
                // equality is exact because min1 came from these very
                // magnitudes), normalize, apply the product sign minus
                // this plane's own sign, and delta-update APP.
                for (k, plane) in planes.iter().enumerate() {
                    let split = l - plane.shift;
                    let app_blk = &mut self.app[plane.base..plane.base + l];
                    let cb_plane = &mut self.cb[plane.cb_offset..plane.cb_offset + l];
                    let m_plane = &self.m[k * l..(k + 1) * l];
                    for seg in 0..2 {
                        let (lanes, cols) = if seg == 0 {
                            (0..split, plane.shift..l)
                        } else {
                            (split..l, 0..plane.shift)
                        };
                        let mins = self.min1[lanes.clone()]
                            .iter()
                            .zip(&self.min2[lanes.clone()])
                            .zip(&self.signs[lanes.clone()]);
                        for (((&x, c), a), ((&m1, &m2), &s)) in m_plane[lanes.clone()]
                            .iter()
                            .zip(&mut cb_plane[lanes])
                            .zip(&mut app_blk[cols])
                            .zip(mins)
                        {
                            let mag = x.abs();
                            let sel = if mag == m1 { m2 } else { m1 };
                            let sign = (s ^ x.to_bits()) & SIGN_MASK;
                            let new_cb = f32::from_bits((sel * inv_alpha).to_bits() | sign);
                            *a += new_cb - *c;
                            *c = new_cb;
                        }
                    }
                }
            }
            for n in 0..graph.n_bits() {
                self.hard[n] = u8::from(self.app[n] < 0.0);
            }
            iterations += 1;
            if graph.syndrome_ok(&self.hard) {
                converged = true;
                if self.early_stop {
                    break;
                }
            } else {
                converged = false;
            }
        }
        DecodeResult {
            hard_decision: BitVec::from_bits(&self.hard),
            iterations,
            converged,
        }
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        format!("qc block-layered normalized min-sum (alpha={})", self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::{demo_code, random_c2_like};
    use crate::LayeredMinSumDecoder;
    use gf2::SparseMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn converges_on_clean_frames() {
        let code = demo_code();
        let mut dec = QcLayeredDecoder::new(code.clone(), 4.0 / 3.0);
        let out = dec.decode(&vec![5.0; code.n()], 10);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn success_implies_valid_codeword_under_noise() {
        let code = random_c2_like(17, 31, 8);
        let mut dec = QcLayeredDecoder::new(code.clone(), 4.0 / 3.0);
        let mut rng = StdRng::seed_from_u64(33);
        let mut successes = 0;
        for _ in 0..40 {
            let mut llrs: Vec<f32> = (0..code.n())
                .map(|_| 2.5 + rng.gen_range(-0.8f32..0.8))
                .collect();
            for _ in 0..6 {
                llrs[rng.gen_range(0..code.n())] = -2.0;
            }
            let out = dec.decode(&llrs, 30);
            if out.converged {
                successes += 1;
                assert!(code.is_codeword(&out.hard_decision));
            }
        }
        assert!(successes >= 20, "only {successes}/40 frames decoded");
    }

    #[test]
    fn matches_serial_layered_on_decodable_frames() {
        // The schedules differ (Jacobi within a layer vs fully serial),
        // so LLR trajectories diverge — but on clearly decodable frames
        // both land on the same codeword.
        let code = demo_code();
        let mut qc = QcLayeredDecoder::new(code.clone(), 4.0 / 3.0);
        let mut serial = LayeredMinSumDecoder::new(code.clone(), 4.0 / 3.0);
        let mut rng = StdRng::seed_from_u64(34);
        for _ in 0..30 {
            let mut llrs: Vec<f32> = (0..code.n())
                .map(|_| 3.0 + rng.gen_range(-0.5f32..0.5))
                .collect();
            for _ in 0..4 {
                llrs[rng.gen_range(0..code.n())] = -1.5;
            }
            let a = qc.decode(&llrs, 30);
            let b = serial.decode(&llrs, 30);
            assert!(a.converged && b.converged, "frame should be decodable");
            assert_eq!(a.hard_decision, b.hard_decision);
        }
    }

    #[test]
    fn state_resets_between_frames() {
        let code = demo_code();
        let mut dec = QcLayeredDecoder::new(code.clone(), 1.25);
        let mut rng = StdRng::seed_from_u64(35);
        let noisy: Vec<f32> = (0..code.n()).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let _ = dec.decode(&noisy, 5);
        let out = dec.decode(&vec![5.0; code.n()], 5);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn rejects_codes_without_qc_structure() {
        // Row 1 is not the +1 cyclic shift of row 0, so no L works.
        let h = SparseMatrix::from_rows(3, vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        let code = LdpcCode::from_parity_check("unstructured", h).unwrap();
        assert!(QcLayeredDecoder::try_new(code, 4.0 / 3.0).is_none());
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_alpha_below_one() {
        QcLayeredDecoder::new(demo_code(), 0.9);
    }
}
