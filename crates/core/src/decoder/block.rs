//! The object-safe front door every decoder family drives through.
//!
//! Historically the workspace grew four incompatible ways to run a
//! decoder: the per-frame [`Decoder`] trait, the lockstep [`BatchDecoder`]
//! trait, the bit-sliced hard-decision decoder behind `BatchDecoder`, and
//! ad-hoc hard-bit entry points. [`BlockDecoder`] collapses them: one
//! object-safe trait that decodes a contiguous run of LLR frames, with
//! adapters ([`PerFrame`], [`Batched`]) so every existing decoder drives
//! through it unchanged. Hard-decision decoders take the same LLR input —
//! their sign front end (`llr < 0` ⇒ bit 1) is built into their `decode`
//! implementations — so they are no longer a separate universe.
//!
//! The Monte-Carlo engine in `ldpc-sim`, the conformance suite, and the
//! throughput benches all consume this trait; a decoder registered in
//! [`DecoderSpec`](crate::DecoderSpec) is automatically usable by all of
//! them.

use crate::decoder::{decode_frames, BatchDecoder, DecodeResult, Decoder};

/// A decoder driven block-of-frames at a time.
///
/// `decode_block` accepts any positive number of back-to-back frames
/// (frame `f` occupies `llrs[f*n .. (f+1)*n]`) and returns one
/// [`DecodeResult`] per frame in input order.
/// [`block_frames`](BlockDecoder::block_frames) is the *preferred* claim
/// granularity —
/// how many frames a driver should hand over per call to hit the
/// decoder's fast path (1 for scalar decoders, the batch capacity for
/// lockstep decoders, 64 for the bit-sliced decoder) — but callers may
/// pass more or fewer and implementations must chunk internally.
///
/// The trait is object safe: registries and services hold
/// `Box<dyn BlockDecoder>` without knowing the family.
pub trait BlockDecoder {
    /// Decodes `llrs.len() / n()` back-to-back frames.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is not a positive multiple of [`n`](Self::n).
    fn decode_block(&mut self, llrs: &[f32], max_iterations: u32) -> Vec<DecodeResult>;

    /// Preferred frames per `decode_block` call (claim granularity).
    fn block_frames(&self) -> usize;

    /// Code length n expected for each frame.
    fn n(&self) -> usize;

    /// Human-readable name, including distinguishing parameters.
    fn name(&self) -> String;
}

/// Adapts a per-frame [`Decoder`] to [`BlockDecoder`] (block size 1).
pub struct PerFrame<D: Decoder>(D);

impl<D: Decoder> PerFrame<D> {
    /// Wraps a per-frame decoder.
    pub fn new(decoder: D) -> Self {
        Self(decoder)
    }

    /// The wrapped decoder.
    pub fn inner(&self) -> &D {
        &self.0
    }
}

impl<D: Decoder> BlockDecoder for PerFrame<D> {
    fn decode_block(&mut self, llrs: &[f32], max_iterations: u32) -> Vec<DecodeResult> {
        decode_frames(&mut self.0, llrs, max_iterations)
    }

    fn block_frames(&self) -> usize {
        1
    }

    fn n(&self) -> usize {
        self.0.n()
    }

    fn name(&self) -> String {
        self.0.name()
    }
}

/// Adapts a lockstep [`BatchDecoder`] to [`BlockDecoder`] (block size =
/// batch capacity; longer inputs are chunked capacity frames at a time).
pub struct Batched<D: BatchDecoder>(D);

impl<D: BatchDecoder> Batched<D> {
    /// Wraps a batch decoder.
    pub fn new(decoder: D) -> Self {
        Self(decoder)
    }

    /// The wrapped decoder.
    pub fn inner(&self) -> &D {
        &self.0
    }
}

impl<D: BatchDecoder> BlockDecoder for Batched<D> {
    fn decode_block(&mut self, llrs: &[f32], max_iterations: u32) -> Vec<DecodeResult> {
        let n = self.0.n();
        assert!(
            !llrs.is_empty() && llrs.len().is_multiple_of(n),
            "LLR length must be a positive multiple of the code length"
        );
        llrs.chunks(self.0.capacity() * n)
            .flat_map(|chunk| self.0.decode_batch(chunk, max_iterations))
            .collect()
    }

    fn block_frames(&self) -> usize {
        self.0.capacity()
    }

    fn n(&self) -> usize {
        self.0.n()
    }

    fn name(&self) -> String {
        self.0.name()
    }
}

impl BlockDecoder for Box<dyn BlockDecoder> {
    fn decode_block(&mut self, llrs: &[f32], max_iterations: u32) -> Vec<DecodeResult> {
        (**self).decode_block(llrs, max_iterations)
    }

    fn block_frames(&self) -> usize {
        (**self).block_frames()
    }

    fn n(&self) -> usize {
        (**self).n()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;
    use crate::{
        BatchMinSumDecoder, BitsliceGallagerBDecoder, GallagerBDecoder, MinSumConfig, MinSumDecoder,
    };

    #[test]
    fn per_frame_adapter_matches_direct_decoding() {
        let code = demo_code();
        let llrs: Vec<f32> = (0..3 * code.n())
            .map(|i| if i % 17 == 0 { -1.5 } else { 2.5 })
            .collect();
        let mut direct = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.25));
        let want = decode_frames(&mut direct, &llrs, 20);
        let mut adapted = PerFrame::new(MinSumDecoder::new(code, MinSumConfig::normalized(1.25)));
        assert_eq!(adapted.block_frames(), 1);
        assert_eq!(adapted.decode_block(&llrs, 20), want);
    }

    #[test]
    fn batched_adapter_chunks_oversized_inputs() {
        let code = demo_code();
        // 10 frames through a capacity-4 decoder: chunks of 4, 4, 2.
        let llrs: Vec<f32> = (0..10 * code.n())
            .map(|i| if i % 13 == 0 { -1.0 } else { 3.0 })
            .collect();
        let mut per_frame = PerFrame::new(MinSumDecoder::new(
            code.clone(),
            MinSumConfig::normalized(1.25),
        ));
        let want = per_frame.decode_block(&llrs, 20);
        let mut batched = Batched::new(BatchMinSumDecoder::new(
            code,
            MinSumConfig::normalized(1.25),
            4,
        ));
        assert_eq!(batched.block_frames(), 4);
        assert_eq!(batched.decode_block(&llrs, 20), want);
    }

    #[test]
    fn hard_decision_decoders_share_the_llr_front_door() {
        // Gallager-B consumes the same LLR frames as the soft decoders:
        // the sign front end is inside the decoder, not a separate API.
        let code = demo_code();
        let mut llrs = vec![3.0_f32; 2 * code.n()];
        llrs[17] = -3.0;
        let mut scalar: Box<dyn BlockDecoder> =
            Box::new(PerFrame::new(GallagerBDecoder::new(code.clone(), 3)));
        let mut sliced: Box<dyn BlockDecoder> =
            Box::new(Batched::new(BitsliceGallagerBDecoder::new(code, 3)));
        let want = scalar.decode_block(&llrs, 20);
        assert!(want.iter().all(|r| r.converged));
        assert_eq!(sliced.decode_block(&llrs, 20), want);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn batched_adapter_rejects_ragged_input() {
        let code = demo_code();
        let mut dec = Batched::new(BatchMinSumDecoder::new(code, MinSumConfig::plain(), 4));
        dec.decode_block(&[0.0; 5], 1);
    }
}
