//! Floating-point sum-product (belief propagation) decoder.

use crate::decoder::{DecodeResult, Decoder};
use crate::LdpcCode;
use gf2::BitVec;
use std::sync::Arc;

/// Magnitude clamp applied to messages before the tanh transform, keeping
/// `atanh` away from its singularities.
const LLR_CLAMP: f32 = 25.0;
/// Clamp on tanh products before `atanh`.
const TANH_CLAMP: f32 = 1.0 - 1e-7;

/// The reference sum-product ("belief propagation") decoder of the paper's
/// §2.1, with the exact tanh check-node rule.
///
/// This is the error-rate reference that the min-sum approximations are
/// normalized against (§5). It is the slowest but most accurate decoder.
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::{Decoder, SumProductDecoder};
///
/// let code = demo_code();
/// let mut dec = SumProductDecoder::new(code.clone());
/// let out = dec.decode(&vec![3.0; code.n()], 10);
/// assert!(out.converged);
/// ```
pub struct SumProductDecoder {
    code: Arc<LdpcCode>,
    /// Bit→check messages, edge-indexed (check-grouped order).
    bc: Vec<f32>,
    /// Check→bit messages, edge-indexed.
    cb: Vec<f32>,
    /// Per-check scratch: tanh of incoming messages.
    tanh_buf: Vec<f32>,
    /// Per-check scratch: suffix products.
    suffix_buf: Vec<f32>,
    hard: Vec<u8>,
    early_stop: bool,
}

impl SumProductDecoder {
    /// Creates a decoder for the given code with early termination enabled.
    pub fn new(code: Arc<LdpcCode>) -> Self {
        let edges = code.graph().n_edges();
        let max_deg = code.graph().max_cn_degree();
        let n = code.n();
        Self {
            code,
            bc: vec![0.0; edges],
            cb: vec![0.0; edges],
            tanh_buf: vec![0.0; max_deg],
            suffix_buf: vec![0.0; max_deg + 1],
            hard: vec![0; n],
            early_stop: true,
        }
    }

    /// Disables (or re-enables) the zero-syndrome early stop, forcing the
    /// full iteration count as fixed-latency hardware would.
    pub fn with_early_stop(mut self, early_stop: bool) -> Self {
        self.early_stop = early_stop;
        self
    }

    /// The code this decoder operates on.
    pub fn code(&self) -> &Arc<LdpcCode> {
        &self.code
    }

    fn cn_phase(&mut self) {
        let code = self.code.clone();
        let graph = code.graph();
        for m in 0..graph.n_checks() {
            let range = graph.cn_edge_range(m);
            let deg = range.len();
            // tanh of each incoming message (clamped for stability).
            for (i, e) in range.clone().enumerate() {
                let x = self.bc[e].clamp(-LLR_CLAMP, LLR_CLAMP);
                self.tanh_buf[i] = (x * 0.5).tanh();
            }
            // Suffix products: suffix[i] = prod_{j >= i} tanh[j].
            self.suffix_buf[deg] = 1.0;
            for i in (0..deg).rev() {
                self.suffix_buf[i] = self.suffix_buf[i + 1] * self.tanh_buf[i];
            }
            // Forward sweep with running prefix.
            let mut prefix = 1.0f32;
            for (i, e) in range.enumerate() {
                let prod = (prefix * self.suffix_buf[i + 1]).clamp(-TANH_CLAMP, TANH_CLAMP);
                self.cb[e] = 2.0 * atanh(prod);
                prefix *= self.tanh_buf[i];
            }
        }
    }

    #[allow(clippy::needless_range_loop)] // n indexes llrs, hard, and the graph in lockstep
    fn bn_phase(&mut self, llrs: &[f32]) {
        let code = self.code.clone();
        let graph = code.graph();
        for n in 0..graph.n_bits() {
            let edges = graph.bn_edge_ids(n);
            let mut total = llrs[n];
            for &e in edges {
                total += self.cb[e as usize];
            }
            for &e in edges {
                self.bc[e as usize] = (total - self.cb[e as usize]).clamp(-LLR_CLAMP, LLR_CLAMP);
            }
            self.hard[n] = u8::from(total < 0.0);
        }
    }
}

/// Numerically-guarded inverse hyperbolic tangent.
fn atanh(x: f32) -> f32 {
    0.5 * ((1.0 + x) / (1.0 - x)).ln()
}

impl Decoder for SumProductDecoder {
    fn decode(&mut self, channel_llrs: &[f32], max_iterations: u32) -> DecodeResult {
        let code = self.code.clone();
        let graph = code.graph();
        assert_eq!(
            channel_llrs.len(),
            graph.n_bits(),
            "channel LLR length mismatch"
        );
        // Initial bit→check messages carry the channel values.
        for e in 0..graph.n_edges() {
            self.bc[e] = channel_llrs[graph.edge_bit(e)].clamp(-LLR_CLAMP, LLR_CLAMP);
        }
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..max_iterations {
            self.cn_phase();
            self.bn_phase(channel_llrs);
            iterations += 1;
            if graph.syndrome_ok(&self.hard) {
                converged = true;
                if self.early_stop {
                    break;
                }
            } else {
                converged = false;
            }
        }
        DecodeResult {
            hard_decision: BitVec::from_bits(&self.hard),
            iterations,
            converged,
        }
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        "sum-product".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;

    #[test]
    fn atanh_inverts_tanh() {
        for x in [-3.0f32, -0.5, 0.0, 0.5, 3.0] {
            assert!((atanh(x.tanh()) - x).abs() < 1e-4, "x = {x}");
        }
    }

    #[test]
    fn strong_llrs_converge_in_one_iteration() {
        let code = demo_code();
        let mut dec = SumProductDecoder::new(code.clone());
        let out = dec.decode(&vec![8.0; code.n()], 5);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn without_early_stop_runs_all_iterations() {
        let code = demo_code();
        let mut dec = SumProductDecoder::new(code.clone()).with_early_stop(false);
        let out = dec.decode(&vec![8.0; code.n()], 7);
        assert_eq!(out.iterations, 7);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn repeated_decoding_reuses_state_correctly() {
        let code = demo_code();
        let mut dec = SumProductDecoder::new(code.clone());
        let llrs_bad: Vec<f32> = (0..code.n())
            .map(|i| if i % 3 == 0 { -1.0 } else { 2.0 })
            .collect();
        let _ = dec.decode(&llrs_bad, 3);
        // A clean frame right after must decode perfectly (no state leak).
        let out = dec.decode(&vec![6.0; code.n()], 5);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn extreme_llrs_do_not_produce_nan() {
        let code = demo_code();
        let mut dec = SumProductDecoder::new(code.clone());
        let llrs: Vec<f32> = (0..code.n())
            .map(|i| if i % 2 == 0 { 1e9 } else { -1e9 })
            .collect();
        let out = dec.decode(&llrs, 5);
        // Whatever the outcome, the decoder must remain finite/deterministic.
        assert_eq!(out.hard_decision.len(), code.n());
    }
}
