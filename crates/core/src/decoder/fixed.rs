//! Bit-accurate fixed-point normalized min-sum decoder — the software
//! reference of the paper's FPGA datapath.

use crate::decoder::kernels::{bn_output, bn_posterior, cn_scan, Scaling};
use crate::decoder::{DecodeResult, Decoder};
use crate::{LdpcCode, LlrQuantizer};
use gf2::BitVec;
use std::sync::Arc;

/// Quantization and scaling parameters of the fixed-point datapath.
///
/// Defaults match the architecture sized in DESIGN.md §9.4: 6-bit
/// edge messages, 5-bit channel LLRs at 0.5 LLR per level, and the ×0.75
/// shift-add normalization (α = 4/3) of the paper's §5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedConfig {
    /// Edge-message width in bits (including sign).
    pub q_msg: u32,
    /// Channel-LLR width in bits (including sign).
    pub q_ch: u32,
    /// Channel quantizer step (LLR per least-significant bit).
    pub ch_step: f32,
    /// Check-node magnitude normalization (shift-add factor).
    pub scaling: Scaling,
    /// Stop at zero syndrome (software); disable for fixed-latency
    /// hardware emulation.
    pub early_stop: bool,
}

impl Default for FixedConfig {
    fn default() -> Self {
        Self {
            q_msg: 6,
            q_ch: 5,
            ch_step: 0.5,
            scaling: Scaling::ThreeQuarters,
            early_stop: true,
        }
    }
}

impl FixedConfig {
    /// Config with a different message width.
    ///
    /// # Panics
    ///
    /// Panics if `q_msg` is outside `2..=15`.
    pub fn with_q_msg(mut self, q_msg: u32) -> Self {
        assert!((2..=15).contains(&q_msg), "message width must be in 2..=15");
        self.q_msg = q_msg;
        self
    }

    /// Config with a different channel width.
    ///
    /// # Panics
    ///
    /// Panics if `q_ch` is outside `2..=15`.
    pub fn with_q_ch(mut self, q_ch: u32) -> Self {
        assert!((2..=15).contains(&q_ch), "channel width must be in 2..=15");
        self.q_ch = q_ch;
        self
    }

    /// Config with a different scaling factor.
    pub fn with_scaling(mut self, scaling: Scaling) -> Self {
        self.scaling = scaling;
        self
    }

    /// Config with early termination enabled or disabled.
    pub fn with_early_stop(mut self, early_stop: bool) -> Self {
        self.early_stop = early_stop;
        self
    }

    /// Largest representable message magnitude.
    pub fn msg_max(&self) -> i16 {
        ((1i32 << (self.q_msg - 1)) - 1) as i16
    }

    /// The channel quantizer implied by this configuration.
    pub fn channel_quantizer(&self) -> LlrQuantizer {
        LlrQuantizer::new(self.q_ch, self.ch_step)
    }
}

/// Per-iteration observability record of a traced fixed-point decode.
///
/// These are the quantities a hardware validation bench would tap:
/// syndrome weight (unsatisfied checks), decision churn, and datapath
/// saturation pressure, per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStats {
    /// Number of unsatisfied parity checks after this iteration.
    pub unsatisfied_checks: usize,
    /// Hard-decision bits that changed relative to the previous iteration.
    pub bit_flips: usize,
    /// Fraction of bit-to-check messages pinned at the saturation rails.
    pub saturated_fraction: f64,
}

/// Full trace of a fixed-point decode (see
/// [`FixedDecoder::decode_quantized_traced`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecodeTrace {
    /// One entry per executed iteration.
    pub iterations: Vec<IterationStats>,
}

impl DecodeTrace {
    /// Iteration index (1-based) at which the syndrome first became zero,
    /// if it ever did.
    pub fn first_zero_syndrome(&self) -> Option<usize> {
        self.iterations
            .iter()
            .position(|s| s.unsatisfied_checks == 0)
            .map(|i| i + 1)
    }

    /// `true` if the syndrome weight never increased from one iteration to
    /// the next (monotone convergence).
    pub fn syndrome_monotone(&self) -> bool {
        self.iterations
            .windows(2)
            .all(|w| w[1].unsatisfied_checks <= w[0].unsatisfied_checks)
    }

    /// Largest observed saturation fraction.
    pub fn peak_saturation(&self) -> f64 {
        self.iterations
            .iter()
            .map(|s| s.saturated_fraction)
            .fold(0.0, f64::max)
    }
}

/// Fixed-point normalized min-sum decoder.
///
/// Every arithmetic operation goes through the shared kernels in
/// [`crate::decoder::kernels`], which the `ldpc-hwsim` architecture
/// simulator also drives cycle by cycle — the two produce **bit-identical**
/// message streams and hard decisions (verified by integration tests).
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::{Decoder, FixedConfig, FixedDecoder};
///
/// let code = demo_code();
/// let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default());
/// let out = dec.decode(&vec![3.0; code.n()], 18);
/// assert!(out.converged);
/// ```
pub struct FixedDecoder {
    code: Arc<LdpcCode>,
    config: FixedConfig,
    quantizer: LlrQuantizer,
    /// Bit→check messages (edge-indexed, check-grouped).
    bc: Vec<i16>,
    /// Check→bit messages.
    cb: Vec<i16>,
    /// Quantized channel LLRs of the current frame.
    channel: Vec<i16>,
    hard: Vec<u8>,
}

impl FixedDecoder {
    /// Creates a decoder for the given code and datapath configuration.
    pub fn new(code: Arc<LdpcCode>, config: FixedConfig) -> Self {
        let edges = code.graph().n_edges();
        let n = code.n();
        Self {
            quantizer: config.channel_quantizer(),
            code,
            config,
            bc: vec![0; edges],
            cb: vec![0; edges],
            channel: vec![0; n],
            hard: vec![0; n],
        }
    }

    /// The datapath configuration.
    pub fn config(&self) -> &FixedConfig {
        &self.config
    }

    /// The code this decoder operates on.
    pub fn code(&self) -> &Arc<LdpcCode> {
        &self.code
    }

    /// Decodes a frame of already-quantized channel LLRs (hardware input).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the code length, or if any value
    /// exceeds the channel quantizer range.
    pub fn decode_quantized(&mut self, channel: &[i16], max_iterations: u32) -> DecodeResult {
        let code = self.code.clone();
        let graph = code.graph();
        assert_eq!(channel.len(), graph.n_bits(), "channel length mismatch");
        let ch_max = self.quantizer.max_level();
        assert!(
            channel.iter().all(|&c| (-ch_max..=ch_max).contains(&c)),
            "channel value outside quantizer range"
        );
        self.channel.copy_from_slice(channel);
        let msg_max = self.config.msg_max();
        // Initial bit→check messages = channel values, saturated to the
        // message width.
        for e in 0..graph.n_edges() {
            self.bc[e] = crate::decoder::kernels::saturate(
                i32::from(self.channel[graph.edge_bit(e)]),
                msg_max,
            );
        }
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..max_iterations {
            self.cn_phase();
            self.bn_phase();
            iterations += 1;
            if graph.syndrome_ok(&self.hard) {
                converged = true;
                if self.config.early_stop {
                    break;
                }
            } else {
                converged = false;
            }
        }
        DecodeResult {
            hard_decision: BitVec::from_bits(&self.hard),
            iterations,
            converged,
        }
    }

    /// Like [`decode_quantized`](Self::decode_quantized) but additionally
    /// records per-iteration observability statistics. The decode result
    /// is identical to the untraced path (the trace is pure observation).
    ///
    /// Tracing disables early termination so the full trajectory is
    /// visible; `converged` still reports the final syndrome state.
    ///
    /// # Panics
    ///
    /// Same conditions as [`decode_quantized`](Self::decode_quantized).
    pub fn decode_quantized_traced(
        &mut self,
        channel: &[i16],
        max_iterations: u32,
    ) -> (DecodeResult, DecodeTrace) {
        let code = self.code.clone();
        let graph = code.graph();
        assert_eq!(channel.len(), graph.n_bits(), "channel length mismatch");
        let ch_max = self.quantizer.max_level();
        assert!(
            channel.iter().all(|&c| (-ch_max..=ch_max).contains(&c)),
            "channel value outside quantizer range"
        );
        self.channel.copy_from_slice(channel);
        let msg_max = self.config.msg_max();
        for e in 0..graph.n_edges() {
            self.bc[e] = crate::decoder::kernels::saturate(
                i32::from(self.channel[graph.edge_bit(e)]),
                msg_max,
            );
        }
        let mut trace = DecodeTrace::default();
        let mut prev_hard = vec![0u8; graph.n_bits()];
        let mut iterations = 0;
        for _ in 0..max_iterations {
            self.cn_phase();
            self.bn_phase();
            iterations += 1;
            let unsatisfied_checks = (0..graph.n_checks())
                .filter(|&m| {
                    let mut parity = 0u8;
                    for &bn in graph.cn_bits(m) {
                        parity ^= self.hard[bn as usize];
                    }
                    parity != 0
                })
                .count();
            let bit_flips = self
                .hard
                .iter()
                .zip(&prev_hard)
                .filter(|(a, b)| a != b)
                .count();
            prev_hard.copy_from_slice(&self.hard);
            let saturated = self
                .bc
                .iter()
                .filter(|&&m| m == msg_max || m == -msg_max)
                .count();
            trace.iterations.push(IterationStats {
                unsatisfied_checks,
                bit_flips,
                saturated_fraction: saturated as f64 / self.bc.len() as f64,
            });
        }
        let converged = graph.syndrome_ok(&self.hard);
        (
            DecodeResult {
                hard_decision: BitVec::from_bits(&self.hard),
                iterations,
                converged,
            },
            trace,
        )
    }

    fn cn_phase(&mut self) {
        let code = self.code.clone();
        let graph = code.graph();
        for m in 0..graph.n_checks() {
            let range = graph.cn_edge_range(m);
            let state = cn_scan(&self.bc[range.clone()]);
            for (idx, e) in range.enumerate() {
                self.cb[e] = state.output(idx as u32, self.config.scaling);
            }
        }
    }

    fn bn_phase(&mut self) {
        let code = self.code.clone();
        let graph = code.graph();
        let msg_max = self.config.msg_max();
        for n in 0..graph.n_bits() {
            let edges = graph.bn_edge_ids(n);
            let mut total: i32 = 0;
            for &e in edges {
                total += i32::from(self.cb[e as usize]);
            }
            let ch = self.channel[n];
            for &e in edges {
                self.bc[e as usize] = bn_output(ch, total, self.cb[e as usize], msg_max);
            }
            let posterior = bn_posterior(ch, total, i16::MAX);
            self.hard[n] = u8::from(posterior < 0);
        }
    }
}

impl Decoder for FixedDecoder {
    fn decode(&mut self, channel_llrs: &[f32], max_iterations: u32) -> DecodeResult {
        assert_eq!(
            channel_llrs.len(),
            self.code.n(),
            "channel LLR length mismatch"
        );
        let quantized = self.quantizer.quantize_slice(channel_llrs);
        self.decode_quantized(&quantized, max_iterations)
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        format!(
            "fixed-point normalized min-sum ({}b msg, {}b ch, x{})",
            self.config.q_msg,
            self.config.q_ch,
            self.config.scaling.factor()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;
    use crate::{MinSumConfig, MinSumDecoder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn default_config_matches_design_doc() {
        let cfg = FixedConfig::default();
        assert_eq!(cfg.q_msg, 6);
        assert_eq!(cfg.q_ch, 5);
        assert_eq!(cfg.msg_max(), 31);
        assert_eq!(cfg.channel_quantizer().max_level(), 15);
        assert_eq!(cfg.scaling, Scaling::ThreeQuarters);
    }

    #[test]
    fn decode_quantized_accepts_hardware_range() {
        let code = demo_code();
        let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default());
        let out = dec.decode_quantized(&vec![10i16; code.n()], 10);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    #[should_panic(expected = "quantizer range")]
    fn decode_quantized_rejects_out_of_range() {
        let code = demo_code();
        let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default());
        let mut ch = vec![0i16; code.n()];
        ch[0] = 16; // 5-bit max is 15
        let _ = dec.decode_quantized(&ch, 1);
    }

    #[test]
    fn float_decode_path_quantizes_first() {
        let code = demo_code();
        let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default());
        // 100.0 saturates at level 15 — must behave like decode_quantized.
        let a = dec.decode(&vec![100.0; code.n()], 5);
        let b = dec.decode_quantized(&vec![15i16; code.n()], 5);
        assert_eq!(a, b);
    }

    #[test]
    fn corrects_noisy_frame_like_float_reference() {
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(20);
        // Moderate noise around an all-zero codeword.
        let llrs: Vec<f32> = (0..code.n())
            .map(|_| 2.0 + rng.gen_range(-1.2f32..1.2))
            .collect();
        let mut fixed = FixedDecoder::new(code.clone(), FixedConfig::default());
        let mut float = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0));
        let out_fixed = fixed.decode(&llrs, 30);
        let out_float = float.decode(&llrs, 30);
        assert!(out_fixed.converged);
        assert!(out_float.converged);
        assert_eq!(out_fixed.hard_decision, out_float.hard_decision);
    }

    #[test]
    fn narrower_quantization_still_decodes_clean_frames() {
        let code = demo_code();
        let cfg = FixedConfig::default().with_q_msg(4).with_q_ch(3);
        let mut dec = FixedDecoder::new(code.clone(), cfg);
        let out = dec.decode(&vec![4.0; code.n()], 10);
        assert!(out.converged);
        assert!(out.hard_decision.is_zero());
    }

    #[test]
    fn saturation_keeps_messages_in_range() {
        let code = demo_code();
        let cfg = FixedConfig::default();
        let mut dec = FixedDecoder::new(code.clone(), cfg.with_early_stop(false));
        let mut rng = StdRng::seed_from_u64(21);
        let llrs: Vec<f32> = (0..code.n()).map(|_| rng.gen_range(-20.0..20.0)).collect();
        let _ = dec.decode(&llrs, 8);
        let max = cfg.msg_max();
        assert!(dec.bc.iter().all(|&m| (-max..=max).contains(&m)));
        assert!(dec.cb.iter().all(|&m| (-max..=max).contains(&m)));
    }

    #[test]
    fn deterministic_across_calls() {
        let code = demo_code();
        let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default());
        let mut rng = StdRng::seed_from_u64(22);
        let llrs: Vec<f32> = (0..code.n()).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let a = dec.decode(&llrs, 12);
        let b = dec.decode(&llrs, 12);
        assert_eq!(a, b);
    }
    #[test]
    fn traced_decode_matches_untraced_result() {
        let code = demo_code();
        let cfg = FixedConfig::default().with_early_stop(false);
        let mut dec = FixedDecoder::new(code.clone(), cfg);
        let mut rng = StdRng::seed_from_u64(23);
        let ch: Vec<i16> = (0..code.n()).map(|_| rng.gen_range(-15i16..=15)).collect();
        let plain = dec.decode_quantized(&ch, 10);
        let (traced, trace) = dec.decode_quantized_traced(&ch, 10);
        assert_eq!(plain, traced);
        assert_eq!(trace.iterations.len(), 10);
    }

    #[test]
    fn trace_shows_convergence_on_noisy_frame() {
        let code = demo_code();
        let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default());
        let mut ch = vec![6i16; code.n()];
        ch[10] = -6;
        ch[120] = -6;
        let (out, trace) = dec.decode_quantized_traced(&ch, 12);
        assert!(out.converged);
        let first = trace.first_zero_syndrome().expect("should converge");
        assert!(first <= 12);
        // Once converged, syndrome stays at zero.
        for s in &trace.iterations[first - 1..] {
            assert_eq!(s.unsatisfied_checks, 0);
        }
        assert!(trace.peak_saturation() <= 1.0);
    }

    #[test]
    fn trace_reports_saturation_under_strong_input() {
        let code = demo_code();
        let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default());
        let ch = vec![15i16; code.n()]; // rail-to-rail channel input
        let (_, trace) = dec.decode_quantized_traced(&ch, 3);
        // Messages quickly saturate at the rails under unanimous input.
        assert!(
            trace.peak_saturation() > 0.5,
            "peak {}",
            trace.peak_saturation()
        );
        assert!(trace.syndrome_monotone());
    }
}
