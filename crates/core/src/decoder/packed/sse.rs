//! SSE4.1 mirror of the packed SWAR phases (`simd` cargo feature).
//!
//! Same buffers, same algorithm, same results bit for bit — but the
//! check-node two-minimum scan runs on native byte-lane vector ops
//! (`pabsb`/`pminub`/`pmaxub`/`pblendvb`) and the bit-node accumulator
//! holds all 8 frames' biased sums in one register of eight i16 lanes
//! (`pmovsxbw` widening, `packsswb` narrowing), replacing the multi-op
//! SWAR emulations with single instructions. Selected at runtime via
//! `is_x86_feature_detected!`; any non-SSE4.1 host (or a build without
//! the feature) falls back to the portable kernels.
//!
//! This is the one module in the crate allowed to contain `unsafe`: the
//! call site below is guarded by the runtime feature check, and every
//! intrinsic sits inside a `#[target_feature]` function matching the
//! detected features.

#![allow(unsafe_code)]

use super::{PackedFixedDecoder, MAX_BN_DEGREE};
use crate::decoder::kernels::Scaling;

/// Whether the running CPU supports the mirror's instruction set.
pub(super) fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

impl PackedFixedDecoder {
    /// Runs one check-node + bit-node iteration on the SSE4.1 path.
    /// Returns `false` (having done nothing) when the CPU lacks the
    /// required features, so the caller falls back to portable SWAR.
    pub(super) fn simd_phases(&mut self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            if available() {
                // SAFETY: `available()` just confirmed ssse3 + sse4.1 on
                // the running CPU, which is exactly what the callee's
                // `#[target_feature]` requires.
                unsafe { self.phases_sse() };
                return true;
            }
        }
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// Loads one 8-lane message word into the low half of a vector.
    /// (sse2 is implied by the sse4.1 callers, so calls stay safe.)
    #[inline]
    #[target_feature(enable = "sse2")]
    fn load64(w: u64) -> __m128i {
        _mm_cvtsi64_si128(w as i64)
    }

    /// Stores the low half of a vector back to an 8-lane message word.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn store64(v: __m128i) -> u64 {
        _mm_cvtsi128_si64(v) as u64
    }

    impl PackedFixedDecoder {
        /// One full iteration (cn + bn phases) on 128-bit vectors.
        #[target_feature(enable = "ssse3,sse4.1")]
        pub(in crate::decoder::packed) fn phases_sse(&mut self) {
            self.cn_phase_sse();
            self.bn_phase_sse();
        }

        /// Check-node phase: sign product as the XOR of the raw signed
        /// words (sign bits XOR in place), two-minimum scan as
        /// `min1' = pminub(min1, mag)`,
        /// `min2' = pminub(min2, pmaxub(min1, mag))` — value-identical to
        /// the strict-`<` scalar recurrence (ties keep the earlier
        /// argmin via the strict `pcmpgtb` blend).
        ///
        /// A check's edges are contiguous in the message arrays, so the
        /// scan walks them **two per 128-bit op**: edge `2p` in the low
        /// half, edge `2p+1` in the high half, each half carrying its own
        /// running two-minimum state. The halves merge at the end —
        /// combined `min1 = min(a, b)`,
        /// `min2 = min(max(min1_a, min1_b), min(min2_a, min2_b))`, and on
        /// a `min1` value tie the smaller edge index wins (`pminub` on the
        /// argmin lanes), which reproduces the scalar first-wins rule
        /// because the halves interleave even/odd edge positions.
        #[target_feature(enable = "ssse3,sse4.1")]
        pub(in crate::decoder::packed) fn cn_phase_sse(&mut self) {
            let code = self.code.clone();
            let graph = code.graph();
            let scaling = self.config.scaling;
            let seed = _mm_set1_epi8(0x7F);
            let zero = _mm_setzero_si128();
            // Byte 0 in the low half, 1 in the high half: offsets of the
            // two edges a pair op covers, relative to index `2p`.
            let lane_off = _mm_set_epi64x(0x0101_0101_0101_0101, 0);
            let bc = self.bc.as_ptr();
            let cb = self.cb.as_mut_ptr();
            for m in 0..graph.n_checks() {
                let range = graph.cn_edge_range(m);
                let (start, deg) = (range.start, range.len());
                let pairs = deg / 2;
                let mut sp = zero;
                let mut min1 = seed;
                let mut min2 = seed;
                let mut argmin = zero;
                for p in 0..pairs {
                    // SAFETY: start + 2p + 1 < start + deg <= bc.len(),
                    // so the 128-bit load covers two in-bounds words.
                    let val = unsafe { _mm_loadu_si128(bc.add(start + 2 * p).cast()) };
                    sp = _mm_xor_si128(sp, val);
                    let mag = _mm_abs_epi8(val);
                    let idx = _mm_add_epi8(_mm_set1_epi8((2 * p) as i8), lane_off);
                    // Strict mag < min1; signed compare is safe because
                    // every lane is in 0..=127.
                    let lt1 = _mm_cmpgt_epi8(min1, mag);
                    min2 = _mm_min_epu8(min2, _mm_max_epu8(min1, mag));
                    min1 = _mm_min_epu8(min1, mag);
                    argmin = _mm_blendv_epi8(argmin, idx, lt1);
                }
                // Merge the two half-states (the combined multiset's two
                // smallest values and first-wins argmin; indices are
                // unsigned-comparable since degree <= 127).
                let min1_b = _mm_unpackhi_epi64(min1, min1);
                let min2_b = _mm_unpackhi_epi64(min2, min2);
                let argmin_b = _mm_unpackhi_epi64(argmin, argmin);
                let lt_b = _mm_cmpgt_epi8(min1, min1_b);
                let eq_b = _mm_cmpeq_epi8(min1, min1_b);
                argmin = _mm_blendv_epi8(argmin, argmin_b, lt_b);
                argmin = _mm_blendv_epi8(argmin, _mm_min_epu8(argmin, argmin_b), eq_b);
                min2 = _mm_min_epu8(_mm_max_epu8(min1, min1_b), _mm_min_epu8(min2, min2_b));
                min1 = _mm_min_epu8(min1, min1_b);
                if deg % 2 == 1 {
                    // Odd tail: absorb the last edge in the low half.
                    let val = load64(self.bc[start + deg - 1]);
                    sp = _mm_xor_si128(sp, val);
                    let mag = _mm_abs_epi8(val);
                    let lt1 = _mm_cmpgt_epi8(min1, mag);
                    min2 = _mm_min_epu8(min2, _mm_max_epu8(min1, mag));
                    min1 = _mm_min_epu8(min1, mag);
                    argmin = _mm_blendv_epi8(argmin, _mm_set1_epi8((deg - 1) as i8), lt1);
                }
                // Broadcast the folded low-half state to both halves for
                // the paired output pass. sp folds by XOR of its halves.
                sp = _mm_xor_si128(sp, _mm_unpackhi_epi64(sp, sp));
                sp = _mm_unpacklo_epi64(sp, sp);
                argmin = _mm_unpacklo_epi64(argmin, argmin);
                let s1 = scale_sse(_mm_unpacklo_epi64(min1, min1), scaling);
                let s2 = scale_sse(_mm_unpacklo_epi64(min2, min2), scaling);
                for p in 0..pairs {
                    let e = start + 2 * p;
                    // SAFETY: same in-bounds pair as the scan above.
                    let val = unsafe { _mm_loadu_si128(bc.add(e).cast()) };
                    let idx = _mm_add_epi8(_mm_set1_epi8((2 * p) as i8), lane_off);
                    let eq = _mm_cmpeq_epi8(argmin, idx);
                    let mag = _mm_blendv_epi8(s1, s2, eq);
                    // Output sign mask = sign bits of (sign product XOR
                    // own sign); re-sign by conditional two's complement.
                    let neg = _mm_cmpgt_epi8(zero, _mm_xor_si128(sp, val));
                    let out = _mm_sub_epi8(_mm_xor_si128(mag, neg), neg);
                    // SAFETY: writes the same two in-bounds words.
                    unsafe { _mm_storeu_si128(cb.add(e).cast(), out) };
                }
                if deg % 2 == 1 {
                    let e = start + deg - 1;
                    let eq = _mm_cmpeq_epi8(argmin, _mm_set1_epi8((deg - 1) as i8));
                    let mag = _mm_blendv_epi8(s1, s2, eq);
                    let neg = _mm_cmpgt_epi8(zero, _mm_xor_si128(sp, load64(self.bc[e])));
                    self.cb[e] = store64(_mm_sub_epi8(_mm_xor_si128(mag, neg), neg));
                }
            }
        }

        /// Bit-node phase: all 8 frames' biased sums in one register of
        /// eight i16 lanes. Each edge's contribution is one sign-extending
        /// widen of the signed message word (`pmovsxbw`), cached so the
        /// exclude-self pass is a single `psubw`; the output clamps to
        /// the signed message range and narrows with `packsswb`.
        #[target_feature(enable = "ssse3,sse4.1")]
        pub(in crate::decoder::packed) fn bn_phase_sse(&mut self) {
            let code = self.code.clone();
            let graph = code.graph();
            let b16 = _mm_set1_epi16(self.bias as i16);
            let m16 = _mm_set1_epi16(self.config.msg_max());
            let neg_m16 = _mm_set1_epi16(-self.config.msg_max());
            let mut contrib = [_mm_setzero_si128(); MAX_BN_DEGREE];
            for n in 0..graph.n_bits() {
                let edges = graph.bn_edge_ids(n);
                // Interleave the even/odd-frame u16 lane words into
                // frame order: [f0 f1 f2 f3 f4 f5 f6 f7]. Lanes stay in
                // 0..=2·bias <= 0x7FFF, so i16 arithmetic is exact.
                let mut t = _mm_unpacklo_epi16(load64(self.chb_even[n]), load64(self.chb_odd[n]));
                for (i, &e) in edges.iter().enumerate() {
                    let c = _mm_cvtepi8_epi16(load64(self.cb[e as usize]));
                    contrib[i] = c;
                    t = _mm_add_epi16(t, c);
                }
                for (i, &e) in edges.iter().enumerate() {
                    let u = _mm_sub_epi16(t, contrib[i]);
                    // Signed extrinsic value = u - bias; saturate to the
                    // message range, then the signed narrow is exact.
                    let v = _mm_sub_epi16(u, b16);
                    let clamped = _mm_max_epi16(_mm_min_epi16(v, m16), neg_m16);
                    self.bc[e as usize] = store64(_mm_packs_epi16(clamped, clamped));
                }
                // Hard decision: posterior < 0 iff biased total < bias.
                let hard = _mm_cmpgt_epi16(b16, t);
                self.hard_mask[n] = store64(_mm_packs_epi16(hard, hard));
            }
        }
    }

    /// [`Scaling::apply`] on byte lanes in `0..=127`: shift the 16-bit
    /// lanes and mask off the bits dragged across byte boundaries.
    #[target_feature(enable = "ssse3,sse4.1")]
    fn scale_sse(mag: __m128i, scaling: Scaling) -> __m128i {
        match scaling {
            Scaling::Unity => mag,
            Scaling::SevenEighths => _mm_sub_epi8(
                mag,
                _mm_and_si128(_mm_srli_epi16(mag, 3), _mm_set1_epi8(0x1F)),
            ),
            Scaling::ThreeQuarters => _mm_sub_epi8(
                mag,
                _mm_and_si128(_mm_srli_epi16(mag, 2), _mm_set1_epi8(0x3F)),
            ),
            Scaling::Half => _mm_and_si128(_mm_srli_epi16(mag, 1), _mm_set1_epi8(0x7F)),
        }
    }
}
