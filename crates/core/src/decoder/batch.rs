//! Frame-batched decoders: `F` frames decoded in lockstep over a
//! frame-major interleaved message memory.
//!
//! The paper's high-speed architecture gets its throughput from packing
//! several frames into each message-memory word (Table 3 packs 8 frames
//! per 42-bit word), so that one memory access feeds one datapath step of
//! every in-flight frame. These decoders are the software mirror of that
//! idea: edge messages of the whole batch live in a single array laid out
//!
//! ```text
//!            edge 0                edge 1                edge 2
//!        ┌─────────────────┬─────────────────┬─────────────────┬──
//!   bc = │ f0 f1 f2 ... fF │ f0 f1 f2 ... fF │ f0 f1 f2 ... fF │ ...
//!        └─────────────────┴─────────────────┴─────────────────┴──
//!          bc[e·F + f] = bit→check message of frame f on edge e
//! ```
//!
//! so each graph index (edge id, check range, bit adjacency) is loaded
//! once and amortized over the whole batch, and the per-frame inner loops
//! run over contiguous memory. Batched decoding is **bit-exact** against
//! the per-frame [`MinSumDecoder`](crate::MinSumDecoder) /
//! [`FixedDecoder`](crate::FixedDecoder): the same kernels
//! and the same operation order are applied to every frame, so the only
//! difference is the memory layout. Frames that converge keep decoding
//! slots but are masked out of the message updates (per-frame early
//! termination), exactly as the hardware would retire a finished frame
//! from its share of the packed word.

use crate::decoder::kernels::{bn_output, bn_posterior, cn_scan, saturate};
use crate::decoder::minsum::{alpha_for_iteration, apply_correction, CnScanF32};
use crate::decoder::{DecodeResult, Decoder, FixedConfig, MinSumConfig};
use crate::{LdpcCode, LlrQuantizer};
use gf2::BitVec;
use std::sync::Arc;

/// A decoder that processes a batch of frames in lockstep.
///
/// Counterpart of the single-frame [`Decoder`] trait. `decode_batch`
/// accepts between 1 and [`capacity`](Self::capacity) frame-contiguous
/// frames per call, so the tail of a frame stream never has to be padded.
pub trait BatchDecoder {
    /// Decodes `llrs.len() / n()` frames stored back to back
    /// (frame `f` occupies `llrs[f*n .. (f+1)*n]`).
    ///
    /// Returns one [`DecodeResult`] per frame, in input order, each
    /// bit-identical to what the corresponding per-frame decoder would
    /// produce on that frame alone.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is not a positive multiple of `n()`, or if
    /// the frame count exceeds `capacity()`.
    fn decode_batch(&mut self, llrs: &[f32], max_iterations: u32) -> Vec<DecodeResult>;

    /// Maximum number of frames per `decode_batch` call.
    fn capacity(&self) -> usize;

    /// Code length n expected for each frame.
    fn n(&self) -> usize;

    /// Human-readable name for reports, including distinguishing
    /// parameters and the batch capacity.
    fn name(&self) -> String;
}

/// Per-batch bookkeeping shared by the batched decoders: which frames are
/// still active, and the result snapshot of frames that already finished.
pub(super) struct BatchState {
    pub(super) active: Vec<bool>,
    /// Indices of the still-active lanes, so masked phases do work
    /// proportional to the number of unfinished frames.
    pub(super) lanes: Vec<u32>,
    pub(super) iterations: Vec<u32>,
    pub(super) converged: Vec<bool>,
}

impl BatchState {
    fn new(frames: usize) -> Self {
        Self {
            active: vec![true; frames],
            lanes: (0..frames as u32).collect(),
            iterations: vec![0; frames],
            converged: vec![false; frames],
        }
    }

    fn n_active(&self) -> usize {
        self.lanes.len()
    }

    /// Marks frame `f` as finished (early-terminated out of the batch).
    fn retire(&mut self, f: usize) {
        if self.active[f] {
            self.active[f] = false;
            self.lanes.retain(|&l| l as usize != f);
        }
    }
}

/// The decoder-specific hooks the shared batch iteration driver needs:
/// run one iteration's phases, expose per-frame hard decisions, and say
/// whether early termination is on.
pub(super) trait BatchPhases {
    /// Runs one check-node + bit-node iteration over the active lanes.
    fn run_phases(&mut self, iter: u32, frames: usize, state: &BatchState);

    /// Called right before [`hard_frame`](Self::hard_frame) is read for
    /// frame `f`, so engines that keep hard decisions in a transposed
    /// layout can materialize just that frame on demand instead of
    /// re-transposing every frame every iteration. Default: no-op.
    fn materialize_hard(&mut self, _f: usize) {}

    /// Hard-decision slice of frame `f` after the last iteration.
    fn hard_frame(&self, f: usize) -> &[u8];

    /// Whether the hard decision of frame `f` satisfies every check.
    fn syndrome_ok_frame(&self, f: usize) -> bool;

    /// Whether converged frames retire from the batch.
    fn early_stop(&self) -> bool;
}

/// Iteration / early-termination / result-snapshot state machine shared
/// by the batched decoders: runs phases until every frame converged (or
/// the budget is spent), retiring each frame the moment its syndrome
/// becomes zero — exactly the per-frame decoders' semantics, frame by
/// frame.
pub(super) fn drive_batch<E: BatchPhases>(
    engine: &mut E,
    frames: usize,
    max_iterations: u32,
) -> Vec<DecodeResult> {
    let mut state = BatchState::new(frames);
    let mut results: Vec<Option<DecodeResult>> = vec![None; frames];
    for iter in 0..max_iterations {
        if state.n_active() == 0 {
            break;
        }
        engine.run_phases(iter, frames, &state);
        // f indexes state, results, and the engine's frame views in
        // lockstep, so a range loop reads clearer than enumerate here.
        #[allow(clippy::needless_range_loop)]
        for f in 0..frames {
            if !state.active[f] {
                continue;
            }
            state.iterations[f] += 1;
            if engine.syndrome_ok_frame(f) {
                state.converged[f] = true;
                if engine.early_stop() {
                    engine.materialize_hard(f);
                    results[f] = Some(DecodeResult {
                        hard_decision: BitVec::from_bits(engine.hard_frame(f)),
                        iterations: state.iterations[f],
                        converged: true,
                    });
                    state.retire(f);
                }
            } else {
                state.converged[f] = false;
            }
        }
    }
    for (f, slot) in results.iter_mut().enumerate() {
        if slot.is_none() {
            engine.materialize_hard(f);
            *slot = Some(DecodeResult {
                hard_decision: BitVec::from_bits(engine.hard_frame(f)),
                iterations: state.iterations[f],
                converged: state.converged[f],
            });
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("filled above"))
        .collect()
}

/// Frame-batched floating-point min-sum decoder, bit-exact against
/// [`MinSumDecoder`](crate::MinSumDecoder) run frame by frame with the same [`MinSumConfig`].
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::{BatchDecoder, BatchMinSumDecoder, MinSumConfig};
///
/// let code = demo_code();
/// let mut dec = BatchMinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.25), 4);
/// // Four noiseless all-zero frames, stored back to back.
/// let llrs = vec![3.0_f32; 4 * code.n()];
/// let out = dec.decode_batch(&llrs, 10);
/// assert_eq!(out.len(), 4);
/// assert!(out.iter().all(|r| r.converged));
/// ```
pub struct BatchMinSumDecoder {
    code: Arc<LdpcCode>,
    config: MinSumConfig,
    capacity: usize,
    /// Bit→check messages, interleaved `bc[e*frames + f]`.
    bc: Vec<f32>,
    /// Check→bit messages, same layout.
    cb: Vec<f32>,
    /// Channel LLRs, interleaved `ch[n*frames + f]`.
    ch: Vec<f32>,
    /// Hard decisions, frame-contiguous `hard[f*n + b]`.
    hard: Vec<u8>,
}

impl BatchMinSumDecoder {
    /// Creates a batched decoder with room for `capacity` frames per call.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(code: Arc<LdpcCode>, config: MinSumConfig, capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        let edges = code.graph().n_edges();
        let n = code.n();
        Self {
            code,
            config,
            capacity,
            bc: vec![0.0; edges * capacity],
            cb: vec![0.0; edges * capacity],
            ch: vec![0.0; n * capacity],
            hard: vec![0; n * capacity],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MinSumConfig {
        &self.config
    }

    /// The code this decoder operates on.
    pub fn code(&self) -> &Arc<LdpcCode> {
        &self.code
    }

    /// Effective α for a 0-based iteration (shared with `MinSumDecoder`).
    fn alpha_for_iteration(&self, iter: usize) -> Option<f32> {
        alpha_for_iteration(&self.config, iter)
    }

    /// Check-node phase with every one of the `F` lanes active: the scan
    /// state lives in stack arrays and the select-based two-minimum update
    /// is branchless, so the frame-inner loops compile to straight-line
    /// vector code. The update is value-identical to the if/else chain of
    /// `MinSumDecoder::cn_phase` (ties keep the earlier argmin in both).
    fn cn_phase_full_lanes<const F: usize>(&mut self, iter: usize) {
        let code = self.code.clone();
        let graph = code.graph();
        let alpha = self.alpha_for_iteration(iter);
        let variant = self.config.variant;
        for m in 0..graph.n_checks() {
            let range = graph.cn_edge_range(m);
            let mut min1 = [f32::INFINITY; F];
            let mut min2 = [f32::INFINITY; F];
            let mut argmin = [range.start as u32; F];
            let mut sign = [0u32; F];
            for e in range.clone() {
                let row: [f32; F] = self.bc[e * F..e * F + F].try_into().expect("row is F wide");
                for f in 0..F {
                    let x = row[f];
                    let mag = x.abs();
                    sign[f] ^= u32::from(x < 0.0);
                    let is_new = mag < min1[f];
                    min2[f] = if is_new { min1[f] } else { min2[f].min(mag) };
                    min1[f] = if is_new { mag } else { min1[f] };
                    argmin[f] = if is_new { e as u32 } else { argmin[f] };
                }
            }
            for e in range {
                let base = e * F;
                let bc_row: [f32; F] = self.bc[base..base + F].try_into().expect("row is F wide");
                let cb_row: &mut [f32; F] = (&mut self.cb[base..base + F])
                    .try_into()
                    .expect("row is F wide");
                for f in 0..F {
                    let mag = if e as u32 == argmin[f] {
                        min2[f]
                    } else {
                        min1[f]
                    };
                    let mag = apply_correction(variant, alpha, mag);
                    let negative = (sign[f] ^ u32::from(bc_row[f] < 0.0)) != 0;
                    cb_row[f] = if negative { -mag } else { mag };
                }
            }
        }
    }

    /// Check-node phase over the still-active lanes only (work scales with
    /// the number of unfinished frames). Each lane runs the exact scalar
    /// scan of `MinSumDecoder::cn_phase`, just with strided addressing.
    fn cn_phase_masked(&mut self, iter: usize, frames: usize, lanes: &[u32]) {
        let code = self.code.clone();
        let graph = code.graph();
        let alpha = self.alpha_for_iteration(iter);
        for m in 0..graph.n_checks() {
            let range = graph.cn_edge_range(m);
            for &lane in lanes {
                let f = lane as usize;
                let mut scan = CnScanF32::new(range.start);
                for e in range.clone() {
                    scan.absorb(e, self.bc[e * frames + f]);
                }
                for e in range.clone() {
                    let mag = apply_correction(self.config.variant, alpha, scan.magnitude(e));
                    let negative = scan.sign_product ^ (self.bc[e * frames + f] < 0.0);
                    self.cb[e * frames + f] = if negative { -mag } else { mag };
                }
            }
        }
    }

    /// Bit-node phase with every one of the `F` lanes active.
    fn bn_phase_full_lanes<const F: usize>(&mut self) {
        let code = self.code.clone();
        let graph = code.graph();
        let n_bits = graph.n_bits();
        for n in 0..n_bits {
            let edges = graph.bn_edge_ids(n);
            let mut total: [f32; F] = self.ch[n * F..n * F + F].try_into().expect("row is F wide");
            for &e in edges {
                let base = e as usize * F;
                let row: [f32; F] = self.cb[base..base + F].try_into().expect("row is F wide");
                for f in 0..F {
                    total[f] += row[f];
                }
            }
            for &e in edges {
                let base = e as usize * F;
                let cb_row: [f32; F] = self.cb[base..base + F].try_into().expect("row is F wide");
                let bc_row: &mut [f32; F] = (&mut self.bc[base..base + F])
                    .try_into()
                    .expect("row is F wide");
                for f in 0..F {
                    bc_row[f] = total[f] - cb_row[f];
                }
            }
            for (f, &t) in total.iter().enumerate() {
                self.hard[f * n_bits + n] = u8::from(t < 0.0);
            }
        }
    }

    /// Bit-node phase over the still-active lanes only.
    fn bn_phase_masked(&mut self, frames: usize, lanes: &[u32]) {
        let code = self.code.clone();
        let graph = code.graph();
        let n_bits = graph.n_bits();
        for n in 0..n_bits {
            let edges = graph.bn_edge_ids(n);
            for &lane in lanes {
                let f = lane as usize;
                let mut total = self.ch[n * frames + f];
                for &e in edges {
                    total += self.cb[e as usize * frames + f];
                }
                for &e in edges {
                    let base = e as usize * frames;
                    self.bc[base + f] = total - self.cb[base + f];
                }
                self.hard[f * n_bits + n] = u8::from(total < 0.0);
            }
        }
    }

    /// One lockstep iteration with every lane active.
    fn phases_full<const F: usize>(&mut self, iter: u32) {
        self.cn_phase_full_lanes::<F>(iter as usize);
        self.bn_phase_full_lanes::<F>();
    }

    /// One iteration over the still-active lanes only.
    fn phases_masked(&mut self, iter: u32, frames: usize, lanes: &[u32]) {
        self.cn_phase_masked(iter as usize, frames, lanes);
        self.bn_phase_masked(frames, lanes);
    }
}

impl BatchPhases for BatchMinSumDecoder {
    fn run_phases(&mut self, iter: u32, frames: usize, state: &BatchState) {
        // Lockstep fast path for common batch widths; lane-masked
        // fallback for odd widths and once frames start retiring.
        match frames {
            _ if state.n_active() < frames => self.phases_masked(iter, frames, &state.lanes),
            2 => self.phases_full::<2>(iter),
            4 => self.phases_full::<4>(iter),
            8 => self.phases_full::<8>(iter),
            16 => self.phases_full::<16>(iter),
            32 => self.phases_full::<32>(iter),
            _ => self.phases_masked(iter, frames, &state.lanes),
        }
    }

    fn hard_frame(&self, f: usize) -> &[u8] {
        let n = self.code.n();
        &self.hard[f * n..(f + 1) * n]
    }

    fn syndrome_ok_frame(&self, f: usize) -> bool {
        self.code.graph().syndrome_ok(self.hard_frame(f))
    }

    fn early_stop(&self) -> bool {
        self.config.early_stop
    }
}

impl BatchDecoder for BatchMinSumDecoder {
    fn decode_batch(&mut self, llrs: &[f32], max_iterations: u32) -> Vec<DecodeResult> {
        let code = self.code.clone();
        let graph = code.graph();
        let n = graph.n_bits();
        assert!(
            !llrs.is_empty() && llrs.len().is_multiple_of(n),
            "LLR length must be a positive multiple of the code length"
        );
        let frames = llrs.len() / n;
        assert!(
            frames <= self.capacity,
            "batch of {frames} frames exceeds capacity {}",
            self.capacity
        );
        // Interleave channel LLRs and initial bit→check messages.
        for (f, frame) in llrs.chunks_exact(n).enumerate() {
            for (b, &llr) in frame.iter().enumerate() {
                self.ch[b * frames + f] = llr;
            }
        }
        for e in 0..graph.n_edges() {
            let b = graph.edge_bit(e);
            self.bc[e * frames..e * frames + frames]
                .copy_from_slice(&self.ch[b * frames..b * frames + frames]);
        }
        drive_batch(self, frames, max_iterations)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        format!(
            "batched {} (batch {})",
            crate::decoder::minsum::variant_name(&self.config),
            self.capacity
        )
    }
}

/// Frame-batched fixed-point normalized min-sum decoder, bit-exact against
/// [`FixedDecoder`](crate::FixedDecoder) run frame by frame with the same [`FixedConfig`].
///
/// Check nodes go through the shared
/// [`cn_scan`](crate::decoder::kernels::cn_scan) /
/// [`Scaling`](crate::decoder::kernels::Scaling) kernels — the same
/// arithmetic the `ldpc-hwsim` simulator executes cycle by cycle — so the
/// batch is the software model of several hardware frames sharing one
/// packed message word.
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::{BatchDecoder, BatchFixedDecoder, FixedConfig};
///
/// let code = demo_code();
/// let mut dec = BatchFixedDecoder::new(code.clone(), FixedConfig::default(), 8);
/// let llrs = vec![3.0_f32; 8 * code.n()];
/// let out = dec.decode_batch(&llrs, 18);
/// assert!(out.iter().all(|r| r.converged));
/// ```
pub struct BatchFixedDecoder {
    code: Arc<LdpcCode>,
    config: FixedConfig,
    quantizer: LlrQuantizer,
    capacity: usize,
    /// Bit→check messages, interleaved `bc[e*frames + f]`.
    bc: Vec<i16>,
    /// Check→bit messages, same layout.
    cb: Vec<i16>,
    /// Quantized channel LLRs, interleaved `ch[n*frames + f]`.
    ch: Vec<i16>,
    /// Hard decisions, frame-contiguous `hard[f*n + b]`.
    hard: Vec<u8>,
    /// Per-check gather buffer (one frame's messages, contiguous) so the
    /// masked path goes through the same `cn_scan` kernel as the
    /// per-frame path.
    scratch: Vec<i16>,
}

impl BatchFixedDecoder {
    /// Creates a batched decoder with room for `capacity` frames per call.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(code: Arc<LdpcCode>, config: FixedConfig, capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        let edges = code.graph().n_edges();
        let n = code.n();
        let max_deg = code.graph().max_cn_degree();
        Self {
            quantizer: config.channel_quantizer(),
            code,
            config,
            capacity,
            bc: vec![0; edges * capacity],
            cb: vec![0; edges * capacity],
            ch: vec![0; n * capacity],
            hard: vec![0; n * capacity],
            scratch: vec![0; max_deg],
        }
    }

    /// The datapath configuration.
    pub fn config(&self) -> &FixedConfig {
        &self.config
    }

    /// The code this decoder operates on.
    pub fn code(&self) -> &Arc<LdpcCode> {
        &self.code
    }

    /// Decodes a batch of already-quantized frames stored back to back
    /// (frame `f` occupies `channel[f*n .. (f+1)*n]`), the hardware input
    /// format. See [`BatchDecoder::decode_batch`] for the result contract.
    ///
    /// # Panics
    ///
    /// Panics if `channel.len()` is not a positive multiple of the code
    /// length, if the frame count exceeds the capacity, or if any value
    /// exceeds the channel quantizer range.
    pub fn decode_quantized_batch(
        &mut self,
        channel: &[i16],
        max_iterations: u32,
    ) -> Vec<DecodeResult> {
        let code = self.code.clone();
        let graph = code.graph();
        let n = graph.n_bits();
        assert!(
            !channel.is_empty() && channel.len().is_multiple_of(n),
            "channel length must be a positive multiple of the code length"
        );
        let frames = channel.len() / n;
        assert!(
            frames <= self.capacity,
            "batch of {frames} frames exceeds capacity {}",
            self.capacity
        );
        let ch_max = self.quantizer.max_level();
        assert!(
            channel.iter().all(|&c| (-ch_max..=ch_max).contains(&c)),
            "channel value outside quantizer range"
        );
        for (f, frame) in channel.chunks_exact(n).enumerate() {
            for (b, &c) in frame.iter().enumerate() {
                self.ch[b * frames + f] = c;
            }
        }
        let msg_max = self.config.msg_max();
        for e in 0..graph.n_edges() {
            let b = graph.edge_bit(e);
            for f in 0..frames {
                self.bc[e * frames + f] = saturate(i32::from(self.ch[b * frames + f]), msg_max);
            }
        }
        drive_batch(self, frames, max_iterations)
    }

    /// Check-node phase with every one of the `F` lanes active: the
    /// vector form of [`CnState`](crate::decoder::kernels::CnState) — the
    /// select-based two-minimum update is value-identical to `absorb`,
    /// and the output rule (min-excluding-self, [`Scaling::apply`], sign
    /// product excluding self) is `output` lane by lane. The scan state
    /// lives in stack arrays of uniform 16-bit lanes so the frame-inner
    /// loops compile to straight-line vector code.
    fn cn_phase_full_lanes<const F: usize>(&mut self) {
        let code = self.code.clone();
        let graph = code.graph();
        let scaling = self.config.scaling;
        for m in 0..graph.n_checks() {
            let range = graph.cn_edge_range(m);
            let mut min1 = [i16::MAX; F];
            let mut min2 = [i16::MAX; F];
            let mut argmin = [0u16; F];
            let mut sign = [0i16; F];
            for (idx, e) in range.clone().enumerate() {
                let row: [i16; F] = self.bc[e * F..e * F + F].try_into().expect("row is F wide");
                for f in 0..F {
                    let x = row[f];
                    let neg = x < 0;
                    let mag = if neg { -x } else { x };
                    sign[f] ^= i16::from(neg);
                    let is_new = mag < min1[f];
                    min2[f] = if is_new { min1[f] } else { min2[f].min(mag) };
                    min1[f] = if is_new { mag } else { min1[f] };
                    argmin[f] = if is_new { idx as u16 } else { argmin[f] };
                }
            }
            for (idx, e) in range.enumerate() {
                let base = e * F;
                let bc_row: [i16; F] = self.bc[base..base + F].try_into().expect("row is F wide");
                let cb_row: &mut [i16; F] = (&mut self.cb[base..base + F])
                    .try_into()
                    .expect("row is F wide");
                for f in 0..F {
                    let mag = if idx as u16 == argmin[f] {
                        min2[f]
                    } else {
                        min1[f]
                    };
                    let mag = scaling.apply(mag);
                    let negative = (sign[f] ^ i16::from(bc_row[f] < 0)) != 0;
                    cb_row[f] = if negative { -mag } else { mag };
                }
            }
        }
    }

    /// Check-node phase over the still-active lanes only: gathers each
    /// lane's messages contiguously and runs the exact per-frame
    /// [`cn_scan`] kernel over them.
    fn cn_phase_masked(&mut self, frames: usize, lanes: &[u32]) {
        let code = self.code.clone();
        let graph = code.graph();
        let scaling = self.config.scaling;
        for m in 0..graph.n_checks() {
            let range = graph.cn_edge_range(m);
            let degree = range.len();
            for &lane in lanes {
                let f = lane as usize;
                for (idx, e) in range.clone().enumerate() {
                    self.scratch[idx] = self.bc[e * frames + f];
                }
                let st = cn_scan(&self.scratch[..degree]);
                for (idx, e) in range.clone().enumerate() {
                    self.cb[e * frames + f] = st.output(idx as u32, scaling);
                }
            }
        }
    }

    /// Bit-node phase with every one of the `F` lanes active.
    fn bn_phase_full_lanes<const F: usize>(&mut self) {
        let code = self.code.clone();
        let graph = code.graph();
        let n_bits = graph.n_bits();
        let msg_max = self.config.msg_max();
        for n in 0..n_bits {
            let edges = graph.bn_edge_ids(n);
            let mut total = [0i32; F];
            for &e in edges {
                let base = e as usize * F;
                let row: [i16; F] = self.cb[base..base + F].try_into().expect("row is F wide");
                for f in 0..F {
                    total[f] += i32::from(row[f]);
                }
            }
            let ch_row: [i16; F] = self.ch[n * F..n * F + F].try_into().expect("row is F wide");
            for &e in edges {
                let base = e as usize * F;
                let cb_row: [i16; F] = self.cb[base..base + F].try_into().expect("row is F wide");
                let bc_row: &mut [i16; F] = (&mut self.bc[base..base + F])
                    .try_into()
                    .expect("row is F wide");
                for f in 0..F {
                    bc_row[f] = bn_output(ch_row[f], total[f], cb_row[f], msg_max);
                }
            }
            for f in 0..F {
                let posterior = bn_posterior(ch_row[f], total[f], i16::MAX);
                self.hard[f * n_bits + n] = u8::from(posterior < 0);
            }
        }
    }

    /// Bit-node phase over the still-active lanes only.
    fn bn_phase_masked(&mut self, frames: usize, lanes: &[u32]) {
        let code = self.code.clone();
        let graph = code.graph();
        let n_bits = graph.n_bits();
        let msg_max = self.config.msg_max();
        for n in 0..n_bits {
            let edges = graph.bn_edge_ids(n);
            for &lane in lanes {
                let f = lane as usize;
                let mut total: i32 = 0;
                for &e in edges {
                    total += i32::from(self.cb[e as usize * frames + f]);
                }
                let ch = self.ch[n * frames + f];
                for &e in edges {
                    let base = e as usize * frames;
                    self.bc[base + f] = bn_output(ch, total, self.cb[base + f], msg_max);
                }
                let posterior = bn_posterior(ch, total, i16::MAX);
                self.hard[f * n_bits + n] = u8::from(posterior < 0);
            }
        }
    }

    /// One lockstep iteration with every lane active.
    fn phases_full<const F: usize>(&mut self) {
        self.cn_phase_full_lanes::<F>();
        self.bn_phase_full_lanes::<F>();
    }

    /// One iteration over the still-active lanes only.
    fn phases_masked(&mut self, frames: usize, lanes: &[u32]) {
        self.cn_phase_masked(frames, lanes);
        self.bn_phase_masked(frames, lanes);
    }
}

impl BatchPhases for BatchFixedDecoder {
    fn run_phases(&mut self, _iter: u32, frames: usize, state: &BatchState) {
        // Lockstep fast path for common batch widths; lane-masked
        // fallback for odd widths and once frames start retiring.
        match frames {
            _ if state.n_active() < frames => self.phases_masked(frames, &state.lanes),
            2 => self.phases_full::<2>(),
            4 => self.phases_full::<4>(),
            8 => self.phases_full::<8>(),
            16 => self.phases_full::<16>(),
            32 => self.phases_full::<32>(),
            _ => self.phases_masked(frames, &state.lanes),
        }
    }

    fn hard_frame(&self, f: usize) -> &[u8] {
        let n = self.code.n();
        &self.hard[f * n..(f + 1) * n]
    }

    fn syndrome_ok_frame(&self, f: usize) -> bool {
        self.code.graph().syndrome_ok(self.hard_frame(f))
    }

    fn early_stop(&self) -> bool {
        self.config.early_stop
    }
}

impl BatchDecoder for BatchFixedDecoder {
    fn decode_batch(&mut self, llrs: &[f32], max_iterations: u32) -> Vec<DecodeResult> {
        let n = self.code.n();
        assert!(
            !llrs.is_empty() && llrs.len().is_multiple_of(n),
            "LLR length must be a positive multiple of the code length"
        );
        let quantized = self.quantizer.quantize_slice(llrs);
        self.decode_quantized_batch(&quantized, max_iterations)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn n(&self) -> usize {
        self.code.n()
    }

    fn name(&self) -> String {
        format!(
            "batched fixed-point normalized min-sum (batch {})",
            self.capacity
        )
    }
}

/// Decodes frames one at a time through a per-frame [`Decoder`], returning
/// one result per frame — the reference the batched decoders must match
/// bit for bit, and the baseline of the `batch_throughput` benchmark.
///
/// # Panics
///
/// Panics if `llrs.len()` is not a positive multiple of the code length.
pub fn decode_frames<D: Decoder>(
    decoder: &mut D,
    llrs: &[f32],
    max_iterations: u32,
) -> Vec<DecodeResult> {
    let n = decoder.n();
    assert!(
        !llrs.is_empty() && llrs.len().is_multiple_of(n),
        "LLR length must be a positive multiple of the code length"
    );
    llrs.chunks_exact(n)
        .map(|frame| decoder.decode(frame, max_iterations))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;
    use crate::{FixedDecoder, MinSumDecoder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A mixed-quality batch: clean frames, mildly noisy frames, and
    /// garbage frames, so convergence times differ within the batch.
    fn mixed_batch(frames: usize, seed: u64) -> Vec<f32> {
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut llrs = Vec::with_capacity(frames * code.n());
        for f in 0..frames {
            for _ in 0..code.n() {
                let v = match f % 3 {
                    0 => 4.0 + rng.gen_range(-0.5f32..0.5),
                    1 => 1.5 + rng.gen_range(-2.0f32..2.0),
                    _ => rng.gen_range(-3.0f32..3.0),
                };
                llrs.push(v);
            }
        }
        llrs
    }

    #[test]
    fn minsum_batch_matches_per_frame_bit_exactly() {
        let code = demo_code();
        for cfg in [
            MinSumConfig::plain(),
            MinSumConfig::normalized(4.0 / 3.0),
            MinSumConfig::offset(0.25),
            MinSumConfig::normalized(1.5).with_alpha_schedule(vec![2.0, 1.5, 1.25]),
            MinSumConfig::normalized(4.0 / 3.0).with_early_stop(false),
        ] {
            let llrs = mixed_batch(6, 99);
            let mut batched = BatchMinSumDecoder::new(code.clone(), cfg.clone(), 6);
            let mut single = MinSumDecoder::new(code.clone(), cfg);
            let got = batched.decode_batch(&llrs, 25);
            let want = decode_frames(&mut single, &llrs, 25);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn fixed_batch_matches_per_frame_bit_exactly() {
        let code = demo_code();
        for cfg in [
            FixedConfig::default(),
            FixedConfig::default().with_q_msg(4).with_q_ch(3),
            FixedConfig::default().with_early_stop(false),
        ] {
            let llrs = mixed_batch(5, 17);
            let mut batched = BatchFixedDecoder::new(code.clone(), cfg, 8);
            let mut single = FixedDecoder::new(code.clone(), cfg);
            let got = batched.decode_batch(&llrs, 20);
            let want = decode_frames(&mut single, &llrs, 20);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn fixed_quantized_batch_matches_per_frame() {
        let code = demo_code();
        let mut rng = StdRng::seed_from_u64(5);
        let frames = 4;
        let channel: Vec<i16> = (0..frames * code.n())
            .map(|_| rng.gen_range(-15i16..=15))
            .collect();
        let mut batched = BatchFixedDecoder::new(code.clone(), FixedConfig::default(), frames);
        let mut single = FixedDecoder::new(code.clone(), FixedConfig::default());
        let got = batched.decode_quantized_batch(&channel, 15);
        for (f, got_f) in got.iter().enumerate() {
            let want = single.decode_quantized(&channel[f * code.n()..(f + 1) * code.n()], 15);
            assert_eq!(*got_f, want, "frame {f}");
        }
    }

    #[test]
    fn early_termination_retires_frames_individually() {
        let code = demo_code();
        // Frame 0 is clean (converges immediately); frame 1 is garbage.
        let mut llrs = vec![5.0_f32; 2 * code.n()];
        let mut rng = StdRng::seed_from_u64(3);
        for v in llrs[code.n()..].iter_mut() {
            *v = if rng.gen_bool(0.5) { -6.0 } else { 6.0 };
        }
        let mut dec = BatchMinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.25), 2);
        let out = dec.decode_batch(&llrs, 8);
        assert!(out[0].converged);
        assert_eq!(out[0].iterations, 1);
        assert!(out[0].hard_decision.is_zero());
        // The garbage frame ran the full budget (unless it got lucky).
        if !out[1].converged {
            assert_eq!(out[1].iterations, 8);
        }
    }

    #[test]
    fn all_converged_batch_stops_iterating() {
        let code = demo_code();
        let mut dec = BatchFixedDecoder::new(code.clone(), FixedConfig::default(), 3);
        let out = dec.decode_batch(&vec![4.0_f32; 3 * code.n()], 50);
        for r in out {
            assert!(r.converged);
            assert_eq!(r.iterations, 1);
        }
    }

    #[test]
    fn partial_batches_are_accepted() {
        let code = demo_code();
        let mut dec = BatchMinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.25), 8);
        for frames in [1usize, 3, 8] {
            let out = dec.decode_batch(&vec![2.5_f32; frames * code.n()], 10);
            assert_eq!(out.len(), frames);
            assert!(out.iter().all(|r| r.converged));
        }
    }

    #[test]
    fn results_stable_across_reuse() {
        let code = demo_code();
        let llrs = mixed_batch(4, 7);
        let mut dec = BatchFixedDecoder::new(code.clone(), FixedConfig::default(), 4);
        let a = dec.decode_batch(&llrs, 12);
        let b = dec.decode_batch(&llrs, 12);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_batch_panics() {
        let code = demo_code();
        let mut dec = BatchMinSumDecoder::new(code.clone(), MinSumConfig::plain(), 2);
        let _ = dec.decode_batch(&vec![1.0_f32; 3 * code.n()], 1);
    }

    #[test]
    #[should_panic(expected = "multiple of the code length")]
    fn ragged_batch_panics() {
        let code = demo_code();
        let mut dec = BatchMinSumDecoder::new(code.clone(), MinSumConfig::plain(), 2);
        let _ = dec.decode_batch(&vec![1.0_f32; code.n() + 1], 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BatchMinSumDecoder::new(demo_code(), MinSumConfig::plain(), 0);
    }

    #[test]
    fn decode_frames_helper_matches_loop() {
        let code = demo_code();
        let llrs = mixed_batch(3, 21);
        let mut dec = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.25));
        let all = decode_frames(&mut dec, &llrs, 10);
        let mut again = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.25));
        for (f, r) in all.iter().enumerate() {
            let one = again.decode(&llrs[f * code.n()..(f + 1) * code.n()], 10);
            assert_eq!(*r, one);
        }
    }
}
