//! Log-likelihood-ratio quantization.
//!
//! The decoders follow the usual sign convention: a **positive** LLR is
//! evidence for bit value 0 and a **negative** LLR for bit value 1.

/// A uniform, saturating quantizer mapping floating-point LLRs to the
/// two's-complement fixed-point levels of the hardware datapath.
///
/// A `bits`-bit quantizer produces symmetric levels in
/// `[-(2^(bits-1) - 1), 2^(bits-1) - 1]` (the most negative code is unused,
/// as is common in decoder datapaths so that magnitudes stay symmetric),
/// spaced `step` apart in LLR units.
///
/// # Example
///
/// ```
/// use ldpc_core::LlrQuantizer;
///
/// let q = LlrQuantizer::new(5, 0.5); // 5-bit channel LLRs, 0.5 LLR / LSB
/// assert_eq!(q.max_level(), 15);
/// assert_eq!(q.quantize(1.3), 3);    // round(1.3 / 0.5)
/// assert_eq!(q.quantize(-100.0), -15); // saturates
/// assert!((q.dequantize(3) - 1.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlrQuantizer {
    bits: u32,
    step: f32,
    max: i16,
}

impl LlrQuantizer {
    /// Creates a quantizer with the given width and LLR step per level.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=15` or `step` is not positive.
    pub fn new(bits: u32, step: f32) -> Self {
        assert!(
            (2..=15).contains(&bits),
            "quantizer width must be in 2..=15 bits"
        );
        assert!(step > 0.0, "quantizer step must be positive");
        Self {
            bits,
            step,
            max: ((1i32 << (bits - 1)) - 1) as i16,
        }
    }

    /// Width in bits (including the sign).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// LLR value of one least-significant bit.
    pub fn step(&self) -> f32 {
        self.step
    }

    /// Largest representable magnitude.
    pub fn max_level(&self) -> i16 {
        self.max
    }

    /// Quantizes one LLR, rounding to the nearest level and saturating.
    pub fn quantize(&self, llr: f32) -> i16 {
        let scaled = (llr / self.step).round();
        let max = f32::from(self.max);
        scaled.clamp(-max, max) as i16
    }

    /// Quantizes a slice of LLRs.
    pub fn quantize_slice(&self, llrs: &[f32]) -> Vec<i16> {
        llrs.iter().map(|&l| self.quantize(l)).collect()
    }

    /// Maps a level back to its LLR value.
    pub fn dequantize(&self, level: i16) -> f32 {
        f32::from(level) * self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_range() {
        let q = LlrQuantizer::new(6, 0.25);
        assert_eq!(q.max_level(), 31);
        assert_eq!(q.quantize(1e9), 31);
        assert_eq!(q.quantize(-1e9), -31);
    }

    #[test]
    fn zero_maps_to_zero() {
        let q = LlrQuantizer::new(4, 1.0);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(-0.0), 0);
    }

    #[test]
    fn rounding_to_nearest() {
        let q = LlrQuantizer::new(6, 1.0);
        assert_eq!(q.quantize(1.4), 1);
        assert_eq!(q.quantize(1.6), 2);
        assert_eq!(q.quantize(-1.6), -2);
    }

    #[test]
    fn sign_preserved() {
        let q = LlrQuantizer::new(5, 0.5);
        for llr in [-7.3, -0.6, 0.6, 7.3] {
            let lv = q.quantize(llr);
            assert_eq!(lv.signum() as f32, llr.signum(), "llr {llr}");
        }
    }

    #[test]
    fn dequantize_inverts_on_grid() {
        let q = LlrQuantizer::new(5, 0.5);
        for level in -15i16..=15 {
            assert_eq!(q.quantize(q.dequantize(level)), level);
        }
    }

    #[test]
    fn quantize_slice_matches_scalar() {
        let q = LlrQuantizer::new(5, 0.5);
        let xs = [0.1, -3.0, 99.0];
        let got = q.quantize_slice(&xs);
        let want: Vec<i16> = xs.iter().map(|&x| q.quantize(x)).collect();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_one_bit() {
        LlrQuantizer::new(1, 0.5);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn rejects_nonpositive_step() {
        LlrQuantizer::new(5, 0.0);
    }
}
