//! Code analysis: degree distributions and decoding-threshold estimation.
//!
//! The paper motivates the C2 code by its "very fast iterative
//! convergence" and low error floor; this module provides the standard
//! analysis tools to see those properties from the matrix alone:
//!
//! * [`DegreeDistribution`] — node- and edge-perspective degree profiles
//!   of a Tanner graph;
//! * [`de_threshold_sigma`] — the asymptotic decoding threshold of a
//!   regular ensemble under one-dimensional Gaussian-approximation
//!   density evolution, locating the waterfall of Figure 4 analytically.

use crate::LdpcCode;
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// Degree histogram of one side of a Tanner graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeDistribution {
    /// Count of nodes per degree.
    pub histogram: BTreeMap<usize, usize>,
}

impl DegreeDistribution {
    /// Bit-node degree distribution of a code.
    pub fn bit_nodes(code: &LdpcCode) -> Self {
        let graph = code.graph();
        let mut histogram = BTreeMap::new();
        for n in 0..graph.n_bits() {
            *histogram.entry(graph.bn_degree(n)).or_insert(0) += 1;
        }
        Self { histogram }
    }

    /// Check-node degree distribution of a code.
    pub fn check_nodes(code: &LdpcCode) -> Self {
        let graph = code.graph();
        let mut histogram = BTreeMap::new();
        for m in 0..graph.n_checks() {
            *histogram.entry(graph.cn_degree(m)).or_insert(0) += 1;
        }
        Self { histogram }
    }

    /// Returns `true` if all nodes share one degree (a regular side).
    pub fn is_regular(&self) -> bool {
        self.histogram.len() == 1
    }

    /// The single degree of a regular side.
    pub fn regular_degree(&self) -> Option<usize> {
        if self.is_regular() {
            self.histogram.keys().next().copied()
        } else {
            None
        }
    }

    /// Mean degree (node perspective).
    pub fn mean(&self) -> f64 {
        let (sum, count) = self
            .histogram
            .iter()
            .fold((0usize, 0usize), |(s, c), (&d, &n)| (s + d * n, c + n));
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

impl fmt::Display for DegreeDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (d, n) in &self.histogram {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{n} nodes of degree {d}")?;
            first = false;
        }
        Ok(())
    }
}

/// One density-evolution update: mean check output for inputs `N(m, 2m)`.
fn cn_mean_spa<R: Rng + ?Sized>(dc: usize, mean: f64, samples: usize, rng: &mut R) -> f64 {
    let sigma = (2.0 * mean).sqrt();
    let mut sum = 0.0f64;
    for _ in 0..samples {
        let mut prod = 1.0f64;
        for _ in 0..dc - 1 {
            let x = mean + sigma * standard_normal(rng);
            prod *= (x * 0.5).tanh();
        }
        let p = prod.abs().clamp(0.0, 1.0 - 1e-12);
        sum += ((1.0 + p) / (1.0 - p)).ln(); // = 2 atanh(p)
    }
    sum / samples as f64
}

/// Whether GA density evolution converges for a regular `(dv, dc)`
/// ensemble at noise level `sigma` (BPSK channel LLR mean `2/σ²`).
pub fn de_converges<R: Rng + ?Sized>(
    dv: usize,
    dc: usize,
    sigma: f64,
    iterations: usize,
    samples: usize,
    rng: &mut R,
) -> bool {
    let m_ch = 2.0 / (sigma * sigma);
    let mut mean = m_ch;
    // The tanh transform saturates in f64 near LLR means of ~38, so the
    // evolution is evaluated with means capped at 34 and convergence is
    // declared once the (pre-cap) mean escapes past 33: above-threshold
    // evolutions are monotone increasing, so crossing 33 implies escape.
    for _ in 0..iterations {
        let m_cb = cn_mean_spa(dc, mean.min(34.0), samples, rng);
        let next = m_ch + (dv - 1) as f64 * m_cb;
        if next > 33.0 {
            return true;
        }
        mean = next;
    }
    false
}

/// Estimates the decoding-threshold noise level σ* of a regular
/// `(dv, dc)` ensemble by bisection on [`de_converges`].
///
/// Returns the largest σ (to the bisection resolution) at which density
/// evolution still converges. For the C2 ensemble (dv=4, dc=32) the
/// threshold sits near the waterfall the paper's Figure 4 shows.
///
/// # Panics
///
/// Panics if degrees are below 2 or the bracket is invalid.
pub fn de_threshold_sigma<R: Rng + ?Sized>(
    dv: usize,
    dc: usize,
    lo_sigma: f64,
    hi_sigma: f64,
    steps: u32,
    rng: &mut R,
) -> f64 {
    assert!(dv >= 2 && dc >= 2, "degrees must be at least 2");
    assert!(0.0 < lo_sigma && lo_sigma < hi_sigma, "invalid bracket");
    let mut lo = lo_sigma; // assumed converging
    let mut hi = hi_sigma; // assumed failing
    for _ in 0..steps {
        let mid = 0.5 * (lo + hi);
        if de_converges(dv, dc, mid, 300, 2_500, rng) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::{ccsds_c2, small::demo_code};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn c2_is_4_32_regular() {
        let code = ccsds_c2::code();
        let bits = DegreeDistribution::bit_nodes(&code);
        let checks = DegreeDistribution::check_nodes(&code);
        assert_eq!(bits.regular_degree(), Some(4));
        assert_eq!(checks.regular_degree(), Some(32));
        assert!((bits.mean() - 4.0).abs() < 1e-12);
        assert!(bits.to_string().contains("degree 4"));
    }

    #[test]
    fn demo_code_matches_c2_profile() {
        let code = demo_code();
        assert_eq!(
            DegreeDistribution::bit_nodes(&code).regular_degree(),
            Some(4)
        );
        assert_eq!(
            DegreeDistribution::check_nodes(&code).regular_degree(),
            Some(16)
        );
    }

    #[test]
    fn de_converges_at_low_noise_and_fails_at_high_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(de_converges(4, 32, 0.30, 200, 3_000, &mut rng));
        assert!(!de_converges(4, 32, 0.80, 200, 3_000, &mut rng));
    }

    #[test]
    fn c2_ensemble_threshold_matches_waterfall_region() {
        // The (4,32) ensemble's GA-DE threshold should sit in the high-rate
        // waterfall region: around sigma* ~ 0.45-0.60, i.e. Eb/N0 of
        // roughly 3-5 dB at rate 0.875 — exactly where Figure 4 lives.
        let mut rng = StdRng::seed_from_u64(2);
        let sigma_star = de_threshold_sigma(4, 32, 0.3, 0.9, 6, &mut rng);
        assert!(
            (0.40..0.70).contains(&sigma_star),
            "threshold sigma* = {sigma_star}"
        );
        let ebn0 = ldpc_channel_free_sigma_to_ebn0(sigma_star, 7154.0 / 8176.0);
        assert!((2.0..6.0).contains(&ebn0), "threshold Eb/N0 = {ebn0} dB");
    }

    /// Local copy of the Eb/N0 conversion to avoid a cyclic dev-dependency
    /// on the channel crate.
    fn ldpc_channel_free_sigma_to_ebn0(sigma: f64, rate: f64) -> f64 {
        10.0 * (1.0 / (2.0 * rate * sigma * sigma)).log10()
    }

    #[test]
    fn lower_rate_ensembles_tolerate_more_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        // (3,6) is rate 1/2; its threshold must exceed the rate-7/8
        // (4,32) ensemble's.
        let t_half = de_threshold_sigma(3, 6, 0.5, 1.3, 5, &mut rng);
        let t_high = de_threshold_sigma(4, 32, 0.3, 0.9, 5, &mut rng);
        assert!(
            t_half > t_high,
            "sigma*(3,6)={t_half} vs sigma*(4,32)={t_high}"
        );
    }

    #[test]
    #[should_panic(expected = "bracket")]
    fn bad_bracket_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = de_threshold_sigma(3, 6, 1.0, 0.5, 3, &mut rng);
    }
}
