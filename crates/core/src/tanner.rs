//! Tanner graph representation with the edge-indexed message layout used by
//! all decoders.

use gf2::{BitVec, SparseMatrix};

/// The bipartite bit-node / check-node graph of an LDPC code (paper Fig. 1).
///
/// Edges are numbered contiguously **grouped by check node**, which is the
/// natural layout for message memories: the check-node phase streams over
/// edges in order, while the bit-node phase uses a per-bit index into the
/// same array. Both the software decoders and the hardware-architecture
/// simulator address messages through this single numbering, which is what
/// makes bit-exact cross-validation possible.
#[derive(Clone, Debug)]
pub struct TannerGraph {
    n_bits: usize,
    n_checks: usize,
    /// Edge range of check `m` is `cn_offsets[m]..cn_offsets[m+1]`.
    cn_offsets: Vec<u32>,
    /// Bit node of each edge (in check-grouped edge order).
    edge_bn: Vec<u32>,
    /// Edge-id range of bit `n` is `bn_offsets[n]..bn_offsets[n+1]` in
    /// `bn_edges`.
    bn_offsets: Vec<u32>,
    /// Edge ids (into the check-grouped numbering) incident to each bit.
    bn_edges: Vec<u32>,
    /// Check node of each entry of `bn_edges` (parallel array).
    bn_cn: Vec<u32>,
    max_cn_degree: usize,
    max_bn_degree: usize,
}

impl TannerGraph {
    /// Builds the graph of a parity-check matrix (rows = check nodes).
    pub fn from_parity_check(h: &SparseMatrix) -> Self {
        let n_checks = h.rows();
        let n_bits = h.cols();
        let n_edges = h.nnz();

        let mut cn_offsets = Vec::with_capacity(n_checks + 1);
        let mut edge_bn = Vec::with_capacity(n_edges);
        cn_offsets.push(0u32);
        for m in 0..n_checks {
            for &c in h.row(m) {
                edge_bn.push(c);
            }
            cn_offsets.push(edge_bn.len() as u32);
        }

        // Invert: edges grouped by bit node.
        let col_weights = h.col_weights();
        let mut bn_offsets = Vec::with_capacity(n_bits + 1);
        bn_offsets.push(0u32);
        for w in &col_weights {
            let last = *bn_offsets.last().expect("non-empty");
            bn_offsets.push(last + *w as u32);
        }
        let mut cursor: Vec<u32> = bn_offsets[..n_bits].to_vec();
        let mut bn_edges = vec![0u32; n_edges];
        let mut bn_cn = vec![0u32; n_edges];
        for m in 0..n_checks {
            for e in cn_offsets[m]..cn_offsets[m + 1] {
                let bn = edge_bn[e as usize] as usize;
                let slot = cursor[bn] as usize;
                bn_edges[slot] = e;
                bn_cn[slot] = m as u32;
                cursor[bn] += 1;
            }
        }

        let max_cn_degree = (0..n_checks)
            .map(|m| (cn_offsets[m + 1] - cn_offsets[m]) as usize)
            .max()
            .unwrap_or(0);
        let max_bn_degree = col_weights.iter().copied().max().unwrap_or(0);

        Self {
            n_bits,
            n_checks,
            cn_offsets,
            edge_bn,
            bn_offsets,
            bn_edges,
            bn_cn,
            max_cn_degree,
            max_bn_degree,
        }
    }

    /// Number of bit nodes (code length n).
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Number of check nodes (rows of H).
    pub fn n_checks(&self) -> usize {
        self.n_checks
    }

    /// Number of edges (ones of H). The CCSDS C2 code has 32 704.
    pub fn n_edges(&self) -> usize {
        self.edge_bn.len()
    }

    /// Degree of check node `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= n_checks`.
    pub fn cn_degree(&self, m: usize) -> usize {
        (self.cn_offsets[m + 1] - self.cn_offsets[m]) as usize
    }

    /// Degree of bit node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= n_bits`.
    pub fn bn_degree(&self, n: usize) -> usize {
        (self.bn_offsets[n + 1] - self.bn_offsets[n]) as usize
    }

    /// Largest check-node degree.
    pub fn max_cn_degree(&self) -> usize {
        self.max_cn_degree
    }

    /// Largest bit-node degree.
    pub fn max_bn_degree(&self) -> usize {
        self.max_bn_degree
    }

    /// Edge-id range of check node `m` (check-grouped numbering).
    ///
    /// # Panics
    ///
    /// Panics if `m >= n_checks`.
    pub fn cn_edge_range(&self, m: usize) -> std::ops::Range<usize> {
        self.cn_offsets[m] as usize..self.cn_offsets[m + 1] as usize
    }

    /// Bit nodes adjacent to check node `m` (one per edge, in edge order).
    ///
    /// # Panics
    ///
    /// Panics if `m >= n_checks`.
    pub fn cn_bits(&self, m: usize) -> &[u32] {
        &self.edge_bn[self.cn_edge_range(m)]
    }

    /// Bit node of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= n_edges`.
    pub fn edge_bit(&self, e: usize) -> usize {
        self.edge_bn[e] as usize
    }

    /// Edge ids incident to bit node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= n_bits`.
    pub fn bn_edge_ids(&self, n: usize) -> &[u32] {
        &self.bn_edges[self.bn_offsets[n] as usize..self.bn_offsets[n + 1] as usize]
    }

    /// Check nodes adjacent to bit node `n` (parallel to
    /// [`bn_edge_ids`](Self::bn_edge_ids)).
    ///
    /// # Panics
    ///
    /// Panics if `n >= n_bits`.
    pub fn bn_checks(&self, n: usize) -> &[u32] {
        &self.bn_cn[self.bn_offsets[n] as usize..self.bn_offsets[n + 1] as usize]
    }

    /// Verifies that a hard-decision word satisfies every parity check.
    ///
    /// `bits[i]` non-zero means bit value 1.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != n_bits`.
    pub fn syndrome_ok(&self, bits: &[u8]) -> bool {
        assert_eq!(bits.len(), self.n_bits, "hard-decision length mismatch");
        for m in 0..self.n_checks {
            let mut parity = 0u8;
            for &bn in self.cn_bits(m) {
                parity ^= bits[bn as usize] & 1;
            }
            if parity != 0 {
                return false;
            }
        }
        true
    }

    /// Converts a hard-decision byte slice to a [`BitVec`].
    pub fn bits_to_vec(&self, bits: &[u8]) -> BitVec {
        BitVec::from_bits(bits)
    }

    /// Upper bound on the girth (shortest cycle length), by BFS from each of
    /// the given bit nodes.
    ///
    /// Returns `None` if no cycle is reachable from the sampled nodes. The
    /// true girth is the minimum over *all* start nodes; sampling trades
    /// accuracy for speed on large graphs.
    pub fn girth_from(&self, start_bits: &[usize]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for &start in start_bits {
            assert!(start < self.n_bits, "start bit out of range");
            if let Some(g) = self.bfs_cycle_from(start) {
                best = Some(best.map_or(g, |b| b.min(g)));
                if best == Some(4) {
                    break; // 4 is the minimum possible in a bipartite graph
                }
            }
        }
        best
    }

    /// BFS from one bit node; returns the length of the shortest cycle
    /// through it, if any.
    fn bfs_cycle_from(&self, start: usize) -> Option<usize> {
        // Node numbering: bits 0..n_bits, checks n_bits..n_bits+n_checks.
        let total = self.n_bits + self.n_checks;
        let mut dist = vec![u32::MAX; total];
        let mut parent = vec![u32::MAX; total];
        let mut queue = std::collections::VecDeque::new();
        dist[start] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let neighbours: Vec<usize> = if u < self.n_bits {
                self.bn_checks(u)
                    .iter()
                    .map(|&c| self.n_bits + c as usize)
                    .collect()
            } else {
                self.cn_bits(u - self.n_bits)
                    .iter()
                    .map(|&b| b as usize)
                    .collect()
            };
            for v in neighbours {
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    parent[v] = u as u32;
                    queue.push_back(v);
                } else if parent[u] != v as u32 {
                    // Found a cycle through `start` of this length. For BFS
                    // cycle detection this is the first and shortest.
                    return Some((dist[u] + dist[v] + 1) as usize);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// H for a (7,4) Hamming-style code used as a small fixture.
    fn small_h() -> SparseMatrix {
        SparseMatrix::from_entries(
            3,
            7,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (0, 4),
                (1, 1),
                (1, 2),
                (1, 3),
                (1, 5),
                (2, 0),
                (2, 2),
                (2, 3),
                (2, 6),
            ],
        )
    }

    #[test]
    fn counts_and_degrees() {
        let g = TannerGraph::from_parity_check(&small_h());
        assert_eq!(g.n_bits(), 7);
        assert_eq!(g.n_checks(), 3);
        assert_eq!(g.n_edges(), 12);
        assert_eq!(g.cn_degree(0), 4);
        assert_eq!(g.bn_degree(2), 3);
        assert_eq!(g.max_cn_degree(), 4);
        assert_eq!(g.max_bn_degree(), 3);
    }

    #[test]
    fn bit_and_check_views_are_consistent() {
        let g = TannerGraph::from_parity_check(&small_h());
        // For every bit n and its edge ids, the edge's bit must be n and the
        // parallel check list must contain the owning check of that edge.
        for n in 0..g.n_bits() {
            let edges = g.bn_edge_ids(n);
            let checks = g.bn_checks(n);
            assert_eq!(edges.len(), checks.len());
            for (&e, &m) in edges.iter().zip(checks) {
                assert_eq!(g.edge_bit(e as usize), n);
                let range = g.cn_edge_range(m as usize);
                assert!(range.contains(&(e as usize)));
            }
        }
    }

    #[test]
    fn edges_grouped_by_check_cover_h() {
        let h = small_h();
        let g = TannerGraph::from_parity_check(&h);
        for m in 0..g.n_checks() {
            let bits: Vec<u32> = g.cn_bits(m).to_vec();
            assert_eq!(bits, h.row(m));
        }
    }

    #[test]
    fn syndrome_ok_matches_matrix() {
        let h = small_h();
        let g = TannerGraph::from_parity_check(&h);
        // Zero word always passes.
        assert!(g.syndrome_ok(&[0; 7]));
        // Exhaustively compare against sparse mul_vec.
        for pattern in 0u32..128 {
            let bits: Vec<u8> = (0..7).map(|i| ((pattern >> i) & 1) as u8).collect();
            let v = BitVec::from_bits(&bits);
            assert_eq!(
                g.syndrome_ok(&bits),
                h.in_nullspace(&v),
                "pattern {pattern:07b}"
            );
        }
    }

    #[test]
    fn girth_of_four_cycle_detected() {
        // Two checks sharing two bits -> 4-cycle.
        let h = SparseMatrix::from_entries(2, 3, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let g = TannerGraph::from_parity_check(&h);
        assert_eq!(g.girth_from(&[0]), Some(4));
    }

    #[test]
    fn tree_has_no_cycle() {
        // A path: check 0 connects bits 0,1; check 1 connects bits 1,2.
        let h = SparseMatrix::from_entries(2, 3, &[(0, 0), (0, 1), (1, 1), (1, 2)]);
        let g = TannerGraph::from_parity_check(&h);
        assert_eq!(g.girth_from(&[0, 1, 2]), None);
    }

    #[test]
    fn six_cycle_girth() {
        // Bits a,b,c and checks X,Y,Z forming a 6-cycle:
        // X: a,b ; Y: b,c ; Z: c,a
        let h = SparseMatrix::from_entries(3, 3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)]);
        let g = TannerGraph::from_parity_check(&h);
        assert_eq!(g.girth_from(&[0]), Some(6));
    }
}
