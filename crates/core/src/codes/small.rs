//! Small quasi-cyclic codes mirroring the CCSDS C2 structure.
//!
//! Monte-Carlo tests and quick benchmark variants need codes that decode in
//! microseconds rather than milliseconds. The codes here keep the *shape*
//! of the C2 code — a `2 × b` array of weight-two circulants, so row weight
//! `2b` and column weight 4 — at much smaller circulant sizes.

use crate::{LdpcCode, QcLdpcSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// A fixed (248, ~188) demo code: 2×8 blocks of 31×31 weight-two circulants.
///
/// Same local structure as the C2 code (row weight 16, column weight 4) at
/// 1/33 the block length. Construction is deterministic, so tests can rely
/// on its exact parameters.
///
/// ```
/// let code = ldpc_core::codes::small::demo_code();
/// assert_eq!(code.n(), 248);
/// assert_eq!(code.n_checks(), 62);
/// assert_eq!(code.graph().max_cn_degree(), 16);
/// ```
pub fn demo_code() -> Arc<LdpcCode> {
    static CODE: OnceLock<Arc<LdpcCode>> = OnceLock::new();
    CODE.get_or_init(|| {
        // Hand-picked first-row positions with good spread modulo 31.
        let table: [[[u32; 2]; 8]; 2] = [
            [
                [0, 11],
                [3, 17],
                [0, 22],
                [5, 19],
                [0, 9],
                [7, 26],
                [0, 15],
                [2, 24],
            ],
            [
                [6, 29],
                [8, 21],
                [12, 27],
                [16, 30],
                [13, 25],
                [4, 18],
                [1, 23],
                [10, 28],
            ],
        ];
        let first_rows: Vec<Vec<Vec<u32>>> = table
            .iter()
            .map(|row| row.iter().map(|p| p.to_vec()).collect())
            .collect();
        let spec = QcLdpcSpec::from_first_rows(31, &first_rows);
        LdpcCode::from_qc_spec("demo QC (248)", spec).expect("demo code is statically valid")
    })
    .clone()
}

/// The block description of [`demo_code`], for layered schedules and the
/// hardware simulator.
pub fn demo_spec() -> QcLdpcSpec {
    let table: [[[u32; 2]; 8]; 2] = [
        [
            [0, 11],
            [3, 17],
            [0, 22],
            [5, 19],
            [0, 9],
            [7, 26],
            [0, 15],
            [2, 24],
        ],
        [
            [6, 29],
            [8, 21],
            [12, 27],
            [16, 30],
            [13, 25],
            [4, 18],
            [1, 23],
            [10, 28],
        ],
    ];
    let first_rows: Vec<Vec<Vec<u32>>> = table
        .iter()
        .map(|row| row.iter().map(|p| p.to_vec()).collect())
        .collect();
    QcLdpcSpec::from_first_rows(31, &first_rows)
}

/// A random QC code with the C2 block structure at a chosen circulant size.
///
/// Deterministic for a given `seed`. `block_cols` of 16 with
/// `circulant_size` 511 reproduces the C2 dimensions (with random rather
/// than standard circulants).
pub fn random_c2_like(seed: u64, circulant_size: usize, block_cols: usize) -> Arc<LdpcCode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = QcLdpcSpec::random(&mut rng, circulant_size, 2, block_cols, 2);
    LdpcCode::from_qc_spec(
        format!("random QC (L={circulant_size}, 2x{block_cols})"),
        spec,
    )
    .expect("random weight-2 QC construction is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_code_has_c2_shape() {
        let code = demo_code();
        let h = code.h();
        assert_eq!(h.rows(), 62);
        assert_eq!(h.cols(), 248);
        assert_eq!(h.nnz(), 62 * 16);
        for r in 0..h.rows() {
            assert_eq!(h.row_weight(r), 16);
        }
        for w in h.col_weights() {
            assert_eq!(w, 4);
        }
    }

    #[test]
    fn demo_code_dimension_positive() {
        let code = demo_code();
        let k = code.dimension();
        assert!(k >= 248 - 62, "dimension {k} impossible");
        assert!(k < 248);
    }

    #[test]
    fn demo_spec_expands_to_demo_code() {
        assert_eq!(&demo_spec().expand(), demo_code().h());
    }

    #[test]
    fn random_code_is_deterministic_per_seed() {
        let a = random_c2_like(1, 13, 4);
        let b = random_c2_like(1, 13, 4);
        let c = random_c2_like(2, 13, 4);
        assert_eq!(a.h(), b.h());
        assert_ne!(a.h(), c.h());
    }

    #[test]
    fn random_code_keeps_regular_weights() {
        let code = random_c2_like(42, 17, 6);
        for r in 0..code.n_checks() {
            assert_eq!(code.h().row_weight(r), 12);
        }
        for w in code.h().col_weights() {
            assert_eq!(w, 4);
        }
    }
}
