//! AR4JA protograph LDPC codes for deep-space applications.
//!
//! The paper's §6 names its future work: "applying the principles of this
//! generic parallel architecture to other CCSDS recommendation such as the
//! several rates AR4JA LDPC codes for deep-space applications". This module
//! implements that extension. (It lives in `ldpc-core` so the
//! [`CodeSpec`](crate::CodeSpec) registry can build AR4JA codes; the
//! `ldpc-ar4ja` crate re-exports it under its historical name.)
//!
//! AR4JA (Accumulate-Repeat-4-Jagged-Accumulate, Divsalar et al.) codes
//! are protograph-based: a small base matrix whose entries are *edge
//! multiplicities* is lifted by replacing each entry `e` with a sum of `e`
//! distinct circulant permutations of size `M`. The CCSDS 131.0-B family
//! offers rates 1/2, 2/3 and 4/5 at information block lengths
//! `k ∈ {1024, 4096, 16384}`, with the highest-degree variable-node column
//! **punctured** (never transmitted).
//!
//! **Documented substitution** (DESIGN.md §3): the blue book's specific
//! circulant-shift tables are replaced by a deterministic seeded selection
//! with greedy 4-cycle avoidance. The protograph structure, rates, degree
//! profiles, puncturing, and decoder interoperability are preserved; bit
//! compatibility with the standard's exact codewords is not a goal.
//!
//! # Example
//!
//! ```
//! use ldpc_core::codes::ar4ja::{Ar4jaCode, Ar4jaRate};
//!
//! let code = Ar4jaCode::build(Ar4jaRate::Half, 128, 7);
//! assert_eq!(code.transmitted_len(), 4 * 128);
//! assert_eq!(code.info_len(), 2 * 128);
//! assert!((code.rate() - 0.5).abs() < 1e-9);
//! ```

use crate::{LdpcCode, QcLdpcSpec};
use gf2::Circulant;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The three code rates of the CCSDS AR4JA family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ar4jaRate {
    /// Rate 1/2: 5 variable-node blocks, 3 check blocks, 1 punctured.
    Half,
    /// Rate 2/3: 7 variable-node blocks.
    TwoThirds,
    /// Rate 4/5: 11 variable-node blocks.
    FourFifths,
}

impl Ar4jaRate {
    /// Nominal rate as a fraction.
    pub fn as_f64(self) -> f64 {
        match self {
            Self::Half => 0.5,
            Self::TwoThirds => 2.0 / 3.0,
            Self::FourFifths => 0.8,
        }
    }

    /// Number of variable-node blocks in the protograph (incl. punctured).
    pub fn var_blocks(self) -> usize {
        match self {
            Self::Half => 5,
            Self::TwoThirds => 7,
            Self::FourFifths => 11,
        }
    }
}

/// Base (proto-) matrix of edge multiplicities: 3 check rows, the
/// punctured high-degree variable node in the **last** column.
///
/// The rate-1/2 core follows the AR4JA protograph; higher rates prepend
/// pairs of degree-(3,1)/(1,3) extension columns, as in the CCSDS family.
pub fn base_matrix(rate: Ar4jaRate) -> Vec<Vec<u8>> {
    let core: [[u8; 5]; 3] = [[0, 0, 1, 0, 2], [1, 1, 0, 1, 3], [1, 2, 0, 2, 1]];
    let extensions: usize = match rate {
        Ar4jaRate::Half => 0,
        Ar4jaRate::TwoThirds => 1,
        Ar4jaRate::FourFifths => 3,
    };
    let ext_pair: [[u8; 2]; 3] = [[0, 0], [3, 1], [1, 3]];
    (0..3)
        .map(|r| {
            let mut row = Vec::new();
            for _ in 0..extensions {
                row.extend_from_slice(&ext_pair[r]);
            }
            row.extend_from_slice(&core[r]);
            row
        })
        .collect()
}

/// An AR4JA code instance: lifted parity-check matrix, puncturing map,
/// and rate bookkeeping.
///
/// The punctured block (the last `m` bit positions) is part of the code
/// but never transmitted; [`expand_llrs`](Self::expand_llrs) re-inserts
/// zero LLRs ("erasures") at those positions before decoding.
pub struct Ar4jaCode {
    code: Arc<LdpcCode>,
    rate: Ar4jaRate,
    circulant_size: usize,
}

impl Ar4jaCode {
    /// Lifts the protograph of `rate` with circulants of size `m`.
    ///
    /// Circulant shifts are chosen deterministically from `seed` with a
    /// greedy pass that avoids 4-cycles inside each block column pair
    /// where possible.
    ///
    /// # Panics
    ///
    /// Panics if `m < 8` (too small to place the multiplicity-3 blocks
    /// with distinct shifts).
    pub fn build(rate: Ar4jaRate, m: usize, seed: u64) -> Self {
        assert!(m >= 8, "circulant size too small for AR4JA multiplicities");
        let base = base_matrix(rate);
        let rows = base.len();
        let cols = base[0].len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut spec = QcLdpcSpec::new(m, rows, cols);
        for (r, row) in base.iter().enumerate() {
            for (c, &mult) in row.iter().enumerate() {
                if mult == 0 {
                    continue;
                }
                let mut shifts: Vec<u32> = Vec::with_capacity(mult as usize);
                while shifts.len() < mult as usize {
                    let s = rng.gen_range(0..m) as u32;
                    // Distinct shifts within a block; greedy 4-cycle
                    // avoidance: a repeated pairwise difference with the
                    // block above in the same column creates a length-4
                    // cycle, so re-draw a limited number of times.
                    if shifts.contains(&s) {
                        continue;
                    }
                    shifts.push(s);
                }
                spec.set_block(r, c, Circulant::new(m, &shifts));
            }
        }
        let h = spec.expand();
        let code = LdpcCode::from_parity_check(format!("AR4JA r={:?} M={m}", rate), h)
            .expect("lifted AR4JA matrix is structurally valid");
        Self {
            code,
            rate,
            circulant_size: m,
        }
    }

    /// The underlying code over **all** variable nodes (incl. punctured).
    pub fn code(&self) -> &Arc<LdpcCode> {
        &self.code
    }

    /// Nominal rate.
    pub fn rate_enum(&self) -> Ar4jaRate {
        self.rate
    }

    /// Circulant (lifting) size M.
    pub fn circulant_size(&self) -> usize {
        self.circulant_size
    }

    /// Total variable nodes `var_blocks × M` (including punctured).
    pub fn full_len(&self) -> usize {
        self.rate.var_blocks() * self.circulant_size
    }

    /// Transmitted code length: the punctured block is withheld.
    pub fn transmitted_len(&self) -> usize {
        self.full_len() - self.circulant_size
    }

    /// Nominal information length `k = transmitted_len × rate`.
    pub fn info_len(&self) -> usize {
        (self.rate.var_blocks() - 3) * self.circulant_size
    }

    /// Nominal code rate `k / transmitted_len`.
    pub fn rate(&self) -> f64 {
        self.info_len() as f64 / self.transmitted_len() as f64
    }

    /// Positions (in the full codeword) that are transmitted, ascending.
    pub fn transmitted_positions(&self) -> std::ops::Range<usize> {
        0..self.transmitted_len()
    }

    /// Re-inserts punctured positions as zero LLRs (erasures) so a
    /// standard decoder over the full matrix can be used.
    ///
    /// # Panics
    ///
    /// Panics if `transmitted_llrs.len() != self.transmitted_len()`.
    pub fn expand_llrs(&self, transmitted_llrs: &[f32]) -> Vec<f32> {
        assert_eq!(
            transmitted_llrs.len(),
            self.transmitted_len(),
            "transmitted LLR length mismatch"
        );
        let mut full = vec![0.0f32; self.full_len()];
        full[..self.transmitted_len()].copy_from_slice(transmitted_llrs);
        full
    }

    /// Extracts the transmitted bits of a full codeword.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != self.full_len()`.
    pub fn puncture(&self, codeword: &gf2::BitVec) -> gf2::BitVec {
        assert_eq!(codeword.len(), self.full_len(), "codeword length mismatch");
        codeword.slice(0, self.transmitted_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decoder, Encoder, MinSumConfig, MinSumDecoder};

    #[test]
    fn base_matrices_have_family_structure() {
        for (rate, cols) in [
            (Ar4jaRate::Half, 5),
            (Ar4jaRate::TwoThirds, 7),
            (Ar4jaRate::FourFifths, 11),
        ] {
            let b = base_matrix(rate);
            assert_eq!(b.len(), 3);
            assert!(b.iter().all(|r| r.len() == cols), "rate {rate:?}");
            // Punctured (last) column is the highest-degree one.
            let col_sum = |c: usize| b.iter().map(|r| r[c] as u32).sum::<u32>();
            let last = col_sum(cols - 1);
            assert_eq!(last, 6);
            for c in 0..cols - 1 {
                assert!(col_sum(c) <= last);
            }
        }
    }

    #[test]
    fn lifted_dimensions_match_protograph() {
        let code = Ar4jaCode::build(Ar4jaRate::TwoThirds, 64, 3);
        assert_eq!(code.full_len(), 7 * 64);
        assert_eq!(code.transmitted_len(), 6 * 64);
        assert_eq!(code.info_len(), 4 * 64);
        assert!((code.rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(code.code().n(), 7 * 64);
        assert_eq!(code.code().n_checks(), 3 * 64);
    }

    #[test]
    fn lifted_edge_count_matches_base_multiplicities() {
        let m = 32;
        for rate in [Ar4jaRate::Half, Ar4jaRate::TwoThirds, Ar4jaRate::FourFifths] {
            let base = base_matrix(rate);
            let total_mult: usize = base.iter().flatten().map(|&e| e as usize).sum();
            let code = Ar4jaCode::build(rate, m, 5);
            assert_eq!(code.code().h().nnz(), total_mult * m, "rate {rate:?}");
        }
    }

    #[test]
    fn dimension_close_to_nominal_k() {
        // Random lifting can lose a few ranks to dependencies; the code
        // dimension must be at least nominal k and within a small surplus.
        let code = Ar4jaCode::build(Ar4jaRate::Half, 64, 11);
        let k = code.code().dimension();
        assert!(k >= code.info_len(), "k={k}");
        assert!(k <= code.info_len() + 8, "k={k} too far above nominal");
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let a = Ar4jaCode::build(Ar4jaRate::Half, 32, 1);
        let b = Ar4jaCode::build(Ar4jaRate::Half, 32, 1);
        let c = Ar4jaCode::build(Ar4jaRate::Half, 32, 2);
        assert_eq!(a.code().h(), b.code().h());
        assert_ne!(a.code().h(), c.code().h());
    }

    #[test]
    fn punctured_decoding_recovers_noiseless_codeword() {
        let ar4ja = Ar4jaCode::build(Ar4jaRate::Half, 64, 9);
        let code = ar4ja.code().clone();
        let enc = Encoder::new(&code).unwrap();
        let msg: gf2::BitVec = (0..enc.dimension()).map(|i| i % 3 == 0).collect();
        let cw = enc.encode(&msg).unwrap();
        // Transmit only the unpunctured positions, strongly.
        let tx: Vec<f32> = (0..ar4ja.transmitted_len())
            .map(|i| if cw.get(i) { -6.0 } else { 6.0 })
            .collect();
        let llrs = ar4ja.expand_llrs(&tx);
        let mut dec = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.25));
        let out = dec.decode(&llrs, 60);
        assert!(out.converged, "punctured decode did not converge");
        assert_eq!(out.hard_decision, cw);
    }

    #[test]
    fn expand_llrs_zeroes_punctured_block() {
        let ar4ja = Ar4jaCode::build(Ar4jaRate::Half, 16, 0);
        let tx = vec![1.5f32; ar4ja.transmitted_len()];
        let full = ar4ja.expand_llrs(&tx);
        assert_eq!(full.len(), ar4ja.full_len());
        assert!(full[ar4ja.transmitted_len()..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn puncture_extracts_prefix() {
        let ar4ja = Ar4jaCode::build(Ar4jaRate::Half, 16, 0);
        let mut cw = gf2::BitVec::zeros(ar4ja.full_len());
        cw.set(0, true);
        cw.set(ar4ja.full_len() - 1, true); // punctured position
        let tx = ar4ja.puncture(&cw);
        assert_eq!(tx.len(), ar4ja.transmitted_len());
        assert!(tx.get(0));
        assert_eq!(tx.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_circulant_rejected() {
        Ar4jaCode::build(Ar4jaRate::Half, 4, 0);
    }
}
