//! The CCSDS C2 near-earth (8176, 7156) quasi-cyclic LDPC code.
//!
//! As specified in CCSDS 131.1-O-2 (*Low Density Parity Check Codes for Use
//! in Near-Earth and Deep Space Applications*, Orange Book, Sept. 2007) and
//! used by the paper: the parity-check matrix is a 2×16 array of 511×511
//! circulants, each of row (and column) weight two, giving a 1022×8176
//! matrix with 32 704 ones, total row weight 32 and column weight 4
//! (paper §2.2, Figure 2).
//!
//! H has rank 1020 (two dependent rows), so the code dimension is
//! 8176 − 1020 = 7156, matching the paper's (8176, 7156) description. The
//! CCSDS encoding profile transmits [`K_INFO`] = 7154 information bits and
//! pins the two remaining degrees of freedom to zero.
//!
//! The expanded code and its encoder are expensive to construct
//! (Gaussian elimination on the dense 1022×8176 matrix), so both are cached
//! behind [`code()`] and [`encoder()`].

use crate::{Encoder, LdpcCode, QcLdpcSpec};
use std::sync::{Arc, OnceLock};

/// Code length in bits.
pub const N: usize = 8176;
/// Number of parity-check rows (2 × 511; rank is 1020).
pub const M_CHECKS: usize = 1022;
/// Circulant (sub-matrix) dimension.
pub const CIRCULANT_SIZE: usize = 511;
/// Block rows of circulants.
pub const BLOCK_ROWS: usize = 2;
/// Block columns of circulants.
pub const BLOCK_COLS: usize = 16;
/// True code dimension `n − rank(H)`.
pub const K_DIM: usize = 7156;
/// Information bits per frame in the CCSDS encoding profile.
pub const K_INFO: usize = 7154;
/// Number of ones of H (messages exchanged per decoding iteration;
/// the paper's "more than 32k messages").
pub const EDGES: usize = 32_704;

/// First-row one positions of the 32 circulants, `TABLE[r][c]`, from the
/// CCSDS specification: each 511×511 circulant has exactly two ones per row.
pub const TABLE: [[[u32; 2]; BLOCK_COLS]; BLOCK_ROWS] = [
    [
        [0, 176],
        [12, 239],
        [0, 352],
        [24, 431],
        [0, 392],
        [151, 409],
        [0, 351],
        [9, 359],
        [0, 307],
        [53, 329],
        [0, 207],
        [18, 281],
        [0, 399],
        [202, 457],
        [0, 247],
        [36, 261],
    ],
    [
        [99, 471],
        [130, 473],
        [198, 435],
        [260, 478],
        [215, 420],
        [282, 481],
        [48, 396],
        [193, 445],
        [273, 430],
        [302, 451],
        [96, 379],
        [191, 386],
        [244, 467],
        [364, 470],
        [51, 382],
        [192, 414],
    ],
];

/// The quasi-cyclic block description of the parity-check matrix.
///
/// ```
/// let spec = ldpc_core::codes::ccsds_c2::spec();
/// assert_eq!(spec.rows(), 1022);
/// assert_eq!(spec.cols(), 8176);
/// ```
pub fn spec() -> QcLdpcSpec {
    let first_rows: Vec<Vec<Vec<u32>>> = TABLE
        .iter()
        .map(|row| row.iter().map(|pair| pair.to_vec()).collect())
        .collect();
    QcLdpcSpec::from_first_rows(CIRCULANT_SIZE, &first_rows)
}

/// The expanded C2 code, constructed once per process and shared.
///
/// ```
/// let code = ldpc_core::codes::ccsds_c2::code();
/// assert_eq!(code.n(), 8176);
/// assert_eq!(code.graph().n_edges(), 32_704);
/// ```
pub fn code() -> Arc<LdpcCode> {
    static CODE: OnceLock<Arc<LdpcCode>> = OnceLock::new();
    CODE.get_or_init(|| {
        LdpcCode::from_qc_spec("CCSDS C2 (8176,7156)", spec())
            .expect("C2 construction is statically valid")
    })
    .clone()
}

/// The systematic encoder for the C2 code, constructed once and shared.
///
/// Building it performs Gaussian elimination on the dense 1022×8176 matrix,
/// which takes a moment; every later call is free.
pub fn encoder() -> Arc<Encoder> {
    static ENC: OnceLock<Arc<Encoder>> = OnceLock::new();
    ENC.get_or_init(|| Arc::new(Encoder::new(&code()).expect("C2 has positive dimension")))
        .clone()
}

/// Encodes a CCSDS frame of [`K_INFO`] information bits.
///
/// The code dimension is [`K_DIM`] = [`K_INFO`] + 2; the CCSDS profile pins
/// the two extra degrees of freedom (which fall in the parity region of the
/// matrix) to zero. `info` bytes are interpreted as bits (non-zero = 1).
///
/// # Errors
///
/// Returns [`crate::EncodeError::MessageLength`] if
/// `info.len() != K_INFO`.
pub fn encode_frame(info: &[u8]) -> Result<gf2::BitVec, crate::EncodeError> {
    if info.len() != K_INFO {
        return Err(crate::EncodeError::MessageLength {
            expected: K_INFO,
            actual: info.len(),
        });
    }
    let enc = encoder();
    // Message layout: the encoder's free columns, ascending. The first
    // K_INFO free columns are the systematic information positions; any
    // remaining free columns are pinned to zero by the profile.
    let mut message = vec![0u8; enc.dimension()];
    message[..K_INFO].copy_from_slice(info);
    enc.encode_bits(&message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::BitVec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn table_has_distinct_in_range_positions() {
        for row in &TABLE {
            for pair in row {
                assert!(pair[0] < pair[1], "positions must be distinct and sorted");
                assert!((pair[1] as usize) < CIRCULANT_SIZE);
            }
        }
    }

    #[test]
    fn structure_matches_paper_section_2_2() {
        let code = code();
        let h = code.h();
        assert_eq!(h.rows(), M_CHECKS);
        assert_eq!(h.cols(), N);
        assert_eq!(h.nnz(), EDGES);
        // "The total row weight of the parity check matrix is 2 × 16, or 32."
        for r in 0..h.rows() {
            assert_eq!(h.row_weight(r), 32, "row {r}");
        }
        // "The total column weight of the parity check matrix is four."
        for (c, w) in h.col_weights().into_iter().enumerate() {
            assert_eq!(w, 4, "col {c}");
        }
    }

    #[test]
    fn rank_gives_8176_7156_code() {
        let code = code();
        assert_eq!(code.rank(), 1020);
        assert_eq!(code.dimension(), K_DIM);
        assert!((code.rate() - K_DIM as f64 / N as f64).abs() < 1e-12);
    }

    #[test]
    fn encoder_is_systematic_in_information_region() {
        let enc = encoder();
        assert_eq!(enc.dimension(), K_DIM);
        // The first K_INFO free columns are exactly 0..K_INFO: the code is
        // systematic in the information region, as the CCSDS profile needs.
        let info_region: Vec<u32> = enc.info_positions()[..K_INFO].to_vec();
        assert_eq!(info_region, (0..K_INFO as u32).collect::<Vec<_>>());
        // The two surplus degrees of freedom live in the parity region.
        for &c in &enc.info_positions()[K_INFO..] {
            assert!((c as usize) >= N - M_CHECKS);
        }
    }

    #[test]
    fn encode_frame_roundtrip_and_validity() {
        let mut rng = StdRng::seed_from_u64(0xC2);
        let info: Vec<u8> = (0..K_INFO).map(|_| rng.gen_range(0..2u8)).collect();
        let cw = encode_frame(&info).unwrap();
        assert_eq!(cw.len(), N);
        assert!(code().is_codeword(&cw));
        // Systematic: information bits appear in the first K_INFO positions.
        for (i, &b) in info.iter().enumerate() {
            assert_eq!(u8::from(cw.get(i)), b, "info bit {i}");
        }
    }

    #[test]
    fn encode_frame_rejects_wrong_length() {
        assert!(encode_frame(&[0u8; 10]).is_err());
    }

    #[test]
    fn zero_frame_encodes_to_zero() {
        let cw = encode_frame(&vec![0u8; K_INFO]).unwrap();
        assert!(cw.is_zero());
        assert!(code().is_codeword(&BitVec::zeros(N)));
    }

    #[test]
    fn girth_is_at_least_six() {
        // The CCSDS construction avoids 4-cycles; sample a few bit nodes.
        let code = code();
        let g = code.graph().girth_from(&[0, 100, 511, 4000, 8175]);
        if let Some(girth) = g {
            assert!(girth >= 6, "found girth {girth} < 6");
        }
    }
}
