//! Concrete code constructions.
//!
//! * [`ccsds_c2`] — the CCSDS 131.1-O-2 near-earth (8176, 7156) code that is
//!   the target of the paper.
//! * [`small`] — structurally similar but much smaller codes used by tests,
//!   quick examples, and fast benchmark variants.

pub mod ccsds_c2;
pub mod small;
