//! Concrete code constructions.
//!
//! * [`ccsds_c2`] — the CCSDS 131.1-O-2 near-earth (8176, 7156) code that is
//!   the target of the paper.
//! * [`ar4ja`] — the AR4JA deep-space protograph family (the paper's §6
//!   future work), historically the `ldpc-ar4ja` crate.
//! * [`small`] — structurally similar but much smaller codes used by tests,
//!   quick examples, and fast benchmark variants.
//!
//! All of them are reachable declaratively through the
//! [`CodeSpec`](crate::CodeSpec) registry (`demo`, `c2`,
//! `ar4ja:r=1/2,k=1024`, `shortened:c2,k=4096`).

pub mod ar4ja;
pub mod ccsds_c2;
pub mod small;
