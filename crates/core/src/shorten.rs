//! Code shortening: deriving lower-rate sub-codes from a mother code.
//!
//! The CCSDS C2 code is itself "a shortened code based on a (8176, 7156)
//! LDPC code" (paper §2.2) — the transmission profile pins two degrees of
//! freedom. This module generalizes the mechanism: a [`ShortenedCode`]
//! pins a chosen set of information positions to zero, which lowers the
//! rate while keeping the mother code's parity-check matrix, decoder, and
//! hardware untouched (shortened positions simply enter the decoder as
//! perfectly known bits with a large LLR).

use crate::{EncodeError, Encoder, LdpcCode};
use gf2::BitVec;
use std::sync::Arc;

/// LLR magnitude injected for a known (shortened) position.
const KNOWN_BIT_LLR: f32 = 64.0;

/// A shortened view of a mother code: the first `shortened` information
/// positions are pinned to zero and not transmitted.
///
/// Shortened codes are also registered in the [`CodeSpec`](crate::CodeSpec)
/// grammar (`shortened:c2,k=4096` names the C2 code shortened to 4096
/// information bits) and implement [`CodeHandle`](crate::CodeHandle), so the
/// Monte-Carlo scenario engine drives them like any other code.
///
/// # Example
///
/// ```
/// use ldpc_core::codes::small::demo_code;
/// use ldpc_core::{Encoder, ShortenedCode};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), ldpc_core::EncodeError> {
/// let code = demo_code();
/// let enc = Arc::new(Encoder::new(&code)?);
/// let k = enc.dimension();
/// let short = ShortenedCode::new(code, enc, 40)?;
/// assert_eq!(short.info_len(), k - 40);
/// assert!(short.rate() < short.mother_rate());
/// # Ok(())
/// # }
/// ```
pub struct ShortenedCode {
    code: Arc<LdpcCode>,
    encoder: Arc<Encoder>,
    shortened: usize,
    /// `pinned[b]` = codeword position `b` is pinned to zero — computed
    /// once so the per-frame LLR expansion in the Monte-Carlo hot loop
    /// stays allocation-free.
    pinned: Vec<bool>,
}

impl ShortenedCode {
    /// Creates a shortened code pinning the first `shortened` message
    /// coordinates of `encoder` to zero.
    ///
    /// The encoder is shared (`Arc`), so expensive encoders — the C2
    /// code's Gaussian elimination — are built once and reused across
    /// shortened views.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::MessageLength`] if `shortened` is not
    /// smaller than the code dimension.
    pub fn new(
        code: Arc<LdpcCode>,
        encoder: Arc<Encoder>,
        shortened: usize,
    ) -> Result<Self, EncodeError> {
        if shortened >= encoder.dimension() {
            return Err(EncodeError::MessageLength {
                expected: encoder.dimension(),
                actual: shortened,
            });
        }
        let mut pinned = vec![false; code.n()];
        for &p in &encoder.info_positions()[..shortened] {
            pinned[p as usize] = true;
        }
        Ok(Self {
            code,
            encoder,
            shortened,
            pinned,
        })
    }

    /// The mother code.
    pub fn code(&self) -> &Arc<LdpcCode> {
        &self.code
    }

    /// Number of pinned information positions.
    pub fn shortened(&self) -> usize {
        self.shortened
    }

    /// Transmittable information bits per frame.
    pub fn info_len(&self) -> usize {
        self.encoder.dimension() - self.shortened
    }

    /// Transmitted codeword length (shortened positions are withheld).
    pub fn transmitted_len(&self) -> usize {
        self.code.n() - self.shortened
    }

    /// Rate of the shortened code.
    pub fn rate(&self) -> f64 {
        self.info_len() as f64 / self.transmitted_len() as f64
    }

    /// Rate of the mother code.
    pub fn mother_rate(&self) -> f64 {
        self.code.rate()
    }

    /// Codeword positions that are pinned (known zero, not transmitted).
    pub fn pinned_positions(&self) -> Vec<u32> {
        self.encoder.info_positions()[..self.shortened].to_vec()
    }

    /// The precomputed per-position pinned mask (`mask[b]` = position
    /// `b` is pinned) — the single source the LLR expansion and the
    /// `CodeHandle` transmission profile both read.
    pub(crate) fn pinned_mask(&self) -> &[bool] {
        &self.pinned
    }

    /// Encodes `info` (length [`info_len`](Self::info_len)) into a full
    /// mother-code codeword whose pinned positions are zero.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::MessageLength`] on length mismatch.
    pub fn encode(&self, info: &[u8]) -> Result<BitVec, EncodeError> {
        if info.len() != self.info_len() {
            return Err(EncodeError::MessageLength {
                expected: self.info_len(),
                actual: info.len(),
            });
        }
        let mut message = vec![0u8; self.encoder.dimension()];
        message[self.shortened..].copy_from_slice(info);
        self.encoder.encode_bits(&message)
    }

    /// Expands received LLRs of the transmitted positions into full-length
    /// LLRs, injecting the known-zero certainty at pinned positions.
    ///
    /// Transmitted positions are all codeword positions except the pinned
    /// ones, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != self.transmitted_len()`.
    pub fn expand_llrs(&self, received: &[f32]) -> Vec<f32> {
        let mut full = Vec::with_capacity(self.code.n());
        self.expand_llrs_into(received, &mut full);
        full
    }

    /// [`expand_llrs`](Self::expand_llrs), appending to `out` instead of
    /// allocating — the form the Monte-Carlo engine uses to fill one
    /// frame block without per-frame allocation.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != self.transmitted_len()`.
    pub fn expand_llrs_into(&self, received: &[f32], out: &mut Vec<f32>) {
        assert_eq!(
            received.len(),
            self.transmitted_len(),
            "received LLR length mismatch"
        );
        out.reserve(self.code.n());
        let mut it = received.iter();
        for &is_pinned in &self.pinned {
            if is_pinned {
                out.push(KNOWN_BIT_LLR);
            } else {
                out.push(*it.next().expect("length checked"));
            }
        }
    }

    /// Extracts the transmittable information bits from a decoded
    /// mother-code codeword.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len()` differs from the mother code length.
    pub fn extract_info(&self, codeword: &BitVec) -> BitVec {
        let msg = self.encoder.extract_message(codeword);
        msg.slice(self.shortened, self.info_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::small::demo_code;
    use crate::{Decoder, MinSumConfig, MinSumDecoder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn shortened(by: usize) -> ShortenedCode {
        let code = demo_code();
        let enc = Arc::new(Encoder::new(&code).unwrap());
        ShortenedCode::new(code, enc, by).unwrap()
    }

    #[test]
    fn dimensions_and_rate_shrink() {
        let s = shortened(40);
        assert_eq!(s.shortened(), 40);
        assert_eq!(
            s.info_len() + 40,
            Encoder::new(&demo_code()).unwrap().dimension()
        );
        assert_eq!(s.transmitted_len(), demo_code().n() - 40);
        assert!(s.rate() < s.mother_rate());
        assert_eq!(s.pinned_positions().len(), 40);
    }

    #[test]
    fn encoded_frames_have_zero_pinned_positions() {
        let s = shortened(30);
        let mut rng = StdRng::seed_from_u64(50);
        let info: Vec<u8> = (0..s.info_len()).map(|_| rng.gen_range(0..2u8)).collect();
        let cw = s.encode(&info).unwrap();
        assert!(s.code().is_codeword(&cw));
        for p in s.pinned_positions() {
            assert!(!cw.get(p as usize), "pinned position {p} not zero");
        }
        assert_eq!(s.extract_info(&cw).to_bits(), info);
    }

    #[test]
    fn shortened_roundtrip_through_noisy_channel() {
        let s = shortened(40);
        let mut rng = StdRng::seed_from_u64(51);
        let info: Vec<u8> = (0..s.info_len()).map(|_| rng.gen_range(0..2u8)).collect();
        let cw = s.encode(&info).unwrap();
        // Transmit only the unpinned positions with mild noise.
        let pinned: std::collections::HashSet<u32> = s.pinned_positions().into_iter().collect();
        let received: Vec<f32> = (0..s.code().n())
            .filter(|i| !pinned.contains(&(*i as u32)))
            .map(|i| {
                let sign = if cw.get(i) { -1.0f32 } else { 1.0 };
                sign * (2.0 + rng.gen_range(-0.8f32..0.8))
            })
            .collect();
        let llrs = s.expand_llrs(&received);
        let mut dec = MinSumDecoder::new(s.code().clone(), MinSumConfig::normalized(1.25));
        let out = dec.decode(&llrs, 40);
        assert!(out.converged);
        assert_eq!(s.extract_info(&out.hard_decision).to_bits(), info);
    }

    #[test]
    fn shortening_improves_robustness() {
        // At equal channel noise, the shortened (lower-rate, with known
        // bits) code should fail no more often than the mother code.
        let mother = demo_code();
        let s = shortened(60);
        let mut rng = StdRng::seed_from_u64(52);
        let mut mother_fails = 0;
        let mut short_fails = 0;
        for _ in 0..40 {
            let noise: Vec<f32> = (0..mother.n())
                .map(|_| 1.2 + rng.gen_range(-1.6f32..1.0))
                .collect();
            let mut dec = MinSumDecoder::new(mother.clone(), MinSumConfig::normalized(1.25));
            if !dec.decode(&noise, 30).converged {
                mother_fails += 1;
            }
            // Same noise on the transmitted positions, certainty on pinned.
            let pinned: std::collections::HashSet<u32> = s.pinned_positions().into_iter().collect();
            let received: Vec<f32> = (0..mother.n())
                .filter(|i| !pinned.contains(&(*i as u32)))
                .map(|i| noise[i])
                .collect();
            let llrs = s.expand_llrs(&received);
            let mut dec = MinSumDecoder::new(mother.clone(), MinSumConfig::normalized(1.25));
            if !dec.decode(&llrs, 30).converged {
                short_fails += 1;
            }
        }
        assert!(
            short_fails <= mother_fails,
            "shortened failed {short_fails} vs mother {mother_fails}"
        );
    }

    #[test]
    fn over_shortening_rejected() {
        let code = demo_code();
        let enc = Arc::new(Encoder::new(&code).unwrap());
        let k = enc.dimension();
        assert!(ShortenedCode::new(code, enc, k).is_err());
    }

    #[test]
    fn wrong_info_length_rejected() {
        let s = shortened(10);
        assert!(s.encode(&[0u8; 3]).is_err());
    }
}
