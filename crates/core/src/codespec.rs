//! Declarative code specification: one grammar, one registry, one front
//! door for every code family in the workspace — the code-side mirror of
//! [`DecoderSpec`](crate::DecoderSpec).
//!
//! A spec is a small string —
//!
//! ```text
//!   family[:param[,param...]]
//! ```
//!
//! | Spec | Code | Parameters |
//! |------|------|------------|
//! | `demo` | [`codes::small::demo_code`] — (248, ~188) QC demo code | — |
//! | `c2` | [`codes::ccsds_c2`] — CCSDS 131.1-O-2 (8176, 7156) | — |
//! | `ar4ja:r=1/2,k=1024` | [`Ar4jaCode`] deep-space protograph lift | rate ∈ {1/2, 2/3, 4/5} (default 1/2), info length k (default 1024) |
//! | `shortened:c2,k=4096` | [`ShortenedCode`] over a base code | base ∈ {demo, c2}, remaining info bits k (required) |
//!
//! [`codes::small::demo_code`]: crate::codes::small::demo_code
//! [`codes::ccsds_c2`]: crate::codes::ccsds_c2
//!
//! Parsing ([`FromStr`]) and rendering ([`Display`](fmt::Display)) round
//! trip with canonical output (default parameters are omitted), pinned by
//! proptests. [`CodeSpec::all_codes`] enumerates one canonical spec per
//! registered family, and [`CodeSpec::build`] constructs any of them
//! behind the object-safe [`CodeHandle`] trait — the code-side handle the
//! Monte-Carlo scenario engine (`ldpc_sim`) drives: the full decode
//! graph, the transmitted-position profile (puncturing / shortening), and
//! the received-LLR expansion back to full decoder input.
//!
//! ```
//! use ldpc_core::CodeSpec;
//!
//! let spec = CodeSpec::parse("shortened:demo,k=120")?;
//! let handle = spec.build()?;
//! assert_eq!(handle.code().n(), 248);          // mother code length
//! assert!(handle.transmitted_len() < 248);     // pinned bits withheld
//! assert_eq!(spec.to_string(), "shortened:demo,k=120");
//! # Ok::<(), ldpc_core::CodeSpecError>(())
//! ```

use crate::codes::ar4ja::{Ar4jaCode, Ar4jaRate};
use crate::codes::{ccsds_c2, small::demo_code};
use crate::{Encoder, LdpcCode, ShortenedCode};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Default AR4JA information block length (the smallest CCSDS 131.0-B
/// size).
pub const DEFAULT_AR4JA_K: usize = 1024;

/// Seed of the deterministic AR4JA circulant lift (documented
/// substitution, DESIGN.md §3.2: seeded selection replaces the blue
/// book's shift tables).
pub const AR4JA_LIFT_SEED: u64 = 0x4A4A;

/// Object-safe handle to a built code: the decode graph plus the
/// transmission profile.
///
/// This is what [`CodeSpec::build`] returns and what the Monte-Carlo
/// scenario engine consumes. Plain codes transmit every bit; shortened
/// codes withhold pinned (known-zero) positions, AR4JA codes withhold
/// the punctured block — the handle hides that difference behind four
/// questions: what is the decode graph, which positions travel over the
/// channel, at what effective rate, and how do received LLRs expand back
/// to full-length decoder input.
pub trait CodeHandle: Send + Sync {
    /// The full decode graph, including punctured / pinned positions.
    fn code(&self) -> &Arc<LdpcCode>;

    /// Number of codeword positions that are actually transmitted.
    fn transmitted_len(&self) -> usize;

    /// Effective code rate over the transmitted positions (drives the
    /// Eb/N0 → σ conversion).
    fn rate(&self) -> f64;

    /// Transmitted codeword positions, ascending — the positions error
    /// counting runs over.
    fn transmitted_positions(&self) -> Vec<u32>;

    /// Expands received LLRs (one per transmitted position, in the order
    /// of [`transmitted_positions`](Self::transmitted_positions)) to
    /// full-length decoder input, appending to `out`: pinned positions
    /// get known-bit certainty, punctured positions get erasures.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != self.transmitted_len()`.
    fn expand_llrs_into(&self, received: &[f32], out: &mut Vec<f32>);

    /// The quasi-cyclic block structure of the decode graph, if the
    /// transmission profile preserves it.
    ///
    /// The default is `None`: shortening pins positions and AR4JA
    /// punctures them, so the transmitted code no longer has the clean
    /// block-circulant form even though the underlying graph may.
    /// Handles that transmit the full codeword (e.g. [`PlainCode`])
    /// forward to [`LdpcCode::qc_structure`].
    fn qc_structure(&self) -> Option<&crate::QcLdpcSpec> {
        None
    }
}

/// A code that transmits every codeword position — the [`CodeHandle`]
/// adapter for plain [`LdpcCode`]s (`demo`, `c2`, or any hand-built
/// code driven through `ldpc_sim`'s explicit-factory doors).
pub struct PlainCode {
    code: Arc<LdpcCode>,
}

impl PlainCode {
    /// Wraps a code whose transmission profile is the identity.
    pub fn new(code: Arc<LdpcCode>) -> Self {
        Self { code }
    }
}

impl CodeHandle for PlainCode {
    fn code(&self) -> &Arc<LdpcCode> {
        &self.code
    }

    fn transmitted_len(&self) -> usize {
        self.code.n()
    }

    fn rate(&self) -> f64 {
        self.code.rate()
    }

    fn transmitted_positions(&self) -> Vec<u32> {
        (0..self.code.n() as u32).collect()
    }

    fn expand_llrs_into(&self, received: &[f32], out: &mut Vec<f32>) {
        assert_eq!(
            received.len(),
            self.code.n(),
            "received LLR length mismatch"
        );
        out.extend_from_slice(received);
    }

    fn qc_structure(&self) -> Option<&crate::QcLdpcSpec> {
        self.code.qc_structure()
    }
}

impl CodeHandle for ShortenedCode {
    fn code(&self) -> &Arc<LdpcCode> {
        // Inherent methods shadow the trait's, so these calls dispatch to
        // the existing implementations.
        self.code()
    }

    fn transmitted_len(&self) -> usize {
        self.transmitted_len()
    }

    fn rate(&self) -> f64 {
        self.rate()
    }

    fn transmitted_positions(&self) -> Vec<u32> {
        self.pinned_mask()
            .iter()
            .enumerate()
            .filter(|(_, &is_pinned)| !is_pinned)
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn expand_llrs_into(&self, received: &[f32], out: &mut Vec<f32>) {
        self.expand_llrs_into(received, out);
    }
}

impl CodeHandle for Ar4jaCode {
    fn code(&self) -> &Arc<LdpcCode> {
        self.code()
    }

    fn transmitted_len(&self) -> usize {
        self.transmitted_len()
    }

    fn rate(&self) -> f64 {
        self.rate()
    }

    fn transmitted_positions(&self) -> Vec<u32> {
        (0..self.transmitted_len() as u32).collect()
    }

    fn expand_llrs_into(&self, received: &[f32], out: &mut Vec<f32>) {
        assert_eq!(
            received.len(),
            self.transmitted_len(),
            "received LLR length mismatch"
        );
        out.reserve(self.full_len());
        out.extend_from_slice(received);
        out.extend(std::iter::repeat_n(
            0.0f32,
            self.full_len() - self.transmitted_len(),
        ));
    }
}

/// Base code of a `shortened:<base>,k=N` spec.
///
/// Restricted to the keyword-only families so the grammar stays
/// unambiguous (an `ar4ja:...` base would nest comma-separated
/// parameters inside comma-separated parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShortenedBase {
    /// The (248, ~188) demo code.
    Demo,
    /// The CCSDS C2 (8176, 7156) code.
    C2,
}

impl ShortenedBase {
    /// The grammar keyword of this base code.
    pub fn keyword(&self) -> &'static str {
        match self {
            Self::Demo => "demo",
            Self::C2 => "c2",
        }
    }
}

/// A complete code specification. See the module docs for the grammar.
///
/// Construct by parsing ([`CodeSpec::parse`] / [`FromStr`]) — which
/// validates — or from the variants directly (then
/// [`build`](CodeSpec::build) reports combinations the parser would have
/// rejected as errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeSpec {
    /// The (248, ~188) QC demo code — C2's structure at 1/33 scale.
    Demo,
    /// The CCSDS 131.1-O-2 near-earth (8176, 7156) code.
    C2,
    /// An AR4JA deep-space protograph lift.
    Ar4ja {
        /// Nominal rate of the protograph family.
        rate: Ar4jaRate,
        /// Information block length; the circulant size is
        /// `k / (var_blocks − 3)`.
        k: usize,
    },
    /// A shortened view of a base code.
    Shortened {
        /// The mother code.
        base: ShortenedBase,
        /// Remaining (transmittable) information bits.
        k: usize,
    },
}

impl CodeSpec {
    /// Parses a spec string — alias of the [`FromStr`] impl.
    ///
    /// # Errors
    ///
    /// Returns [`CodeSpecError`] with an actionable message on unknown
    /// families, malformed parameters, or out-of-range sizes.
    pub fn parse(s: &str) -> Result<Self, CodeSpecError> {
        s.parse()
    }

    /// The grammar keywords of every registered code family, in registry
    /// order.
    pub fn family_names() -> &'static [&'static str] {
        &["demo", "c2", "ar4ja", "shortened"]
    }

    /// One canonical spec per registered code family: the two plain
    /// codes, the three AR4JA rates at the default k = 1024, and a
    /// shortened C2 sub-code.
    ///
    /// The docs cookbook (`docs/scenarios.md`) tables these entries; a
    /// family registered here without a doc row (or vice versa) fails
    /// the docs link-check test.
    pub fn all_codes() -> Vec<CodeSpec> {
        vec![
            CodeSpec::Demo,
            CodeSpec::C2,
            CodeSpec::Ar4ja {
                rate: Ar4jaRate::Half,
                k: DEFAULT_AR4JA_K,
            },
            CodeSpec::Ar4ja {
                rate: Ar4jaRate::TwoThirds,
                k: DEFAULT_AR4JA_K,
            },
            CodeSpec::Ar4ja {
                rate: Ar4jaRate::FourFifths,
                k: DEFAULT_AR4JA_K,
            },
            CodeSpec::Shortened {
                base: ShortenedBase::C2,
                k: 4096,
            },
        ]
    }

    /// Validates parameters (AR4JA size divisibility, positive k).
    fn validated(self) -> Result<Self, CodeSpecError> {
        match self {
            CodeSpec::Ar4ja { rate, k } => {
                let info_blocks = rate.var_blocks() - 3;
                if k == 0 || k % info_blocks != 0 || k / info_blocks < 8 {
                    return Err(CodeSpecError::InvalidParameter {
                        family: "ar4ja",
                        value: format!("k={k}"),
                        expected:
                            "k must be a positive multiple of the rate's info blocks (2 for r=1/2, \
                             4 for r=2/3, 8 for r=4/5) with circulant size k/blocks >= 8 \
                             (e.g. ar4ja:r=1/2,k=1024)",
                    });
                }
            }
            CodeSpec::Shortened { k: 0, .. } => {
                return Err(CodeSpecError::InvalidParameter {
                    family: "shortened",
                    value: "k=0".to_string(),
                    expected: "a positive remaining info length (e.g. shortened:c2,k=4096)",
                });
            }
            _ => {}
        }
        Ok(self)
    }

    /// Constructs the specified code behind the object-safe
    /// [`CodeHandle`] front door.
    ///
    /// `demo` and `c2` reuse the process-wide cached code (and, for
    /// shortened views, the cached C2 encoder); AR4JA codes are lifted
    /// deterministically from [`AR4JA_LIFT_SEED`], so equal specs always
    /// build equal codes.
    ///
    /// # Errors
    ///
    /// Returns [`CodeSpecError`] for parameter combinations the parser
    /// rejects, or for a `shortened` k that is not below the base code's
    /// dimension (only checkable once the base encoder exists).
    pub fn build(&self) -> Result<Arc<dyn CodeHandle>, CodeSpecError> {
        self.validated()?;
        Ok(match *self {
            CodeSpec::Demo => Arc::new(PlainCode::new(demo_code())),
            CodeSpec::C2 => Arc::new(PlainCode::new(ccsds_c2::code())),
            CodeSpec::Ar4ja { rate, k } => {
                let m = k / (rate.var_blocks() - 3);
                Arc::new(Ar4jaCode::build(rate, m, AR4JA_LIFT_SEED))
            }
            CodeSpec::Shortened { base, k } => {
                let (code, encoder) = match base {
                    ShortenedBase::Demo => {
                        let code = demo_code();
                        let enc = Arc::new(
                            Encoder::new(&code).expect("demo code has positive dimension"),
                        );
                        (code, enc)
                    }
                    ShortenedBase::C2 => (ccsds_c2::code(), ccsds_c2::encoder()),
                };
                let dim = encoder.dimension();
                if k >= dim {
                    return Err(CodeSpecError::InvalidParameter {
                        family: "shortened",
                        value: format!("k={k} (base dimension {dim})"),
                        expected: "a remaining info length below the base code's dimension \
                                   (e.g. shortened:c2,k=4096)",
                    });
                }
                Arc::new(
                    ShortenedCode::new(code, encoder, dim - k)
                        .expect("shortened count below dimension"),
                )
            }
        })
    }
}

impl fmt::Display for CodeSpec {
    /// Canonical rendering: parameters equal to their defaults are
    /// omitted, so `parse("ar4ja:r=1/2,k=1024").to_string() == "ar4ja"`.
    /// Always round trips through [`FromStr`] to an equal spec.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeSpec::Demo => write!(f, "demo"),
            CodeSpec::C2 => write!(f, "c2"),
            CodeSpec::Ar4ja { rate, k } => {
                let mut parts = Vec::new();
                if *rate != Ar4jaRate::Half {
                    parts.push(format!("r={}", rate_keyword(*rate)));
                }
                if *k != DEFAULT_AR4JA_K {
                    parts.push(format!("k={k}"));
                }
                if parts.is_empty() {
                    write!(f, "ar4ja")
                } else {
                    write!(f, "ar4ja:{}", parts.join(","))
                }
            }
            CodeSpec::Shortened { base, k } => {
                write!(f, "shortened:{},k={}", base.keyword(), k)
            }
        }
    }
}

/// The grammar rendering of an AR4JA rate.
fn rate_keyword(rate: Ar4jaRate) -> &'static str {
    match rate {
        Ar4jaRate::Half => "1/2",
        Ar4jaRate::TwoThirds => "2/3",
        Ar4jaRate::FourFifths => "4/5",
    }
}

fn parse_rate(s: &str) -> Result<Ar4jaRate, CodeSpecError> {
    match s {
        "1/2" => Ok(Ar4jaRate::Half),
        "2/3" => Ok(Ar4jaRate::TwoThirds),
        "4/5" => Ok(Ar4jaRate::FourFifths),
        other => Err(CodeSpecError::InvalidParameter {
            family: "ar4ja",
            value: format!("r={other}"),
            expected: "one of the CCSDS rates 1/2, 2/3, 4/5 (e.g. ar4ja:r=1/2,k=1024)",
        }),
    }
}

fn parse_usize(family: &'static str, key: &str, value: &str) -> Result<usize, CodeSpecError> {
    value.parse().map_err(|_| CodeSpecError::InvalidParameter {
        family,
        value: format!("{key}={value}"),
        expected: "a positive integer",
    })
}

impl FromStr for CodeSpec {
    type Err = CodeSpecError;

    fn from_str(s: &str) -> Result<Self, CodeSpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(CodeSpecError::Empty);
        }
        if let Some(at) = s.find('@') {
            return Err(CodeSpecError::UnsupportedModifier(s[at..].to_string()));
        }
        let (keyword, param) = match s.split_once(':') {
            Some((k, p)) => (k, Some(p)),
            None => (s, None),
        };
        let no_param = |spec: CodeSpec, family: &'static str| match param {
            None => Ok(spec),
            Some(p) => Err(CodeSpecError::UnexpectedParameter {
                family,
                value: p.to_string(),
            }),
        };
        let spec = match keyword {
            "demo" | "small" => no_param(CodeSpec::Demo, "demo")?,
            "c2" | "ccsds-c2" => no_param(CodeSpec::C2, "c2")?,
            "ar4ja" => {
                let mut rate = None;
                let mut k = None;
                for part in param.into_iter().flat_map(|p| p.split(',')) {
                    let part = part.trim();
                    match part.split_once('=') {
                        Some(("r", v)) if rate.is_none() => rate = Some(parse_rate(v)?),
                        Some(("k", v)) if k.is_none() => {
                            k = Some(parse_usize("ar4ja", "k", v)?);
                        }
                        Some(("r" | "k", _)) => {
                            return Err(CodeSpecError::InvalidParameter {
                                family: "ar4ja",
                                value: part.to_string(),
                                expected: "each of r=, k= at most once",
                            });
                        }
                        _ => {
                            return Err(CodeSpecError::InvalidParameter {
                                family: "ar4ja",
                                value: part.to_string(),
                                expected: "r=<1/2|2/3|4/5> and/or k=<info bits> \
                                           (e.g. ar4ja:r=1/2,k=1024)",
                            });
                        }
                    }
                }
                CodeSpec::Ar4ja {
                    rate: rate.unwrap_or(Ar4jaRate::Half),
                    k: k.unwrap_or(DEFAULT_AR4JA_K),
                }
            }
            "shortened" | "short" => {
                let param = param.ok_or(CodeSpecError::InvalidParameter {
                    family: "shortened",
                    value: String::new(),
                    expected: "a base code and info length (e.g. shortened:c2,k=4096)",
                })?;
                let mut parts = param.split(',').map(str::trim);
                let base = match parts.next() {
                    Some("demo") | Some("small") => ShortenedBase::Demo,
                    Some("c2") | Some("ccsds-c2") => ShortenedBase::C2,
                    other => {
                        return Err(CodeSpecError::UnknownBase(
                            other.unwrap_or_default().to_string(),
                        ))
                    }
                };
                let k = match (parts.next(), parts.next()) {
                    (Some(kv), None) => match kv.split_once('=') {
                        Some(("k", v)) => parse_usize("shortened", "k", v)?,
                        _ => {
                            return Err(CodeSpecError::InvalidParameter {
                                family: "shortened",
                                value: kv.to_string(),
                                expected: "k=<remaining info bits> (e.g. shortened:c2,k=4096)",
                            })
                        }
                    },
                    _ => {
                        return Err(CodeSpecError::InvalidParameter {
                            family: "shortened",
                            value: param.to_string(),
                            expected: "exactly <base>,k=N (e.g. shortened:c2,k=4096)",
                        })
                    }
                };
                CodeSpec::Shortened { base, k }
            }
            other => return Err(CodeSpecError::UnknownFamily(other.to_string())),
        };
        spec.validated()
    }
}

/// Error produced while parsing, validating, or building a [`CodeSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeSpecError {
    /// The spec string was empty.
    Empty,
    /// The family keyword is not registered.
    UnknownFamily(String),
    /// The base of a `shortened:` spec is not a keyword-only family.
    UnknownBase(String),
    /// A parameter failed to parse or is out of range.
    InvalidParameter {
        /// Family keyword the parameter belongs to.
        family: &'static str,
        /// The offending raw value.
        value: String,
        /// What a valid value looks like.
        expected: &'static str,
    },
    /// A parameter was given to a family that takes none.
    UnexpectedParameter {
        /// Family keyword.
        family: &'static str,
        /// The offending raw value.
        value: String,
    },
    /// Code specs take no `@modifier`s (those belong to channel and
    /// decoder specs).
    UnsupportedModifier(String),
}

impl fmt::Display for CodeSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(
                f,
                "empty code spec; expected family[:param,...], e.g. c2 or ar4ja:r=1/2,k=1024"
            ),
            Self::UnknownFamily(name) => write!(
                f,
                "unknown code family {name:?}; known families: {}",
                CodeSpec::family_names().join(", ")
            ),
            Self::UnknownBase(name) => write!(
                f,
                "unknown shortening base {name:?}; supported bases: demo, c2"
            ),
            Self::InvalidParameter {
                family,
                value,
                expected,
            } => write!(
                f,
                "invalid parameter {value:?} for {family}: expected {expected}"
            ),
            Self::UnexpectedParameter { family, value } => {
                write!(f, "{family} takes no parameter, but got {value:?}")
            }
            Self::UnsupportedModifier(value) => write!(
                f,
                "code specs take no modifiers, but got {value:?} \
                 (@quant belongs to channel specs, @batch/@bitslice to decoder specs)"
            ),
        }
    }
}

impl std::error::Error for CodeSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_family_keyword_with_defaults() {
        assert_eq!(CodeSpec::parse("demo").unwrap(), CodeSpec::Demo);
        assert_eq!(CodeSpec::parse("c2").unwrap(), CodeSpec::C2);
        assert_eq!(
            CodeSpec::parse("ar4ja").unwrap(),
            CodeSpec::Ar4ja {
                rate: Ar4jaRate::Half,
                k: DEFAULT_AR4JA_K
            }
        );
    }

    #[test]
    fn parses_parameters_in_any_order() {
        let want = CodeSpec::Ar4ja {
            rate: Ar4jaRate::TwoThirds,
            k: 2048,
        };
        assert_eq!(CodeSpec::parse("ar4ja:r=2/3,k=2048").unwrap(), want);
        assert_eq!(CodeSpec::parse("ar4ja:k=2048,r=2/3").unwrap(), want);
        assert_eq!(
            CodeSpec::parse("shortened:c2,k=4096").unwrap(),
            CodeSpec::Shortened {
                base: ShortenedBase::C2,
                k: 4096
            }
        );
    }

    #[test]
    fn aliases_parse_to_the_same_family() {
        assert_eq!(
            CodeSpec::parse("small").unwrap(),
            CodeSpec::parse("demo").unwrap()
        );
        assert_eq!(
            CodeSpec::parse("ccsds-c2").unwrap(),
            CodeSpec::parse("c2").unwrap()
        );
        assert_eq!(
            CodeSpec::parse("short:demo,k=100").unwrap(),
            CodeSpec::parse("shortened:demo,k=100").unwrap()
        );
    }

    #[test]
    fn display_omits_default_parameters_only() {
        assert_eq!(
            CodeSpec::parse("ar4ja:r=1/2,k=1024").unwrap().to_string(),
            "ar4ja"
        );
        assert_eq!(
            CodeSpec::parse("ar4ja:r=2/3,k=1024").unwrap().to_string(),
            "ar4ja:r=2/3"
        );
        assert_eq!(
            CodeSpec::parse("ar4ja:k=2048").unwrap().to_string(),
            "ar4ja:k=2048"
        );
        assert_eq!(
            CodeSpec::parse("shortened:c2,k=4096").unwrap().to_string(),
            "shortened:c2,k=4096"
        );
    }

    #[test]
    fn registry_specs_roundtrip() {
        for spec in CodeSpec::all_codes() {
            let rendered = spec.to_string();
            assert_eq!(
                CodeSpec::parse(&rendered).unwrap(),
                spec,
                "{rendered} does not round trip"
            );
        }
    }

    #[test]
    fn errors_are_actionable() {
        let err = CodeSpec::parse("magic").unwrap_err();
        assert!(err.to_string().contains("known families"), "{err}");
        assert!(err.to_string().contains("ar4ja"), "{err}");

        let err = CodeSpec::parse("demo:8").unwrap_err();
        assert!(err.to_string().contains("takes no parameter"), "{err}");

        let err = CodeSpec::parse("ar4ja:r=3/4").unwrap_err();
        assert!(err.to_string().contains("1/2"), "{err}");

        let err = CodeSpec::parse("ar4ja:k=1001").unwrap_err();
        assert!(err.to_string().contains("multiple"), "{err}");

        let err = CodeSpec::parse("ar4ja:r=4/5,k=1004").unwrap_err();
        assert!(err.to_string().contains("multiple"), "{err}");

        let err = CodeSpec::parse("ar4ja:r=1/2,r=2/3").unwrap_err();
        assert!(err.to_string().contains("at most once"), "{err}");

        let err = CodeSpec::parse("shortened:zeta,k=10").unwrap_err();
        assert!(err.to_string().contains("demo, c2"), "{err}");

        let err = CodeSpec::parse("shortened:demo").unwrap_err();
        assert!(err.to_string().contains("k="), "{err}");

        let err = CodeSpec::parse("shortened:demo,k=0").unwrap_err();
        assert!(err.to_string().contains("positive"), "{err}");

        let err = CodeSpec::parse("demo@quant=5").unwrap_err();
        assert!(err.to_string().contains("no modifiers"), "{err}");

        assert_eq!(CodeSpec::parse("").unwrap_err(), CodeSpecError::Empty);
    }

    #[test]
    fn cheap_specs_build_with_consistent_profiles() {
        // The full registry (C2 encoder included) is built by the
        // integration suite; here the fast entries pin the handle
        // contract: positions ascending, expansion length = n.
        for spec_str in ["demo", "shortened:demo,k=120", "ar4ja:r=1/2,k=64"] {
            let spec = CodeSpec::parse(spec_str).unwrap();
            let handle = spec.build().unwrap_or_else(|e| panic!("{spec_str}: {e}"));
            let n = handle.code().n();
            let positions = handle.transmitted_positions();
            assert_eq!(positions.len(), handle.transmitted_len(), "{spec_str}");
            assert!(
                positions.windows(2).all(|w| w[0] < w[1]),
                "{spec_str}: positions not ascending"
            );
            assert!(positions.iter().all(|&p| (p as usize) < n), "{spec_str}");
            let tx = vec![1.5f32; handle.transmitted_len()];
            let mut full = Vec::new();
            handle.expand_llrs_into(&tx, &mut full);
            assert_eq!(full.len(), n, "{spec_str}: expansion length");
            // Transmitted positions carry the received values.
            for (i, &p) in positions.iter().enumerate() {
                let _ = i;
                assert_eq!(full[p as usize], 1.5, "{spec_str}: position {p}");
            }
            assert!(handle.rate() > 0.0 && handle.rate() < 1.0, "{spec_str}");
        }
    }

    #[test]
    fn shortened_build_rejects_oversized_k() {
        let spec = CodeSpec::Shortened {
            base: ShortenedBase::Demo,
            k: 10_000,
        };
        let Err(err) = spec.build() else {
            panic!("oversized k must be rejected")
        };
        assert!(err.to_string().contains("dimension"), "{err}");
    }

    #[test]
    fn ar4ja_builds_are_deterministic() {
        let spec = CodeSpec::parse("ar4ja:r=1/2,k=64").unwrap();
        let a = spec.build().unwrap();
        let b = spec.build().unwrap();
        assert_eq!(a.code().h(), b.code().h());
    }
}
