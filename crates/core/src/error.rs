//! Error types of the code-construction and encoding layers.

use std::error::Error;
use std::fmt;

/// Error produced when constructing an [`LdpcCode`](crate::LdpcCode).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// The parity-check matrix has no rows or no columns.
    EmptyMatrix,
    /// A check node (row of H) has no connected bit nodes.
    EmptyCheck {
        /// Index of the offending row.
        row: usize,
    },
    /// A bit node (column of H) participates in no parity check.
    UnprotectedBit {
        /// Index of the offending column.
        column: usize,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyMatrix => write!(f, "parity-check matrix has no rows or columns"),
            Self::EmptyCheck { row } => write!(f, "check node {row} has degree zero"),
            Self::UnprotectedBit { column } => {
                write!(f, "bit node {column} participates in no parity check")
            }
        }
    }
}

impl Error for CodeError {}

/// Error produced by [`Encoder`](crate::Encoder) construction or encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// The message length does not match the code dimension.
    MessageLength {
        /// Code dimension (expected message length).
        expected: usize,
        /// Supplied message length.
        actual: usize,
    },
    /// The parity-check matrix has full column rank: the code has
    /// dimension zero and nothing can be encoded.
    ZeroDimension,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MessageLength { expected, actual } => {
                write!(
                    f,
                    "message length {actual} does not match code dimension {expected}"
                )
            }
            Self::ZeroDimension => write!(f, "code has dimension zero"),
        }
    }
}

impl Error for EncodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let msgs = [
            CodeError::EmptyMatrix.to_string(),
            CodeError::EmptyCheck { row: 3 }.to_string(),
            CodeError::UnprotectedBit { column: 7 }.to_string(),
            EncodeError::MessageLength {
                expected: 4,
                actual: 5,
            }
            .to_string(),
            EncodeError::ZeroDimension.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<CodeError>();
        check::<EncodeError>();
    }
}
