//! Quasi-cyclic LDPC parity-check matrix specifications.

use gf2::{Circulant, SparseMatrix};
use rand::Rng;
use std::fmt;

/// A quasi-cyclic parity-check matrix: a block array of circulants.
///
/// The matrix is `block_rows × block_cols` blocks, each block a square
/// [`Circulant`] of dimension `circulant_size`. The CCSDS C2 near-earth code
/// uses a 2×16 array of 511×511 circulants of row weight two, giving the
/// 1022×8176 parity-check matrix of the paper's Figure 2.
///
/// # Example
///
/// ```
/// use ldpc_core::QcLdpcSpec;
/// use gf2::Circulant;
///
/// let mut spec = QcLdpcSpec::new(4, 1, 2);
/// spec.set_block(0, 0, Circulant::new(4, &[0, 1]));
/// spec.set_block(0, 1, Circulant::identity(4));
/// let h = spec.expand();
/// assert_eq!((h.rows(), h.cols()), (4, 8));
/// assert_eq!(h.nnz(), 4 * 2 + 4);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct QcLdpcSpec {
    circulant_size: usize,
    block_rows: usize,
    block_cols: usize,
    blocks: Vec<Circulant>, // row-major
}

impl QcLdpcSpec {
    /// Creates a spec with every block set to the zero circulant.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(circulant_size: usize, block_rows: usize, block_cols: usize) -> Self {
        assert!(circulant_size > 0, "circulant size must be positive");
        assert!(
            block_rows > 0 && block_cols > 0,
            "block dimensions must be positive"
        );
        Self {
            circulant_size,
            block_rows,
            block_cols,
            blocks: vec![Circulant::zero(circulant_size); block_rows * block_cols],
        }
    }

    /// Builds a spec from per-block first-row one positions.
    ///
    /// `first_rows[r][c]` lists the one positions of the first row of block
    /// `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the nested slice dimensions disagree with
    /// `block_rows × block_cols` or any position is out of range.
    pub fn from_first_rows(circulant_size: usize, first_rows: &[Vec<Vec<u32>>]) -> Self {
        let block_rows = first_rows.len();
        assert!(block_rows > 0, "need at least one block row");
        let block_cols = first_rows[0].len();
        let mut spec = Self::new(circulant_size, block_rows, block_cols);
        for (r, row) in first_rows.iter().enumerate() {
            assert_eq!(row.len(), block_cols, "ragged block row {r}");
            for (c, positions) in row.iter().enumerate() {
                spec.set_block(r, c, Circulant::new(circulant_size, positions));
            }
        }
        spec
    }

    /// Generates a random spec where every block has the given row weight.
    ///
    /// Used by tests and ablations to produce codes with the same regular
    /// structure as the CCSDS C2 code but different sizes.
    pub fn random<R: Rng + ?Sized>(
        rng: &mut R,
        circulant_size: usize,
        block_rows: usize,
        block_cols: usize,
        block_weight: usize,
    ) -> Self {
        assert!(
            block_weight <= circulant_size,
            "block weight cannot exceed circulant size"
        );
        let mut spec = Self::new(circulant_size, block_rows, block_cols);
        for r in 0..block_rows {
            for c in 0..block_cols {
                let mut positions = Vec::with_capacity(block_weight);
                while positions.len() < block_weight {
                    let p = rng.gen_range(0..circulant_size) as u32;
                    if !positions.contains(&p) {
                        positions.push(p);
                    }
                }
                spec.set_block(r, c, Circulant::new(circulant_size, &positions));
            }
        }
        spec
    }

    /// Sets block `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or the circulant size disagrees.
    pub fn set_block(&mut self, r: usize, c: usize, block: Circulant) {
        assert!(
            r < self.block_rows && c < self.block_cols,
            "block index out of range"
        );
        assert_eq!(block.size(), self.circulant_size, "circulant size mismatch");
        self.blocks[r * self.block_cols + c] = block;
    }

    /// Borrows block `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn block(&self, r: usize, c: usize) -> &Circulant {
        assert!(
            r < self.block_rows && c < self.block_cols,
            "block index out of range"
        );
        &self.blocks[r * self.block_cols + c]
    }

    /// Circulant dimension.
    pub fn circulant_size(&self) -> usize {
        self.circulant_size
    }

    /// Number of block rows.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of block columns.
    pub fn block_cols(&self) -> usize {
        self.block_cols
    }

    /// Total rows of the expanded matrix.
    pub fn rows(&self) -> usize {
        self.block_rows * self.circulant_size
    }

    /// Total columns of the expanded matrix.
    pub fn cols(&self) -> usize {
        self.block_cols * self.circulant_size
    }

    /// Expands the block description into a sparse parity-check matrix.
    pub fn expand(&self) -> SparseMatrix {
        let l = self.circulant_size;
        let mut rows: Vec<Vec<u32>> = Vec::with_capacity(self.rows());
        for br in 0..self.block_rows {
            for i in 0..l {
                let mut row = Vec::new();
                for bc in 0..self.block_cols {
                    let base = (bc * l) as u32;
                    row.extend(self.block(br, bc).row_ones_iter(i).map(|p| base + p));
                }
                row.sort_unstable();
                rows.push(row);
            }
        }
        SparseMatrix::from_rows(self.cols(), rows)
    }

    /// Detects circulant block structure in an arbitrary sparse matrix.
    ///
    /// Tries every divisor `L ≥ 2` of `gcd(rows, cols)` in descending
    /// order, reading candidate tap positions off the first row of each
    /// block row and verifying every remaining row is the corresponding
    /// cyclic shift. Returns the spec with the **largest** circulant size
    /// whose expansion reproduces `h` exactly, or `None` when the matrix
    /// has no non-trivial block-circulant form (every matrix is trivially
    /// a block array of 1×1 circulants, so `L = 1` is rejected).
    ///
    /// This is how shortened or AR4JA-derived matrices degrade
    /// gracefully: their row/column deletions break the cyclic-shift
    /// property, every candidate `L` fails verification, and the caller
    /// gets `None` instead of a wrong structure.
    ///
    /// # Example
    ///
    /// ```
    /// use ldpc_core::QcLdpcSpec;
    /// use gf2::Circulant;
    ///
    /// let mut spec = QcLdpcSpec::new(4, 1, 2);
    /// spec.set_block(0, 0, Circulant::new(4, &[0, 1]));
    /// spec.set_block(0, 1, Circulant::identity(4));
    /// let recovered = QcLdpcSpec::recover(&spec.expand()).unwrap();
    /// assert_eq!(recovered, spec);
    /// ```
    pub fn recover(h: &SparseMatrix) -> Option<QcLdpcSpec> {
        let (m, n) = (h.rows(), h.cols());
        if m == 0 || n == 0 {
            return None;
        }
        let g = gcd(m, n);
        for l in (2..=g).rev() {
            if !g.is_multiple_of(l) {
                continue;
            }
            if let Some(spec) = Self::try_recover(h, l) {
                return Some(spec);
            }
        }
        None
    }

    /// Attempts recovery at one fixed circulant size; `None` if any row
    /// of `h` is not the cyclic shift its block row's first row implies.
    fn try_recover(h: &SparseMatrix, l: usize) -> Option<QcLdpcSpec> {
        let block_rows = h.rows() / l;
        let block_cols = h.cols() / l;
        let mut spec = Self::new(l, block_rows, block_cols);
        // Taps come from the first row of each block row: a one at
        // column c belongs to block c / l at tap position c mod l.
        for br in 0..block_rows {
            let mut per_block: Vec<Vec<u32>> = vec![Vec::new(); block_cols];
            for &c in h.row(br * l) {
                per_block[c as usize / l].push(c % l as u32);
            }
            for (bc, positions) in per_block.into_iter().enumerate() {
                spec.set_block(br, bc, Circulant::new(l, &positions));
            }
        }
        // Verify every row against the candidate's cyclic shifts.
        let mut expected = Vec::new();
        for br in 0..block_rows {
            for i in 0..l {
                expected.clear();
                for bc in 0..block_cols {
                    let base = (bc * l) as u32;
                    expected.extend(spec.block(br, bc).row_ones_iter(i).map(|p| base + p));
                }
                expected.sort_unstable();
                if expected != h.row(br * l + i) {
                    return None;
                }
            }
        }
        Some(spec)
    }

    /// Row groups of the expanded matrix corresponding to each block row.
    ///
    /// Useful as decoding layers for layered schedules.
    pub fn block_row_layers(&self) -> Vec<Vec<u32>> {
        let l = self.circulant_size;
        (0..self.block_rows)
            .map(|br| ((br * l) as u32..((br + 1) * l) as u32).collect())
            .collect()
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl fmt::Debug for QcLdpcSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QcLdpcSpec({}x{} blocks of {}x{} circulants)",
            self.block_rows, self.block_cols, self.circulant_size, self.circulant_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expand_dimensions() {
        let spec = QcLdpcSpec::new(5, 2, 3);
        let h = spec.expand();
        assert_eq!(h.rows(), 10);
        assert_eq!(h.cols(), 15);
        assert_eq!(h.nnz(), 0);
    }

    #[test]
    fn expand_places_circulants_at_block_offsets() {
        let mut spec = QcLdpcSpec::new(3, 1, 2);
        spec.set_block(0, 0, Circulant::identity(3));
        spec.set_block(0, 1, Circulant::new(3, &[1]));
        let h = spec.expand();
        // Row 0: identity gives col 0; shifted identity gives col 3+1.
        assert_eq!(h.row(0), &[0, 4]);
        assert_eq!(h.row(1), &[1, 5]);
        assert_eq!(h.row(2), &[2, 3]); // wraps
    }

    #[test]
    fn regular_weights_from_uniform_blocks() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = QcLdpcSpec::random(&mut rng, 11, 2, 4, 2);
        let h = spec.expand();
        assert_eq!(h.nnz(), 2 * 4 * 11 * 2);
        for r in 0..h.rows() {
            assert_eq!(h.row_weight(r), 8, "row {r}");
        }
        for (c, w) in h.col_weights().into_iter().enumerate() {
            assert_eq!(w, 4, "col {c}");
        }
    }

    #[test]
    fn block_row_layers_partition_rows() {
        let spec = QcLdpcSpec::new(4, 3, 2);
        let layers = spec.block_row_layers();
        assert_eq!(layers.len(), 3);
        let all: Vec<u32> = layers.concat();
        assert_eq!(all, (0..12).collect::<Vec<u32>>());
    }

    #[test]
    fn from_first_rows_matches_manual_construction() {
        let spec = QcLdpcSpec::from_first_rows(4, &[vec![vec![0, 2], vec![1]]]);
        assert_eq!(spec.block(0, 0).first_row(), &[0, 2]);
        assert_eq!(spec.block(0, 1).first_row(), &[1]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn set_block_rejects_wrong_size() {
        let mut spec = QcLdpcSpec::new(4, 1, 1);
        spec.set_block(0, 0, Circulant::identity(5));
    }

    #[test]
    fn recover_round_trips_random_specs() {
        let mut rng = StdRng::seed_from_u64(42);
        for (l, br, bc, w) in [(11, 2, 4, 2), (7, 3, 3, 1), (5, 1, 6, 3)] {
            let spec = QcLdpcSpec::random(&mut rng, l, br, bc, w);
            let recovered = QcLdpcSpec::recover(&spec.expand())
                .unwrap_or_else(|| panic!("no structure found for L={l} {br}x{bc} w={w}"));
            assert_eq!(recovered, spec);
        }
    }

    #[test]
    fn recover_handles_zero_blocks() {
        // A spec with a zero block (block weight varies per column).
        let mut spec = QcLdpcSpec::new(6, 2, 3);
        spec.set_block(0, 0, Circulant::new(6, &[0, 2]));
        spec.set_block(0, 2, Circulant::identity(6));
        spec.set_block(1, 1, Circulant::new(6, &[1, 4, 5]));
        spec.set_block(1, 2, Circulant::new(6, &[3]));
        assert_eq!(QcLdpcSpec::recover(&spec.expand()), Some(spec));
    }

    #[test]
    fn recover_prefers_the_largest_circulant_size() {
        // An identity block structure is also block-circulant at every
        // divisor of L; recovery must report the coarsest (largest L)
        // description.
        let mut spec = QcLdpcSpec::new(8, 1, 2);
        spec.set_block(0, 0, Circulant::identity(8));
        spec.set_block(0, 1, Circulant::new(8, &[3]));
        let recovered = QcLdpcSpec::recover(&spec.expand()).unwrap();
        assert_eq!(recovered.circulant_size(), 8);
        assert_eq!(recovered, spec);
    }

    #[test]
    fn recover_rejects_unstructured_matrices() {
        // Breaking one row of an expanded spec kills every candidate L.
        let mut rng = StdRng::seed_from_u64(9);
        let spec = QcLdpcSpec::random(&mut rng, 6, 2, 4, 2);
        let h = spec.expand();
        let mut rows: Vec<Vec<u32>> = (0..h.rows()).map(|r| h.row(r).to_vec()).collect();
        rows[3] = vec![0, 1, 2]; // not a cyclic shift of row 0's taps
        let broken = SparseMatrix::from_rows(h.cols(), rows);
        assert_eq!(QcLdpcSpec::recover(&broken), None);
    }

    #[test]
    fn recover_rejects_trivial_and_empty() {
        // gcd(rows, cols) == 1 admits only L = 1, which is rejected.
        let h = SparseMatrix::from_rows(7, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(QcLdpcSpec::recover(&h), None);
        let empty = SparseMatrix::from_rows(0, Vec::new());
        assert_eq!(QcLdpcSpec::recover(&empty), None);
    }
}
