//! Kernel-level SWAR contract: every primitive in
//! `ldpc_core::decoder::swar` equals an 8-iteration scalar loop over its
//! lanes, for arbitrary `i8` lane patterns — including the quantizer
//! rails (±31), the type extremes (±127, −128), and mixed-sign words
//! that stress carry/borrow isolation at every lane boundary.
//!
//! These are the proofs the packed decoder's bit-exactness rests on: the
//! composed phases are exercised end-to-end elsewhere (unit tests,
//! conformance, golden vectors); here each word op is pinned to its
//! per-lane scalar meaning in isolation. The case count honours the
//! `PROPTEST_CASES` environment variable (default 96), which CI raises
//! for a deeper lane-pattern shake on every push.

use gf2::lanes::{pack_lanes, unpack_lanes};
use ldpc_core::decoder::kernels::Scaling;
use ldpc_core::decoder::swar::{
    abs_i8, add_wrap8, adds_i8, apply_sign8, clamp_i8, eq7_mask, ltu15_mask16, ltu7_mask, ltu_mask,
    min_mag_i8, min_u16, narrow_bytes, scale_mag8, select8, sign_mask8, sign_xor8, splat8,
    sub_wrap8, widen_even, widen_odd,
};
use proptest::prelude::*;

/// Case count: `PROPTEST_CASES` env override, else a default high enough
/// to hit every rail pairing in every lane position.
fn cases() -> ProptestConfig {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96);
    ProptestConfig::with_cases(cases)
}

/// An i8 lane biased toward the decoder's interesting values: the ±31
/// quantizer rails, the saturation rails ±127, the wrap-hazard −128,
/// zero and ±1 (carry-boundary neighbours) — with arbitrary values mixed
/// in so the full range stays covered.
fn lane() -> impl Strategy<Value = i8> {
    (0u8..12, any::<i8>()).prop_map(|(sel, r)| match sel {
        0 => 31,
        1 => -31,
        2 => 127,
        3 => -128,
        4 => 0,
        5 => 1,
        6 => -1,
        _ => r,
    })
}

/// An 8-lane word of independently drawn biased lanes.
fn word() -> impl Strategy<Value = [i8; 8]> {
    (
        lane(),
        lane(),
        lane(),
        lane(),
        lane(),
        lane(),
        lane(),
        lane(),
    )
        .prop_map(|(a, b, c, d, e, f, g, h)| [a, b, c, d, e, f, g, h])
}

/// A lane already saturated into the bounded-primitive domain `0..=127`.
fn lane7() -> impl Strategy<Value = i8> {
    (0u8..8, 0i8..=127).prop_map(|(sel, r)| match sel {
        0 => 0,
        1 => 31,
        2 => 127,
        _ => r,
    })
}

fn word7() -> impl Strategy<Value = [i8; 8]> {
    (
        lane7(),
        lane7(),
        lane7(),
        lane7(),
        lane7(),
        lane7(),
        lane7(),
        lane7(),
    )
        .prop_map(|(a, b, c, d, e, f, g, h)| [a, b, c, d, e, f, g, h])
}

/// A u16 lane in the bounded `0..=0x7FFF` accumulator domain, biased
/// toward the byte boundary and the domain rails.
fn lane15() -> impl Strategy<Value = u16> {
    (0u8..8, 0u16..=0x7FFF).prop_map(|(sel, r)| match sel {
        0 => 0,
        1 => 0x7FFF,
        2 => 0xFF,
        3 => 0x100,
        _ => r,
    })
}

fn word16() -> impl Strategy<Value = [u16; 4]> {
    (lane15(), lane15(), lane15(), lane15()).prop_map(|(a, b, c, d)| [a, b, c, d])
}

fn pack16(l: [u16; 4]) -> u64 {
    l.iter()
        .enumerate()
        .map(|(i, &v)| u64::from(v) << (16 * i))
        .sum()
}

fn unpack16(w: u64) -> [u16; 4] {
    std::array::from_fn(|i| ((w >> (16 * i)) & 0xFFFF) as u16)
}

proptest! {
    #![proptest_config(cases())]

    /// Wrapping add/sub: carries and borrows never cross lanes.
    #[test]
    fn wrapping_arithmetic_matches_scalar(a in word(), b in word()) {
        let (wa, wb) = (pack_lanes(a), pack_lanes(b));
        let sum = unpack_lanes(add_wrap8(wa, wb));
        let diff = unpack_lanes(sub_wrap8(wa, wb));
        for f in 0..8 {
            prop_assert_eq!(sum[f], a[f].wrapping_add(b[f]), "add lane {}", f);
            prop_assert_eq!(diff[f], a[f].wrapping_sub(b[f]), "sub lane {}", f);
        }
    }

    /// Saturating add: every lane is `i8::saturating_add`.
    #[test]
    fn saturating_add_matches_scalar(a in word(), b in word()) {
        let got = unpack_lanes(adds_i8(pack_lanes(a), pack_lanes(b)));
        for f in 0..8 {
            prop_assert_eq!(got[f], a[f].saturating_add(b[f]), "lane {}", f);
        }
    }

    /// Absolute value and sign mask, including the −128 wrap case.
    #[test]
    fn abs_and_sign_match_scalar(a in word()) {
        let w = pack_lanes(a);
        let abs = unpack_lanes(abs_i8(w));
        let sign = unpack_lanes(sign_mask8(w));
        for f in 0..8 {
            prop_assert_eq!(abs[f], a[f].wrapping_abs(), "abs lane {}", f);
            prop_assert_eq!(sign[f], if a[f] < 0 { -1 } else { 0 }, "sign lane {}", f);
        }
    }

    /// Signed min-magnitude with the check-node kernel's tie rule:
    /// strict `<` keeps the first operand on equal magnitudes.
    #[test]
    fn min_magnitude_matches_scalar(a in word(), b in word()) {
        let got = unpack_lanes(min_mag_i8(pack_lanes(a), pack_lanes(b)));
        for f in 0..8 {
            let want = if (b[f].wrapping_abs() as u8) < (a[f].wrapping_abs() as u8) {
                b[f]
            } else {
                a[f]
            };
            prop_assert_eq!(got[f], want, "lane {}", f);
        }
    }

    /// Sign product (XOR rule) and re-signing of non-negative magnitudes.
    #[test]
    fn sign_product_and_apply_match_scalar(a in word(), b in word(), mags in word7()) {
        let (wa, wb) = (pack_lanes(a), pack_lanes(b));
        let sp = sign_xor8(wa, wb);
        let sp_lanes = unpack_lanes(sp);
        let signed = unpack_lanes(apply_sign8(pack_lanes(mags), sp));
        for f in 0..8 {
            let neg = (a[f] < 0) != (b[f] < 0);
            prop_assert_eq!(sp_lanes[f], if neg { -1 } else { 0 }, "sign lane {}", f);
            let want = if neg { -mags[f] } else { mags[f] };
            prop_assert_eq!(signed[f], want, "apply lane {}", f);
        }
    }

    /// Lane select steered by a mask built from arbitrary predicates.
    #[test]
    fn select_matches_scalar(a in word(), b in word(), c in word()) {
        let mask = sign_mask8(pack_lanes(c));
        let got = unpack_lanes(select8(mask, pack_lanes(a), pack_lanes(b)));
        for f in 0..8 {
            prop_assert_eq!(got[f], if c[f] < 0 { a[f] } else { b[f] }, "lane {}", f);
        }
    }

    /// Rail clamp: every lane is `i8::clamp(-max, max)`.
    #[test]
    fn clamp_matches_scalar(a in word(), max in 0i8..=127) {
        let got = unpack_lanes(clamp_i8(pack_lanes(a), max));
        for f in 0..8 {
            prop_assert_eq!(got[f], a[f].clamp(-max, max), "lane {} max {}", f, max);
        }
    }

    /// Full-range unsigned compare over arbitrary bit patterns.
    #[test]
    fn unsigned_compare_matches_scalar(a in word(), b in word()) {
        let got = unpack_lanes(ltu_mask(pack_lanes(a), pack_lanes(b)));
        for f in 0..8 {
            let want = (a[f] as u8) < (b[f] as u8);
            prop_assert_eq!(got[f] as u8, if want { 0xFF } else { 0 }, "lane {}", f);
        }
    }

    /// Bounded-domain compare and equality (`0..=127` lanes).
    #[test]
    fn bounded_compare_matches_scalar(a in word7(), b in word7()) {
        let (wa, wb) = (pack_lanes(a), pack_lanes(b));
        let lt = unpack_lanes(ltu7_mask(wa, wb));
        let eq = unpack_lanes(eq7_mask(wa, wb));
        for f in 0..8 {
            prop_assert_eq!(lt[f] as u8, if a[f] < b[f] { 0xFF } else { 0 }, "lt lane {}", f);
            prop_assert_eq!(eq[f] as u8, if a[f] == b[f] { 0xFF } else { 0 }, "eq lane {}", f);
        }
    }

    /// Shift-add normalization equals `Scaling::apply` on every lane.
    #[test]
    fn scaling_matches_scalar_kernel(
        mags in word7(),
        s in prop::sample::select(vec![
            Scaling::Unity,
            Scaling::SevenEighths,
            Scaling::ThreeQuarters,
            Scaling::Half,
        ]),
    ) {
        let got = unpack_lanes(scale_mag8(pack_lanes(mags), s));
        for f in 0..8 {
            prop_assert_eq!(got[f] as i16, s.apply(mags[f] as i16), "lane {} {:?}", f, s);
        }
    }

    /// splat8 puts the value in all 8 lanes.
    #[test]
    fn splat_fills_every_lane(x in any::<i8>()) {
        prop_assert_eq!(unpack_lanes(splat8(x)), [x; 8]);
    }

    /// Byte→u16 widening and narrowing round trip, and the u16 lanes hold
    /// the unsigned byte values.
    #[test]
    fn widen_narrow_roundtrip(a in word()) {
        let w = pack_lanes(a);
        let (even, odd) = (widen_even(w), widen_odd(w));
        prop_assert_eq!(narrow_bytes(even, odd), w);
        let (le, lo) = (unpack16(even), unpack16(odd));
        for f in 0..4 {
            prop_assert_eq!(le[f], u16::from(a[2 * f] as u8), "even lane {}", f);
            prop_assert_eq!(lo[f], u16::from(a[2 * f + 1] as u8), "odd lane {}", f);
        }
    }

    /// u16-lane compare and minimum over the bounded accumulator domain.
    #[test]
    fn u16_compare_and_min_match_scalar(a in word16(), b in word16()) {
        let (wa, wb) = (pack16(a), pack16(b));
        let lt = unpack16(ltu15_mask16(wa, wb));
        let mn = unpack16(min_u16(wa, wb));
        for f in 0..4 {
            prop_assert_eq!(lt[f], if a[f] < b[f] { 0xFFFF } else { 0 }, "lt lane {}", f);
            prop_assert_eq!(mn[f], a[f].min(b[f]), "min lane {}", f);
        }
    }
}
