//! Property-based tests over codes, encoders, and decoders.

use gf2::{BitSlices, BitVec};
use ldpc_core::codes::small::{demo_code, random_c2_like};
use ldpc_core::decoder::kernels::{cn_scan, Scaling};
use ldpc_core::{
    decode_frames, BatchDecoder, BatchFixedDecoder, BatchMinSumDecoder, BitsliceGallagerBDecoder,
    Decoder, DecoderSpec, Encoder, FixedConfig, FixedDecoder, GallagerBDecoder, LlrQuantizer,
    MinSumConfig, MinSumDecoder, SpecError, SumProductDecoder,
};
use proptest::prelude::*;

/// A batch of frames with per-frame noise quality drawn independently, so
/// batches mix immediately-converging, slowly-converging, and
/// never-converging frames (exercising per-frame early termination).
fn mixed_quality_batch(qualities: &[u8], noise: &[f32], n: usize) -> Vec<f32> {
    let mut llrs = Vec::with_capacity(qualities.len() * n);
    for (f, &q) in qualities.iter().enumerate() {
        for b in 0..n {
            let x = noise[(f * n + b) % noise.len()];
            llrs.push(match q % 3 {
                0 => 4.0 + x,       // clean: converges in one iteration
                1 => 1.2 + 1.8 * x, // marginal: converges late or never
                _ => 3.0 * x,       // garbage: usually never converges
            });
        }
    }
    llrs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any message encodes to a word in the null space of H.
    #[test]
    fn encoder_always_produces_codewords(seed in 0u64..20, bits in prop::collection::vec(any::<bool>(), 0..64)) {
        let code = random_c2_like(seed, 13, 4);
        let enc = Encoder::new(&code).unwrap();
        let mut msg = BitVec::zeros(enc.dimension());
        for (i, &b) in bits.iter().enumerate() {
            if i < msg.len() && b {
                msg.set(i, true);
            }
        }
        let cw = enc.encode(&msg).unwrap();
        prop_assert!(code.is_codeword(&cw));
        prop_assert_eq!(enc.extract_message(&cw), msg);
    }

    /// The fixed-point CN kernel agrees with a brute-force reference for
    /// arbitrary degrees and values.
    #[test]
    fn cn_kernel_matches_bruteforce(
        inputs in prop::collection::vec(-31i16..=31, 2..20),
    ) {
        let state = cn_scan(&inputs);
        for i in 0..inputs.len() {
            let mut mag = i16::MAX;
            let mut neg = false;
            for (j, &x) in inputs.iter().enumerate() {
                if i != j {
                    mag = mag.min(x.abs());
                    neg ^= x < 0;
                }
            }
            let expect = if neg { -mag } else { mag };
            prop_assert_eq!(state.output(i as u32, Scaling::Unity), expect);
            // Scaled outputs shrink magnitudes but keep signs.
            let scaled = state.output(i as u32, Scaling::ThreeQuarters);
            prop_assert!(scaled.abs() <= expect.abs());
            if expect != 0 && scaled != 0 {
                prop_assert_eq!(scaled.signum(), expect.signum());
            }
        }
    }

    /// Quantizer: monotone, symmetric, saturating.
    #[test]
    fn quantizer_properties(bits in 2u32..10, llr in -100.0f32..100.0, step in 0.1f32..2.0) {
        let q = LlrQuantizer::new(bits, step);
        let level = q.quantize(llr);
        prop_assert!(level.abs() <= q.max_level());
        prop_assert_eq!(q.quantize(-llr), -level);
        // Monotonicity in a small neighbourhood.
        prop_assert!(q.quantize(llr + step) >= level);
    }

    /// Decoding a noiseless codeword recovers it exactly, for every decoder.
    #[test]
    fn noiseless_codewords_are_fixed_points(
        seed in 0u64..10,
        msg_bits in prop::collection::vec(any::<bool>(), 32),
    ) {
        let code = random_c2_like(seed, 13, 4);
        let enc = Encoder::new(&code).unwrap();
        let mut msg = BitVec::zeros(enc.dimension());
        for (i, &b) in msg_bits.iter().enumerate() {
            if i < msg.len() && b {
                msg.set(i, true);
            }
        }
        let cw = enc.encode(&msg).unwrap();
        let llrs: Vec<f32> = (0..code.n())
            .map(|i| if cw.get(i) { -4.0 } else { 4.0 })
            .collect();
        let mut spa = SumProductDecoder::new(code.clone());
        let mut ms = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0));
        let mut fx = FixedDecoder::new(code.clone(), FixedConfig::default());
        for out in [spa.decode(&llrs, 8), ms.decode(&llrs, 8), fx.decode(&llrs, 8)] {
            prop_assert!(out.converged);
            prop_assert_eq!(&out.hard_decision, &cw);
        }
    }

    /// A converged decode always reports a zero syndrome.
    #[test]
    fn converged_implies_valid_codeword(
        noise in prop::collection::vec(-2.0f32..4.0, 248),
    ) {
        let code = demo_code();
        let mut dec = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.25));
        let out = dec.decode(&noise, 20);
        if out.converged {
            prop_assert!(code.is_codeword(&out.hard_decision));
        }
    }

    /// Batched min-sum decoding equals per-frame decoding bit for bit, on
    /// mixed-convergence batches of any width up to the capacity, for all
    /// check-node correction variants.
    #[test]
    fn batch_minsum_equals_per_frame(
        qualities in prop::collection::vec(any::<u8>(), 1..9),
        // 251 is coprime to n = 248, so each frame reads a shifted window
        // of the noise pool — same-quality lanes still get distinct LLRs.
        noise in prop::collection::vec(-1.0f32..1.0, 251),
        variant in 0u8..3,
        early_stop in any::<bool>(),
    ) {
        let code = demo_code();
        let cfg = match variant {
            0 => MinSumConfig::plain(),
            1 => MinSumConfig::normalized(4.0 / 3.0),
            _ => MinSumConfig::offset(0.2),
        }
        .with_early_stop(early_stop);
        let llrs = mixed_quality_batch(&qualities, &noise, code.n());
        let mut batched = BatchMinSumDecoder::new(code.clone(), cfg.clone(), qualities.len());
        let mut single = MinSumDecoder::new(code.clone(), cfg);
        let got = batched.decode_batch(&llrs, 12);
        let want = decode_frames(&mut single, &llrs, 12);
        prop_assert_eq!(got, want);
    }

    /// Batched fixed-point decoding equals per-frame decoding bit for bit
    /// on mixed-convergence batches (the hardware-exact datapath).
    #[test]
    fn batch_fixed_equals_per_frame(
        qualities in prop::collection::vec(any::<u8>(), 1..9),
        noise in prop::collection::vec(-1.0f32..1.0, 251),
        early_stop in any::<bool>(),
    ) {
        let code = demo_code();
        let cfg = FixedConfig::default().with_early_stop(early_stop);
        let llrs = mixed_quality_batch(&qualities, &noise, code.n());
        let mut batched = BatchFixedDecoder::new(code.clone(), cfg, qualities.len());
        let mut single = FixedDecoder::new(code.clone(), cfg);
        let got = batched.decode_batch(&llrs, 12);
        let want = decode_frames(&mut single, &llrs, 12);
        prop_assert_eq!(got, want);
    }

    /// The batched fixed decoder accepts quantized (hardware-format)
    /// input and matches `decode_quantized` frame by frame.
    #[test]
    fn batch_fixed_quantized_equals_per_frame(
        frames in 1usize..6,
        seed in any::<u16>(),
    ) {
        let code = demo_code();
        let n = code.n();
        // Cheap deterministic level pattern in the 5-bit channel range.
        let channel: Vec<i16> = (0..frames * n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed as u64);
                ((x >> 33) % 31) as i16 - 15 // uniform in the 5-bit range -15..=15
            })
            .collect();
        let mut batched = BatchFixedDecoder::new(code.clone(), FixedConfig::default(), frames);
        let mut single = FixedDecoder::new(code.clone(), FixedConfig::default());
        let got = batched.decode_quantized_batch(&channel, 10);
        for (f, got_f) in got.iter().enumerate() {
            let want = single.decode_quantized(&channel[f * n..(f + 1) * n], 10);
            prop_assert_eq!(got_f, &want);
        }
    }

    /// Fixed-point decoding is invariant to LLR scaling that maps to the
    /// same quantization levels.
    #[test]
    fn fixed_decoder_depends_only_on_levels(scale in 1.0f32..1.24) {
        let code = demo_code();
        let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default());
        // Levels of llr=2.0 at step 0.5 is 4; 2.0*scale stays level 4 while
        // scale < 1.125 keeps round(4*scale)==4.
        prop_assume!(scale < 1.12);
        let a: Vec<f32> = (0..code.n()).map(|i| if i % 9 == 0 { -2.0 } else { 2.0 }).collect();
        let b: Vec<f32> = a.iter().map(|x| x * scale).collect();
        let ra = dec.decode(&a, 10);
        let rb = dec.decode(&b, 10);
        prop_assert_eq!(ra, rb);
    }

    /// Bit-sliced Gallager-B is bit-exact per lane against the scalar
    /// decoder over mixed-convergence words — lanes that converge at
    /// iteration 0, lanes that converge late, lanes that stall, and lanes
    /// that exhaust the budget — including partial final words (any frame
    /// count 1..=64).
    #[test]
    fn bitslice_gallager_b_equals_scalar_per_lane(
        frames in 1usize..=64,
        qualities in prop::collection::vec(any::<u8>(), 64),
        noise in prop::collection::vec(-1.0f32..1.0, 251),
        threshold in 2usize..5,
        budget in 0u32..20,
    ) {
        let code = demo_code();
        let llrs = mixed_quality_batch(&qualities[..frames], &noise, code.n());
        let mut sliced = BitsliceGallagerBDecoder::new(code.clone(), threshold);
        let mut scalar = GallagerBDecoder::new(code.clone(), threshold);
        let got = sliced.decode_batch(&llrs, budget);
        let want = decode_frames(&mut scalar, &llrs, budget);
        prop_assert_eq!(got, want);
    }

    /// Packing hard decisions through `BitSlices` and decoding the word
    /// agrees with the LLR front door.
    #[test]
    fn bitslice_hard_slices_agree_with_llr_entry(
        frames in 1usize..=64,
        qualities in prop::collection::vec(any::<u8>(), 64),
        noise in prop::collection::vec(-1.0f32..1.0, 251),
    ) {
        let code = demo_code();
        let llrs = mixed_quality_batch(&qualities[..frames], &noise, code.n());
        let hard: Vec<BitVec> = llrs
            .chunks_exact(code.n())
            .map(|frame| frame.iter().map(|&l| l < 0.0).collect())
            .collect();
        let slices = BitSlices::from_frames(&hard);
        let mut a = BitsliceGallagerBDecoder::new(code.clone(), 3);
        let mut b = BitsliceGallagerBDecoder::new(code.clone(), 3);
        prop_assert_eq!(
            a.decode_hard_slices(&slices, 12),
            b.decode_batch(&llrs, 12)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structure recovery round trips: a random circulant spec (non-square
    /// block arrays and zero blocks included) expands to a matrix from
    /// which [`QcLdpcSpec::recover`] finds a spec with the *identical*
    /// expansion. Recovery prefers the coarsest description, so its
    /// circulant size is at least the original's; when they agree the
    /// recovered spec is the original, block for block.
    #[test]
    fn qc_structure_recovery_roundtrips(
        l in 2usize..14,
        block_rows in 1usize..4,
        block_cols in 1usize..5,
        tap_seeds in prop::collection::vec(prop::collection::vec(0u32..64, 0..4), 1..20),
    ) {
        use gf2::Circulant;
        use ldpc_core::QcLdpcSpec;
        let mut spec = QcLdpcSpec::new(l, block_rows, block_cols);
        // Scatter the generated tap lists over the block array; blocks
        // with no list (or an empty one) stay zero circulants.
        for (idx, taps) in tap_seeds.iter().enumerate() {
            let r = (idx / block_cols) % block_rows;
            let c = idx % block_cols;
            let positions: Vec<u32> = taps.iter().map(|&t| t % l as u32).collect();
            spec.set_block(r, c, Circulant::new(l, &positions));
        }
        let h = spec.expand();
        let recovered = QcLdpcSpec::recover(&h).expect("expanded spec must recover");
        prop_assert_eq!(recovered.expand(), h);
        prop_assert!(recovered.circulant_size() >= l);
        if recovered.circulant_size() == l {
            prop_assert_eq!(recovered, spec);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The spec grammar round trips: for every family and random valid
    /// parameters (with and without execution modifiers),
    /// `parse(display(spec)) == spec`. Rust's shortest-round-trip float
    /// formatting makes this exact even for awkward alphas like 4/3.
    #[test]
    fn decoder_spec_roundtrips(
        family_idx in 0usize..DecoderSpec::family_names().len(),
        alpha in 1.0f32..4.0,
        beta in 0.0f32..2.0,
        threshold in 1usize..9,
        batch in 1usize..65,
        modified in any::<bool>(),
        explicit_param in any::<bool>(),
    ) {
        let name = DecoderSpec::family_names()[family_idx];
        let head = if explicit_param {
            match name {
                "nms" | "layered" | "qc-layered" | "self-corrected" => format!("{name}:{alpha}"),
                "oms" => format!("oms:{beta}"),
                "gallager-b" => format!("gallager-b:t={threshold}"),
                other => other.to_string(),
            }
        } else {
            name.to_string()
        };
        let mut spec = DecoderSpec::parse(&head).unwrap();
        if modified {
            if spec.family.supports_batch() {
                spec = spec.with_batch(batch).unwrap();
            } else if spec.family.supports_bitslice() {
                spec = spec.with_bitslice().unwrap();
            }
        }
        let rendered = spec.to_string();
        let reparsed = DecoderSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("{rendered}: {e}"));
        prop_assert_eq!(&reparsed, &spec, "{} did not round trip", rendered);
        // Display is canonical: rendering the reparsed spec is a fixpoint.
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    /// Unknown or malformed specs never panic and always explain
    /// themselves: the error names the offender and what is valid.
    #[test]
    fn malformed_specs_error_actionably(
        family_idx in 0usize..DecoderSpec::family_names().len(),
        junk_idx in 0usize..6,
    ) {
        let name = DecoderSpec::family_names()[family_idx];
        let junk = ["zz", "-1", "@", ":", "t=", "1..5"][junk_idx];
        // A bad parameter...
        let err = DecoderSpec::parse(&format!("{name}:{junk}:{junk}"))
            .expect_err("malformed spec accepted");
        prop_assert!(!err.to_string().is_empty());
        // ...and an unknown family always lists the registered ones.
        let err = DecoderSpec::parse(&format!("{junk}{name}")).unwrap_err();
        match err {
            SpecError::UnknownFamily(_) => {
                prop_assert!(err.to_string().contains("known families"));
            }
            // e.g. "-1ms" parses as unknown family too; anything else
            // (like an alias prefix forming a valid name) must build.
            other => prop_assert!(!other.to_string().is_empty()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The code-spec grammar round trips: for every family and random
    /// valid parameters, `parse(display(spec)) == spec`, and display is a
    /// fixpoint (canonical).
    #[test]
    fn code_spec_roundtrips(
        family_idx in 0usize..4,
        rate_idx in 0usize..3,
        m in 8usize..600,
        base_demo in any::<bool>(),
        k in 1usize..8000,
    ) {
        use ldpc_core::codes::ar4ja::Ar4jaRate;
        use ldpc_core::{CodeSpec, ShortenedBase};
        let spec = match family_idx {
            0 => CodeSpec::Demo,
            1 => CodeSpec::C2,
            2 => {
                let rate = [Ar4jaRate::Half, Ar4jaRate::TwoThirds, Ar4jaRate::FourFifths][rate_idx];
                CodeSpec::Ar4ja { rate, k: m * (rate.var_blocks() - 3) }
            }
            _ => CodeSpec::Shortened {
                base: if base_demo { ShortenedBase::Demo } else { ShortenedBase::C2 },
                k,
            },
        };
        let rendered = spec.to_string();
        let reparsed = CodeSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("{rendered}: {e}"));
        prop_assert_eq!(reparsed, spec, "{} did not round trip", rendered);
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    /// Unknown or malformed code specs never panic and always explain
    /// themselves.
    #[test]
    fn malformed_code_specs_error_actionably(junk_idx in 0usize..6) {
        let junk = ["zz", "-1", "@", ":", "k=", "r=9/9"][junk_idx];
        let err = ldpc_core::CodeSpec::parse(&format!("ar4ja:{junk}"))
            .expect_err("malformed ar4ja parameters accepted");
        prop_assert!(!err.to_string().is_empty());
        let err = ldpc_core::CodeSpec::parse(&format!("{junk}-code")).unwrap_err();
        prop_assert!(!err.to_string().is_empty());
    }
}
