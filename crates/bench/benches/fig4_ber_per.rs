//! E4 — Paper Figure 4: bit and packet error rate of the decoder vs Eb/N0.
//!
//! Two series are regenerated:
//!
//! * a statistically solid waterfall on the C2-shaped (248) demo code;
//! * a short anchor sweep on the real 8176-bit CCSDS C2 code (Monte-Carlo
//!   depth bounded so `cargo bench` stays fast — EXPERIMENTS.md records a
//!   deeper offline run).

use criterion::{criterion_group, criterion_main, Criterion};
use ldpc_bench::{announce, bench_mc_config, c2_mc_config};
use ldpc_core::codes::{ccsds_c2, small::demo_code};
use ldpc_core::DecoderSpec;
use ldpc_hwsim::render_table;
use ldpc_sim::{run_curve_spec, run_point_spec};

fn regenerate_fig4() {
    announce(
        "E4",
        "Figure 4 (BER and PER vs Eb/N0, 18-iteration fixed-point decoder)",
    );

    // Demo-code waterfall: same QC structure, 1/33 block length.
    let code = demo_code();
    let points = [1.5, 2.5, 3.5, 4.5, 5.5];
    let fixed = DecoderSpec::parse("fixed").unwrap();
    let results = run_curve_spec(&code, None, &points, &bench_mc_config(0.0, 18), &fixed);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.ebn0_db),
                format!("{:.2e}", p.ber()),
                format!("{:.2e}", p.per()),
                p.frames.to_string(),
                format!("{:.1}", p.avg_iterations()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 4 series A — demo code (248, C2 structure)",
            &["Eb/N0 dB", "BER", "PER", "frames", "avg iters"],
            &rows,
        )
    );

    // C2 anchor points near the waterfall knee.
    let c2 = ccsds_c2::code();
    let c2_points = [3.6, 4.0];
    let c2_results = run_curve_spec(&c2, None, &c2_points, &c2_mc_config(0.0, 18), &fixed);
    let rows: Vec<Vec<String>> = c2_results
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.ebn0_db),
                format!("{:.2e}", p.ber()),
                format!("{:.2e}", p.per()),
                p.frames.to_string(),
                p.undetected_frame_errors.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 4 series B — CCSDS C2 (8176,7156) anchor points",
            &["Eb/N0 dB", "BER", "PER", "frames", "undetected"],
            &rows,
        )
    );
    println!("shape checks: BER falls monotonically; no undetected-error floor observed");
}

fn bench(c: &mut Criterion) {
    regenerate_fig4();
    let code = demo_code();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("mc_point_demo_3p5db", |b| {
        b.iter(|| {
            let mut cfg = bench_mc_config(3.5, 18);
            cfg.max_frames = 200;
            cfg.target_frame_errors = 0;
            run_point_spec(&code, None, &cfg, &DecoderSpec::parse("fixed").unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
