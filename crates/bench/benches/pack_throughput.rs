//! A10 — SWAR `@pack=8` packed soft datapath throughput: 8 frames per
//! `u64` message word against the scalar fixed-point decoder and the
//! batch-interleaved variant on the full CCSDS C2 code.
//!
//! Regenerates a single-core frames/sec comparison at 18 iterations in
//! fixed-latency mode (no early termination), asserts the packed lanes
//! are bit-exact against scalar `fixed` frame by frame before timing
//! anything, and writes the measured numbers to `BENCH_A10.json` at the
//! workspace root. The acceptance bar is >= 8x frames/sec over scalar
//! `fixed`; run with `--features simd` to measure the SSE4.1 mirror
//! (reported in the JSON's `simd` flag).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ldpc_bench::{announce, frames_per_sec, noisy_frames};
use ldpc_core::codes::{ccsds_c2, small::demo_code};
use ldpc_core::{
    decode_frames, BatchDecoder, BatchFixedDecoder, FixedConfig, FixedDecoder, PackedFixedDecoder,
    PACK_LANES,
};

const ITERS: u32 = 18;

struct A10Numbers {
    frames: usize,
    fixed_fps: f64,
    batch_fps: f64,
    packed_fps: f64,
}

/// Decodes `llrs` through a batch decoder in full-width chunks.
fn decode_packed<D: BatchDecoder>(dec: &mut D, llrs: &[f32]) {
    for chunk in llrs.chunks(dec.capacity() * dec.n()) {
        let _ = dec.decode_batch(chunk, ITERS);
    }
}

fn regenerate_a10() -> A10Numbers {
    announce(
        "A10",
        "SWAR pack=8 vs scalar fixed vs batch=8 on C2 (18 iterations, fixed latency)",
    );
    let c2 = ccsds_c2::code();
    let total = 48;
    let llrs = noisy_frames(&c2, total, 4.0, 9);
    let cfg = FixedConfig::default().with_early_stop(false);

    let mut fixed = FixedDecoder::new(c2.clone(), cfg);
    let mut batch = BatchFixedDecoder::new(c2.clone(), cfg, PACK_LANES);
    let mut packed = PackedFixedDecoder::new(c2.clone(), cfg);

    // Correctness gate before any timing: every packed lane must be
    // bit-exact against the scalar decoder run frame by frame.
    let reference = decode_frames(&mut fixed, &llrs, ITERS);
    let n = c2.n();
    for (chunk_idx, chunk) in llrs.chunks(PACK_LANES * n).enumerate() {
        for (f, out) in packed.decode_batch(chunk, ITERS).iter().enumerate() {
            let frame = chunk_idx * PACK_LANES + f;
            assert_eq!(
                out, &reference[frame],
                "packed lane diverged from scalar fixed on frame {frame}"
            );
        }
    }

    let fixed_fps = frames_per_sec(total, || {
        let _ = decode_frames(&mut fixed, &llrs, ITERS);
    });
    let batch_fps = frames_per_sec(total, || decode_packed(&mut batch, &llrs));
    let packed_fps = frames_per_sec(total, || decode_packed(&mut packed, &llrs));

    println!(
        "  simd mirror: {}",
        if PackedFixedDecoder::simd_active() {
            "active (SSE4.1)"
        } else {
            "off (portable SWAR)"
        }
    );
    println!("  fixed (scalar)     : {fixed_fps:>8.1} fr/s");
    println!(
        "  fixed@batch=8      : {batch_fps:>8.1} fr/s = {:.2}x fixed",
        batch_fps / fixed_fps
    );
    println!(
        "  fixed@pack=8 (SWAR): {packed_fps:>8.1} fr/s = {:.2}x fixed, {:.2}x batch (all {total} frames bit-exact)",
        packed_fps / fixed_fps,
        packed_fps / batch_fps,
    );

    A10Numbers {
        frames: total,
        fixed_fps,
        batch_fps,
        packed_fps,
    }
}

/// Writes the measured numbers to `BENCH_A10.json` at the workspace root
/// (hand-rolled JSON — the workspace vendors no serializer).
fn write_json(n: &A10Numbers) {
    let json = format!(
        "{{\n  \"experiment\": \"A10\",\n  \"code\": \"c2\",\n  \"channel\": \"awgn\",\n  \"ebn0_db\": 4.0,\n  \"iterations\": {iters},\n  \"frames\": {frames},\n  \"lanes\": {lanes},\n  \"simd\": {simd},\n  \"frames_per_sec\": {{\"fixed\": {fixed:.1}, \"fixed@batch=8\": {batch:.1}, \"fixed@pack=8\": {packed:.1}}},\n  \"speedup\": {{\"vs_fixed\": {su_f:.2}, \"vs_batch\": {su_b:.2}}},\n  \"bit_exact_frames\": {frames}\n}}\n",
        iters = ITERS,
        frames = n.frames,
        lanes = PACK_LANES,
        simd = PackedFixedDecoder::simd_active(),
        fixed = n.fixed_fps,
        batch = n.batch_fps,
        packed = n.packed_fps,
        su_f = n.packed_fps / n.fixed_fps,
        su_b = n.packed_fps / n.batch_fps,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_A10.json");
    std::fs::write(path, json).expect("write BENCH_A10.json");
    println!("  wrote {path}");
}

fn bench(c: &mut Criterion) {
    let numbers = regenerate_a10();
    write_json(&numbers);

    // Criterion timing on the demo code keeps the measured group fast.
    let code = demo_code();
    let llrs8 = noisy_frames(&code, PACK_LANES, 4.0, 23);
    let cfg = FixedConfig::default().with_early_stop(false);
    let mut group = c.benchmark_group("a10_pack_throughput_demo");
    group.sample_size(20);
    group.throughput(Throughput::Elements(PACK_LANES as u64));
    group.bench_function("fixed_scalar_8x", |b| {
        let mut dec = FixedDecoder::new(code.clone(), cfg);
        b.iter(|| decode_frames(&mut dec, std::hint::black_box(&llrs8), ITERS))
    });
    group.bench_function("fixed_pack8_8x", |b| {
        let mut dec = PackedFixedDecoder::new(code.clone(), cfg);
        b.iter(|| dec.decode_batch(std::hint::black_box(&llrs8), ITERS))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
