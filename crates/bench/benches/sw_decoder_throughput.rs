//! A4 — Context: software decoding throughput of every decoder on the
//! real 8176-bit C2 code, in info-Mbps, next to the hardware model's
//! numbers. (The paper's point is precisely that hardware is needed for
//! near-earth rates; this quantifies the gap.)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gf2::BitVec;
use ldpc_bench::announce;
use ldpc_channel::AwgnChannel;
use ldpc_core::codes::ccsds_c2;
use ldpc_core::{
    Decoder, FixedConfig, FixedDecoder, LayeredMinSumDecoder, MinSumConfig, MinSumDecoder,
    SumProductDecoder,
};

fn noisy_llrs(seed: u64) -> Vec<f32> {
    let code = ccsds_c2::code();
    let mut ch = AwgnChannel::from_ebn0(4.0, code.rate(), seed);
    ch.transmit_codeword(&BitVec::zeros(code.n()))
}

fn regenerate_a4() {
    announce(
        "A4",
        "software decoder throughput on CCSDS C2 (18 iterations, one core)",
    );
    let code = ccsds_c2::code();
    let llrs = noisy_llrs(3);
    let mut decoders: Vec<Box<dyn Decoder>> = vec![
        Box::new(SumProductDecoder::new(code.clone()).with_early_stop(false)),
        Box::new(MinSumDecoder::new(
            code.clone(),
            MinSumConfig::normalized(4.0 / 3.0).with_early_stop(false),
        )),
        Box::new(FixedDecoder::new(
            code.clone(),
            FixedConfig::default().with_early_stop(false),
        )),
        Box::new(LayeredMinSumDecoder::new(code.clone(), 4.0 / 3.0).with_early_stop(false)),
    ];
    for dec in &mut decoders {
        let start = std::time::Instant::now();
        let reps = 5;
        for _ in 0..reps {
            let _ = dec.decode(&llrs, 18);
        }
        let secs = start.elapsed().as_secs_f64() / reps as f64;
        let mbps = ccsds_c2::K_INFO as f64 / secs / 1e6;
        println!(
            "  {:<32} {:>8.2} ms/frame = {:>6.2} Mbps info",
            dec.name(),
            secs * 1e3,
            mbps
        );
    }
    println!("  (paper hardware at 18 iterations: low-cost 70 Mbps, high-speed 560 Mbps)");
}

fn bench(c: &mut Criterion) {
    regenerate_a4();
    let code = ccsds_c2::code();
    let llrs = noisy_llrs(5);
    let mut group = c.benchmark_group("a4_sw_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ccsds_c2::K_INFO as u64));
    group.bench_function("fixed_point_c2_18it", |b| {
        let mut dec =
            FixedDecoder::new(code.clone(), FixedConfig::default().with_early_stop(false));
        b.iter(|| dec.decode(std::hint::black_box(&llrs), 18))
    });
    group.bench_function("normalized_minsum_c2_18it", |b| {
        let mut dec = MinSumDecoder::new(
            code.clone(),
            MinSumConfig::normalized(4.0 / 3.0).with_early_stop(false),
        );
        b.iter(|| dec.decode(std::hint::black_box(&llrs), 18))
    });
    group.bench_function("sum_product_c2_18it", |b| {
        let mut dec = SumProductDecoder::new(code.clone()).with_early_stop(false);
        b.iter(|| dec.decode(std::hint::black_box(&llrs), 18))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
