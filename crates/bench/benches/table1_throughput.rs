//! E1 — Paper Table 1: number of iterations vs output data rate of the
//! low-cost and high-speed decoders at a 200 MHz system clock.

use criterion::{criterion_group, criterion_main, Criterion};
use ldpc_bench::announce;
use ldpc_hwsim::{render_table, ArchConfig, CodeDims, ThroughputModel};

fn regenerate_table1() {
    announce("E1", "Table 1 (iterations vs output throughput, 200 MHz)");
    let dims = CodeDims::ccsds_c2();
    let lc = ThroughputModel::new(ArchConfig::low_cost(), dims);
    let hs = ThroughputModel::new(ArchConfig::high_speed(), dims);
    let paper = [
        (10u32, 130.0, 1040.0),
        (18u32, 70.0, 560.0),
        (50u32, 25.0, 200.0),
    ];
    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|&(iters, p_lc, p_hs)| {
            vec![
                iters.to_string(),
                format!("{:.0}", lc.info_throughput_mbps(iters)),
                format!("{p_lc:.0}"),
                format!("{:.0}", hs.info_throughput_mbps(iters)),
                format!("{p_hs:.0}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 1 (measured vs paper, Mbps)",
            &["iterations", "low-cost", "paper", "high-speed", "paper"],
            &rows,
        )
    );
    println!(
        "cycles per iteration: {} (both presets)",
        lc.iteration_cycles()
    );
}

fn bench(c: &mut Criterion) {
    regenerate_table1();
    let model = ThroughputModel::new(ArchConfig::low_cost(), CodeDims::ccsds_c2());
    c.bench_function("table1/model_evaluation", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for iters in [10u32, 18, 50] {
                acc += std::hint::black_box(model.info_throughput_mbps(iters));
            }
            acc
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
