//! A7 — Registry-driven decoding throughput: every family in the
//! [`DecoderSpec`] registry, one harness.
//!
//! Where A5/A6 compare one packed mirror against its scalar reference,
//! this target sweeps the *whole registry* through the object-safe
//! [`BlockDecoder`] front door: the same frame workload, the same driving
//! loop, one frames/sec row per spec. Registering a new family in
//! `DecoderSpec::all_families()` adds it here automatically — no
//! per-family setup code to copy.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ldpc_bench::{announce, frames_per_sec, noisy_frames};
use ldpc_core::codes::small::demo_code;
use ldpc_core::DecoderSpec;

const ITERS: u32 = 10;
const FRAMES: usize = 512;

fn regenerate_a7() {
    announce(
        "A7",
        "registry-wide decoder throughput (demo code, one harness, early termination on)",
    );
    let code = demo_code();
    let llrs = noisy_frames(&code, FRAMES, 4.0, 77);
    println!("  {:<22} {:>12} {:>10}", "spec", "frames/sec", "decoded");
    for spec in DecoderSpec::all_families() {
        let mut decoder = spec.build(&code);
        let mut decoded = 0usize;
        let fps = frames_per_sec(FRAMES, || {
            decoded = decoder.decode_block(&llrs, ITERS).len();
        });
        assert_eq!(decoded, FRAMES, "{spec}: dropped frames");
        println!("  {:<22} {fps:>12.0} {decoded:>10}", spec.to_string());
    }
}

fn bench(c: &mut Criterion) {
    regenerate_a7();

    // Criterion timing for a representative spread: the hardware mirror,
    // its packed form, and the hard-decision limit.
    let code = demo_code();
    let llrs = noisy_frames(&code, 64, 4.0, 78);
    let mut group = c.benchmark_group("a7_spec_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(64));
    for spec_str in ["fixed", "fixed@batch=8", "gallager-b@bitslice"] {
        let spec = DecoderSpec::parse(spec_str).unwrap();
        let mut decoder = spec.build(&code);
        group.bench_function(spec_str, |b| {
            b.iter(|| decoder.decode_block(std::hint::black_box(&llrs), ITERS))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
