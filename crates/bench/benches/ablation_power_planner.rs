//! A5 — Ablation: power/energy trends and design-space exploration.
//!
//! Extends the paper's resource story with an order-of-magnitude power
//! model and shows the planner rediscovering the paper's two design
//! points from throughput requirements alone.

use criterion::{criterion_group, criterion_main, Criterion};
use ldpc_bench::announce;
use ldpc_core::codes::ccsds_c2;
use ldpc_hwsim::{
    estimate_power_via_simulation, plan, render_table, ArchConfig, ArchSimulator, CodeDims,
    PlannerRequest, ThroughputModel,
};

fn regenerate_a5() {
    announce("A5", "power trends and planner design points");
    let code = ccsds_c2::code();
    let info = ccsds_c2::K_INFO;
    let mut rows = Vec::new();
    for cfg in [ArchConfig::low_cost(), ArchConfig::high_speed()] {
        let sim = ArchSimulator::new(cfg.clone(), code.clone());
        let power = estimate_power_via_simulation(&sim, 18, info);
        let tp = ThroughputModel::new(cfg.clone(), CodeDims::ccsds_c2()).info_throughput_mbps(18);
        rows.push(vec![
            cfg.name.clone(),
            format!("{:.0} mW", power.total_mw()),
            format!("{:.0} mW", power.memory_dynamic_mw),
            format!("{:.2} nJ/bit", power.nj_per_info_bit(tp)),
            format!(
                "{:.1} us",
                ThroughputModel::new(cfg.clone(), CodeDims::ccsds_c2()).frame_latency_us(18)
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            "A5 — indicative power/energy/latency at 18 iterations (90 nm-era model)",
            &[
                "config",
                "total power",
                "memory power",
                "energy/bit",
                "frame latency"
            ],
            &rows,
        )
    );

    // Planner: the paper's two operating points as pure requirements.
    for (mbps, label) in [(70.0, "paper low-cost"), (560.0, "paper high-speed")] {
        let choice = plan(
            &PlannerRequest {
                min_info_mbps: mbps,
                iterations: 18,
                clock_mhz: 200.0,
            },
            &CodeDims::ccsds_c2(),
        )
        .expect("paper operating points must be plannable");
        println!(
            "planner for {label} ({mbps} Mbps): {} -> {} {} at {:.0} Mbps",
            choice.config.name, choice.device.family, choice.device.name, choice.info_mbps
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate_a5();
    let dims = CodeDims::ccsds_c2();
    c.bench_function("a5/full_design_space_sweep", |b| {
        b.iter(|| {
            plan(
                &PlannerRequest {
                    min_info_mbps: std::hint::black_box(300.0),
                    iterations: 18,
                    clock_mhz: 200.0,
                },
                &dims,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
