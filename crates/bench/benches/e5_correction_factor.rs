//! E5 + A2 — Paper §5: the fine scaled correction factor.
//!
//! * α ablation: PER vs normalization factor at a fixed operating point
//!   (why the hardware implements ×0.75, i.e. α = 4/3);
//! * the headline equivalence: scaled min-sum at 18 iterations matches
//!   plain sign-min at 50 iterations;
//! * the matched-α profile from the density-evolution optimizer.

use criterion::{criterion_group, criterion_main, Criterion};
use ldpc_bench::{announce, bench_mc_config};
use ldpc_core::codes::small::demo_code;
use ldpc_core::decoder::{fine_alpha_schedule, mean_matching_alpha, nearest_hardware_scaling};
use ldpc_core::DecoderSpec;
use ldpc_hwsim::render_table;
use ldpc_sim::run_point_spec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate_e5() {
    announce("E5/A2", "section 5 (fine scaled correction factor)");
    let code = demo_code();

    // --- A2: alpha grid at 3.0 dB, 18 iterations. ---
    let alphas = [1.0f32, 8.0 / 7.0, 4.0 / 3.0, 1.5, 2.0];
    let rows: Vec<Vec<String>> = alphas
        .iter()
        .map(|&alpha| {
            let spec = if alpha == 1.0 {
                DecoderSpec::parse("ms").unwrap()
            } else {
                DecoderSpec::parse(&format!("nms:{alpha}")).unwrap()
            };
            let point = run_point_spec(&code, None, &bench_mc_config(3.0, 18), &spec);
            vec![
                format!("{alpha:.3}"),
                format!("{:.2e}", point.ber()),
                format!("{:.2e}", point.per()),
                point.frames.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "A2 — PER vs normalization factor (3.0 dB, 18 iterations)",
            &["alpha", "BER", "PER", "frames"],
            &rows,
        )
    );

    // --- E5: 18 scaled iterations vs 50 plain iterations. ---
    let plain = run_point_spec(
        &code,
        None,
        &bench_mc_config(3.0, 50),
        &DecoderSpec::parse("ms").unwrap(),
    );
    let scaled = run_point_spec(
        &code,
        None,
        &bench_mc_config(3.0, 18),
        &DecoderSpec::parse("nms").unwrap(),
    );
    println!(
        "{}",
        render_table(
            "E5 — iterations trade-off (3.0 dB)",
            &["decoder", "iterations", "BER", "PER"],
            &[
                vec![
                    "plain sign-min".into(),
                    "50".into(),
                    format!("{:.2e}", plain.ber()),
                    format!("{:.2e}", plain.per()),
                ],
                vec![
                    "scaled (α=4/3)".into(),
                    "18".into(),
                    format!("{:.2e}", scaled.ber()),
                    format!("{:.2e}", scaled.per()),
                ],
            ],
        )
    );

    // --- Matched alpha from the optimizer. ---
    let mut rng = StdRng::seed_from_u64(0xA1FA);
    let schedule = fine_alpha_schedule(32, 4, 8.8, 6, 20_000, &mut rng);
    println!("fine alpha schedule (C2 degrees, 4 dB): {schedule:?}");
    let a = mean_matching_alpha(32, 11.0, 30_000, &mut rng);
    println!(
        "matched alpha at the waterfall operating point: {a:.3} -> {:?}",
        nearest_hardware_scaling(a)
    );
}

fn bench(c: &mut Criterion) {
    regenerate_e5();
    let mut group = c.benchmark_group("e5");
    group.sample_size(10);
    group.bench_function("alpha_optimizer_10k_samples", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            mean_matching_alpha(32, 11.0, 10_000, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
