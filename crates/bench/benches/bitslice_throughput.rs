//! A6 — Bit-sliced hard-decision decoding throughput: scalar Gallager-B
//! vs 64 frames per `u64` word.
//!
//! The paper's high-speed variant packs 8 soft frames per message-memory
//! word (Table 3); at the hard-decision limit a frame contributes exactly
//! one bit per variable node, so a single machine word carries 64 frames
//! and every boolean operation advances all of them in lockstep.
//! Regenerates a frames/sec comparison on the demo code and the full
//! CCSDS C2 code, asserting along the way that the bit-sliced output is
//! bit-identical to scalar Gallager-B lane by lane. The acceptance bar is
//! >= 5x frames/sec on the demo code.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ldpc_bench::{announce, frames_per_sec, noisy_frames};
use ldpc_core::codes::{ccsds_c2, small::demo_code};
use ldpc_core::{
    decode_frames, BatchDecoder, BitsliceGallagerBDecoder, GallagerBDecoder, LdpcCode,
};
use std::sync::Arc;

const ITERS: u32 = 10;
const THRESHOLD: usize = 3;

fn compare(label: &str, code: &Arc<LdpcCode>, total: usize, ebn0: f64, seed: u64) -> f64 {
    let llrs = noisy_frames(code, total, ebn0, seed);
    let mut scalar = GallagerBDecoder::new(code.clone(), THRESHOLD);
    let reference = decode_frames(&mut scalar, &llrs, ITERS);
    let base = frames_per_sec(total, || {
        let _ = decode_frames(&mut scalar, &llrs, ITERS);
    });
    let mut sliced = BitsliceGallagerBDecoder::new(code.clone(), THRESHOLD);
    let mut out = Vec::new();
    let fps = frames_per_sec(total, || {
        out = llrs
            .chunks(64 * code.n())
            .flat_map(|block| sliced.decode_batch(block, ITERS))
            .collect();
    });
    assert_eq!(out, reference, "bit-sliced output diverged from scalar");
    let speedup = fps / base;
    println!(
        "  {label}: scalar {base:>9.0} fr/s, bitslice 64 {fps:>9.0} fr/s = {speedup:.1}x (bit-identical)"
    );
    speedup
}

fn regenerate_a6() {
    announce(
        "A6",
        "scalar vs bit-sliced Gallager-B throughput (64 frames per u64 word)",
    );
    compare("demo code ", &demo_code(), 4096, 6.0, 31);
    compare("CCSDS C2  ", &ccsds_c2::code(), 128, 6.0, 32);
}

fn bench(c: &mut Criterion) {
    regenerate_a6();

    let code = demo_code();
    let llrs64 = noisy_frames(&code, 64, 6.0, 41);
    let mut group = c.benchmark_group("a6_bitslice_throughput_demo");
    group.sample_size(20);
    group.throughput(Throughput::Elements(64));
    group.bench_function("scalar_gallager_b_64x", |b| {
        let mut dec = GallagerBDecoder::new(code.clone(), THRESHOLD);
        b.iter(|| decode_frames(&mut dec, std::hint::black_box(&llrs64), ITERS))
    });
    group.bench_function("bitslice_word_64", |b| {
        let mut dec = BitsliceGallagerBDecoder::new(code.clone(), THRESHOLD);
        b.iter(|| dec.decode_batch(std::hint::black_box(&llrs64), ITERS))
    });
    group.finish();

    let c2 = ccsds_c2::code();
    let llrs64 = noisy_frames(&c2, 64, 6.0, 42);
    let mut group = c.benchmark_group("a6_bitslice_throughput_c2");
    group.sample_size(10);
    group.throughput(Throughput::Elements(64));
    group.bench_function("scalar_gallager_b_64x", |b| {
        let mut dec = GallagerBDecoder::new(c2.clone(), THRESHOLD);
        b.iter(|| decode_frames(&mut dec, std::hint::black_box(&llrs64), ITERS))
    });
    group.bench_function("bitslice_word_64", |b| {
        let mut dec = BitsliceGallagerBDecoder::new(c2.clone(), THRESHOLD);
        b.iter(|| dec.decode_batch(std::hint::black_box(&llrs64), ITERS))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
