//! A1 — Ablation: message quantization width of the fixed-point datapath.
//!
//! The architecture stores every edge message in `q_msg` bits; memory (and
//! the paper's Table 2/3 budgets) scale linearly with it while error-rate
//! performance saturates. This ablation locates the knee.

use criterion::{criterion_group, criterion_main, Criterion};
use ldpc_bench::{announce, bench_mc_config};
use ldpc_core::codes::small::demo_code;
use ldpc_core::{Decoder, FixedConfig, FixedDecoder, PerFrame};
use ldpc_hwsim::{render_table, ArchConfig, CodeDims, MemoryPlan};
use ldpc_sim::run_point_blocks;

fn regenerate_a1() {
    announce(
        "A1",
        "quantization-width ablation (BER/PER and memory vs q_msg)",
    );
    let code = demo_code();
    let dims = CodeDims::ccsds_c2();
    let rows: Vec<Vec<String>> = [4u32, 5, 6, 7, 8]
        .iter()
        .map(|&q| {
            let fixed = FixedConfig::default().with_q_msg(q).with_q_ch(q.min(5));
            // A custom quantization width is outside the spec grammar, so
            // this drives the engine's explicit-factory door directly.
            let point = run_point_blocks(&code, None, &bench_mc_config(3.5, 18), move || {
                PerFrame::new(FixedDecoder::new(demo_code(), fixed))
            });
            // Memory cost of this width on the real C2 low-cost decoder.
            let plan = MemoryPlan::new(
                &ArchConfig::low_cost()
                    .with_fixed(FixedConfig::default().with_q_msg(q).with_q_ch(q.min(5))),
                &dims,
            );
            vec![
                q.to_string(),
                format!("{:.2e}", point.ber()),
                format!("{:.2e}", point.per()),
                format!("{}k", plan.total_bits() / 1000),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "A1 — demo-code error rates (3.5 dB, 18 it) and C2 memory budget vs q_msg",
            &["q_msg", "BER", "PER", "C2 memory"],
            &rows,
        )
    );
    println!(
        "expected shape: large loss below 5 bits, saturation at 6 bits (the paper's design point)"
    );
}

fn bench(c: &mut Criterion) {
    regenerate_a1();
    let code = demo_code();
    let mut group = c.benchmark_group("a1");
    group.sample_size(20);
    for q in [4u32, 6, 8] {
        group.bench_function(format!("decode_demo_q{q}"), |b| {
            let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default().with_q_msg(q));
            let llrs = vec![1.5f32; code.n()];
            b.iter(|| dec.decode(std::hint::black_box(&llrs), 18))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
