//! F1 — Paper §6 future work: AR4JA deep-space codes on the same decoder
//! stack, demonstrating the genericity claim across CCSDS recommendations.

use criterion::{criterion_group, criterion_main, Criterion};
use ldpc_ar4ja::{Ar4jaCode, Ar4jaRate};
use ldpc_bench::announce;
use ldpc_channel::{bpsk_modulate, AwgnChannel};
use ldpc_core::{Decoder, MinSumConfig, MinSumDecoder};
use ldpc_hwsim::{render_table, ArchConfig, CodeDims, ResourceEstimate, ThroughputModel};

fn frame_error_rate(rate: Ar4jaRate, m: usize, ebn0_db: f64, frames: usize) -> (f64, f64) {
    let ar4ja = Ar4jaCode::build(rate, m, 11);
    let code = ar4ja.code().clone();
    let mut channel = AwgnChannel::from_ebn0(ebn0_db, ar4ja.rate(), 0xF1);
    let zero = gf2::BitVec::zeros(ar4ja.transmitted_len());
    let mut dec = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.25));
    let mut errors = 0usize;
    let mut iters = 0u64;
    for _ in 0..frames {
        let tx_llrs = channel.llrs(&bpsk_modulate(&zero));
        let llrs = ar4ja.expand_llrs(&tx_llrs);
        let out = dec.decode(&llrs, 50);
        iters += u64::from(out.iterations);
        if !out.hard_decision.is_zero() {
            errors += 1;
        }
    }
    (errors as f64 / frames as f64, iters as f64 / frames as f64)
}

fn regenerate_f1() {
    announce(
        "F1",
        "section 6 future work (AR4JA deep-space codes, punctured decoding)",
    );
    let mut rows = Vec::new();
    for (rate, label, ebn0) in [
        (Ar4jaRate::Half, "1/2", 2.5),
        (Ar4jaRate::TwoThirds, "2/3", 3.5),
        (Ar4jaRate::FourFifths, "4/5", 4.5),
    ] {
        let (fer, avg_iters) = frame_error_rate(rate, 128, ebn0, 120);
        let ar4ja = Ar4jaCode::build(rate, 128, 11);
        rows.push(vec![
            label.to_string(),
            format!("k={}", ar4ja.info_len()),
            format!("n_tx={}", ar4ja.transmitted_len()),
            format!("{ebn0:.1}"),
            format!("{fer:.2e}"),
            format!("{avg_iters:.1}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "F1 — AR4JA family (M=128) decoded by the same stack",
            &[
                "rate",
                "info",
                "transmitted",
                "Eb/N0 dB",
                "FER",
                "avg iters"
            ],
            &rows,
        )
    );

    // The generic architecture retargeted at an AR4JA code: throughput and
    // resources from the same models.
    let ar4ja = Ar4jaCode::build(Ar4jaRate::Half, 128, 11);
    let dims = CodeDims::from_code(ar4ja.code(), ar4ja.info_len());
    let cfg = ArchConfig::low_cost().with_name("low-cost/AR4JA");
    let model = ThroughputModel::new(cfg.clone(), dims);
    let est = ResourceEstimate::new(&cfg, &dims);
    println!(
        "generic architecture on AR4JA r=1/2 M=128: {:.1} Mbps info at 18 iterations, {est}",
        model.info_throughput_mbps(18)
    );
}

fn bench(c: &mut Criterion) {
    regenerate_f1();
    let ar4ja = Ar4jaCode::build(Ar4jaRate::Half, 128, 11);
    let code = ar4ja.code().clone();
    let zero = gf2::BitVec::zeros(ar4ja.transmitted_len());
    let mut channel = AwgnChannel::from_ebn0(3.0, ar4ja.rate(), 9);
    let llrs = ar4ja.expand_llrs(&channel.llrs(&bpsk_modulate(&zero)));
    let mut group = c.benchmark_group("f1");
    group.sample_size(20);
    group.bench_function("decode_ar4ja_half_m128", |b| {
        let mut dec = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.25));
        b.iter(|| dec.decode(std::hint::black_box(&llrs), 20))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
