//! A13 — Erasure and burst channels vs the peeling decoder on C2.
//!
//! Regenerates the C2-vs-peeling comparison behind EXPERIMENTS.md A13:
//! random codewords (not all-zero — on an erasure channel ties and free
//! variables default to bit 0, so the all-zero word would flatter every
//! decoder above threshold) are pushed through the `erasure:p` grid and
//! the Gilbert-Elliott burst channel, decoded by both the paper's
//! fixed-point datapath and the `peeling` erasure decoder. The pinned
//! claims:
//!
//! * below the code's erasure limit (m/n ≈ 0.1248 for C2) peeling
//!   recovers **100 %** of frames — including `erasure:0.11`, past the
//!   iterative-BP threshold where the soft decoders fail every frame;
//! * above the limit (`erasure:0.14`) no decoder can recover, and
//!   peeling's underdetermined solve surfaces as *undetected* errors —
//!   recorded, not hidden;
//! * on the burst channel (bit flips, not losses) peeling fails
//!   honestly — zero undetected errors — while the soft decoders, whose
//!   regime it is, recover every frame at the mild operating point.
//!
//! A packet-loss run (`run_point_packets`) pins the tentpole workload
//! end to end: 16-packet C2 frames over `erasure:0.05`, peeling, zero
//! frame errors. The single-threaded loop is fully deterministic, so
//! the emitted CSV is byte-reproducible; its FNV-1a fingerprint and the
//! measured rows go to `BENCH_A13.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use ldpc_bench::announce;
use ldpc_channel::ChannelSpec;
use ldpc_core::codes::ccsds_c2;
use ldpc_core::DecoderSpec;
use ldpc_sim::{run_point_packets, MonteCarloConfig, Scenario, Transmission};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FRAMES: u64 = 40;
const MAX_ITERATIONS: u32 = 50;
const CHANNEL_SEED: u64 = 0x2009_0413;
const MESSAGE_SEED: u64 = 0xA13 ^ 0x2009_0413;
const PACKET_SYMBOLS: usize = 511;

/// The measured grid: every erasure rate × both decoders, plus the mild
/// burst operating point (capacity above C2's 0.875 rate) where the
/// soft decoders succeed and peeling must fail honestly.
const CHANNELS: &[&str] = &[
    "erasure:0.02",
    "erasure:0.05",
    "erasure:0.08",
    "erasure:0.11",
    "erasure:0.14",
    "burst:0.001,0.01,0.02",
];
const DECODERS: &[&str] = &["peeling", "fixed"];

struct Row {
    channel: &'static str,
    decoder: &'static str,
    bit_errors: u64,
    frame_errors: u64,
    undetected: u64,
    total_iterations: u64,
    code_bits: u64,
}

impl Row {
    fn ber(&self) -> f64 {
        self.bit_errors as f64 / (FRAMES * self.code_bits) as f64
    }
    fn per(&self) -> f64 {
        self.frame_errors as f64 / FRAMES as f64
    }
    fn avg_iterations(&self) -> f64 {
        self.total_iterations as f64 / FRAMES as f64
    }
}

/// One grid cell: `FRAMES` fresh random codewords through `channel`,
/// decoded by `decoder`, errors counted over all code bits against the
/// true codeword. Channel and message RNGs are pinned, the loop is
/// single-threaded, so equal inputs give byte-equal rows.
fn run_cell(channel: &'static str, decoder: &'static str) -> Row {
    let code = ccsds_c2::code();
    let enc = ccsds_c2::encoder();
    let spec = ChannelSpec::parse(channel).expect("valid channel spec");
    let mut ch = spec.build(4.0, code.rate(), CHANNEL_SEED);
    let mut dec = DecoderSpec::parse(decoder)
        .expect("valid decoder spec")
        .build(&code);
    let mut rng = StdRng::seed_from_u64(MESSAGE_SEED);
    let mut row = Row {
        channel,
        decoder,
        bit_errors: 0,
        frame_errors: 0,
        undetected: 0,
        total_iterations: 0,
        code_bits: code.n() as u64,
    };
    for _ in 0..FRAMES {
        let msg: Vec<u8> = (0..enc.dimension())
            .map(|_| rng.gen_range(0..2u8))
            .collect();
        let cw = enc
            .encode_bits(&msg)
            .expect("message has encoder dimension");
        let llrs = ch.transmit_codeword(&cw);
        let out = &dec.decode_block(&llrs, MAX_ITERATIONS)[0];
        let errs = (0..code.n())
            .filter(|&i| out.hard_decision.get(i) != cw.get(i))
            .count() as u64;
        row.bit_errors += errs;
        if errs > 0 {
            row.frame_errors += 1;
            row.undetected += u64::from(out.converged);
        }
        row.total_iterations += u64::from(out.iterations);
    }
    row
}

/// FNV-1a 64 over the CSV bytes — the reproducibility fingerprint
/// EXPERIMENTS.md records (the workspace vendors no hash crate).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn regenerate_a13() -> (Vec<Row>, String, u64) {
    announce(
        "A13",
        "erasure/burst channels: C2 fixed-point vs the peeling decoder",
    );
    let rows: Vec<Row> = CHANNELS
        .iter()
        .flat_map(|&ch| DECODERS.iter().map(move |&d| run_cell(ch, d)))
        .collect();

    let mut csv = String::from(
        "code,channel,decoder,frames,frame_errors,undetected,ber,per,avg_iterations\n",
    );
    for r in &rows {
        // RFC 4180: a spec containing a comma (the burst parameters) is
        // quoted so every row keeps the header's field count.
        let channel = if r.channel.contains(',') {
            format!("\"{}\"", r.channel)
        } else {
            r.channel.to_owned()
        };
        csv.push_str(&format!(
            "c2,{},{},{FRAMES},{},{},{:.6e},{:.6e},{:.3}\n",
            channel,
            r.decoder,
            r.frame_errors,
            r.undetected,
            r.ber(),
            r.per(),
            r.avg_iterations(),
        ));
    }
    print!("{csv}");
    let fingerprint = fnv1a(csv.as_bytes());
    println!("  csv fnv1a fingerprint: {fingerprint:016x}");

    let cell = |ch: &str, d: &str| {
        rows.iter()
            .find(|r| r.channel == ch && r.decoder == d)
            .expect("grid cell present")
    };
    // Peeling recovers 100% of frames below the erasure limit — even at
    // 0.11, past the BP threshold where the soft datapath loses every
    // frame. That gap is the reason the family exists.
    for ch in [
        "erasure:0.02",
        "erasure:0.05",
        "erasure:0.08",
        "erasure:0.11",
    ] {
        assert_eq!(
            cell(ch, "peeling").frame_errors,
            0,
            "peeling must recover every frame on {ch}"
        );
    }
    assert_eq!(
        cell("erasure:0.11", "fixed").frame_errors,
        FRAMES,
        "the BP decoders are expected to fail at erasure:0.11 on C2"
    );
    // Above the limit nobody recovers; peeling's failures there are
    // undetected (a valid-but-wrong codeword from the underdetermined
    // solve) and the CSV says so.
    assert_eq!(cell("erasure:0.14", "peeling").frame_errors, FRAMES);
    // The burst channel flips bits instead of erasing them: the soft
    // datapath's regime. Peeling trusts surviving symbols, so it must
    // fail every burst frame *detectably* — never a false convergence.
    assert_eq!(cell("burst:0.001,0.01,0.02", "fixed").frame_errors, 0);
    let burst_peeling = cell("burst:0.001,0.01,0.02", "peeling");
    assert_eq!(burst_peeling.frame_errors, FRAMES);
    assert_eq!(
        burst_peeling.undetected, 0,
        "peeling must never report a burst-corrupted frame as converged"
    );

    (rows, csv, fingerprint)
}

/// The packet-loss workload end to end: C2 frames in 16 packets of 511
/// symbols over `erasure:0.05` drops, peeling recovery, zero frame
/// errors — the tentpole acceptance run.
fn packet_numbers() -> (u64, u64, u64, f64) {
    let scenario = Scenario::parse("c2 / erasure:0.05 / peeling").expect("valid scenario");
    let cfg = MonteCarloConfig {
        ebn0_db: 4.0,
        max_frames: FRAMES,
        target_frame_errors: 0,
        max_iterations: MAX_ITERATIONS,
        seed: CHANNEL_SEED,
        threads: 1,
        transmission: Transmission::AllZero,
    };
    let (point, report) = run_point_packets(&scenario, PACKET_SYMBOLS, &cfg).expect("c2 builds");
    assert_eq!(
        point.frame_errors, 0,
        "peeling must recover every packetized frame at 5% drops"
    );
    println!(
        "  packet workload: {} packets, {} dropped (rate {:.4}), {} frame errors",
        report.packets,
        report.dropped,
        report.loss_rate(),
        point.frame_errors
    );
    (
        point.frame_errors,
        report.packets,
        report.dropped,
        report.loss_rate(),
    )
}

/// Writes the measured numbers to `BENCH_A13.json` at the workspace
/// root (hand-rolled JSON — the workspace vendors no serializer).
fn write_json(rows: &[Row], fingerprint: u64, packets: (u64, u64, u64, f64)) {
    let row_json = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"channel\": \"{}\", \"decoder\": \"{}\", \"frames\": {FRAMES}, \
                 \"frame_errors\": {}, \"undetected\": {}, \"ber\": {:.6e}, \
                 \"per\": {:.6e}, \"avg_iterations\": {:.3}}}",
                r.channel,
                r.decoder,
                r.frame_errors,
                r.undetected,
                r.ber(),
                r.per(),
                r.avg_iterations(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let (pkt_fe, pkt_sent, pkt_dropped, pkt_rate) = packets;
    let json = format!(
        "{{\n  \"experiment\": \"A13\",\n  \"frames\": {FRAMES},\n  \
         \"max_iterations\": {MAX_ITERATIONS},\n  \
         \"csv_fnv1a\": \"{fingerprint:016x}\",\n  \
         \"packet_workload\": {{\"scenario\": \"c2 / erasure:0.05 / peeling\", \
         \"packet_symbols\": {PACKET_SYMBOLS}, \"packets\": {pkt_sent}, \
         \"dropped\": {pkt_dropped}, \"loss_rate\": {pkt_rate:.4}, \
         \"frame_errors\": {pkt_fe}}},\n  \"rows\": [\n{row_json}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_A13.json");
    std::fs::write(path, json).expect("write BENCH_A13.json");
    println!("  wrote {path}");
}

fn bench(c: &mut Criterion) {
    let (rows, _csv, fingerprint) = regenerate_a13();
    let packets = packet_numbers();
    write_json(&rows, fingerprint, packets);

    // Criterion timing of the two peeling regimes on C2: pure degree-1
    // peeling at 5% erasures, and the dense inactivation fallback at
    // 11% (past the BP threshold — the expensive path).
    let code = ccsds_c2::code();
    let mut group = c.benchmark_group("a13_peeling");
    group.sample_size(10);
    for &(label, rate) in &[
        ("peel_5pct", "erasure:0.05"),
        ("inactivate_11pct", "erasure:0.11"),
    ] {
        let spec = ChannelSpec::parse(rate).expect("valid channel spec");
        let mut ch = spec.build(4.0, code.rate(), CHANNEL_SEED);
        let llrs = ch.transmit_codeword(&gf2::BitVec::zeros(code.n()));
        let mut dec = DecoderSpec::parse("peeling")
            .expect("valid decoder spec")
            .build(&code);
        group.bench_function(label, |b| {
            b.iter(|| dec.decode_block(std::hint::black_box(&llrs), MAX_ITERATIONS))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
