//! E3 — Paper Table 3: implementation results of the high-speed decoder
//! on an Altera Stratix II EP2S180, plus the §4.2 scaling claim.

use criterion::{criterion_group, criterion_main, Criterion};
use ldpc_bench::announce;
use ldpc_hwsim::{
    render_table, ArchConfig, CodeDims, MemoryPlan, ResourceEstimate, STRATIX_II_EP2S180,
};

fn regenerate_table3() {
    announce("E3", "Table 3 (high-speed decoder on Stratix II EP2S180)");
    let dims = CodeDims::ccsds_c2();
    let cfg = ArchConfig::high_speed();
    let est = ResourceEstimate::new(&cfg, &dims);
    let u = STRATIX_II_EP2S180.utilization(&est);
    let rows = vec![
        vec![
            format!("{}k ({:.0}%)", est.aluts / 1000, u.logic_pct),
            format!("{}k ({:.0}%)", est.registers / 1000, u.register_pct),
            format!("{}kb ({:.0}%)", est.memory_bits / 1000, u.memory_pct),
        ],
        vec![
            "38k (27%)".to_owned(),
            "30k (20%)".to_owned(),
            "1300kb (20%)".to_owned(),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Table 3 (row 1 = measured, row 2 = paper; memory % differs by \
             device-capacity denominator, see EXPERIMENTS.md)",
            &["ALUTs", "Registers", "Total Memory Bits"],
            &rows,
        )
    );
    println!("{}", MemoryPlan::new(&cfg, &dims));
    let lc = ResourceEstimate::new(&ArchConfig::low_cost(), &dims);
    println!(
        "\nsection 4.2 scaling: throughput x8.0, logic x{:.1}, registers x{:.1}, memory x{:.1}",
        est.aluts as f64 / lc.aluts as f64,
        est.registers as f64 / lc.registers as f64,
        est.memory_bits as f64 / lc.memory_bits as f64,
    );
}

fn bench(c: &mut Criterion) {
    regenerate_table3();
    let dims = CodeDims::ccsds_c2();
    c.bench_function("table3/memory_planning", |b| {
        b.iter(|| {
            MemoryPlan::new(&ArchConfig::high_speed(), std::hint::black_box(&dims)).total_bits()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
