//! A3 — Ablation: flooding vs serial ("layered") message-passing schedule.
//!
//! The paper's architecture floods (all CNs, then all BNs) to exploit the
//! QC code's parallelism. The serial schedule converges in fewer
//! iterations but serializes the hardware; this ablation quantifies the
//! iteration gap the architecture trades away.

use criterion::{criterion_group, criterion_main, Criterion};
use ldpc_bench::{announce, bench_mc_config};
use ldpc_core::codes::small::demo_code;
use ldpc_core::{Decoder, DecoderSpec, LayeredMinSumDecoder, MinSumConfig, MinSumDecoder};
use ldpc_hwsim::render_table;
use ldpc_sim::run_point_spec;

fn regenerate_a3() {
    announce("A3", "schedule ablation (flooding vs serial)");
    let code = demo_code();
    let rows: Vec<Vec<String>> = [2.5f64, 3.5, 4.5]
        .iter()
        .map(|&ebn0| {
            let flood = run_point_spec(
                &code,
                None,
                &bench_mc_config(ebn0, 50),
                &DecoderSpec::parse("nms").unwrap(),
            );
            let layered = run_point_spec(
                &code,
                None,
                &bench_mc_config(ebn0, 50),
                &DecoderSpec::parse("layered").unwrap(),
            );
            vec![
                format!("{ebn0:.1}"),
                format!("{:.1}", flood.avg_iterations()),
                format!("{:.1}", layered.avg_iterations()),
                format!("{:.2e}", flood.per()),
                format!("{:.2e}", layered.per()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "A3 — average iterations to converge and PER (50-iteration cap)",
            &[
                "Eb/N0 dB",
                "flood iters",
                "serial iters",
                "flood PER",
                "serial PER"
            ],
            &rows,
        )
    );
    println!("expected shape: serial needs ~half the iterations at equal reliability");
}

fn bench(c: &mut Criterion) {
    regenerate_a3();
    let code = demo_code();
    let llrs: Vec<f32> = (0..code.n())
        .map(|i| if i % 11 == 0 { -1.0 } else { 2.0 })
        .collect();
    let mut group = c.benchmark_group("a3");
    group.sample_size(30);
    group.bench_function("flooding_iteration", |b| {
        let mut dec = MinSumDecoder::new(
            code.clone(),
            MinSumConfig::normalized(4.0 / 3.0).with_early_stop(false),
        );
        b.iter(|| dec.decode(std::hint::black_box(&llrs), 10))
    });
    group.bench_function("serial_iteration", |b| {
        let mut dec = LayeredMinSumDecoder::new(code.clone(), 4.0 / 3.0).with_early_stop(false);
        b.iter(|| dec.decode(std::hint::black_box(&llrs), 10))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
