//! A12 — decode-as-a-service throughput under adaptive frame
//! coalescing: the served mirror of the paper's 8-frames-in-flight
//! datapath, measured end to end through the TCP loopback.
//!
//! One connection sending frames back to back forces the coalescer into
//! its latency-budget fallback (mostly batch-of-1 words, each paying a
//! full `@pack=8` word decode); 64 concurrent connections keep the
//! per-(code, decoder) queue deep enough that almost every dispatched
//! word carries 8 live lanes. The acceptance bar (ISSUE 9) is >= 4x
//! frames/sec at 64 connections over the single-connection rate on
//! `c2 / fixed@pack=8`, with every served frame bit-identical to
//! decoding the same LLRs directly through the scalar library path.
//! Measured numbers go to `BENCH_SERVED.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ldpc_bench::{announce, noisy_frames};
use ldpc_core::codes::{ccsds_c2, small::demo_code};
use ldpc_core::DecoderSpec;
use ldpc_served::{protocol, Client, DecodedFrame, Encoding, ServeConfig, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const ITERS: u32 = 18;
const EBN0_DB: f64 = 3.0;
const FRAMES: usize = 256;
const SPEC: &str = "c2 / fixed@pack=8";
const COALESCED_CONNECTIONS: usize = 64;

struct RunPoint {
    connections: usize,
    fps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

struct A12Numbers {
    single: RunPoint,
    coalesced: RunPoint,
    /// `(lanes, batches)` rows of the server's batch-fill histogram
    /// after both runs, parsed back out of the STATS body.
    batch_fill: Vec<(usize, u64)>,
}

/// Quantized noisy all-zero C2 frames on the wire's signed-byte scale.
fn wire_workload() -> Vec<Vec<i8>> {
    let c2 = ccsds_c2::code();
    noisy_frames(&c2, FRAMES, EBN0_DB, 0xA12)
        .chunks(c2.n())
        .map(|frame| frame.iter().copied().map(protocol::quantize_llr).collect())
        .collect()
}

/// Decodes the whole workload over `connections` concurrent
/// connections (each sending its share sequentially, like a telemetry
/// ingest stream) and returns per-frame results in workload order plus
/// the sorted per-frame latencies.
fn run_point(
    addr: SocketAddr,
    frames: &[Vec<i8>],
    connections: usize,
) -> (Vec<DecodedFrame>, RunPoint) {
    let share_len = frames.len().div_ceil(connections);
    let start = Instant::now();
    let results: Vec<Vec<(DecodedFrame, u64)>> = std::thread::scope(|s| {
        let handles: Vec<_> = frames
            .chunks(share_len)
            .map(|share| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    share
                        .iter()
                        .map(|q| {
                            let sent = Instant::now();
                            let frame = client
                                .decode_llr8(SPEC, q, Encoding::Base64)
                                .expect("decode");
                            (frame, sent.elapsed().as_micros() as u64)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();

    let mut decoded = Vec::with_capacity(frames.len());
    let mut latencies: Vec<u64> = Vec::with_capacity(frames.len());
    for share in results {
        for (frame, lat) in share {
            decoded.push(frame);
            latencies.push(lat);
        }
    }
    latencies.sort_unstable();
    let pct = |q: f64| {
        let rank = ((latencies.len() as f64 * q).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1] as f64 / 1e3
    };
    let point = RunPoint {
        connections,
        fps: frames.len() as f64 / wall.as_secs_f64(),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    };
    (decoded, point)
}

/// Parses `ldpc_served_batch_fill{lanes="N"} COUNT` rows out of a STATS
/// body.
fn parse_batch_fill(stats: &str) -> Vec<(usize, u64)> {
    stats
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("ldpc_served_batch_fill{lanes=\"")?;
            let (lanes, rest) = rest.split_once("\"} ")?;
            Some((lanes.parse().ok()?, rest.trim().parse().ok()?))
        })
        .collect()
}

fn regenerate_a12() -> A12Numbers {
    announce(
        "A12",
        "decode-as-a-service coalescing on c2 / fixed@pack=8 (1 vs 64 connections, 18 iterations)",
    );
    let server = Server::bind(ServeConfig {
        max_wait: Duration::from_micros(500),
        max_iterations: ITERS,
        ..ServeConfig::default()
    })
    .expect("bind port 0");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let frames = wire_workload();

    // One warm-up word before any timing: the first frame for a new
    // (code, decoder) key pays the C2 handle construction and the
    // worker's decoder build, which belongs to neither measured point.
    let (_, _) = run_point(addr, &frames[..8], 8);

    // Correctness gate before anything is reported: every frame served
    // through the coalescer must match the scalar library decode of the
    // same dequantized LLRs — bits, iteration count, convergence flag.
    let (decoded, coalesced) = run_point(addr, &frames, COALESCED_CONNECTIONS);

    // Snapshot the histogram here so it reflects the coalesced run (plus
    // the warm-up word), not the single-connection run's batch-of-1 tail.
    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    let batch_fill = parse_batch_fill(&stats);
    drop(client);

    let c2 = ccsds_c2::code();
    let scenario: ldpc_sim::Scenario = SPEC.parse().expect("spec");
    let mut scalar = DecoderSpec::scalar(scenario.decoder.family).build(&c2);
    for (i, (got, q)) in decoded.iter().zip(&frames).enumerate() {
        let want = &scalar.decode_block(&protocol::llr8_to_f32(q), ITERS)[0];
        assert_eq!(got.iterations, want.iterations, "frame {i} iterations");
        assert_eq!(got.converged, want.converged, "frame {i} convergence");
        for bit in 0..c2.n() {
            assert_eq!(
                got.bit(bit),
                want.hard_decision.get(bit),
                "frame {i} bit {bit} diverged from the direct library decode"
            );
        }
    }
    println!("  bit-exactness gate: all {FRAMES} served frames identical to direct decode");

    let (_, single) = run_point(addr, &frames, 1);

    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.frames_decoded, 8 + 2 * FRAMES as u64);

    for point in [&single, &coalesced] {
        println!(
            "  {:>3} connection(s): {:>7.1} fr/s  p50 {:>6.1} ms  p99 {:>6.1} ms",
            point.connections, point.fps, point.p50_ms, point.p99_ms
        );
    }
    println!(
        "  coalescing speedup: {:.2}x (bar: >= 4x at >= {COALESCED_CONNECTIONS} in-flight frames)",
        coalesced.fps / single.fps
    );
    let full: u64 = batch_fill
        .iter()
        .filter(|&&(lanes, _)| lanes == 8)
        .map(|&(_, c)| c)
        .sum();
    let total: u64 = batch_fill.iter().map(|&(_, c)| c).sum();
    println!("  batch-fill histogram: {batch_fill:?} ({full}/{total} words fully packed)",);

    A12Numbers {
        single,
        coalesced,
        batch_fill,
    }
}

/// Writes the measured numbers to `BENCH_SERVED.json` at the workspace
/// root (hand-rolled JSON — the workspace vendors no serializer).
fn write_json(n: &A12Numbers) {
    let fill = n
        .batch_fill
        .iter()
        .map(|(lanes, count)| format!("\"{lanes}\": {count}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"experiment\": \"A12\",\n  \"spec\": \"{SPEC}\",\n  \"channel\": \"awgn\",\n  \"ebn0_db\": {EBN0_DB},\n  \"iterations\": {ITERS},\n  \"frames\": {FRAMES},\n  \"max_wait_us\": 500,\n  \"frames_per_sec\": {{\"connections=1\": {single:.1}, \"connections={conns}\": {coal:.1}}},\n  \"latency_ms\": {{\"connections=1\": {{\"p50\": {sp50:.1}, \"p99\": {sp99:.1}}}, \"connections={conns}\": {{\"p50\": {cp50:.1}, \"p99\": {cp99:.1}}}}},\n  \"speedup\": {speedup:.2},\n  \"batch_fill\": {{{fill}}},\n  \"bit_exact_frames\": {FRAMES}\n}}\n",
        single = n.single.fps,
        conns = n.coalesced.connections,
        coal = n.coalesced.fps,
        sp50 = n.single.p50_ms,
        sp99 = n.single.p99_ms,
        cp50 = n.coalesced.p50_ms,
        cp99 = n.coalesced.p99_ms,
        speedup = n.coalesced.fps / n.single.fps,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SERVED.json");
    std::fs::write(path, json).expect("write BENCH_SERVED.json");
    println!("  wrote {path}");
}

fn bench(c: &mut Criterion) {
    let numbers = regenerate_a12();
    write_json(&numbers);

    // Criterion timing on the demo code keeps the measured group fast:
    // one full 8-lane word through the loopback, client connect
    // amortized outside the timed closure.
    let server = Server::bind(ServeConfig {
        max_wait: Duration::from_micros(200),
        max_iterations: ITERS,
        ..ServeConfig::default()
    })
    .expect("bind port 0");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let code = demo_code();
    let demo_frames: Vec<Vec<i8>> = noisy_frames(&code, 8, 4.0, 23)
        .chunks(code.n())
        .map(|f| f.iter().copied().map(protocol::quantize_llr).collect())
        .collect();
    let mut group = c.benchmark_group("a12_served_loopback_demo");
    group.sample_size(20);
    group.throughput(Throughput::Elements(8));
    group.bench_function("served_8_frames_8_connections", |b| {
        b.iter(|| {
            let (decoded, _) = run_point_demo(addr, &demo_frames);
            std::hint::black_box(decoded)
        })
    });
    group.bench_function("direct_8_frames_scalar", |b| {
        let mut dec = DecoderSpec::parse("fixed").expect("spec").build(&code);
        let frames_f32: Vec<Vec<f32>> = demo_frames
            .iter()
            .map(|q| protocol::llr8_to_f32(q))
            .collect();
        b.iter(|| {
            for llrs in &frames_f32 {
                std::hint::black_box(dec.decode_block(std::hint::black_box(llrs), ITERS));
            }
        })
    });
    group.finish();

    handle.shutdown();
    join.join().expect("server thread");
}

/// One 8-connection burst of demo frames against the standing server,
/// used inside the Criterion closure (spec differs from A12's: the demo
/// code keeps the timed group fast).
fn run_point_demo(addr: SocketAddr, frames: &[Vec<i8>]) -> (Vec<DecodedFrame>, ()) {
    let decoded = std::thread::scope(|s| {
        let handles: Vec<_> = frames
            .iter()
            .map(|q| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .decode_llr8("demo / fixed@pack=8", q, Encoding::Hex)
                        .expect("decode")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (decoded, ())
}

criterion_group!(benches, bench);
criterion_main!(benches);
