//! E6/E7 — Paper Figures 1 and 2: the Tanner graph and the scatter
//! structure of the CCSDS C2 parity-check matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use ldpc_bench::announce;
use ldpc_core::codes::ccsds_c2;
use ldpc_hwsim::render_table;

fn regenerate_fig2() {
    announce(
        "E6/E7",
        "Figures 1-2 (parity-check matrix and Tanner graph structure)",
    );
    let code = ccsds_c2::code();
    let h = code.h();
    let graph = code.graph();
    let col_w = h.col_weights();
    let rows = vec![
        vec![
            "size".into(),
            format!("{} x {}", h.rows(), h.cols()),
            "1022 x 8176".into(),
        ],
        vec![
            "ones (edges)".into(),
            h.nnz().to_string(),
            "32704 (2x16x511x2)".into(),
        ],
        vec![
            "row weight".into(),
            format!("{} (all rows)", h.row_weight(0)),
            "32".into(),
        ],
        vec![
            "column weight".into(),
            format!("{} (all cols)", col_w[0]),
            "4".into(),
        ],
        vec![
            "rank(H)".into(),
            code.rank().to_string(),
            "1020 -> (8176,7156)".into(),
        ],
        vec![
            "girth (sampled)".into(),
            format!("{:?}", graph.girth_from(&[0, 511, 1022, 4088, 8175])),
            ">= 6 (no 4-cycles)".into(),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Figure 2 structure (measured vs paper section 2.2)",
            &["property", "measured", "paper"],
            &rows,
        )
    );
    // A small corner of the scatter chart: the first rows of each block row.
    println!("scatter sample (row: column positions of ones)");
    for r in [0usize, 1, 511, 512] {
        let cols: Vec<u32> = h.row(r).to_vec();
        println!("  row {r:4}: {cols:?}");
    }
}

fn bench(c: &mut Criterion) {
    regenerate_fig2();
    c.bench_function("fig2/expand_c2_spec", |b| {
        b.iter(|| {
            let spec = ccsds_c2::spec();
            std::hint::black_box(spec.expand().nnz())
        })
    });
    c.bench_function("fig2/column_weights", |b| {
        let code = ccsds_c2::code();
        b.iter(|| std::hint::black_box(code.h().col_weights().len()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
