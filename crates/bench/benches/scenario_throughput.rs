//! A8 — Registry-driven scenario throughput: the code × channel ×
//! decoder grid through the one Monte-Carlo engine.
//!
//! Where A7 sweeps the decoder registry over a fixed AWGN workload, this
//! target sweeps *scenarios*: every registered channel model
//! ([`ChannelSpec::all_channels`]) crossed with a representative decoder
//! spread, end to end through [`run_point_scenario`] — frame generation,
//! channel transit, LLR expansion, and decoding included. Registering a
//! new channel model adds a column here automatically.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ldpc_bench::{announce, frames_per_sec};
use ldpc_channel::ChannelSpec;
use ldpc_sim::{run_point_scenario, MonteCarloConfig, Scenario, Transmission};

const ITERS: u32 = 10;
const FRAMES: u64 = 512;
const DECODERS: &[&str] = &["nms:1.25", "fixed@batch=8", "gallager-b@bitslice"];

fn mc_config() -> MonteCarloConfig {
    MonteCarloConfig {
        ebn0_db: 4.0,
        max_frames: FRAMES,
        target_frame_errors: 0,
        max_iterations: ITERS,
        seed: 0xA8A8,
        threads: 1,
        transmission: Transmission::AllZero,
    }
}

fn regenerate_a8() {
    announce(
        "A8",
        "scenario-grid throughput (demo code, one engine, single worker)",
    );
    println!(
        "  {:<14} {:<22} {:>12} {:>8}",
        "channel", "decoder", "frames/sec", "per"
    );
    for channel in ChannelSpec::all_channels() {
        for decoder in DECODERS {
            let scenario = Scenario::parse(&format!("demo / {channel} / {decoder}"))
                .unwrap_or_else(|e| panic!("demo / {channel} / {decoder}: {e}"));
            let mut per = 0.0;
            let fps = frames_per_sec(FRAMES as usize, || {
                let point = run_point_scenario(&scenario, &mc_config()).expect("code builds");
                assert_eq!(point.frames, FRAMES, "{scenario}: dropped frames");
                per = point.per();
            });
            println!(
                "  {:<14} {:<22} {fps:>12.0} {per:>8.4}",
                channel.to_string(),
                decoder
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    regenerate_a8();

    // Criterion timing for one scenario per channel model at a fixed
    // decoder, so channel-model cost is directly comparable.
    let mut group = c.benchmark_group("a8_scenario_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(64));
    for channel in ChannelSpec::all_channels() {
        let scenario = Scenario::parse(&format!("demo / {channel} / fixed")).unwrap();
        let cfg = MonteCarloConfig {
            max_frames: 64,
            ..mc_config()
        };
        group.bench_function(channel.to_string(), |b| {
            b.iter(|| run_point_scenario(std::hint::black_box(&scenario), &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
