//! A5 — Frame-batched decoding throughput: per-frame decoding vs the
//! lockstep batch decoders that mirror the architecture's frames-per-word
//! packing (Table 3 packs 8 frames per message-memory word).
//!
//! Regenerates a frames/sec comparison at batch size 8 on the small code
//! and the full CCSDS C2 code, in fixed-latency mode (no early
//! termination — how the hardware runs), asserting along the way that the
//! batched output is bit-identical to per-frame decoding. The acceptance
//! bar is >= 1.5x frames/sec at batch 8 on the small code.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ldpc_bench::{announce, frames_per_sec, noisy_frames};
use ldpc_core::codes::{ccsds_c2, small::demo_code};
use ldpc_core::{
    decode_frames, BatchDecoder, BatchFixedDecoder, BatchMinSumDecoder, FixedConfig, FixedDecoder,
    MinSumConfig, MinSumDecoder,
};

const ITERS: u32 = 10;

fn regenerate_a5() {
    announce(
        "A5",
        "per-frame vs frame-batched decoding throughput (batch 8, fixed latency)",
    );
    // Small code, float min-sum.
    let code = demo_code();
    let total = 512;
    let llrs = noisy_frames(&code, total, 4.0, 11);
    let cfg = MinSumConfig::normalized(4.0 / 3.0).with_early_stop(false);
    let mut per_frame = MinSumDecoder::new(code.clone(), cfg.clone());
    let reference = decode_frames(&mut per_frame, &llrs, ITERS);
    let base = frames_per_sec(total, || {
        let _ = decode_frames(&mut per_frame, &llrs, ITERS);
    });
    let mut batched = BatchMinSumDecoder::new(code.clone(), cfg, 8);
    let mut out = Vec::new();
    let fps = frames_per_sec(total, || {
        out = llrs
            .chunks(8 * code.n())
            .flat_map(|block| batched.decode_batch(block, ITERS))
            .collect();
    });
    assert_eq!(out, reference, "batched output diverged from per-frame");
    println!("  demo code, min-sum   : per-frame {base:>8.0} fr/s, batch 8 {fps:>8.0} fr/s = {:.2}x (bit-identical)", fps / base);

    // Full C2 code, fixed-point datapath.
    let c2 = ccsds_c2::code();
    let total = 16;
    let llrs = noisy_frames(&c2, total, 4.0, 12);
    let fcfg = FixedConfig::default().with_early_stop(false);
    let mut per_frame = FixedDecoder::new(c2.clone(), fcfg);
    let reference = decode_frames(&mut per_frame, &llrs, ITERS);
    let base = frames_per_sec(total, || {
        let _ = decode_frames(&mut per_frame, &llrs, ITERS);
    });
    let mut batched = BatchFixedDecoder::new(c2.clone(), fcfg, 8);
    let mut out = Vec::new();
    let fps = frames_per_sec(total, || {
        out = llrs
            .chunks(8 * c2.n())
            .flat_map(|block| batched.decode_batch(block, ITERS))
            .collect();
    });
    assert_eq!(out, reference, "batched output diverged from per-frame");
    println!("  CCSDS C2, fixed-point: per-frame {base:>8.1} fr/s, batch 8 {fps:>8.1} fr/s = {:.2}x (bit-identical)", fps / base);
}

fn bench(c: &mut Criterion) {
    regenerate_a5();

    let code = demo_code();
    let llrs8 = noisy_frames(&code, 8, 4.0, 21);
    let cfg = MinSumConfig::normalized(4.0 / 3.0).with_early_stop(false);
    let mut group = c.benchmark_group("a5_batch_throughput_demo");
    group.sample_size(20);
    group.throughput(Throughput::Elements(8));
    group.bench_function("per_frame_minsum_8x", |b| {
        let mut dec = MinSumDecoder::new(code.clone(), cfg.clone());
        b.iter(|| decode_frames(&mut dec, std::hint::black_box(&llrs8), ITERS))
    });
    group.bench_function("batch8_minsum", |b| {
        let mut dec = BatchMinSumDecoder::new(code.clone(), cfg.clone(), 8);
        b.iter(|| dec.decode_batch(std::hint::black_box(&llrs8), ITERS))
    });
    group.finish();

    let c2 = ccsds_c2::code();
    let llrs8 = noisy_frames(&c2, 8, 4.0, 22);
    let fcfg = FixedConfig::default().with_early_stop(false);
    let mut group = c.benchmark_group("a5_batch_throughput_c2");
    group.sample_size(10);
    group.throughput(Throughput::Elements(8));
    group.bench_function("per_frame_fixed_8x", |b| {
        let mut dec = FixedDecoder::new(c2.clone(), fcfg);
        b.iter(|| decode_frames(&mut dec, std::hint::black_box(&llrs8), ITERS))
    });
    group.bench_function("batch8_fixed", |b| {
        let mut dec = BatchFixedDecoder::new(c2.clone(), fcfg, 8);
        b.iter(|| dec.decode_batch(std::hint::black_box(&llrs8), ITERS))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
