//! A9 — Circulant-aware QC datapath throughput: the rotate-indexed
//! block-layered decoder against the serial layered schedule and the
//! fixed-point flooding datapath on the full CCSDS C2 code.
//!
//! Regenerates a single-core frames/sec comparison at 18 iterations in
//! fixed-latency mode (no early termination), prints the per-bank memory
//! traffic table from `ldpc-hwsim` (QC vs generic schedule — the banking
//! argument the kernel's layout mirrors in software), and writes the
//! measured numbers to `BENCH_A9.json` at the workspace root so CI and
//! EXPERIMENTS.md can consume them machine-readably. The acceptance bar
//! is >= 3x frames/sec over both `layered` and `fixed`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ldpc_bench::{announce, frames_per_sec, noisy_frames};
use ldpc_core::codes::{ccsds_c2, small::demo_code};
use ldpc_core::{decode_frames, FixedConfig, FixedDecoder, LayeredMinSumDecoder, QcLayeredDecoder};
use ldpc_hwsim::MessageBankLayout;

const ITERS: u32 = 18;
const ALPHA: f32 = 4.0 / 3.0;

struct A9Numbers {
    frames: usize,
    layered_fps: f64,
    fixed_fps: f64,
    qc_fps: f64,
}

fn regenerate_a9() -> A9Numbers {
    announce(
        "A9",
        "QC block-layered vs serial layered vs fixed flooding on C2 (18 iterations, fixed latency)",
    );
    let c2 = ccsds_c2::code();
    let total = 48;
    let llrs = noisy_frames(&c2, total, 4.0, 9);

    let mut layered = LayeredMinSumDecoder::new(c2.clone(), ALPHA).with_early_stop(false);
    let mut fixed = FixedDecoder::new(c2.clone(), FixedConfig::default().with_early_stop(false));
    let mut qc = QcLayeredDecoder::new(c2.clone(), ALPHA).with_early_stop(false);

    // One warm-up decode per datapath; the QC and serial schedules must
    // land on the same codewords wherever both report convergence.
    let reference = decode_frames(&mut layered, &llrs, ITERS);
    let _ = decode_frames(&mut fixed, &llrs, ITERS);
    let qc_out = decode_frames(&mut qc, &llrs, ITERS);
    let mut agreements = 0usize;
    for (f, (a, b)) in qc_out.iter().zip(&reference).enumerate() {
        if a.converged && b.converged {
            assert_eq!(
                a.hard_decision, b.hard_decision,
                "schedules disagree on converged frame {f}"
            );
            agreements += 1;
        }
    }
    assert!(agreements > 0, "no frame converged under both schedules");

    let layered_fps = frames_per_sec(total, || {
        let _ = decode_frames(&mut layered, &llrs, ITERS);
    });
    let fixed_fps = frames_per_sec(total, || {
        let _ = decode_frames(&mut fixed, &llrs, ITERS);
    });
    let qc_fps = frames_per_sec(total, || {
        let _ = decode_frames(&mut qc, &llrs, ITERS);
    });

    println!("  layered    (serial)  : {layered_fps:>8.1} fr/s");
    println!("  fixed      (flooding): {fixed_fps:>8.1} fr/s");
    println!(
        "  qc-layered (blockrow): {qc_fps:>8.1} fr/s = {:.2}x layered, {:.2}x fixed ({agreements}/{total} frames agree with layered)",
        qc_fps / layered_fps,
        qc_fps / fixed_fps,
    );

    let traffic = MessageBankLayout::new(&ccsds_c2::spec()).traffic_per_iteration();
    println!("\n{}", traffic.render());

    A9Numbers {
        frames: total,
        layered_fps,
        fixed_fps,
        qc_fps,
    }
}

/// Writes the measured numbers and the analytic traffic model to
/// `BENCH_A9.json` at the workspace root (hand-rolled JSON — the
/// workspace vendors no serializer).
fn write_json(n: &A9Numbers) {
    let traffic = MessageBankLayout::new(&ccsds_c2::spec()).traffic_per_iteration();
    let (qc_words, generic_words) = traffic.total_words();
    let (qc_bursts, generic_bursts) = traffic.total_bursts();
    let bank = |side: &[ldpc_hwsim::BankTraffic]| {
        side.iter()
            .map(|b| {
                format!(
                    "{{\"bank\": {}, \"word_reads\": {}, \"word_writes\": {}, \"bursts\": {}}}",
                    b.bank, b.word_reads, b.word_writes, b.bursts
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"experiment\": \"A9\",\n  \"code\": \"c2\",\n  \"channel\": \"awgn\",\n  \"ebn0_db\": 4.0,\n  \"iterations\": {iters},\n  \"frames\": {frames},\n  \"frames_per_sec\": {{\"layered\": {layered:.1}, \"fixed\": {fixed:.1}, \"qc-layered\": {qc:.1}}},\n  \"speedup\": {{\"vs_layered\": {su_l:.2}, \"vs_fixed\": {su_f:.2}}},\n  \"traffic_per_iteration\": {{\n    \"qc\": [{qc_banks}],\n    \"generic\": [{generic_banks}],\n    \"total_words\": {{\"qc\": {qc_words}, \"generic\": {generic_words}}},\n    \"total_bursts\": {{\"qc\": {qc_bursts}, \"generic\": {generic_bursts}}}\n  }}\n}}\n",
        iters = ITERS,
        frames = n.frames,
        layered = n.layered_fps,
        fixed = n.fixed_fps,
        qc = n.qc_fps,
        su_l = n.qc_fps / n.layered_fps,
        su_f = n.qc_fps / n.fixed_fps,
        qc_banks = bank(&traffic.qc),
        generic_banks = bank(&traffic.generic),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_A9.json");
    std::fs::write(path, json).expect("write BENCH_A9.json");
    println!("  wrote {path}");
}

fn bench(c: &mut Criterion) {
    let numbers = regenerate_a9();
    write_json(&numbers);

    // Criterion timing on the demo code (same 2x16-style circulant shape
    // at 1/33 scale) keeps the measured group fast.
    let code = demo_code();
    let llrs8 = noisy_frames(&code, 8, 4.0, 23);
    let mut group = c.benchmark_group("a9_qc_throughput_demo");
    group.sample_size(20);
    group.throughput(Throughput::Elements(8));
    group.bench_function("layered_serial_8x", |b| {
        let mut dec = LayeredMinSumDecoder::new(code.clone(), ALPHA).with_early_stop(false);
        b.iter(|| decode_frames(&mut dec, std::hint::black_box(&llrs8), ITERS))
    });
    group.bench_function("qc_layered_8x", |b| {
        let mut dec = QcLayeredDecoder::new(code.clone(), ALPHA).with_early_stop(false);
        b.iter(|| decode_frames(&mut dec, std::hint::black_box(&llrs8), ITERS))
    });
    group.finish();

    let c2 = ccsds_c2::code();
    let llrs4 = noisy_frames(&c2, 4, 4.0, 24);
    let mut group = c.benchmark_group("a9_qc_throughput_c2");
    group.sample_size(10);
    group.throughput(Throughput::Elements(4));
    group.bench_function("qc_layered_4x", |b| {
        let mut dec = QcLayeredDecoder::new(c2.clone(), ALPHA).with_early_stop(false);
        b.iter(|| decode_frames(&mut dec, std::hint::black_box(&llrs4), ITERS))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
