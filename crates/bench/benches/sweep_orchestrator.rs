//! A11 — Adaptive, resumable sweep orchestration: cold vs warm wall
//! time of `ldpc_sim::run_sweep` over a demo waterfall grid.
//!
//! Regenerates the cold-run / warm-rerun comparison behind EXPERIMENTS.md
//! A11: a cold adaptive sweep into a fresh chunk cache, then the same
//! sweep against the warm cache — asserting the warm pass simulates
//! **zero** frames, returns bit-identical merged points, and finishes in
//! under a second (the ISSUE 8 acceptance bar). Writes the measured
//! numbers to `BENCH_SWEEP.json` at the workspace root so CI and
//! EXPERIMENTS.md can consume them machine-readably.

use criterion::{criterion_group, criterion_main, Criterion};
use ldpc_bench::announce;
use ldpc_sim::{run_sweep, sweep_grid, Scenario, SweepConfig, SweepUnitResult};
use std::path::PathBuf;
use std::time::Instant;

const EBN0S: [f64; 6] = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
const TARGET_ERRORS: u64 = 50;
const MAX_FRAMES: u64 = 20_000;
const CHUNK_FRAMES: u64 = 1_000;

struct A11Numbers {
    cold_secs: f64,
    warm_secs: f64,
    cold_simulated: u64,
    warm_simulated: u64,
    results: Vec<SweepUnitResult>,
}

fn cache_dir() -> PathBuf {
    std::env::temp_dir().join(format!("ldpc-bench-a11-cache-{}", std::process::id()))
}

fn sweep_cfg(cache: Option<PathBuf>) -> SweepConfig {
    SweepConfig {
        max_frames: MAX_FRAMES,
        target_frame_errors: TARGET_ERRORS,
        chunk_frames: CHUNK_FRAMES,
        max_iterations: 18,
        threads: 0,
        cache_dir: cache,
        progress_frames: None,
    }
}

fn regenerate_a11() -> A11Numbers {
    announce(
        "A11",
        "adaptive sweep orchestration: cold vs warm-cache wall time on a demo waterfall",
    );
    let scenario = Scenario::parse("demo / awgn / nms:1.25").expect("valid scenario");
    let units = sweep_grid(&[scenario], &EBN0S, 0xC11);
    let dir = cache_dir();
    let _ = std::fs::remove_dir_all(&dir);

    let started = Instant::now();
    let cold = run_sweep(&units, &sweep_cfg(Some(dir.clone()))).expect("cold sweep");
    let cold_secs = started.elapsed().as_secs_f64();
    let cold_simulated: u64 = cold.iter().map(|r| r.frames_simulated).sum();

    let started = Instant::now();
    let warm = run_sweep(&units, &sweep_cfg(Some(dir.clone()))).expect("warm sweep");
    let warm_secs = started.elapsed().as_secs_f64();
    let warm_simulated: u64 = warm.iter().map(|r| r.frames_simulated).sum();

    // The acceptance bar: a warm cache re-runs the completed grid in
    // under a second with zero frames resimulated, bit-identically.
    assert_eq!(warm_simulated, 0, "warm cache must simulate nothing");
    assert!(warm_secs < 1.0, "warm re-run took {warm_secs:.3}s");
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.point, w.point, "warm merge diverged at {}", c.ebn0_db);
    }

    println!(
        "  cold : {cold_secs:>7.2}s, {cold_simulated} frames simulated over {} points",
        cold.len()
    );
    println!("  warm : {warm_secs:>7.3}s, {warm_simulated} frames simulated (all from cache)");
    for r in &cold {
        println!(
            "    {:>5.1} dB: {:>6} frames, per {:.3e}, stopped by {}",
            r.ebn0_db,
            r.point.frames,
            r.point.per(),
            if r.hit_target { "target" } else { "cap" }
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    A11Numbers {
        cold_secs,
        warm_secs,
        cold_simulated,
        warm_simulated,
        results: cold,
    }
}

/// Writes the measured numbers to `BENCH_SWEEP.json` at the workspace
/// root (hand-rolled JSON — the workspace vendors no serializer).
fn write_json(n: &A11Numbers) {
    let points = n
        .results
        .iter()
        .map(|r| {
            let (per_lo, per_hi) = r.point.per_confidence();
            format!(
                "    {{\"scenario\": \"{}\", \"ebn0_db\": {:?}, \"frames\": {}, \
                 \"frame_errors\": {}, \"ber\": {:.6e}, \"per\": {:.6e}, \
                 \"per_lo\": {per_lo:.6e}, \"per_hi\": {per_hi:.6e}, \"hit_target\": {}}}",
                r.scenario,
                r.ebn0_db,
                r.point.frames,
                r.point.frame_errors,
                r.point.ber(),
                r.point.per(),
                r.hit_target
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"A11\",\n  \"target_frame_errors\": {TARGET_ERRORS},\n  \
         \"chunk_frames\": {CHUNK_FRAMES},\n  \"max_frames\": {MAX_FRAMES},\n  \
         \"cold\": {{\"seconds\": {:.2}, \"frames_simulated\": {}}},\n  \
         \"warm\": {{\"seconds\": {:.3}, \"frames_simulated\": {}}},\n  \
         \"points\": [\n{points}\n  ]\n}}\n",
        n.cold_secs, n.cold_simulated, n.warm_secs, n.warm_simulated,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SWEEP.json");
    std::fs::write(path, json).expect("write BENCH_SWEEP.json");
    println!("  wrote {path}");
}

fn bench(c: &mut Criterion) {
    let numbers = regenerate_a11();
    write_json(&numbers);

    // Criterion timing of the orchestrator itself on a tiny cacheless
    // grid: measures scheduling + engine overhead, not channel depth.
    let scenario = Scenario::parse("demo / awgn / nms:1.25").expect("valid scenario");
    let units = sweep_grid(&[scenario], &[4.0, 5.0], 0xC11);
    let cfg = SweepConfig {
        max_frames: 200,
        target_frame_errors: 0,
        chunk_frames: 100,
        max_iterations: 18,
        threads: 1,
        cache_dir: None,
        progress_frames: None,
    };
    let mut group = c.benchmark_group("a11_sweep_orchestrator");
    group.sample_size(10);
    group.bench_function("demo_2pt_400f", |b| {
        b.iter(|| run_sweep(std::hint::black_box(&units), &cfg).expect("sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
