//! E8 — Paper Figure 3 / §3: the generic parallel architecture, validated
//! by cycle-driven simulation on the real C2 code.

use criterion::{criterion_group, criterion_main, Criterion};
use gf2::BitVec;
use ldpc_bench::announce;
use ldpc_channel::AwgnChannel;
use ldpc_core::codes::ccsds_c2;
use ldpc_core::FixedDecoder;
use ldpc_hwsim::{render_table, ArchConfig, ArchSimulator, CodeDims, ThroughputModel};

fn quantized_frame(seed: u64) -> Vec<i16> {
    let code = ccsds_c2::code();
    let q = ArchConfig::low_cost().fixed.channel_quantizer();
    let mut ch = AwgnChannel::from_ebn0(4.0, code.rate(), seed);
    q.quantize_slice(&ch.transmit_codeword(&BitVec::zeros(code.n())))
}

fn regenerate_e8() {
    announce(
        "E8",
        "Figure 3 / section 3 (cycle-accurate architecture simulation)",
    );
    let code = ccsds_c2::code();
    let frame = quantized_frame(7);
    let mut rows = Vec::new();
    for cfg in [ArchConfig::low_cost(), ArchConfig::high_speed()] {
        let sim = ArchSimulator::new(cfg.clone(), code.clone());
        let model = ThroughputModel::new(cfg.clone(), CodeDims::ccsds_c2());
        let out = sim.decode(std::slice::from_ref(&frame), 18);
        let mut reference = FixedDecoder::new(code.clone(), cfg.fixed);
        let ref_out = reference.decode_quantized(&frame, 18);
        let exact = out.results[0] == ref_out;
        rows.push(vec![
            cfg.name.clone(),
            out.cycles.to_string(),
            model.frame_cycles(18).to_string(),
            format!("{}", exact),
            format!("{:.1}", model.info_throughput_mbps(18)),
        ]);
        assert!(
            exact,
            "simulator must be bit-exact with the reference decoder"
        );
        assert_eq!(out.cycles, model.frame_cycles(18));
    }
    println!(
        "{}",
        render_table(
            "E8 — simulated vs modeled cycles (18 iterations), bit-exactness",
            &["config", "sim cycles", "model cycles", "bit-exact", "Mbps"],
            &rows,
        )
    );
}

fn bench(c: &mut Criterion) {
    regenerate_e8();
    let code = ccsds_c2::code();
    let frame = quantized_frame(9);
    let sim = ArchSimulator::new(ArchConfig::low_cost(), code.clone());
    let mut group = c.benchmark_group("e8");
    group.sample_size(10);
    group.bench_function("cycle_sim_c2_18_iterations", |b| {
        b.iter(|| sim.decode(std::hint::black_box(std::slice::from_ref(&frame)), 18))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
