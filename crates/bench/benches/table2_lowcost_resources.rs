//! E2 — Paper Table 2: implementation results of the low-cost decoder on
//! an Altera Cyclone II EP2C50F.

use criterion::{criterion_group, criterion_main, Criterion};
use ldpc_bench::announce;
use ldpc_hwsim::{
    render_table, ArchConfig, CodeDims, MemoryPlan, ResourceEstimate, CYCLONE_II_EP2C50,
};

fn regenerate_table2() {
    announce("E2", "Table 2 (low-cost decoder on Cyclone II EP2C50F)");
    let dims = CodeDims::ccsds_c2();
    let cfg = ArchConfig::low_cost();
    let est = ResourceEstimate::new(&cfg, &dims);
    let u = CYCLONE_II_EP2C50.utilization(&est);
    let rows = vec![
        vec![
            format!("{}k ({:.0}%)", est.aluts / 1000, u.logic_pct),
            format!("{}k ({:.0}%)", est.registers / 1000, u.register_pct),
            format!("{}k ({:.0}%)", est.memory_bits / 1000, u.memory_pct),
        ],
        vec![
            "8k (16%)".to_owned(),
            "6k (12%)".to_owned(),
            "290k (50%)".to_owned(),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Table 2 (row 1 = measured, row 2 = paper)",
            &["ALUTs", "Registers", "Total Memory Bits"],
            &rows,
        )
    );
    println!("{}", MemoryPlan::new(&cfg, &dims));
}

fn bench(c: &mut Criterion) {
    regenerate_table2();
    let dims = CodeDims::ccsds_c2();
    c.bench_function("table2/resource_estimation", |b| {
        b.iter(|| ResourceEstimate::new(&ArchConfig::low_cost(), std::hint::black_box(&dims)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
