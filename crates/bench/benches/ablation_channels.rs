//! A6 — Ablation: decoder robustness across channel models and the
//! hard-decision baselines.
//!
//! Quantifies (a) how much of the soft-decision gain survives on a BSC
//! and a Rayleigh-faded link, and (b) how far the classical bit-flipping
//! baselines trail the paper's min-sum datapath at equal iterations.

use criterion::{criterion_group, criterion_main, Criterion};
use gf2::BitVec;
use ldpc_bench::announce;
use ldpc_channel::{AwgnChannel, BscChannel, RayleighChannel};
use ldpc_core::codes::small::demo_code;
use ldpc_core::{
    Decoder, FixedConfig, FixedDecoder, GallagerBDecoder, MinSumConfig, MinSumDecoder,
    SelfCorrectedMinSumDecoder, WeightedBitFlipDecoder,
};

/// Boxed per-frame channel realization, keyed by frame index.
type ChannelFn = Box<dyn FnMut(u64) -> Vec<f32>>;

/// Frame error count of `decoder` over `frames` all-zero transmissions
/// drawn by `make_llrs`.
fn fer(
    decoder: &mut dyn Decoder,
    mut make_llrs: impl FnMut(u64) -> Vec<f32>,
    frames: u64,
    iters: u32,
) -> f64 {
    let mut errors = 0u64;
    for f in 0..frames {
        let llrs = make_llrs(f);
        let out = decoder.decode(&llrs, iters);
        if !out.hard_decision.is_zero() {
            errors += 1;
        }
    }
    errors as f64 / frames as f64
}

fn regenerate_a6() {
    announce("A6", "channel-model and baseline-decoder robustness matrix");
    let code = demo_code();
    let n = code.n();
    let frames = 400u64;
    let iters = 25;

    let channels: Vec<(&str, ChannelFn)> = vec![
        ("AWGN 4.0 dB", {
            let code = code.clone();
            let mut ch = AwgnChannel::from_ebn0(4.0, code.rate(), 11);
            Box::new(move |_| ch.transmit_codeword(&BitVec::zeros(n)))
        }),
        ("BSC p=0.02", {
            let mut ch = BscChannel::new(0.02, 12);
            Box::new(move |_| ch.transmit_codeword(&BitVec::zeros(n)))
        }),
        ("Rayleigh s=0.42", {
            let mut ch = RayleighChannel::new(0.42, 13);
            Box::new(move |_| ch.transmit_codeword(&BitVec::zeros(n)))
        }),
    ];

    println!("frame error rates, {frames} frames, {iters} iterations:");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "channel", "fixed NMS", "self-corr", "gallager-b", "wbf"
    );
    for (name, mut make) in channels {
        let mut fixed = FixedDecoder::new(code.clone(), FixedConfig::default());
        let mut sc = SelfCorrectedMinSumDecoder::new(code.clone(), 4.0 / 3.0);
        let mut gb = GallagerBDecoder::new(code.clone(), 3);
        let mut wbf = WeightedBitFlipDecoder::new(code.clone());
        let f1 = fer(&mut fixed, &mut make, frames, iters);
        let f2 = fer(&mut sc, &mut make, frames, iters);
        let f3 = fer(&mut gb, &mut make, frames, iters);
        let f4 = fer(&mut wbf, &mut make, frames, iters);
        println!("{name:<18} {f1:>12.3e} {f2:>12.3e} {f3:>12.3e} {f4:>12.3e}");
    }
    println!("expected shape: message passing dominates bit flipping on every channel");
}

fn bench(c: &mut Criterion) {
    regenerate_a6();
    let code = demo_code();
    let mut ch = AwgnChannel::from_ebn0(4.0, code.rate(), 20);
    let llrs = ch.transmit_codeword(&BitVec::zeros(code.n()));
    let mut group = c.benchmark_group("a6");
    group.sample_size(30);
    group.bench_function("gallager_b_decode", |b| {
        let mut dec = GallagerBDecoder::new(code.clone(), 3);
        b.iter(|| dec.decode(std::hint::black_box(&llrs), 25))
    });
    group.bench_function("self_corrected_decode", |b| {
        let mut dec = SelfCorrectedMinSumDecoder::new(code.clone(), 4.0 / 3.0);
        b.iter(|| dec.decode(std::hint::black_box(&llrs), 25))
    });
    group.bench_function("nms_decode", |b| {
        let mut dec = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0));
        b.iter(|| dec.decode(std::hint::black_box(&llrs), 25))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
