//! Shared helpers for the benchmark harness.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper (see DESIGN.md §10 for the experiment index) and additionally
//! measures the runtime of the computation behind it with Criterion. The
//! regenerated rows are printed to stdout so `cargo bench` output doubles
//! as the reproduction record collected in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gf2::BitVec;
use ldpc_channel::AwgnChannel;
use ldpc_core::codes::small::demo_code;
use ldpc_core::LdpcCode;
use ldpc_sim::{MonteCarloConfig, Transmission};
use std::sync::Arc;

/// A Monte-Carlo configuration sized for benchmark runs: statistically
/// meaningful on the demo code yet fast enough to keep `cargo bench`
/// under a few minutes.
pub fn bench_mc_config(ebn0_db: f64, max_iterations: u32) -> MonteCarloConfig {
    MonteCarloConfig {
        ebn0_db,
        max_frames: 3_000,
        target_frame_errors: 60,
        max_iterations,
        seed: 0xBE7C4,
        threads: 0,
        transmission: Transmission::AllZero,
    }
}

/// A very short Monte-Carlo configuration for the full 8176-bit C2 code.
pub fn c2_mc_config(ebn0_db: f64, max_iterations: u32) -> MonteCarloConfig {
    MonteCarloConfig {
        ebn0_db,
        max_frames: 40,
        target_frame_errors: 15,
        max_iterations,
        seed: 0xC2BE,
        threads: 0,
        transmission: Transmission::AllZero,
    }
}

/// Header line announcing which paper artifact a bench regenerates.
pub fn announce(experiment: &str, artifact: &str) {
    println!("\n=== {experiment}: regenerating {artifact} ===");
}

/// Noisy all-zero frames at `ebn0` dB over AWGN, stored back to back —
/// the shared workload generator of the throughput benches (A5/A6/A7),
/// so per-family setup is not copy-pasted per target.
pub fn noisy_frames(code: &Arc<LdpcCode>, count: usize, ebn0: f64, seed: u64) -> Vec<f32> {
    let mut channel = AwgnChannel::from_ebn0(ebn0, code.rate(), seed);
    let zero = BitVec::zeros(code.n());
    let mut llrs = Vec::with_capacity(count * code.n());
    for _ in 0..count {
        llrs.extend(channel.transmit_codeword(&zero));
    }
    llrs
}

/// Wall-clock frames/second of one invocation of `run` over
/// `total_frames` frames.
pub fn frames_per_sec(total_frames: usize, mut run: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    run();
    total_frames as f64 / start.elapsed().as_secs_f64()
}

/// The demo code's length, for sizing workloads.
pub fn demo_n() -> usize {
    demo_code().n()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_fast_but_nontrivial() {
        let c = bench_mc_config(3.0, 18);
        assert!(c.max_frames >= 1_000);
        let c2 = c2_mc_config(4.0, 18);
        assert!(c2.max_frames <= 100);
    }
}
