//! AR4JA protograph LDPC codes for deep-space applications.
//!
//! This crate is a thin facade: the construction itself lives in
//! [`ldpc_core::codes::ar4ja`] so the [`CodeSpec`](ldpc_core::CodeSpec)
//! registry (`ar4ja:r=1/2,k=1024`) can build AR4JA codes without a
//! dependency cycle. Everything that used to be defined here —
//! [`Ar4jaCode`], [`Ar4jaRate`], [`base_matrix`] — is re-exported
//! unchanged, so existing call sites keep compiling.
//!
//! # Example
//!
//! ```
//! use ldpc_ar4ja::{Ar4jaCode, Ar4jaRate};
//!
//! let code = Ar4jaCode::build(Ar4jaRate::Half, 128, 7);
//! assert_eq!(code.transmitted_len(), 4 * 128);
//! assert_eq!(code.info_len(), 2 * 128);
//! assert!((code.rate() - 0.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ldpc_core::codes::ar4ja::{base_matrix, Ar4jaCode, Ar4jaRate};
