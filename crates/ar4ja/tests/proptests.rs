//! Property-based tests of the AR4JA construction.

use ldpc_ar4ja::{base_matrix, Ar4jaCode, Ar4jaRate};
use proptest::prelude::*;

fn arb_rate() -> impl Strategy<Value = Ar4jaRate> {
    prop::sample::select(vec![
        Ar4jaRate::Half,
        Ar4jaRate::TwoThirds,
        Ar4jaRate::FourFifths,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lifted dimensions follow the protograph for any circulant size and
    /// seed; the rate accounting is consistent.
    #[test]
    fn lifted_dimensions(rate in arb_rate(), m in 8usize..48, seed in 0u64..100) {
        let code = Ar4jaCode::build(rate, m, seed);
        let vars = rate.var_blocks();
        prop_assert_eq!(code.full_len(), vars * m);
        prop_assert_eq!(code.transmitted_len(), (vars - 1) * m);
        prop_assert_eq!(code.info_len(), (vars - 3) * m);
        prop_assert!((code.rate() - rate.as_f64()).abs() < 1e-9);
        prop_assert_eq!(code.code().n_checks(), 3 * m);
        // Edge count equals total base multiplicity x m.
        let mult: usize = base_matrix(rate).iter().flatten().map(|&e| e as usize).sum();
        prop_assert_eq!(code.code().h().nnz(), mult * m);
    }

    /// The true dimension never falls below the nominal k (the lifting can
    /// only add degeneracy, not remove codewords).
    #[test]
    fn dimension_at_least_nominal(rate in arb_rate(), seed in 0u64..20) {
        let code = Ar4jaCode::build(rate, 24, seed);
        prop_assert!(code.code().dimension() >= code.info_len());
    }

    /// Puncture/expand are consistent: expanding transmitted LLRs zeroes
    /// exactly the punctured block.
    #[test]
    fn puncture_expand_consistency(rate in arb_rate(), m in 8usize..32) {
        let code = Ar4jaCode::build(rate, m, 1);
        let tx = vec![1.25f32; code.transmitted_len()];
        let full = code.expand_llrs(&tx);
        prop_assert_eq!(full.len(), code.full_len());
        prop_assert!(full[..code.transmitted_len()].iter().all(|&x| x == 1.25));
        prop_assert!(full[code.transmitted_len()..].iter().all(|&x| x == 0.0));
        let cw = gf2::BitVec::ones(code.full_len());
        prop_assert_eq!(code.puncture(&cw).len(), code.transmitted_len());
    }
}
