//! Additional channel models beyond AWGN.
//!
//! The near-earth link of the paper is BPSK/AWGN, but a production decoder
//! IP is qualified against harsher models too. These variants exercise the
//! same decoder interface:
//!
//! * [`BscChannel`] — binary symmetric channel (hard-decision input),
//!   modelling a demodulator that only delivers sliced bits;
//! * [`RayleighChannel`] — flat Rayleigh fading with perfect CSI,
//!   modelling a scintillating link.

use crate::AwgnChannel;
use gf2::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Binary symmetric channel with crossover probability `p`.
///
/// Outputs ±LLR of fixed magnitude `ln((1−p)/p)`, the exact LLR of a BSC
/// observation.
///
/// # Example
///
/// ```
/// use gf2::BitVec;
/// use ldpc_channel::BscChannel;
///
/// let mut ch = BscChannel::new(0.05, 1);
/// let llrs = ch.transmit_codeword(&BitVec::zeros(100));
/// assert_eq!(llrs.len(), 100);
/// // All magnitudes equal the BSC LLR.
/// let mag = (0.95f32 / 0.05).ln();
/// assert!(llrs.iter().all(|l| (l.abs() - mag).abs() < 1e-5));
/// ```
#[derive(Debug, Clone)]
pub struct BscChannel {
    p: f64,
    llr_magnitude: f32,
    rng: StdRng,
}

impl BscChannel {
    /// Creates a BSC with crossover probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 0.5)`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(
            p > 0.0 && p < 0.5,
            "crossover probability must be in (0, 0.5)"
        );
        Self {
            p,
            llr_magnitude: ((1.0 - p) / p).ln() as f32,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The crossover probability.
    pub fn crossover(&self) -> f64 {
        self.p
    }

    /// Transmits a codeword, returning BSC channel LLRs.
    pub fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        (0..codeword.len())
            .map(|i| {
                let mut bit = codeword.get(i);
                if self.rng.gen_bool(self.p) {
                    bit = !bit;
                }
                if bit {
                    -self.llr_magnitude
                } else {
                    self.llr_magnitude
                }
            })
            .collect()
    }
}

/// Flat Rayleigh fading channel with AWGN and perfect channel state
/// information at the receiver.
///
/// Each symbol is scaled by an independent Rayleigh amplitude `a` (unit
/// mean square) before the Gaussian noise; the receiver demaps with
/// `llr = 2·a·y/σ²`.
///
/// # Example
///
/// ```
/// use gf2::BitVec;
/// use ldpc_channel::{ebn0_to_sigma, RayleighChannel};
///
/// let sigma = ebn0_to_sigma(6.0, 0.875);
/// let mut ch = RayleighChannel::new(sigma, 7);
/// let llrs = ch.transmit_codeword(&BitVec::zeros(200));
/// assert_eq!(llrs.len(), 200);
/// // Deep fades shrink LLR magnitudes but the all-zero codeword still
/// // leans positive overall.
/// assert!(llrs.iter().filter(|&&l| l > 0.0).count() > 150);
/// ```
#[derive(Debug, Clone)]
pub struct RayleighChannel {
    sigma: f64,
    awgn: AwgnChannel,
    fade_rng: StdRng,
}

impl RayleighChannel {
    /// Creates a Rayleigh channel with noise level `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive and finite.
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
        Self {
            sigma,
            awgn: AwgnChannel::new(sigma, seed),
            fade_rng: StdRng::seed_from_u64(seed ^ 0xFADE_u64),
        }
    }

    /// One Rayleigh amplitude with E[a²] = 1.
    fn amplitude(&mut self) -> f64 {
        // Sum of two squared N(0, 1/2) deviates -> exponential with mean 1.
        let u: f64 = self.fade_rng.gen::<f64>().max(f64::MIN_POSITIVE);
        (-u.ln()).sqrt()
    }

    /// Transmits a codeword, returning CSI-aware channel LLRs.
    pub fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        (0..codeword.len())
            .map(|i| {
                let s = if codeword.get(i) { -1.0 } else { 1.0 };
                let a = self.amplitude();
                let y = self.awgn.transmit(a * s);
                (2.0 * a * y / (self.sigma * self.sigma)) as f32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsc_flip_rate_matches_p() {
        let mut ch = BscChannel::new(0.1, 3);
        let n = 50_000;
        let llrs = ch.transmit_codeword(&BitVec::zeros(n));
        let flips = llrs.iter().filter(|&&l| l < 0.0).count();
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "flip rate {rate}");
        assert_eq!(ch.crossover(), 0.1);
    }

    #[test]
    fn bsc_llr_magnitude_is_log_likelihood() {
        let ch = BscChannel::new(0.2, 0);
        assert!((ch.llr_magnitude - (0.8f32 / 0.2).ln()).abs() < 1e-6);
    }

    #[test]
    fn rayleigh_reduces_to_positive_llrs_mostly_at_low_noise() {
        let mut ch = RayleighChannel::new(0.2, 5);
        let llrs = ch.transmit_codeword(&BitVec::zeros(10_000));
        let wrong = llrs.iter().filter(|&&l| l < 0.0).count();
        // Fading causes occasional deep fades but most symbols survive.
        assert!(wrong < 1_000, "wrong {wrong}");
    }

    #[test]
    fn rayleigh_is_reproducible() {
        let cw = BitVec::zeros(64);
        let a = RayleighChannel::new(0.5, 9).transmit_codeword(&cw);
        let b = RayleighChannel::new(0.5, 9).transmit_codeword(&cw);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "crossover")]
    fn bsc_rejects_half() {
        BscChannel::new(0.5, 0);
    }
}
