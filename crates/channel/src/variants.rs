//! Additional channel models beyond AWGN.
//!
//! The near-earth link of the paper is BPSK/AWGN, but a production decoder
//! IP is qualified against harsher models too. These variants exercise the
//! same decoder interface:
//!
//! * [`BscChannel`] — binary symmetric channel (hard-decision input),
//!   modelling a demodulator that only delivers sliced bits;
//! * [`RayleighChannel`] — flat Rayleigh fading with perfect CSI,
//!   modelling a scintillating link;
//! * [`ErasureChannel`] — symbol erasures to zero LLR, modelling links
//!   that lose symbols outright (content distribution, deep interleaver
//!   failures) rather than flipping them;
//! * [`GilbertElliottChannel`] — a two-state Markov burst channel with
//!   per-state crossover probability, the classical model of bursty
//!   interference.

use crate::AwgnChannel;
use gf2::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// LLR magnitude assigned to a *known* (non-erased) symbol by the
/// erasure channel — the same "certainty" value the noiseless AWGN
/// demapper emits, large enough to pin any soft decoder's belief.
pub const ERASURE_KNOWN_LLR: f32 = 1e4;

/// Binary symmetric channel with crossover probability `p`.
///
/// Outputs ±LLR of fixed magnitude `ln((1−p)/p)`, the exact LLR of a BSC
/// observation.
///
/// # Example
///
/// ```
/// use gf2::BitVec;
/// use ldpc_channel::BscChannel;
///
/// let mut ch = BscChannel::new(0.05, 1);
/// let llrs = ch.transmit_codeword(&BitVec::zeros(100));
/// assert_eq!(llrs.len(), 100);
/// // All magnitudes equal the BSC LLR.
/// let mag = (0.95f32 / 0.05).ln();
/// assert!(llrs.iter().all(|l| (l.abs() - mag).abs() < 1e-5));
/// ```
#[derive(Debug, Clone)]
pub struct BscChannel {
    p: f64,
    llr_magnitude: f32,
    rng: StdRng,
}

impl BscChannel {
    /// Creates a BSC with crossover probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 0.5)`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(
            p > 0.0 && p < 0.5,
            "crossover probability must be in (0, 0.5)"
        );
        Self {
            p,
            llr_magnitude: ((1.0 - p) / p).ln() as f32,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The crossover probability.
    pub fn crossover(&self) -> f64 {
        self.p
    }

    /// Transmits a codeword, returning BSC channel LLRs.
    pub fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        (0..codeword.len())
            .map(|i| {
                let mut bit = codeword.get(i);
                if self.rng.gen_bool(self.p) {
                    bit = !bit;
                }
                if bit {
                    -self.llr_magnitude
                } else {
                    self.llr_magnitude
                }
            })
            .collect()
    }
}

/// Flat Rayleigh fading channel with AWGN and perfect channel state
/// information at the receiver.
///
/// Each symbol is scaled by an independent Rayleigh amplitude `a` (unit
/// mean square) before the Gaussian noise; the receiver demaps with
/// `llr = 2·a·y/σ²`.
///
/// # Example
///
/// ```
/// use gf2::BitVec;
/// use ldpc_channel::{ebn0_to_sigma, RayleighChannel};
///
/// let sigma = ebn0_to_sigma(6.0, 0.875);
/// let mut ch = RayleighChannel::new(sigma, 7);
/// let llrs = ch.transmit_codeword(&BitVec::zeros(200));
/// assert_eq!(llrs.len(), 200);
/// // Deep fades shrink LLR magnitudes but the all-zero codeword still
/// // leans positive overall.
/// assert!(llrs.iter().filter(|&&l| l > 0.0).count() > 150);
/// ```
#[derive(Debug, Clone)]
pub struct RayleighChannel {
    sigma: f64,
    awgn: AwgnChannel,
    fade_rng: StdRng,
}

impl RayleighChannel {
    /// Creates a Rayleigh channel with noise level `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive and finite.
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
        Self {
            sigma,
            awgn: AwgnChannel::new(sigma, seed),
            fade_rng: StdRng::seed_from_u64(seed ^ 0xFADE_u64),
        }
    }

    /// One Rayleigh amplitude with E[a²] = 1.
    fn amplitude(&mut self) -> f64 {
        // Sum of two squared N(0, 1/2) deviates -> exponential with mean 1.
        let u: f64 = self.fade_rng.gen::<f64>().max(f64::MIN_POSITIVE);
        (-u.ln()).sqrt()
    }

    /// Transmits a codeword, returning CSI-aware channel LLRs.
    pub fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        (0..codeword.len())
            .map(|i| {
                let s = if codeword.get(i) { -1.0 } else { 1.0 };
                let a = self.amplitude();
                let y = self.awgn.transmit(a * s);
                (2.0 * a * y / (self.sigma * self.sigma)) as f32
            })
            .collect()
    }
}

/// Binary erasure channel: each symbol is independently erased with
/// probability `p`.
///
/// Erased positions yield an LLR of exactly `0.0` (no information);
/// surviving positions yield ±[`ERASURE_KNOWN_LLR`] according to the
/// transmitted bit — an erasure never *flips* a symbol, it removes it.
/// This is the symbol-level version of the packet-loss regime that
/// fountain codes target, and it reuses the same zero-LLR convention as
/// the AR4JA puncturing machinery in `ldpc-core`.
///
/// # Example
///
/// ```
/// use gf2::BitVec;
/// use ldpc_channel::{ErasureChannel, ERASURE_KNOWN_LLR};
///
/// let mut ch = ErasureChannel::new(0.1, 1);
/// let llrs = ch.transmit_codeword(&BitVec::zeros(100));
/// // Every LLR is either an exact erasure or an exact certainty.
/// assert!(llrs.iter().all(|&l| l == 0.0 || l == ERASURE_KNOWN_LLR));
/// ```
#[derive(Debug, Clone)]
pub struct ErasureChannel {
    p: f64,
    rng: StdRng,
}

impl ErasureChannel {
    /// Creates an erasure channel with symbol-erasure probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1)`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p < 1.0, "erasure probability must be in (0, 1)");
        Self {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The symbol-erasure probability.
    pub fn erasure_probability(&self) -> f64 {
        self.p
    }

    /// Transmits a codeword, returning zero LLRs at erased positions and
    /// ±[`ERASURE_KNOWN_LLR`] elsewhere.
    pub fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        (0..codeword.len())
            .map(|i| {
                if self.rng.gen_bool(self.p) {
                    0.0
                } else if codeword.get(i) {
                    -ERASURE_KNOWN_LLR
                } else {
                    ERASURE_KNOWN_LLR
                }
            })
            .collect()
    }
}

/// Two-state Gilbert-Elliott burst channel.
///
/// The channel is a symmetric two-state Markov chain: before every
/// symbol it flips between its *good* and *bad* states with probability
/// `p_switch`, then passes the symbol through a BSC whose crossover is
/// the current state's (`p_good` in the good state, `p_bad` in the bad
/// one). Mean sojourn in either state is `1/p_switch` symbols, so the
/// stationary occupancy is exactly ½/½ and the average crossover is
/// `(p_good + p_bad) / 2` — but the errors arrive in bursts of mean
/// length `1/p_switch`, the regime where interleaving and erasure
/// filling matter.
///
/// The receiver has perfect state information (the same perfect-CSI
/// convention as [`RayleighChannel`]): each LLR's magnitude is the BSC
/// log-likelihood `ln((1−p_state)/p_state)` of the state the symbol was
/// transmitted in, so a decoder can discount burst symbols.
///
/// # Example
///
/// ```
/// use gf2::BitVec;
/// use ldpc_channel::GilbertElliottChannel;
///
/// let mut ch = GilbertElliottChannel::new(0.01, 0.3, 0.05, 1);
/// let llrs = ch.transmit_codeword(&BitVec::zeros(100));
/// // Exactly two magnitudes appear: the good-state and bad-state LLRs.
/// let good = (0.99f32 / 0.01).ln();
/// let bad = (0.7f32 / 0.3).ln();
/// assert!(llrs
///     .iter()
///     .all(|l| (l.abs() - good).abs() < 1e-5 || (l.abs() - bad).abs() < 1e-5));
/// ```
#[derive(Debug, Clone)]
pub struct GilbertElliottChannel {
    p_good: f64,
    p_bad: f64,
    p_switch: f64,
    llr_good: f32,
    llr_bad: f32,
    in_bad_state: bool,
    rng: StdRng,
}

impl GilbertElliottChannel {
    /// Creates a Gilbert-Elliott channel starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics if `p_good` or `p_bad` is outside `(0, 0.5)` or `p_switch`
    /// is outside `(0, 1]`.
    pub fn new(p_good: f64, p_bad: f64, p_switch: f64, seed: u64) -> Self {
        assert!(
            p_good > 0.0 && p_good < 0.5,
            "good-state crossover must be in (0, 0.5)"
        );
        assert!(
            p_bad > 0.0 && p_bad < 0.5,
            "bad-state crossover must be in (0, 0.5)"
        );
        assert!(
            p_switch > 0.0 && p_switch <= 1.0,
            "state-switch probability must be in (0, 1]"
        );
        Self {
            p_good,
            p_bad,
            p_switch,
            llr_good: ((1.0 - p_good) / p_good).ln() as f32,
            llr_bad: ((1.0 - p_bad) / p_bad).ln() as f32,
            in_bad_state: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The `(p_good, p_bad, p_switch)` parameters.
    pub fn parameters(&self) -> (f64, f64, f64) {
        (self.p_good, self.p_bad, self.p_switch)
    }

    /// Transmits a codeword, returning per-state CSI-aware LLRs. The
    /// Markov state persists across calls, so consecutive frames see one
    /// continuous burst process.
    pub fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        (0..codeword.len())
            .map(|i| {
                if self.rng.gen_bool(self.p_switch) {
                    self.in_bad_state = !self.in_bad_state;
                }
                let (p, magnitude) = if self.in_bad_state {
                    (self.p_bad, self.llr_bad)
                } else {
                    (self.p_good, self.llr_good)
                };
                let mut bit = codeword.get(i);
                if self.rng.gen_bool(p) {
                    bit = !bit;
                }
                if bit {
                    -magnitude
                } else {
                    magnitude
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsc_flip_rate_matches_p() {
        let mut ch = BscChannel::new(0.1, 3);
        let n = 50_000;
        let llrs = ch.transmit_codeword(&BitVec::zeros(n));
        let flips = llrs.iter().filter(|&&l| l < 0.0).count();
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "flip rate {rate}");
        assert_eq!(ch.crossover(), 0.1);
    }

    #[test]
    fn bsc_llr_magnitude_is_log_likelihood() {
        let ch = BscChannel::new(0.2, 0);
        assert!((ch.llr_magnitude - (0.8f32 / 0.2).ln()).abs() < 1e-6);
    }

    #[test]
    fn rayleigh_reduces_to_positive_llrs_mostly_at_low_noise() {
        let mut ch = RayleighChannel::new(0.2, 5);
        let llrs = ch.transmit_codeword(&BitVec::zeros(10_000));
        let wrong = llrs.iter().filter(|&&l| l < 0.0).count();
        // Fading causes occasional deep fades but most symbols survive.
        assert!(wrong < 1_000, "wrong {wrong}");
    }

    #[test]
    fn rayleigh_is_reproducible() {
        let cw = BitVec::zeros(64);
        let a = RayleighChannel::new(0.5, 9).transmit_codeword(&cw);
        let b = RayleighChannel::new(0.5, 9).transmit_codeword(&cw);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "crossover")]
    fn bsc_rejects_half() {
        BscChannel::new(0.5, 0);
    }

    #[test]
    fn erasure_rate_matches_p() {
        let mut ch = ErasureChannel::new(0.2, 4);
        let n = 50_000;
        let llrs = ch.transmit_codeword(&BitVec::zeros(n));
        let erased = llrs.iter().filter(|&&l| l == 0.0).count();
        let rate = erased as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "erasure rate {rate}");
        assert_eq!(ch.erasure_probability(), 0.2);
        // Surviving symbols are never flipped, only certain.
        assert!(llrs.iter().all(|&l| l == 0.0 || l == ERASURE_KNOWN_LLR));
    }

    #[test]
    fn erasure_keeps_transmitted_signs() {
        let mut cw = BitVec::zeros(1000);
        for i in (0..1000).step_by(2) {
            cw.set(i, true);
        }
        let mut ch = ErasureChannel::new(0.1, 8);
        let llrs = ch.transmit_codeword(&cw);
        for (i, &l) in llrs.iter().enumerate() {
            if l != 0.0 {
                assert_eq!(l < 0.0, cw.get(i), "sign flipped at {i}");
            }
        }
    }

    #[test]
    fn erasure_is_reproducible() {
        let cw = BitVec::zeros(64);
        let a = ErasureChannel::new(0.3, 9).transmit_codeword(&cw);
        let b = ErasureChannel::new(0.3, 9).transmit_codeword(&cw);
        let c = ErasureChannel::new(0.3, 10).transmit_codeword(&cw);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "erasure probability")]
    fn erasure_rejects_one() {
        ErasureChannel::new(1.0, 0);
    }

    #[test]
    fn gilbert_elliott_average_flip_rate_is_state_mean() {
        // Symmetric switching: ½/½ occupancy, so the long-run crossover
        // is the mean of the two per-state probabilities.
        let mut ch = GilbertElliottChannel::new(0.01, 0.3, 0.05, 6);
        let n = 100_000;
        let llrs = ch.transmit_codeword(&BitVec::zeros(n));
        let flips = llrs.iter().filter(|&&l| l < 0.0).count();
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.155).abs() < 0.01, "flip rate {rate}");
    }

    #[test]
    fn gilbert_elliott_errors_cluster_in_bad_state() {
        let mut ch = GilbertElliottChannel::new(0.01, 0.3, 0.05, 7);
        let llrs = ch.transmit_codeword(&BitVec::zeros(100_000));
        let bad_magnitude = (0.7f32 / 0.3).ln();
        let (mut bad_flips, mut good_flips, mut bad_syms) = (0u64, 0u64, 0u64);
        for &l in &llrs {
            let in_bad = (l.abs() - bad_magnitude).abs() < 1e-4;
            if in_bad {
                bad_syms += 1;
            }
            if l < 0.0 {
                if in_bad {
                    bad_flips += 1;
                } else {
                    good_flips += 1;
                }
            }
        }
        // Bad state holds ~half the symbols but nearly all the errors.
        assert!(
            bad_syms > 45_000 && bad_syms < 55_000,
            "occupancy {bad_syms}"
        );
        assert!(bad_flips > 20 * good_flips, "{bad_flips} vs {good_flips}");
    }

    #[test]
    fn gilbert_elliott_burst_lengths_follow_p_switch() {
        // Mean sojourn in a state is 1/p_switch symbols; count state runs
        // via the per-state LLR magnitude.
        let mut ch = GilbertElliottChannel::new(0.01, 0.3, 0.02, 11);
        let llrs = ch.transmit_codeword(&BitVec::zeros(200_000));
        let bad_magnitude = (0.7f32 / 0.3).ln();
        let mut runs = 0u64;
        let mut prev_bad = false;
        for &l in &llrs {
            let in_bad = (l.abs() - bad_magnitude).abs() < 1e-4;
            if in_bad != prev_bad {
                runs += 1;
                prev_bad = in_bad;
            }
        }
        let mean_run = llrs.len() as f64 / runs as f64;
        assert!((mean_run - 50.0).abs() < 5.0, "mean sojourn {mean_run}");
    }

    #[test]
    fn gilbert_elliott_state_persists_across_frames() {
        // One long transmission must equal two back-to-back halves: the
        // Markov chain is not reset between codewords.
        let mut long = GilbertElliottChannel::new(0.05, 0.4, 0.1, 13);
        let whole = long.transmit_codeword(&BitVec::zeros(256));
        let mut split = GilbertElliottChannel::new(0.05, 0.4, 0.1, 13);
        let mut halves = split.transmit_codeword(&BitVec::zeros(128));
        halves.extend(split.transmit_codeword(&BitVec::zeros(128)));
        assert_eq!(whole, halves);
    }

    #[test]
    fn gilbert_elliott_is_reproducible() {
        let cw = BitVec::zeros(64);
        let a = GilbertElliottChannel::new(0.01, 0.3, 0.05, 9).transmit_codeword(&cw);
        let b = GilbertElliottChannel::new(0.01, 0.3, 0.05, 9).transmit_codeword(&cw);
        let c = GilbertElliottChannel::new(0.01, 0.3, 0.05, 10).transmit_codeword(&cw);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "state-switch")]
    fn gilbert_elliott_rejects_zero_switch() {
        GilbertElliottChannel::new(0.01, 0.3, 0.0, 0);
    }
}
