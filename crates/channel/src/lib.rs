//! Channel substrate: BPSK over AWGN with LLR demapping.
//!
//! The paper evaluates its decoder on the classical BPSK/AWGN near-earth
//! link model. This crate provides that substrate for the Monte-Carlo
//! engine (`ldpc-sim`):
//!
//! * [`bpsk_modulate`] — bits to antipodal symbols (0 → +1, 1 → −1);
//! * [`AwgnChannel`] — additive white Gaussian noise with a deterministic,
//!   seedable noise stream;
//! * [`llr_from_symbol`] / [`AwgnChannel::llrs`] — exact channel LLRs
//!   `2y/σ²` with the positive-means-zero sign convention used by the
//!   decoders;
//! * [`ebn0_to_sigma`] and friends — Eb/N0 ⇄ noise-level conversions that
//!   account for the code rate;
//! * [`ChannelSpec`] — the declarative front door: `"awgn"`, `"bsc:0.02"`,
//!   `"rayleigh"`, `"erasure:0.05"` (symbol erasures to zero LLR), and
//!   `"burst:0.01,0.3,0.05"` (two-state Gilbert-Elliott bursts), each
//!   with an optional `@quant=B` LLR-quantization modifier, building any
//!   registered model behind the object-safe [`Channel`] trait (see the
//!   [`spec`] module docs for the grammar).
//!
//! # Example
//!
//! ```
//! use gf2::BitVec;
//! use ldpc_channel::{bpsk_modulate, ebn0_to_sigma, AwgnChannel};
//!
//! let cw = BitVec::from_bits(&[0, 1, 1, 0]);
//! let sigma = ebn0_to_sigma(4.0, 0.875);
//! let mut channel = AwgnChannel::new(sigma, 42);
//! let symbols = bpsk_modulate(&cw);
//! let llrs = channel.llrs(&symbols);
//! assert_eq!(llrs.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod spec;
mod variants;

pub use spec::{
    Channel, ChannelKind, ChannelSpec, ChannelSpecError, QuantizedChannel, DEFAULT_BSC_P,
    DEFAULT_BURST_P_BAD, DEFAULT_BURST_P_GOOD, DEFAULT_BURST_P_SWITCH, DEFAULT_ERASURE_P,
    QUANT_LLR_STEP,
};
pub use variants::{
    BscChannel, ErasureChannel, GilbertElliottChannel, RayleighChannel, ERASURE_KNOWN_LLR,
};

use gf2::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Converts Eb/N0 (dB) to the AWGN noise standard deviation σ for BPSK
/// with unit symbol energy and the given code rate.
///
/// `σ² = 1 / (2 · rate · 10^(EbN0/10))`.
///
/// # Panics
///
/// Panics if `rate` is not in `(0, 1]`.
///
/// ```
/// let sigma = ldpc_channel::ebn0_to_sigma(4.0, 0.5);
/// assert!((sigma - 0.6309573).abs() < 1e-5);
/// ```
pub fn ebn0_to_sigma(ebn0_db: f64, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate <= 1.0, "code rate must be in (0, 1]");
    let ebn0 = 10f64.powf(ebn0_db / 10.0);
    (1.0 / (2.0 * rate * ebn0)).sqrt()
}

/// Inverse of [`ebn0_to_sigma`]: the Eb/N0 (dB) corresponding to σ.
///
/// # Panics
///
/// Panics if `sigma <= 0` or `rate` is not in `(0, 1]`.
pub fn sigma_to_ebn0(sigma: f64, rate: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    assert!(rate > 0.0 && rate <= 1.0, "code rate must be in (0, 1]");
    let ebn0 = 1.0 / (2.0 * rate * sigma * sigma);
    10.0 * ebn0.log10()
}

/// Mean magnitude of the channel LLR `2/σ²` at a given Eb/N0 and rate —
/// the operating point fed to the correction-factor optimizer.
pub fn ebn0_to_mean_llr(ebn0_db: f64, rate: f64) -> f64 {
    let sigma = ebn0_to_sigma(ebn0_db, rate);
    2.0 / (sigma * sigma)
}

/// BPSK-modulates a codeword: bit 0 → +1.0, bit 1 → −1.0.
pub fn bpsk_modulate(codeword: &BitVec) -> Vec<f64> {
    (0..codeword.len())
        .map(|i| if codeword.get(i) { -1.0 } else { 1.0 })
        .collect()
}

/// Exact BPSK/AWGN channel LLR of one received value: `2y/σ²`.
///
/// Positive LLR favours bit 0, matching the decoder convention.
pub fn llr_from_symbol(y: f64, sigma: f64) -> f32 {
    (2.0 * y / (sigma * sigma)) as f32
}

/// A BPSK hard decision on a received symbol (`y < 0` → bit 1).
pub fn hard_decision(y: f64) -> u8 {
    u8::from(y < 0.0)
}

/// An additive white Gaussian noise channel with a deterministic,
/// per-instance random stream.
///
/// The noise generator is `StdRng` seeded explicitly, so simulations are
/// reproducible and parallel workers can use disjoint seeds.
#[derive(Debug, Clone)]
pub struct AwgnChannel {
    sigma: f64,
    rng: StdRng,
    /// Cached spare deviate of the Box–Muller pair.
    spare: Option<f64>,
}

impl AwgnChannel {
    /// Creates a channel with noise standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or not finite.
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be finite and non-negative"
        );
        Self {
            sigma,
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Channel configured from an Eb/N0 operating point and code rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]`.
    pub fn from_ebn0(ebn0_db: f64, rate: f64, seed: u64) -> Self {
        Self::new(ebn0_to_sigma(ebn0_db, rate), seed)
    }

    /// The noise standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// One standard normal deviate (Box–Muller, with the pair cached).
    fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u1: f64 = self.rng.gen();
            if u1 > f64::MIN_POSITIVE {
                let u2: f64 = self.rng.gen();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.spare = Some(r * theta.sin());
                return r * theta.cos();
            }
        }
    }

    /// Transmits one symbol, returning the noisy observation.
    pub fn transmit(&mut self, symbol: f64) -> f64 {
        symbol + self.sigma * self.standard_normal()
    }

    /// Transmits a symbol block.
    pub fn transmit_block(&mut self, symbols: &[f64]) -> Vec<f64> {
        symbols.iter().map(|&s| self.transmit(s)).collect()
    }

    /// Transmits a symbol block and demaps directly to channel LLRs.
    ///
    /// For the degenerate noiseless case (σ = 0) LLRs are ±`1e4` according
    /// to the symbol sign.
    pub fn llrs(&mut self, symbols: &[f64]) -> Vec<f32> {
        if self.sigma == 0.0 {
            return symbols
                .iter()
                .map(|&s| if s < 0.0 { -1e4 } else { 1e4 })
                .collect();
        }
        symbols
            .iter()
            .map(|&s| {
                let y = self.transmit(s);
                llr_from_symbol(y, self.sigma)
            })
            .collect()
    }

    /// Modulates a codeword, transmits it, and demaps to LLRs in one step.
    pub fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        let symbols = bpsk_modulate(codeword);
        self.llrs(&symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_roundtrips_through_ebn0() {
        for ebn0 in [-1.0, 0.0, 2.5, 4.0, 10.0] {
            for rate in [0.5, 0.875, 7154.0 / 8176.0] {
                let sigma = ebn0_to_sigma(ebn0, rate);
                assert!((sigma_to_ebn0(sigma, rate) - ebn0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn higher_ebn0_means_less_noise() {
        assert!(ebn0_to_sigma(6.0, 0.5) < ebn0_to_sigma(2.0, 0.5));
    }

    #[test]
    fn higher_rate_needs_cleaner_channel() {
        // At equal Eb/N0, higher code rate gives lower sigma (more energy
        // per symbol).
        assert!(ebn0_to_sigma(4.0, 0.9) < ebn0_to_sigma(4.0, 0.5));
    }

    #[test]
    fn mean_llr_is_two_over_sigma_squared() {
        let sigma = ebn0_to_sigma(4.0, 0.875);
        assert!((ebn0_to_mean_llr(4.0, 0.875) - 2.0 / (sigma * sigma)).abs() < 1e-9);
    }

    #[test]
    fn bpsk_mapping_convention() {
        let cw = BitVec::from_bits(&[0, 1]);
        assert_eq!(bpsk_modulate(&cw), vec![1.0, -1.0]);
        assert_eq!(hard_decision(0.3), 0);
        assert_eq!(hard_decision(-0.3), 1);
    }

    #[test]
    fn llr_sign_follows_symbol() {
        assert!(llr_from_symbol(0.8, 0.5) > 0.0);
        assert!(llr_from_symbol(-0.8, 0.5) < 0.0);
        // Exact value: 2 * 0.8 / 0.25 = 6.4
        assert!((llr_from_symbol(0.8, 0.5) - 6.4).abs() < 1e-5);
    }

    #[test]
    fn channel_is_reproducible_per_seed() {
        let symbols = vec![1.0; 64];
        let a = AwgnChannel::new(0.7, 9).transmit_block(&symbols);
        let b = AwgnChannel::new(0.7, 9).transmit_block(&symbols);
        let c = AwgnChannel::new(0.7, 10).transmit_block(&symbols);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_statistics_match_sigma() {
        let n = 100_000;
        let mut ch = AwgnChannel::new(0.8, 123);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let y = ch.transmit(0.0);
            sum += y;
            sum_sq += y * y;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.8).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn noiseless_channel_gives_huge_llrs() {
        let cw = BitVec::from_bits(&[0, 1, 0]);
        let mut ch = AwgnChannel::new(0.0, 0);
        let llrs = ch.transmit_codeword(&cw);
        assert!(llrs[0] > 1e3);
        assert!(llrs[1] < -1e3);
        assert!(llrs[2] > 1e3);
    }

    #[test]
    fn transmit_codeword_length_matches() {
        let cw = BitVec::zeros(100);
        let mut ch = AwgnChannel::from_ebn0(4.0, 0.875, 7);
        assert_eq!(ch.transmit_codeword(&cw).len(), 100);
    }

    #[test]
    fn raw_ber_tracks_q_function() {
        // P(bit error) for BPSK = Q(1/sigma); at sigma = 0.6, Q(1.667) ~ 4.8%.
        let mut ch = AwgnChannel::new(0.6, 77);
        let n = 200_000;
        let mut errors = 0u32;
        for _ in 0..n {
            if hard_decision(ch.transmit(1.0)) == 1 {
                errors += 1;
            }
        }
        let ber = f64::from(errors) / n as f64;
        assert!((ber - 0.0478).abs() < 0.004, "raw BER {ber}");
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn rejects_zero_rate() {
        ebn0_to_sigma(4.0, 0.0);
    }
}
