//! Declarative channel specification: one grammar, one registry, one
//! front door for every channel model in the workspace — the channel-side
//! mirror of `ldpc-core`'s `DecoderSpec`.
//!
//! A spec is a small string —
//!
//! ```text
//!   family[:param][@quant=B]
//! ```
//!
//! | Spec | Channel | Parameter |
//! |------|---------|-----------|
//! | `awgn` | [`AwgnChannel`] — BPSK over additive white Gaussian noise | — (σ from Eb/N0 and rate) |
//! | `bsc:0.02` | [`BscChannel`] — binary symmetric, hard-decision input | crossover p ∈ (0, 0.5) (default 0.05) |
//! | `rayleigh` | [`RayleighChannel`] — flat fading, perfect CSI | — (σ from Eb/N0 and rate) |
//! | `erasure:0.05` | [`ErasureChannel`] — symbol erasures to zero LLR | erasure p ∈ (0, 1) (default 0.1) |
//! | `burst:0.01,0.3,0.05` | [`GilbertElliottChannel`] — two-state Markov bursts, per-state CSI | `p_good,p_bad,p_switch` (defaults 0.01, 0.3, 0.05) |
//!
//! The one modifier changes *what the demodulator delivers*, not the
//! channel itself:
//!
//! | Modifier | Effect |
//! |----------|--------|
//! | `@quant=B` | LLRs uniformly quantized to `B` bits at 0.5 LLR per level (the hardware front end's grid; see [`QUANT_LLR_STEP`]) |
//!
//! Parsing ([`FromStr`]) and rendering ([`Display`](fmt::Display)) round
//! trip with canonical output (the default crossover is omitted), pinned
//! by proptests. [`ChannelSpec::all_channels`] enumerates one canonical
//! spec per registered model, and [`ChannelSpec::build`] constructs any
//! of them behind the object-safe [`Channel`] trait for a given
//! operating point (Eb/N0, code rate) and noise seed:
//!
//! ```
//! use gf2::BitVec;
//! use ldpc_channel::ChannelSpec;
//!
//! let spec = ChannelSpec::parse("awgn@quant=5")?;
//! let mut channel = spec.build(4.0, 0.875, 42);
//! let llrs = channel.transmit_codeword(&BitVec::zeros(64));
//! assert_eq!(llrs.len(), 64);
//! // Every LLR sits on the 0.5-per-level quantizer grid.
//! assert!(llrs.iter().all(|l| (l / 0.5).fract() == 0.0));
//! # Ok::<(), ldpc_channel::ChannelSpecError>(())
//! ```

use crate::{
    ebn0_to_sigma, AwgnChannel, BscChannel, ErasureChannel, GilbertElliottChannel, RayleighChannel,
};
use gf2::BitVec;
use std::fmt;
use std::str::FromStr;

/// Default BSC crossover probability when `bsc` is given without `:p`.
pub const DEFAULT_BSC_P: f64 = 0.05;

/// Default symbol-erasure probability when `erasure` is given without
/// `:p` (deliberately distinct from [`DEFAULT_BSC_P`], so the common
/// operating point `erasure:0.05` renders with its parameter).
pub const DEFAULT_ERASURE_P: f64 = 0.1;

/// Default Gilbert-Elliott good-state crossover probability.
pub const DEFAULT_BURST_P_GOOD: f64 = 0.01;

/// Default Gilbert-Elliott bad-state crossover probability.
pub const DEFAULT_BURST_P_BAD: f64 = 0.3;

/// Default Gilbert-Elliott per-symbol state-switch probability (mean
/// burst length `1/p_switch` = 20 symbols).
pub const DEFAULT_BURST_P_SWITCH: f64 = 0.05;

/// LLR value of one quantizer level under `@quant=B` — the same
/// 0.5 LLR/LSB grid as the hardware datapath's 5-bit channel quantizer
/// (`ldpc-core`'s `FixedConfig`).
pub const QUANT_LLR_STEP: f32 = 0.5;

/// An object-safe channel: transmits a codeword and demaps the
/// observations to channel LLRs.
///
/// All channel models implement this trait, so the Monte-Carlo engine
/// (and anything else generic over channels) holds a
/// `Box<dyn Channel>` built by [`ChannelSpec::build`] instead of
/// hardcoding AWGN. The positive-LLR-means-bit-0 sign convention of the
/// decoders applies throughout.
pub trait Channel {
    /// Modulates `codeword`, transmits it through the channel, and
    /// demaps the received observations to one LLR per bit.
    fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32>;
}

impl Channel for AwgnChannel {
    fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        AwgnChannel::transmit_codeword(self, codeword)
    }
}

impl Channel for BscChannel {
    fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        BscChannel::transmit_codeword(self, codeword)
    }
}

impl Channel for RayleighChannel {
    fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        RayleighChannel::transmit_codeword(self, codeword)
    }
}

impl Channel for ErasureChannel {
    fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        ErasureChannel::transmit_codeword(self, codeword)
    }
}

impl Channel for GilbertElliottChannel {
    fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        GilbertElliottChannel::transmit_codeword(self, codeword)
    }
}

/// A channel whose LLR output is uniformly quantized to `bits` levels of
/// [`QUANT_LLR_STEP`] each — the `@quant=B` modifier.
///
/// Quantized LLRs stay `f32` (values land on the grid
/// `level × 0.5` for `level ∈ [-(2^(B-1)-1), 2^(B-1)-1]`), so every
/// decoder consumes them unchanged; this models a demodulator that
/// delivers B-bit soft decisions.
pub struct QuantizedChannel {
    inner: Box<dyn Channel>,
    max_level: f32,
}

impl QuantizedChannel {
    /// Wraps `inner`, quantizing its LLR output to `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=15` (the parser never lets an
    /// out-of-range width through).
    pub fn new(inner: Box<dyn Channel>, bits: u32) -> Self {
        assert!(
            (2..=15).contains(&bits),
            "quantizer width must be in 2..=15 bits"
        );
        Self {
            inner,
            max_level: ((1i32 << (bits - 1)) - 1) as f32,
        }
    }
}

impl Channel for QuantizedChannel {
    fn transmit_codeword(&mut self, codeword: &BitVec) -> Vec<f32> {
        let mut llrs = self.inner.transmit_codeword(codeword);
        for llr in &mut llrs {
            let level = (*llr / QUANT_LLR_STEP)
                .round()
                .clamp(-self.max_level, self.max_level);
            *llr = level * QUANT_LLR_STEP;
        }
        llrs
    }
}

/// The channel model named by a spec, without modifiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelKind {
    /// BPSK over additive white Gaussian noise (the paper's link model).
    Awgn,
    /// Binary symmetric channel with crossover probability `p`.
    Bsc {
        /// Crossover probability ∈ (0, 0.5).
        p: f64,
    },
    /// Flat Rayleigh fading with AWGN and perfect CSI.
    Rayleigh,
    /// Binary erasure channel: symbols erased to zero LLR with
    /// probability `p`.
    Erasure {
        /// Symbol-erasure probability ∈ (0, 1).
        p: f64,
    },
    /// Two-state Gilbert-Elliott Markov burst channel with per-state
    /// crossover probability and perfect state CSI.
    Burst {
        /// Good-state crossover probability ∈ (0, 0.5).
        p_good: f64,
        /// Bad-state crossover probability ∈ (0, 0.5).
        p_bad: f64,
        /// Per-symbol state-switch probability ∈ (0, 1].
        p_switch: f64,
    },
}

impl ChannelKind {
    /// The grammar keyword of this model (`awgn`, `bsc`, `rayleigh`,
    /// `erasure`, `burst`).
    pub fn keyword(&self) -> &'static str {
        match self {
            Self::Awgn => "awgn",
            Self::Bsc { .. } => "bsc",
            Self::Rayleigh => "rayleigh",
            Self::Erasure { .. } => "erasure",
            Self::Burst { .. } => "burst",
        }
    }
}

/// A complete channel specification: a model plus the optional
/// LLR-quantization modifier. See the module docs for the grammar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelSpec {
    /// The channel model and its parameters.
    pub kind: ChannelKind,
    /// `@quant=B`: quantize output LLRs to `B` bits (`None` = exact
    /// floating-point LLRs).
    pub quant: Option<u32>,
}

impl ChannelSpec {
    /// The canonical BPSK/AWGN spec — the historical default of the
    /// Monte-Carlo engine.
    pub fn awgn() -> Self {
        Self {
            kind: ChannelKind::Awgn,
            quant: None,
        }
    }

    /// Parses a spec string — alias of the [`FromStr`] impl.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelSpecError`] with an actionable message on
    /// unknown models, malformed parameters, or invalid modifiers.
    pub fn parse(s: &str) -> Result<Self, ChannelSpecError> {
        s.parse()
    }

    /// The grammar keywords of every registered channel model, in
    /// registry order.
    pub fn family_names() -> &'static [&'static str] {
        &["awgn", "bsc", "rayleigh", "erasure", "burst"]
    }

    /// One canonical spec per registered channel model — the five
    /// models at default parameters, plus the quantized-AWGN mirror at
    /// the hardware's 5-bit width.
    pub fn all_channels() -> Vec<ChannelSpec> {
        vec![
            ChannelSpec::awgn(),
            ChannelSpec {
                kind: ChannelKind::Bsc { p: DEFAULT_BSC_P },
                quant: None,
            },
            ChannelSpec {
                kind: ChannelKind::Rayleigh,
                quant: None,
            },
            ChannelSpec {
                kind: ChannelKind::Erasure {
                    p: DEFAULT_ERASURE_P,
                },
                quant: None,
            },
            ChannelSpec {
                kind: ChannelKind::Burst {
                    p_good: DEFAULT_BURST_P_GOOD,
                    p_bad: DEFAULT_BURST_P_BAD,
                    p_switch: DEFAULT_BURST_P_SWITCH,
                },
                quant: None,
            },
            ChannelSpec {
                kind: ChannelKind::Awgn,
                quant: Some(5),
            },
        ]
    }

    /// Constructs the specified channel for one operating point behind
    /// the object-safe [`Channel`] trait.
    ///
    /// `ebn0_db` and `rate` fix the noise level of the Gaussian models
    /// (σ from [`ebn0_to_sigma`]); the BSC, erasure, and burst models
    /// carry their operating points in their own parameters, so both are
    /// ignored there (an erasure channel does not get harder as Eb/N0
    /// drops — sweep `erasure:p` / `burst:...` values instead). `seed`
    /// makes the noise stream deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `(0, 1]` or the spec holds a
    /// parameter the parser would have rejected (hand-constructed specs
    /// only).
    pub fn build(&self, ebn0_db: f64, rate: f64, seed: u64) -> Box<dyn Channel> {
        let inner: Box<dyn Channel> = match self.kind {
            ChannelKind::Awgn => Box::new(AwgnChannel::new(ebn0_to_sigma(ebn0_db, rate), seed)),
            ChannelKind::Bsc { p } => Box::new(BscChannel::new(p, seed)),
            ChannelKind::Rayleigh => {
                Box::new(RayleighChannel::new(ebn0_to_sigma(ebn0_db, rate), seed))
            }
            ChannelKind::Erasure { p } => Box::new(ErasureChannel::new(p, seed)),
            ChannelKind::Burst {
                p_good,
                p_bad,
                p_switch,
            } => Box::new(GilbertElliottChannel::new(p_good, p_bad, p_switch, seed)),
        };
        match self.quant {
            None => inner,
            Some(bits) => Box::new(QuantizedChannel::new(inner, bits)),
        }
    }

    /// Validates parameters and the modifier.
    fn validated(self) -> Result<Self, ChannelSpecError> {
        if let ChannelKind::Bsc { p } = self.kind {
            if !(p > 0.0 && p < 0.5 && p.is_finite()) {
                return Err(ChannelSpecError::InvalidParameter {
                    family: "bsc",
                    value: p.to_string(),
                    expected: "a crossover probability in (0, 0.5) (e.g. bsc:0.02)",
                });
            }
        }
        if let ChannelKind::Erasure { p } = self.kind {
            if !(p > 0.0 && p < 1.0 && p.is_finite()) {
                return Err(ChannelSpecError::InvalidParameter {
                    family: "erasure",
                    value: p.to_string(),
                    expected: "an erasure probability in (0, 1) (e.g. erasure:0.05)",
                });
            }
        }
        if let ChannelKind::Burst {
            p_good,
            p_bad,
            p_switch,
        } = self.kind
        {
            for (name, p) in [("p_good", p_good), ("p_bad", p_bad)] {
                if !(p > 0.0 && p < 0.5 && p.is_finite()) {
                    return Err(ChannelSpecError::InvalidParameter {
                        family: "burst",
                        value: format!("{name}={p}"),
                        expected: "per-state crossover probabilities in (0, 0.5) \
                                   (e.g. burst:0.01,0.3,0.05)",
                    });
                }
            }
            if !(p_switch > 0.0 && p_switch <= 1.0 && p_switch.is_finite()) {
                return Err(ChannelSpecError::InvalidParameter {
                    family: "burst",
                    value: format!("p_switch={p_switch}"),
                    expected: "a state-switch probability in (0, 1] (e.g. burst:0.01,0.3,0.05)",
                });
            }
        }
        if let Some(bits) = self.quant {
            if !(2..=15).contains(&bits) {
                return Err(ChannelSpecError::InvalidParameter {
                    family: self.kind.keyword(),
                    value: format!("quant={bits}"),
                    expected: "a quantizer width in 2..=15 bits (e.g. @quant=5)",
                });
            }
        }
        Ok(self)
    }
}

impl fmt::Display for ChannelSpec {
    /// Canonical rendering: the default BSC crossover is omitted, so
    /// `parse("bsc:0.05").to_string() == "bsc"` while
    /// `parse("bsc:0.02").to_string() == "bsc:0.02"`. Always round trips
    /// through [`FromStr`] to an equal spec.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ChannelKind::Awgn => write!(f, "awgn")?,
            ChannelKind::Rayleigh => write!(f, "rayleigh")?,
            ChannelKind::Bsc { p } => {
                if p == DEFAULT_BSC_P {
                    write!(f, "bsc")?;
                } else {
                    write!(f, "bsc:{p}")?;
                }
            }
            ChannelKind::Erasure { p } => {
                if p == DEFAULT_ERASURE_P {
                    write!(f, "erasure")?;
                } else {
                    write!(f, "erasure:{p}")?;
                }
            }
            ChannelKind::Burst {
                p_good,
                p_bad,
                p_switch,
            } => {
                if p_good == DEFAULT_BURST_P_GOOD
                    && p_bad == DEFAULT_BURST_P_BAD
                    && p_switch == DEFAULT_BURST_P_SWITCH
                {
                    write!(f, "burst")?;
                } else {
                    write!(f, "burst:{p_good},{p_bad},{p_switch}")?;
                }
            }
        }
        if let Some(bits) = self.quant {
            write!(f, "@quant={bits}")?;
        }
        Ok(())
    }
}

impl FromStr for ChannelSpec {
    type Err = ChannelSpecError;

    fn from_str(s: &str) -> Result<Self, ChannelSpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ChannelSpecError::Empty);
        }
        let mut parts = s.split('@');
        let head = parts.next().expect("split yields at least one part");
        let (keyword, param) = match head.split_once(':') {
            Some((k, p)) => (k, Some(p)),
            None => (head, None),
        };
        let no_param = |kind: ChannelKind, family: &'static str| match param {
            None => Ok(kind),
            Some(p) => Err(ChannelSpecError::UnexpectedParameter {
                family,
                value: p.to_string(),
            }),
        };
        let kind = match keyword {
            "awgn" | "gaussian" => no_param(ChannelKind::Awgn, "awgn")?,
            "rayleigh" | "fading" => no_param(ChannelKind::Rayleigh, "rayleigh")?,
            "bsc" | "binary-symmetric" => match param {
                None => ChannelKind::Bsc { p: DEFAULT_BSC_P },
                Some(p) => ChannelKind::Bsc {
                    p: p.parse().map_err(|_| ChannelSpecError::InvalidParameter {
                        family: "bsc",
                        value: p.to_string(),
                        expected: "a crossover probability in (0, 0.5) (e.g. bsc:0.02)",
                    })?,
                },
            },
            "erasure" | "bec" => match param {
                None => ChannelKind::Erasure {
                    p: DEFAULT_ERASURE_P,
                },
                Some(p) => ChannelKind::Erasure {
                    p: p.parse().map_err(|_| ChannelSpecError::InvalidParameter {
                        family: "erasure",
                        value: p.to_string(),
                        expected: "an erasure probability in (0, 1) (e.g. erasure:0.05)",
                    })?,
                },
            },
            "burst" | "gilbert-elliott" => match param {
                None => ChannelKind::Burst {
                    p_good: DEFAULT_BURST_P_GOOD,
                    p_bad: DEFAULT_BURST_P_BAD,
                    p_switch: DEFAULT_BURST_P_SWITCH,
                },
                Some(p) => {
                    let invalid = || ChannelSpecError::InvalidParameter {
                        family: "burst",
                        value: p.to_string(),
                        expected: "three comma-separated probabilities p_good,p_bad,p_switch \
                                   (e.g. burst:0.01,0.3,0.05)",
                    };
                    let fields: Vec<&str> = p.split(',').collect();
                    if fields.len() != 3 {
                        return Err(invalid());
                    }
                    let mut probs = [0.0f64; 3];
                    for (slot, field) in probs.iter_mut().zip(&fields) {
                        *slot = field.trim().parse().map_err(|_| invalid())?;
                    }
                    ChannelKind::Burst {
                        p_good: probs[0],
                        p_bad: probs[1],
                        p_switch: probs[2],
                    }
                }
            },
            other => return Err(ChannelSpecError::UnknownFamily(other.to_string())),
        };
        let mut spec = ChannelSpec { kind, quant: None };
        for modifier in parts {
            if let Some(value) = modifier.strip_prefix("quant=") {
                if spec.quant.is_some() {
                    return Err(ChannelSpecError::DuplicateModifier("@quant"));
                }
                let bits: u32 = value
                    .parse()
                    .map_err(|_| ChannelSpecError::InvalidParameter {
                        family: kind.keyword(),
                        value: format!("quant={value}"),
                        expected: "a quantizer width in 2..=15 bits (e.g. @quant=5)",
                    })?;
                spec.quant = Some(bits);
            } else {
                return Err(ChannelSpecError::UnknownModifier(modifier.to_string()));
            }
        }
        spec.validated()
    }
}

/// Error produced while parsing or validating a [`ChannelSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelSpecError {
    /// The spec string was empty.
    Empty,
    /// The model keyword is not registered.
    UnknownFamily(String),
    /// A parameter failed to parse or is out of range.
    InvalidParameter {
        /// Model keyword the parameter belongs to.
        family: &'static str,
        /// The offending raw value.
        value: String,
        /// What a valid value looks like.
        expected: &'static str,
    },
    /// A parameter was given to a model that takes none.
    UnexpectedParameter {
        /// Model keyword.
        family: &'static str,
        /// The offending raw value.
        value: String,
    },
    /// A modifier keyword is not registered.
    UnknownModifier(String),
    /// The same modifier was given twice.
    DuplicateModifier(&'static str),
}

impl fmt::Display for ChannelSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(
                f,
                "empty channel spec; expected family[:param][@quant=B], e.g. awgn or bsc:0.02"
            ),
            Self::UnknownFamily(name) => write!(
                f,
                "unknown channel model {name:?}; known models: {}",
                ChannelSpec::family_names().join(", ")
            ),
            Self::InvalidParameter {
                family,
                value,
                expected,
            } => write!(
                f,
                "invalid parameter {value:?} for {family}: expected {expected}"
            ),
            Self::UnexpectedParameter { family, value } => {
                write!(f, "{family} takes no parameter, but got {value:?}")
            }
            Self::UnknownModifier(name) => {
                write!(f, "unknown modifier {name:?}; known modifiers: @quant=B")
            }
            Self::DuplicateModifier(name) => write!(f, "modifier {name} given more than once"),
        }
    }
}

impl std::error::Error for ChannelSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_model_keyword_with_defaults() {
        for name in ChannelSpec::family_names() {
            let spec = ChannelSpec::parse(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.to_string(), *name, "canonical display of {name}");
            assert!(spec.quant.is_none());
        }
    }

    #[test]
    fn parses_parameters_and_modifiers() {
        let spec = ChannelSpec::parse("bsc:0.02").unwrap();
        assert_eq!(spec.kind, ChannelKind::Bsc { p: 0.02 });
        assert_eq!(spec.to_string(), "bsc:0.02");

        let spec = ChannelSpec::parse("awgn@quant=5").unwrap();
        assert_eq!(spec.kind, ChannelKind::Awgn);
        assert_eq!(spec.quant, Some(5));
        assert_eq!(spec.to_string(), "awgn@quant=5");

        let spec = ChannelSpec::parse("bsc:0.1@quant=3").unwrap();
        assert_eq!(spec.to_string(), "bsc:0.1@quant=3");

        let spec = ChannelSpec::parse("erasure:0.05").unwrap();
        assert_eq!(spec.kind, ChannelKind::Erasure { p: 0.05 });
        assert_eq!(spec.to_string(), "erasure:0.05");

        let spec = ChannelSpec::parse("burst:0.02,0.25,0.1").unwrap();
        assert_eq!(
            spec.kind,
            ChannelKind::Burst {
                p_good: 0.02,
                p_bad: 0.25,
                p_switch: 0.1
            }
        );
        assert_eq!(spec.to_string(), "burst:0.02,0.25,0.1");

        let spec = ChannelSpec::parse("burst:0.02,0.25,0.1@quant=4").unwrap();
        assert_eq!(spec.quant, Some(4));
        assert_eq!(spec.to_string(), "burst:0.02,0.25,0.1@quant=4");
    }

    #[test]
    fn aliases_parse_to_the_same_model() {
        assert_eq!(
            ChannelSpec::parse("gaussian").unwrap(),
            ChannelSpec::parse("awgn").unwrap()
        );
        assert_eq!(
            ChannelSpec::parse("fading").unwrap(),
            ChannelSpec::parse("rayleigh").unwrap()
        );
        assert_eq!(
            ChannelSpec::parse("binary-symmetric:0.1").unwrap(),
            ChannelSpec::parse("bsc:0.1").unwrap()
        );
        assert_eq!(
            ChannelSpec::parse("bec:0.05").unwrap(),
            ChannelSpec::parse("erasure:0.05").unwrap()
        );
        assert_eq!(
            ChannelSpec::parse("gilbert-elliott:0.01,0.3,0.05").unwrap(),
            ChannelSpec::parse("burst:0.01,0.3,0.05").unwrap()
        );
    }

    #[test]
    fn display_omits_default_parameters_only() {
        assert_eq!(ChannelSpec::parse("bsc:0.05").unwrap().to_string(), "bsc");
        assert_eq!(
            ChannelSpec::parse("bsc:0.02").unwrap().to_string(),
            "bsc:0.02"
        );
        assert_eq!(
            ChannelSpec::parse("erasure:0.1").unwrap().to_string(),
            "erasure"
        );
        assert_eq!(
            ChannelSpec::parse("erasure:0.05").unwrap().to_string(),
            "erasure:0.05"
        );
        assert_eq!(
            ChannelSpec::parse("burst:0.01,0.3,0.05")
                .unwrap()
                .to_string(),
            "burst"
        );
        assert_eq!(
            ChannelSpec::parse("burst:0.01,0.3,0.02")
                .unwrap()
                .to_string(),
            "burst:0.01,0.3,0.02"
        );
    }

    #[test]
    fn errors_are_actionable() {
        let err = ChannelSpec::parse("magic").unwrap_err();
        assert!(err.to_string().contains("known models"), "{err}");
        assert!(err.to_string().contains("rayleigh"), "{err}");

        let err = ChannelSpec::parse("bsc:0.6").unwrap_err();
        assert!(err.to_string().contains("(0, 0.5)"), "{err}");

        let err = ChannelSpec::parse("bsc:zero").unwrap_err();
        assert!(err.to_string().contains("bsc:0.02"), "{err}");

        let err = ChannelSpec::parse("awgn:0.5").unwrap_err();
        assert!(err.to_string().contains("takes no parameter"), "{err}");

        let err = ChannelSpec::parse("erasure:1.5").unwrap_err();
        assert!(err.to_string().contains("(0, 1)"), "{err}");

        let err = ChannelSpec::parse("erasure:lots").unwrap_err();
        assert!(err.to_string().contains("erasure:0.05"), "{err}");

        let err = ChannelSpec::parse("burst:0.01,0.3").unwrap_err();
        assert!(err.to_string().contains("p_good,p_bad,p_switch"), "{err}");

        let err = ChannelSpec::parse("burst:0.01,0.7,0.05").unwrap_err();
        assert!(err.to_string().contains("p_bad=0.7"), "{err}");

        let err = ChannelSpec::parse("burst:0.01,0.3,0").unwrap_err();
        assert!(err.to_string().contains("p_switch=0"), "{err}");

        let err = ChannelSpec::parse("awgn@turbo").unwrap_err();
        assert!(err.to_string().contains("@quant"), "{err}");

        let err = ChannelSpec::parse("awgn@quant=1").unwrap_err();
        assert!(err.to_string().contains("2..=15"), "{err}");

        let err = ChannelSpec::parse("awgn@quant=5@quant=5").unwrap_err();
        assert!(matches!(err, ChannelSpecError::DuplicateModifier(_)));

        assert_eq!(ChannelSpec::parse("").unwrap_err(), ChannelSpecError::Empty);
    }

    #[test]
    fn every_registered_model_builds_and_transmits() {
        let cw = BitVec::zeros(128);
        for spec in ChannelSpec::all_channels() {
            let mut channel = spec.build(4.0, 0.5, 7);
            let llrs = channel.transmit_codeword(&cw);
            assert_eq!(llrs.len(), 128, "{spec}");
            // All-zero codeword at a benign operating point: the LLR mass
            // must lean positive for every model.
            let positives = llrs.iter().filter(|&&l| l > 0.0).count();
            assert!(positives > 64, "{spec}: only {positives}/128 positive");
        }
    }

    #[test]
    fn built_channels_are_deterministic_per_seed() {
        let cw = BitVec::zeros(64);
        for spec in ChannelSpec::all_channels() {
            let a = spec.build(3.0, 0.5, 11).transmit_codeword(&cw);
            let b = spec.build(3.0, 0.5, 11).transmit_codeword(&cw);
            let c = spec.build(3.0, 0.5, 12).transmit_codeword(&cw);
            assert_eq!(a, b, "{spec}");
            assert_ne!(a, c, "{spec}");
        }
    }

    #[test]
    fn awgn_spec_matches_direct_awgn_channel() {
        // The spec door must not perturb the historical AWGN noise
        // stream: same seed, same LLRs as constructing AwgnChannel
        // directly (this is what keeps the Monte-Carlo engine's counts
        // stable across the spec refactor).
        let cw = BitVec::zeros(256);
        let sigma = ebn0_to_sigma(3.5, 0.875);
        let direct = AwgnChannel::new(sigma, 99).transmit_codeword(&cw);
        let via_spec = ChannelSpec::awgn()
            .build(3.5, 0.875, 99)
            .transmit_codeword(&cw);
        assert_eq!(direct, via_spec);
    }

    #[test]
    fn quantized_llrs_sit_on_the_grid_and_saturate() {
        let cw = BitVec::zeros(512);
        let mut channel = ChannelSpec::parse("awgn@quant=3")
            .unwrap()
            .build(2.0, 0.5, 5);
        let llrs = channel.transmit_codeword(&cw);
        let max = 3.0 * QUANT_LLR_STEP; // 3-bit: levels -3..=3
        for &l in &llrs {
            assert!((l / QUANT_LLR_STEP).fract() == 0.0, "off-grid LLR {l}");
            assert!(l.abs() <= max + 1e-6, "unsaturated LLR {l}");
        }
        // The grid is coarse enough that saturation actually occurs.
        assert!(llrs.iter().any(|&l| (l - max).abs() < 1e-6));
    }
}
