//! Property-based tests of the channel substrate.

use gf2::BitVec;
use ldpc_channel::{
    bpsk_modulate, ebn0_to_mean_llr, ebn0_to_sigma, hard_decision, llr_from_symbol, sigma_to_ebn0,
    AwgnChannel, BscChannel,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eb/N0 <-> sigma conversions are mutual inverses for any operating
    /// point and rate.
    #[test]
    fn ebn0_sigma_roundtrip(ebn0 in -5.0f64..15.0, rate in 0.05f64..1.0) {
        let sigma = ebn0_to_sigma(ebn0, rate);
        prop_assert!(sigma > 0.0);
        prop_assert!((sigma_to_ebn0(sigma, rate) - ebn0).abs() < 1e-9);
        prop_assert!((ebn0_to_mean_llr(ebn0, rate) - 2.0 / (sigma * sigma)).abs() < 1e-9);
    }

    /// Modulation is antipodal and sign-consistent with the LLR demapper.
    #[test]
    fn modulation_and_llr_signs_agree(bits in prop::collection::vec(any::<bool>(), 1..64)) {
        let cw = BitVec::from_bools(&bits);
        let symbols = bpsk_modulate(&cw);
        for (i, &s) in symbols.iter().enumerate() {
            prop_assert_eq!(s.abs(), 1.0);
            prop_assert_eq!(s < 0.0, bits[i]);
            // Noiseless demap recovers the bit.
            let llr = llr_from_symbol(s, 0.7);
            prop_assert_eq!(llr < 0.0, bits[i]);
            prop_assert_eq!(hard_decision(s) == 1, bits[i]);
        }
    }

    /// The AWGN channel is deterministic per seed and the noise level
    /// scales observations of the zero symbol.
    #[test]
    fn awgn_determinism(sigma in 0.05f64..2.0, seed in 0u64..1000) {
        let symbols = vec![1.0f64; 32];
        let a = AwgnChannel::new(sigma, seed).transmit_block(&symbols);
        let b = AwgnChannel::new(sigma, seed).transmit_block(&symbols);
        prop_assert_eq!(a, b);
    }

    /// BSC LLR magnitude is constant and decreasing in crossover
    /// probability.
    #[test]
    fn bsc_llr_magnitude_monotone(p1 in 0.01f64..0.2, p2 in 0.21f64..0.49) {
        let cw = BitVec::zeros(16);
        let a = BscChannel::new(p1, 0).transmit_codeword(&cw);
        let b = BscChannel::new(p2, 0).transmit_codeword(&cw);
        let mag_a = a[0].abs();
        let mag_b = b[0].abs();
        prop_assert!(a.iter().all(|l| (l.abs() - mag_a).abs() < 1e-6));
        prop_assert!(mag_a > mag_b, "less noise must mean more confident LLRs");
    }

    /// LLR demapping is linear in the observation and inversely quadratic
    /// in sigma.
    #[test]
    fn llr_scaling_laws(y in -3.0f64..3.0, sigma in 0.1f64..2.0) {
        let base = llr_from_symbol(y, sigma);
        let double_y = llr_from_symbol(2.0 * y, sigma);
        prop_assert!((double_y - 2.0 * base).abs() < 1e-3 * base.abs().max(1.0));
        let double_sigma = llr_from_symbol(y, 2.0 * sigma);
        prop_assert!((4.0 * double_sigma - base).abs() < 1e-3 * base.abs().max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The channel-spec grammar round trips: for every model and random
    /// valid parameters (with and without the quantization modifier),
    /// `parse(display(spec)) == spec`, and display is a fixpoint.
    #[test]
    fn channel_spec_roundtrips(
        family_idx in 0usize..5,
        p in 0.001f64..0.499,
        p_bad in 0.001f64..0.499,
        p_switch in 0.001f64..1.0,
        quant_bits in 2u32..16,
        quantized in any::<bool>(),
    ) {
        use ldpc_channel::{ChannelKind, ChannelSpec};
        let kind = match family_idx {
            0 => ChannelKind::Awgn,
            1 => ChannelKind::Bsc { p },
            2 => ChannelKind::Erasure { p: 2.0 * p },
            3 => ChannelKind::Burst { p_good: p, p_bad, p_switch },
            _ => ChannelKind::Rayleigh,
        };
        let spec = ChannelSpec {
            kind,
            quant: quantized.then_some(quant_bits),
        };
        let rendered = spec.to_string();
        let reparsed = ChannelSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("{rendered}: {e}"));
        prop_assert_eq!(reparsed, spec, "{} did not round trip", rendered);
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    /// Every valid spec builds a working channel whose output length
    /// matches the codeword, deterministically per seed.
    #[test]
    fn channel_specs_build_deterministic_channels(
        family_idx in 0usize..5,
        p in 0.001f64..0.499,
        ebn0 in -2.0f64..10.0,
        seed in 0u64..500,
    ) {
        use ldpc_channel::{ChannelKind, ChannelSpec};
        let kind = match family_idx {
            0 => ChannelKind::Awgn,
            1 => ChannelKind::Bsc { p },
            2 => ChannelKind::Erasure { p },
            3 => ChannelKind::Burst { p_good: p, p_bad: 0.3, p_switch: 0.05 },
            _ => ChannelKind::Rayleigh,
        };
        let spec = ChannelSpec { kind, quant: None };
        let cw = BitVec::zeros(48);
        let a = spec.build(ebn0, 0.875, seed).transmit_codeword(&cw);
        let b = spec.build(ebn0, 0.875, seed).transmit_codeword(&cw);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), 48);
    }

    /// Malformed channel specs never panic and always explain themselves.
    #[test]
    fn malformed_channel_specs_error_actionably(junk_idx in 0usize..5) {
        use ldpc_channel::ChannelSpec;
        let junk = ["zz", "-1", "0.6", "@", "quant="][junk_idx];
        let err = ChannelSpec::parse(&format!("bsc:{junk}"))
            .expect_err("malformed bsc parameter accepted");
        prop_assert!(!err.to_string().is_empty());
        let err = ChannelSpec::parse(&format!("{junk}-channel")).unwrap_err();
        prop_assert!(!err.to_string().is_empty());
        let err = ChannelSpec::parse(&format!("burst:{junk}"))
            .expect_err("malformed burst parameter accepted");
        prop_assert!(!err.to_string().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The erasure channel marks *exactly* the erased positions with a
    /// zero LLR; every other position carries the transmitted bit's sign
    /// at the full known-symbol magnitude — an erasure never flips.
    #[test]
    fn erasure_zeroes_exactly_the_erased_positions(
        bits in prop::collection::vec(any::<bool>(), 1..512),
        p in 0.01f64..0.99,
        seed in 0u64..1000,
    ) {
        use ldpc_channel::{ErasureChannel, ERASURE_KNOWN_LLR};
        let cw = BitVec::from_bools(&bits);
        let llrs = ErasureChannel::new(p, seed).transmit_codeword(&cw);
        prop_assert_eq!(llrs.len(), bits.len());
        for (i, &l) in llrs.iter().enumerate() {
            if l == 0.0 {
                continue; // erased: no information, and no flip either
            }
            prop_assert_eq!(l.abs(), ERASURE_KNOWN_LLR, "off-magnitude LLR at {}", i);
            prop_assert_eq!(l < 0.0, bits[i], "surviving symbol flipped at {}", i);
        }
    }

    /// The symmetric Gilbert-Elliott chain's stationary distribution is
    /// ½/½: over a long transmission the empirical bad-state occupancy
    /// (observable through the per-state CSI magnitude) converges to one
    /// half regardless of switching rate or seed.
    #[test]
    fn gilbert_elliott_occupancy_converges_to_stationary(
        p_switch in 0.02f64..1.0,
        seed in 0u64..1000,
    ) {
        use ldpc_channel::GilbertElliottChannel;
        let (p_good, p_bad) = (0.01, 0.3);
        let n = 60_000usize;
        let llrs = GilbertElliottChannel::new(p_good, p_bad, p_switch, seed)
            .transmit_codeword(&BitVec::zeros(n));
        let bad_magnitude = ((1.0 - p_bad) as f32 / p_bad as f32).ln();
        let bad = llrs
            .iter()
            .filter(|l| (l.abs() - bad_magnitude).abs() < 1e-4)
            .count();
        let occupancy = bad as f64 / n as f64;
        // Tolerance covers the worst case (slowest chain, ~1200
        // independent sojourns of mean length 50): ±6 std devs.
        let tolerance = 6.0 * (0.25 / (n as f64 * p_switch)).sqrt() + 0.01;
        prop_assert!(
            (occupancy - 0.5).abs() < tolerance,
            "occupancy {} vs stationary 0.5 (p_switch {})", occupancy, p_switch
        );
    }
}
