//! Minimal dependency-free argument parsing for `ldpc-tool`.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Error produced while parsing or validating arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// An option was given without a value.
    MissingValue(String),
    /// An option value failed to parse.
    InvalidValue {
        /// Option name.
        option: String,
        /// Raw value.
        value: String,
    },
    /// Unexpected positional argument.
    UnexpectedPositional(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingCommand => write!(f, "missing subcommand (try `ldpc-tool help`)"),
            Self::MissingValue(opt) => write!(f, "option --{opt} expects a value"),
            Self::InvalidValue { option, value } => {
                write!(f, "invalid value {value:?} for --{option}")
            }
            Self::UnexpectedPositional(arg) => write!(f, "unexpected argument {arg:?}"),
        }
    }
}

impl Error for ArgError {}

/// Options that never take a value.
const BOOLEAN_FLAGS: &[&str] = &[
    "random", "zeros", "help", "c2", "demo", "hard", "bitslice", "adaptive", "resume",
];

impl ParsedArgs {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut it = args.into_iter().peekable();
        let mut command = it.next().ok_or(ArgError::MissingCommand)?;
        if command == "--help" || command == "-h" {
            command = "help".to_owned();
        }
        if command.starts_with('-') {
            return Err(ArgError::MissingCommand);
        }
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(arg) = it.next() {
            if arg == "-h" {
                flags.push("help".to_owned());
            } else if let Some(name) = arg.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    flags.push(name.to_owned());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(name.to_owned()))?;
                    options.insert(name.to_owned(), value);
                }
            } else {
                return Err(ArgError::UnexpectedPositional(arg));
            }
        }
        Ok(Self {
            command,
            options,
            flags,
        })
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::InvalidValue`] if present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::InvalidValue {
                option: name.to_owned(),
                value: raw.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<ParsedArgs, ArgError> {
        ParsedArgs::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["simulate", "--ebn0", "4.0", "--random", "--frames", "10"]).unwrap();
        assert_eq!(a.command, "simulate");
        assert_eq!(a.get("ebn0"), Some("4.0"));
        assert!(a.flag("random"));
        assert!(!a.flag("zeros"));
        assert_eq!(a.get_or("frames", 0u64).unwrap(), 10);
        assert_eq!(a.get_or("iters", 18u32).unwrap(), 18); // default
    }

    #[test]
    fn help_flag_maps_to_help_command() {
        assert_eq!(parse(&["--help"]).unwrap().command, "help");
        assert_eq!(parse(&["-h"]).unwrap().command, "help");
        // After a subcommand, both spellings surface as the `help` flag.
        assert!(parse(&["simulate", "--help"]).unwrap().flag("help"));
        assert!(parse(&["simulate", "-h"]).unwrap().flag("help"));
    }

    #[test]
    fn missing_command_rejected() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::MissingCommand);
        assert_eq!(
            parse(&["--ebn0", "4"]).unwrap_err(),
            ArgError::MissingCommand
        );
    }

    #[test]
    fn missing_value_rejected() {
        assert_eq!(
            parse(&["simulate", "--ebn0"]).unwrap_err(),
            ArgError::MissingValue("ebn0".into())
        );
    }

    #[test]
    fn invalid_value_rejected() {
        let a = parse(&["simulate", "--ebn0", "four"]).unwrap();
        assert!(matches!(
            a.get_or("ebn0", 0.0f64).unwrap_err(),
            ArgError::InvalidValue { .. }
        ));
    }

    #[test]
    fn stray_positional_rejected() {
        assert!(matches!(
            parse(&["simulate", "oops"]).unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
    }

    #[test]
    fn errors_display_cleanly() {
        for e in [
            ArgError::MissingCommand,
            ArgError::MissingValue("x".into()),
            ArgError::InvalidValue {
                option: "x".into(),
                value: "y".into(),
            },
            ArgError::UnexpectedPositional("z".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
