//! `ldpc-tool` — command-line front end for the CCSDS LDPC decoder system.
//!
//! ```text
//! ldpc-tool info
//! ldpc-tool encode --random --seed 7
//! ldpc-tool simulate --c2 --ebn0 4.0 --frames 100
//! ldpc-tool serve --port 7878 --max-wait-us 500
//! ldpc-tool plan --mbps 560
//! ldpc-tool tables
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

use args::ParsedArgs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", commands::help_text());
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
