//! Subcommand implementations for `ldpc-tool`.
//!
//! Each command returns its output as a `String` so the logic is unit
//! testable; `main` only does I/O.

use crate::args::{ArgError, ParsedArgs};
use ldpc_channel::ChannelSpec;
use ldpc_core::codes::ccsds_c2;
use ldpc_core::{CodeSpec, DecoderSpec};
use ldpc_hwsim::{
    devices, plan, render_table, ArchConfig, CodeDims, PlannerRequest, ResourceEstimate,
    ThroughputModel,
};
use ldpc_sim::{
    run_curve_scenario_with, run_point_scenario, run_sweep, split_spec_list, sweep_grid,
    MonteCarloConfig, Scenario, SweepConfig, SweepUnitResult, Transmission,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::path::PathBuf;

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns an error string suitable for printing to stderr.
pub fn run(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    // `simulate --help` must print usage, not run a simulation.
    if args.flag("help") {
        return Ok(help_text());
    }
    match args.command.as_str() {
        "help" => Ok(help_text()),
        "info" => cmd_info(args),
        "encode" => cmd_encode(args),
        "simulate" => cmd_simulate(args),
        "sweep" => cmd_sweep(args),
        "serve" => cmd_serve(args),
        "plan" => cmd_plan(args),
        "tables" => Ok(cmd_tables()),
        other => Err(format!("unknown command {other:?} (try `ldpc-tool help`)").into()),
    }
}

/// The help text.
pub fn help_text() -> String {
    format!(
        "\
ldpc-tool — CCSDS near-earth LDPC decoder toolbox

USAGE: ldpc-tool <COMMAND> [OPTIONS]

COMMANDS:
  info                      print the C2 code parameters
  encode [--random|--zeros] [--seed N]
                            encode one 7154-bit frame; prints codeword bits
  simulate [--code SPEC|--demo|--c2] [--channel SPEC] [--decoder SPEC]
           [--ebn0 DB] [--frames N] [--iters N] [--threads N] [--seed N]
                            Monte-Carlo one scenario at one operating
                            point; prints CSV (--threads 0 = all cores)
  sweep --decoders SPEC,SPEC,... [--codes SPEC,...] [--channels SPEC,...]
        [--demo|--c2] [--ebn0s DB,DB,...] [--frames N] [--iters N]
        [--threads N] [--seed N]
                            grid sweep: one long-format CSV over every
                            code x channel x decoder x Eb/N0 combination,
                            all through the one Monte-Carlo engine
  sweep ... --adaptive [--target-errors K] [--chunk-frames N]
        [--resume] [--cache-dir DIR] [--json PATH]
                            adaptive sweep: chunks of every grid point are
                            work-stolen across all cores, and each point
                            runs until K frame errors (default 100; 0 =
                            run to the --frames cap, rounded up to whole
                            chunks). --resume caches finished chunks under
                            --cache-dir (default .ldpc-sweep-cache), so a
                            re-run simulates nothing and a larger budget
                            simulates only the extension; merged counts
                            are independent of --threads and of resuming.
                            --json PATH also writes machine-readable
                            results (the BENCH_SWEEP.json format)
  serve [--port N | --addr HOST:PORT] [--max-wait-us N] [--workers N]
        [--iters N] [--queue-frames N]
                            decode-as-a-service: newline-delimited TCP
                            protocol (see docs/scenarios.md recipe 12)
                            coalescing concurrent clients' frames into
                            full @pack/@batch/@bitslice words; a frame
                            waits at most --max-wait-us (default 500)
                            for word-mates. Drains gracefully on ctrl-c
                            / SIGTERM / a SHUTDOWN request. Default
                            127.0.0.1:7878
  plan --mbps X [--iters N] [--clock MHZ]
                            pick the cheapest architecture meeting a rate
  tables                    print the paper's Tables 1-3 from the models
  help                      this text

CODE SPECS (simulate --code / sweep --codes; default c2):
  families: {codes}
  examples: demo | c2 | ar4ja:r=1/2,k=1024 | shortened:c2,k=4096

CHANNEL SPECS (simulate --channel / sweep --channels; default awgn):
  families: {channels} — modifier @quant=B (B-bit LLR quantization)
  examples: awgn | bsc:0.02 | rayleigh | awgn@quant=5
            erasure:0.05 | burst:0.01,0.3,0.05 (Gilbert-Elliott
            good/bad crossover + switch probability; pair the loss
            channels with the peeling decoder)

DECODER SPECS (simulate --decoder / sweep --decoders):
  family[:param][@modifier...] — families: {families}
  examples: spa | nms:1.25 | oms:0.15 | fixed | layered:1.25
            gallager-b:t=2 | nms:1.25@batch=8 | gallager-b@bitslice
  modifiers: @batch=N (lockstep frame batching: ms, nms, oms, fixed)
             @bitslice (64 frames per u64 word: gallager-b)
  deprecated flags --batch N, --hard, --bitslice, --threshold N still
  map onto the matching spec

The full grammar and copy-pasteable recipes live in docs/scenarios.md.
",
        codes = CodeSpec::family_names().join(", "),
        channels = ChannelSpec::family_names().join(", "),
        families = DecoderSpec::family_names().join(", ")
    )
}

/// Resolves the single code spec of `simulate` from `--code SPEC` or the
/// `--demo` / `--c2` shorthand flags (default: the paper's C2 code).
fn resolve_code_spec(args: &ParsedArgs) -> Result<CodeSpec, Box<dyn Error>> {
    match args.get("code") {
        Some(raw) => {
            if args.flag("demo") || args.flag("c2") {
                return Err("--code conflicts with --demo/--c2; give just one".into());
            }
            Ok(raw.parse::<CodeSpec>()?)
        }
        None if args.flag("demo") => Ok(CodeSpec::Demo),
        None => Ok(CodeSpec::C2),
    }
}

fn cmd_info(_args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let code = ccsds_c2::code();
    let mut out = String::new();
    out.push_str(&format!("name        : {}\n", code.name()));
    out.push_str(&format!("n           : {}\n", code.n()));
    out.push_str(&format!(
        "checks      : {} (rank {})\n",
        code.n_checks(),
        code.rank()
    ));
    out.push_str(&format!("dimension   : {}\n", code.dimension()));
    out.push_str(&format!("info bits   : {}\n", ccsds_c2::K_INFO));
    out.push_str(&format!("rate        : {:.4}\n", code.rate()));
    out.push_str(&format!("edges       : {}\n", code.graph().n_edges()));
    out.push_str(&format!(
        "structure   : {}x{} circulants of {}, row weight 32, column weight 4\n",
        ccsds_c2::BLOCK_ROWS,
        ccsds_c2::BLOCK_COLS,
        ccsds_c2::CIRCULANT_SIZE
    ));
    Ok(out)
}

fn cmd_encode(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let seed: u64 = args.get_or("seed", 1u64)?;
    let info: Vec<u8> = if args.flag("zeros") {
        vec![0u8; ccsds_c2::K_INFO]
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..ccsds_c2::K_INFO)
            .map(|_| rng.gen_range(0..2u8))
            .collect()
    };
    let cw = ccsds_c2::encode_frame(&info)?;
    let mut out = String::with_capacity(cw.len() + 1);
    for i in 0..cw.len() {
        out.push(if cw.get(i) { '1' } else { '0' });
    }
    out.push('\n');
    Ok(out)
}

/// The shared Monte-Carlo configuration of `simulate` and `sweep`,
/// parsed from the common flags (`--frames/--iters/--seed/--threads`).
/// One definition, so a sweep row always reproduces a simulate run with
/// the same flags at point index 0. `ebn0_db` is left at 0.0 — the
/// caller sets it (simulate) or `run_curve_scenario` derives it per
/// point (sweep). The frame default is sized to the smallest code in
/// play: 2000 frames for demo-only runs, 50 once a full-scale code is
/// involved.
fn mc_config_from_args(
    args: &ParsedArgs,
    codes: &[CodeSpec],
) -> Result<MonteCarloConfig, Box<dyn Error>> {
    let all_demo = codes.iter().all(|c| {
        matches!(
            c,
            CodeSpec::Demo
                | CodeSpec::Shortened {
                    base: ldpc_core::ShortenedBase::Demo,
                    ..
                }
        )
    });
    let default_frames = if all_demo { 2_000 } else { 50 };
    let frames: u64 = args.get_or("frames", default_frames)?;
    if frames == 0 {
        return Err(Box::new(ArgError::InvalidValue {
            option: "frames".into(),
            value: "0".into(),
        }));
    }
    Ok(MonteCarloConfig {
        ebn0_db: 0.0,
        max_frames: frames,
        target_frame_errors: 0,
        max_iterations: args.get_or("iters", 18u32)?,
        seed: args.get_or("seed", 0xC11u64)?,
        threads: args.get_or("threads", 0usize)?,
        transmission: Transmission::AllZero,
    })
}

fn cmd_simulate(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    for plural in ["codes", "channels", "decoders"] {
        if args.get(plural).is_some() {
            return Err(format!(
                "--{plural} belongs to sweep; simulate takes the singular --{}",
                &plural[..plural.len() - 1]
            )
            .into());
        }
    }
    let channel = match args.get("channel") {
        Some(raw) => raw.parse::<ChannelSpec>()?,
        None => ChannelSpec::awgn(),
    };
    let scenario = Scenario {
        code: resolve_code_spec(args)?,
        channel,
        decoder: resolve_decoder_spec(args)?,
    };
    let cfg = MonteCarloConfig {
        ebn0_db: args.get_or("ebn0", 4.0)?,
        ..mc_config_from_args(args, std::slice::from_ref(&scenario.code))?
    };
    let point = run_point_scenario(&scenario, &cfg)?;
    Ok(format!(
        "{CSV_HEADER}\n{}\n",
        scenario_csv_row(&scenario, &point)
    ))
}

/// Resolves the decoder specification from `--decoder SPEC`, mapping the
/// deprecated `--batch` / `--hard` / `--bitslice` / `--threshold` flags
/// onto the equivalent spec (with a note on stderr).
fn resolve_decoder_spec(args: &ParsedArgs) -> Result<DecoderSpec, Box<dyn Error>> {
    // Legacy hard-decision flags. `--bitslice` / `--threshold` without
    // `--hard` stay rejected: a forgotten --hard must not silently run
    // the soft decoder.
    if args.flag("hard") || args.flag("bitslice") || args.get("threshold").is_some() {
        if !args.flag("hard") {
            return Err(if args.flag("bitslice") {
                "--bitslice packs the hard-decision decoder; add --hard \
                 (or use --decoder gallager-b@bitslice)"
                    .into()
            } else {
                "--threshold configures the hard-decision decoder; add --hard \
                 (or use --decoder gallager-b:t=N)"
                    .into()
            });
        }
        if args.get("decoder").is_some() {
            return Err("--hard selects the Gallager-B decoder; drop --decoder \
                        (or use --decoder gallager-b:t=N[@bitslice] alone)"
                .into());
        }
        if args.get_or("batch", 1usize)? != 1 {
            return Err(
                "--batch applies to the soft decoders; use --bitslice for 64-wide hard decoding"
                    .into(),
            );
        }
        let threshold: usize = args.get_or("threshold", 3usize)?;
        if threshold == 0 {
            return Err(Box::new(ArgError::InvalidValue {
                option: "threshold".into(),
                value: "0".into(),
            }));
        }
        let mut spec = DecoderSpec::parse(&format!("gallager-b:t={threshold}"))?;
        if args.flag("bitslice") {
            spec = spec.with_bitslice()?;
        }
        eprintln!("note: --hard/--bitslice/--threshold are deprecated; use --decoder {spec}");
        return Ok(spec);
    }
    let raw: String = args.get_or("decoder", "fixed".to_owned())?;
    let mut spec = DecoderSpec::parse(&raw)?;
    // Legacy `--batch N`: map onto @batch=N (N = 1 keeps the scalar
    // decoder, matching the historical per-frame behaviour bit for bit).
    let batch: usize = args.get_or("batch", 1usize)?;
    match batch {
        0 => {
            return Err(Box::new(ArgError::InvalidValue {
                option: "batch".into(),
                value: "0".into(),
            }))
        }
        1 => {}
        n => {
            if spec.batch.is_some() || spec.bitslice || spec.pack.is_some() {
                return Err(format!(
                    "--batch {n} conflicts with the modifiers in --decoder {spec}; \
                     put the batch in the spec"
                )
                .into());
            }
            spec = spec.with_batch(n)?;
            eprintln!("note: --batch is deprecated; use --decoder {spec}");
        }
    }
    Ok(spec)
}

fn cmd_sweep(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    // The legacy simulate decoder flags have no sweep mapping: decoder
    // choice is exactly the --decoders list. Reject them rather than
    // silently running a different decoder than the caller asked for.
    for legacy in ["hard", "bitslice"] {
        if args.flag(legacy) {
            return Err(format!("--{legacy} does not apply to sweep; put the decoder in --decoders (e.g. gallager-b:t=N@bitslice)").into());
        }
    }
    for legacy in ["threshold", "batch"] {
        if args.get(legacy).is_some() {
            return Err(format!("--{legacy} does not apply to sweep; put it in the --decoders specs (e.g. gallager-b:t=2, nms@batch=8)").into());
        }
    }
    for (singular, plural) in [
        ("decoder", "--decoders"),
        ("code", "--codes"),
        ("channel", "--channels"),
    ] {
        if args.get(singular).is_some() {
            return Err(
                format!("--{singular} does not apply to sweep; list the spec in {plural}").into(),
            );
        }
    }
    let decoders: Vec<DecoderSpec> = split_spec_list(
        args.get("decoders")
            .ok_or("sweep requires --decoders <spec,spec,...> (try `ldpc-tool help`)")?,
    )
    .iter()
    .map(|s| DecoderSpec::parse(s).map_err(Box::<dyn Error>::from))
    .collect::<Result<_, _>>()?;
    let codes: Vec<CodeSpec> = match args.get("codes") {
        Some(list) => {
            if args.flag("demo") || args.flag("c2") {
                return Err("--codes conflicts with --demo/--c2; give just one".into());
            }
            split_spec_list(list)
                .iter()
                .map(|s| s.parse().map_err(Box::<dyn Error>::from))
                .collect::<Result<_, _>>()?
        }
        None => vec![resolve_code_spec(args)?],
    };
    let channels: Vec<ChannelSpec> = match args.get("channels") {
        Some(list) => split_spec_list(list)
            .iter()
            .map(|s| s.parse().map_err(Box::<dyn Error>::from))
            .collect::<Result<_, _>>()?,
        None => vec![ChannelSpec::awgn()],
    };
    let ebn0s: Vec<f64> = match args.get("ebn0s") {
        Some(list) => list
            .split(',')
            .map(|v| {
                v.trim().parse().map_err(|_| ArgError::InvalidValue {
                    option: "ebn0s".into(),
                    value: v.into(),
                })
            })
            .collect::<Result<_, _>>()?,
        None => vec![args.get_or("ebn0", 4.0)?],
    };
    let base = mc_config_from_args(args, &codes)?;
    let adaptive = args.flag("adaptive") || args.flag("resume");
    if !adaptive {
        for opt in ["target-errors", "chunk-frames", "cache-dir", "json"] {
            if args.get(opt).is_some() {
                return Err(format!(
                    "--{opt} applies to the adaptive sweep; add --adaptive (or --resume)"
                )
                .into());
            }
        }
        let mut out = format!("{CSV_HEADER}\n");
        for code in &codes {
            // Each code is built once for the whole grid (an AR4JA lift or a
            // shortened view's encoder is not free), then shared across every
            // channel × decoder × Eb/N0 combination.
            let handle = code.build()?;
            for channel in &channels {
                for decoder in &decoders {
                    // One engine, one seed derivation: every scenario sweeps
                    // the same Eb/N0 points through run_curve_scenario_with,
                    // so a sweep row reproduces a simulate run with the same
                    // flags at the same point index.
                    let scenario = Scenario {
                        code: *code,
                        channel: *channel,
                        decoder: decoder.clone(),
                    };
                    for point in run_curve_scenario_with(&handle, &scenario, &ebn0s, &base) {
                        out.push_str(&scenario_csv_row(&scenario, &point));
                        out.push('\n');
                    }
                }
            }
        }
        return Ok(out);
    }
    cmd_sweep_adaptive(args, &codes, &channels, &decoders, &ebn0s, &base)
}

/// The adaptive/resumable sweep path: the same grid and seed derivation
/// as the legacy sweep, orchestrated through `ldpc_sim::run_sweep` —
/// chunked work stealing across points, per-point stopping at
/// `--target-errors`, and (with `--resume` / `--cache-dir`) a
/// content-addressed chunk cache that makes re-runs incremental.
///
/// The CSV goes to stdout like every other command; rows extend the
/// legacy 8 columns (identical prefix, pinned by tests) with the error
/// count, the Wilson 95 % PER interval, and the resume accounting.
/// `--json PATH` additionally writes the machine-readable result set.
fn cmd_sweep_adaptive(
    args: &ParsedArgs,
    codes: &[CodeSpec],
    channels: &[ChannelSpec],
    decoders: &[DecoderSpec],
    ebn0s: &[f64],
    base: &MonteCarloConfig,
) -> Result<String, Box<dyn Error>> {
    let chunk_frames: u64 = args.get_or("chunk-frames", 1_000u64)?;
    if chunk_frames == 0 {
        return Err(Box::new(ArgError::InvalidValue {
            option: "chunk-frames".into(),
            value: "0".into(),
        }));
    }
    let cache_dir = match args.get("cache-dir") {
        Some(path) => Some(PathBuf::from(path)),
        None if args.flag("resume") => Some(PathBuf::from(".ldpc-sweep-cache")),
        None => None,
    };
    let cfg = SweepConfig {
        max_frames: base.max_frames,
        target_frame_errors: args.get_or("target-errors", 100u64)?,
        chunk_frames,
        max_iterations: base.max_iterations,
        threads: base.threads,
        cache_dir,
        progress_frames: None,
    };
    let mut scenarios = Vec::with_capacity(codes.len() * channels.len() * decoders.len());
    for code in codes {
        for channel in channels {
            for decoder in decoders {
                scenarios.push(Scenario {
                    code: *code,
                    channel: *channel,
                    decoder: decoder.clone(),
                });
            }
        }
    }
    let units = sweep_grid(&scenarios, ebn0s, base.seed);
    let started = std::time::Instant::now();
    let results = run_sweep(&units, &cfg)?;
    let mut out = format!("{ADAPTIVE_CSV_HEADER}\n");
    for result in &results {
        out.push_str(&adaptive_csv_row(result));
        out.push('\n');
    }
    if let Some(path) = args.get("json") {
        std::fs::write(path, sweep_json(&results, &cfg))
            .map_err(|e| format!("writing --json {path}: {e}"))?;
    }
    let simulated: u64 = results.iter().map(|r| r.frames_simulated).sum();
    let cached: u64 = results.iter().map(|r| r.frames_from_cache).sum();
    // Progress/accounting goes to stderr so stdout stays exactly the CSV
    // (and a warm re-run stays byte-identical to the cold one).
    eprintln!(
        "sweep: {} point(s), {simulated} frame(s) simulated, {cached} from cache, {:.2}s",
        results.len(),
        started.elapsed().as_secs_f64()
    );
    Ok(out)
}

/// The CSV header shared by `simulate` and `sweep`.
const CSV_HEADER: &str = "code,channel,decoder,ebn0_db,frames,ber,per,avg_iterations";

/// Renders one CSV field, quoting per RFC 4180 when the value contains
/// a comma (a `shortened:c2,k=4096` code spec), a quote, or a CR/LF —
/// an embedded line break would otherwise split one record in two — so
/// every row keeps exactly the header's field count under any standard
/// CSV reader.
fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\r', '\n']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// One CSV data row shared by `simulate` and `sweep`: the code, channel,
/// and decoder columns are canonical spec strings, so `nms:1.25` and
/// `nms:1.0` (or `bsc:0.02` and `bsc:0.1`) never collapse into the same
/// label, and any row can be re-run by pasting its first three columns
/// (unquoted) into `simulate --code/--channel/--decoder`.
fn scenario_csv_row(scenario: &Scenario, point: &ldpc_sim::PointResult) -> String {
    format!(
        "{},{},{},{:.3},{},{:.6e},{:.6e},{:.2}",
        csv_field(&scenario.code.to_string()),
        csv_field(&scenario.channel.to_string()),
        csv_field(&scenario.decoder.to_string()),
        point.ebn0_db,
        point.frames,
        point.ber(),
        point.per(),
        point.avg_iterations()
    )
}

/// The adaptive sweep's CSV header: the legacy 8 columns (same order,
/// same formats) extended with the raw error count, the Wilson 95 % PER
/// interval, and which rule stopped the point. Every column is a
/// function of the *merged* counts — invariant under thread count and
/// under cold/warm/resumed execution — so a warm re-run's CSV is
/// byte-identical to the cold one. The per-run resume accounting
/// (frames simulated vs adopted from cache) is provenance, not result:
/// it goes to the `--json` file and the stderr summary instead.
const ADAPTIVE_CSV_HEADER: &str = "code,channel,decoder,ebn0_db,frames,ber,per,avg_iterations,\
                                   frame_errors,per_lo,per_hi,stopped_by";

/// One adaptive-sweep CSV row. Built on [`scenario_csv_row`], so the
/// first eight columns are byte-identical to what the legacy sweep
/// would print for the same merged counts (pinned by tests).
fn adaptive_csv_row(result: &SweepUnitResult) -> String {
    let (per_lo, per_hi) = result.point.per_confidence();
    format!(
        "{},{},{per_lo:.6e},{per_hi:.6e},{}",
        scenario_csv_row(&result.scenario, &result.point),
        result.point.frame_errors,
        if result.hit_target { "target" } else { "cap" }
    )
}

/// Escapes a string for a JSON literal (spec strings are plain ASCII,
/// but the writer must not be the component that trusts that).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a rate for JSON: a finite value in exponent notation, `null`
/// when undefined (a zero-frame point).
fn json_rate(x: f64) -> String {
    if x.is_nan() {
        "null".to_string()
    } else {
        format!("{x:.6e}")
    }
}

/// The machine-readable result set written by `sweep --json PATH` (the
/// `BENCH_SWEEP.json` format). Deliberately excludes wall time so that
/// a warm re-run produces byte-identical JSON except for the resume
/// accounting — `total_frames_simulated` is the field CI greps to
/// assert a warm cache simulated nothing.
fn sweep_json(results: &[SweepUnitResult], cfg: &SweepConfig) -> String {
    let mut json = String::from("{\n  \"tool\": \"ldpc-tool sweep\",\n  \"adaptive\": true,\n");
    json.push_str(&format!(
        "  \"target_frame_errors\": {},\n  \"chunk_frames\": {},\n  \"max_frames\": {},\n",
        cfg.target_frame_errors, cfg.chunk_frames, cfg.max_frames
    ));
    let simulated: u64 = results.iter().map(|r| r.frames_simulated).sum();
    let cached: u64 = results.iter().map(|r| r.frames_from_cache).sum();
    json.push_str(&format!(
        "  \"total_frames_simulated\": {simulated},\n  \"total_frames_from_cache\": {cached},\n"
    ));
    json.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let (per_lo, per_hi) = r.point.per_confidence();
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"ebn0_db\": {:?}, \"frames\": {}, \
             \"bit_errors\": {}, \"frame_errors\": {}, \"undetected_frame_errors\": {}, \
             \"total_iterations\": {}, \"ber\": {}, \"per\": {}, \
             \"per_lo\": {per_lo:.6e}, \"per_hi\": {per_hi:.6e}, \
             \"frames_simulated\": {}, \"frames_from_cache\": {}, \"chunks_merged\": {}, \
             \"effective_max_frames\": {}, \"hit_target\": {}}}{}\n",
            json_escape(&r.scenario.to_string()),
            r.ebn0_db,
            r.point.frames,
            r.point.bit_errors,
            r.point.frame_errors,
            r.point.undetected_frame_errors,
            r.point.total_iterations,
            json_rate(r.point.ber()),
            json_rate(r.point.per()),
            r.frames_simulated,
            r.frames_from_cache,
            r.chunks_merged,
            r.effective_max_frames,
            r.hit_target,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn cmd_plan(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let mbps: f64 = args
        .get("mbps")
        .ok_or("plan requires --mbps")?
        .parse()
        .map_err(|_| "invalid --mbps value")?;
    let iters: u32 = args.get_or("iters", 18u32)?;
    let clock: f64 = args.get_or("clock", 200.0)?;
    let request = PlannerRequest {
        min_info_mbps: mbps,
        iterations: iters,
        clock_mhz: clock,
    };
    match plan(&request, &CodeDims::ccsds_c2()) {
        None => Ok(format!(
            "no swept configuration reaches {mbps} Mbps at {iters} iterations / {clock} MHz\n"
        )),
        Some(choice) => Ok(format!(
            "config : {}\nrate   : {:.1} Mbps info at {iters} iterations\ndevice : {} {} ({})\n",
            choice.config,
            choice.info_mbps,
            choice.device.family,
            choice.device.name,
            choice.device.utilization(&choice.estimate),
        )),
    }
}

/// `serve`: run the decode-as-a-service front end until a shutdown
/// signal (SIGINT/SIGTERM), a client `SHUTDOWN` request, or a fatal
/// bind error. Returns the run summary once the drain completes.
fn cmd_serve(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let addr = match args.get("addr") {
        Some(a) => {
            if args.get("port").is_some() {
                return Err("--addr conflicts with --port; give just one".into());
            }
            a.to_string()
        }
        None => format!("127.0.0.1:{}", args.get_or("port", 7878u16)?),
    };
    let cfg = ldpc_served::ServeConfig {
        addr: addr.clone(),
        max_wait: std::time::Duration::from_micros(args.get_or("max-wait-us", 500u64)?),
        workers: args.get_or("workers", 0usize)?,
        max_iterations: args.get_or("iters", 18u32)?,
        queue_frames: args.get_or("queue-frames", 1024usize)?,
    };
    // A clean one-line error — an occupied port must not panic.
    let server = ldpc_served::Server::bind(cfg).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let handle = server.handle();
    eprintln!(
        "ldpc-tool serve: listening on {} (ctrl-c, SIGTERM, or a SHUTDOWN request drains and exits)",
        handle.addr()
    );

    // SIGINT/SIGTERM handlers only set a flag; this watcher turns the
    // flag into a graceful drain (a blocked accept() is not interrupted
    // by the signal — see ldpc_served::signals).
    let flag = ldpc_served::shutdown_flag();
    let watcher_handle = handle.clone();
    let watcher = std::thread::spawn(move || {
        while !watcher_handle.stopped() {
            if flag.load(std::sync::atomic::Ordering::SeqCst) {
                watcher_handle.shutdown();
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    });
    let summary = server.run();
    let _ = watcher.join();
    Ok(format!("{summary}\n"))
}

fn cmd_tables() -> String {
    let dims = CodeDims::ccsds_c2();
    let mut out = String::new();
    let lc = ThroughputModel::new(ArchConfig::low_cost(), dims);
    let hs = ThroughputModel::new(ArchConfig::high_speed(), dims);
    let rows: Vec<Vec<String>> = [10u32, 18, 50]
        .iter()
        .map(|&it| {
            vec![
                it.to_string(),
                format!("{:.0} Mbps", lc.info_throughput_mbps(it)),
                format!("{:.0} Mbps", hs.info_throughput_mbps(it)),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Table 1 — output throughput at 200 MHz",
        &["iterations", "low-cost", "high-speed"],
        &rows,
    ));
    for cfg in [ArchConfig::low_cost(), ArchConfig::high_speed()] {
        let est = ResourceEstimate::new(&cfg, &dims);
        out.push_str(&format!("\n{} decoder: {est}\n", cfg.name));
        for dev in devices() {
            if dev.fits(&est) {
                out.push_str(&format!(
                    "  fits {} {} ({})\n",
                    dev.family,
                    dev.name,
                    dev.utilization(&est)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(words: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn help_lists_all_commands() {
        let h = help_text();
        for cmd in [
            "info", "encode", "simulate", "sweep", "serve", "plan", "tables",
        ] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
        // The spec grammar is part of the contract: every family shows up.
        for family in DecoderSpec::family_names() {
            assert!(h.contains(family), "help missing family {family}");
        }
    }

    #[test]
    fn unknown_command_errors() {
        let err = run(&parsed(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn serve_bind_failure_is_a_clean_error_not_a_panic() {
        // Hold the port open so the serve bind must fail.
        let occupied = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let port = occupied.local_addr().unwrap().port().to_string();
        let err = run(&parsed(&["serve", "--port", &port])).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cannot bind"), "{msg}");
        assert!(msg.contains(&port), "{msg}");
    }

    #[test]
    fn serve_option_errors_are_clean() {
        let err = run(&parsed(&[
            "serve",
            "--addr",
            "127.0.0.1:1",
            "--port",
            "7878",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("conflicts"), "{err}");
        let err = run(&parsed(&["serve", "--max-wait-us", "soon"])).unwrap_err();
        assert!(err.to_string().contains("invalid value"), "{err}");
        let err = run(&parsed(&["serve", "--port", "notaport"])).unwrap_err();
        assert!(err.to_string().contains("invalid value"), "{err}");
    }

    #[test]
    fn info_reports_c2_parameters() {
        let out = run(&parsed(&["info"])).unwrap();
        assert!(out.contains("8176"));
        assert!(out.contains("7156"));
        assert!(out.contains("7154"));
    }

    #[test]
    fn encode_zeros_gives_zero_codeword() {
        let out = run(&parsed(&["encode", "--zeros"])).unwrap();
        let line = out.trim();
        assert_eq!(line.len(), 8176);
        assert!(line.chars().all(|c| c == '0'));
    }

    #[test]
    fn encode_random_is_seeded_and_valid() {
        let a = run(&parsed(&["encode", "--seed", "5"])).unwrap();
        let b = run(&parsed(&["encode", "--seed", "5"])).unwrap();
        let c = run(&parsed(&["encode", "--seed", "6"])).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let bits: Vec<u8> = a.trim().bytes().map(|b| b - b'0').collect();
        let cw = gf2::BitVec::from_bits(&bits);
        assert!(ccsds_c2::code().is_codeword(&cw));
    }

    #[test]
    fn simulate_demo_produces_csv() {
        let out = run(&parsed(&[
            "simulate", "--demo", "--ebn0", "6.0", "--frames", "100", "--iters", "10",
        ]))
        .unwrap();
        assert!(out.starts_with("code,channel,decoder"));
        let data = out.lines().nth(1).unwrap();
        assert!(data.starts_with("demo,awgn,fixed,6.000,100,"));
    }

    #[test]
    fn simulate_batched_matches_per_frame_counts() {
        // One worker so the per-frame and batched runs draw identical
        // noise; bit-exact batched decoding then makes the whole CSV
        // byte-identical.
        let base = &[
            "simulate",
            "--demo",
            "--decoder",
            "fixed",
            "--ebn0",
            "3.0",
            "--frames",
            "64",
            "--iters",
            "12",
            "--seed",
            "9",
            "--threads",
            "1",
        ];
        let per_frame = run(&parsed(base)).unwrap();
        let mut with_batch = base.to_vec();
        with_batch.extend(["--batch", "8"]);
        let batched = run(&parsed(&with_batch)).unwrap();
        assert!(batched
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("demo,awgn,fixed@batch=8,3.000,64,"));
        // Identical counts; only the decoder label records the packing.
        assert_eq!(per_frame.replace(",fixed,", ",fixed@batch=8,"), batched);
        // The modifier spelled directly in the spec is byte-identical.
        let mut with_spec = base.to_vec();
        with_spec[3] = "fixed@batch=8"; // replaces the --decoder value
        let spec_run = run(&parsed(&with_spec)).unwrap();
        assert_eq!(spec_run, batched);
    }

    #[test]
    fn simulate_batched_nms_works() {
        let out = run(&parsed(&[
            "simulate",
            "--demo",
            "--decoder",
            "nms",
            "--batch",
            "4",
            "--frames",
            "32",
            "--ebn0",
            "5.0",
        ]))
        .unwrap();
        assert!(out
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("demo,awgn,nms@batch=4,5.000,32,"));
    }

    #[test]
    fn simulate_hard_bitslice_matches_scalar_hard_counts() {
        // One worker: scalar Gallager-B and the 64-wide bit-sliced run
        // draw identical noise and decode bit-exactly per lane, so the
        // CSV differs only in the decoder column.
        let base = &[
            "simulate",
            "--demo",
            "--hard",
            "--ebn0",
            "5.0",
            "--frames",
            "96",
            "--iters",
            "20",
            "--seed",
            "4",
            "--threads",
            "1",
        ];
        let scalar = run(&parsed(base)).unwrap();
        let mut with_bitslice = base.to_vec();
        with_bitslice.push("--bitslice");
        let sliced = run(&parsed(&with_bitslice)).unwrap();
        assert!(scalar
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("demo,awgn,gallager-b,5.000,96,"));
        assert!(sliced
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("demo,awgn,gallager-b@bitslice,5.000,96,"));
        assert_eq!(
            scalar.replace(",gallager-b,", ",gallager-b@bitslice,"),
            sliced,
            "bit-sliced counts diverged from scalar Gallager-B"
        );
        // The modern spelling of the same runs.
        let mut spec_scalar = base.to_vec();
        spec_scalar[2] = "--decoder";
        spec_scalar.insert(3, "gallager-b:t=3");
        assert_eq!(run(&parsed(&spec_scalar)).unwrap(), scalar);
        spec_scalar[3] = "gallager-b:t=3@bitslice";
        assert_eq!(run(&parsed(&spec_scalar)).unwrap(), sliced);
    }

    #[test]
    fn simulate_bitslice_requires_hard() {
        let err = run(&parsed(&["simulate", "--demo", "--bitslice"])).unwrap_err();
        assert!(err.to_string().contains("--hard"));
    }

    #[test]
    fn simulate_threshold_requires_hard() {
        // A forgotten --hard must not silently run the soft decoder.
        let err = run(&parsed(&["simulate", "--demo", "--threshold", "5"])).unwrap_err();
        assert!(err.to_string().contains("--hard"));
    }

    #[test]
    fn simulate_hard_rejects_decoder_and_batch() {
        let err = run(&parsed(&[
            "simulate",
            "--demo",
            "--hard",
            "--decoder",
            "nms",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("drop --decoder"));
        let err = run(&parsed(&["simulate", "--demo", "--hard", "--batch", "8"])).unwrap_err();
        assert!(err.to_string().contains("--bitslice"));
    }

    #[test]
    fn simulate_hard_rejects_zero_threshold() {
        let err = run(&parsed(&[
            "simulate",
            "--demo",
            "--hard",
            "--threshold",
            "0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("threshold"));
    }

    #[test]
    fn simulate_rejects_zero_batch() {
        let err = run(&parsed(&["simulate", "--demo", "--batch", "0"])).unwrap_err();
        assert!(err.to_string().contains("batch"));
    }

    #[test]
    fn simulate_rejects_batched_spa() {
        let err = run(&parsed(&[
            "simulate",
            "--demo",
            "--decoder",
            "spa",
            "--batch",
            "8",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("spa"));
    }

    #[test]
    fn simulate_rejects_unknown_decoder() {
        let err = run(&parsed(&["simulate", "--demo", "--decoder", "magic"])).unwrap_err();
        assert!(err.to_string().contains("decoder"));
    }

    #[test]
    fn simulate_accepts_every_registered_family() {
        for spec in DecoderSpec::all_families() {
            let out = run(&parsed(&[
                "simulate",
                "--demo",
                "--decoder",
                &spec.to_string(),
                "--frames",
                "8",
                "--ebn0",
                "6.0",
                "--iters",
                "5",
            ]))
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(
                out.lines()
                    .nth(1)
                    .unwrap()
                    .starts_with(&format!("demo,awgn,{spec},6.000,8,")),
                "{spec}: {out}"
            );
        }
    }

    #[test]
    fn simulate_decoder_label_keeps_parameters() {
        // nms:1.25 and nms:1.0 must not collapse into the same CSV label.
        let out = run(&parsed(&[
            "simulate",
            "--demo",
            "--decoder",
            "nms:1.25",
            "--frames",
            "8",
            "--iters",
            "5",
        ]))
        .unwrap();
        assert!(out
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("demo,awgn,nms:1.25,"));
    }

    #[test]
    fn sweep_emits_one_csv_across_families_and_points() {
        let out = run(&parsed(&[
            "sweep",
            "--demo",
            "--decoders",
            "nms:1.25,fixed@batch=8,gallager-b@bitslice",
            "--ebn0s",
            "4.0,6.0",
            "--frames",
            "16",
            "--iters",
            "5",
            "--threads",
            "1",
        ]))
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "code,channel,decoder,ebn0_db,frames,ber,per,avg_iterations"
        );
        assert_eq!(lines.len(), 1 + 3 * 2, "one row per (decoder, ebn0)");
        assert!(lines[1].starts_with("demo,awgn,nms:1.25,4.000,16,"));
        assert!(lines[2].starts_with("demo,awgn,nms:1.25,6.000,16,"));
        assert!(lines[3].starts_with("demo,awgn,fixed@batch=8,4.000,16,"));
        assert!(lines[5].starts_with("demo,awgn,gallager-b@bitslice,4.000,16,"));
    }

    #[test]
    fn sweep_first_point_matches_simulate_counts() {
        // Same seed derivation at point index 0: sweep rows reproduce a
        // plain simulate run exactly.
        let shared = [
            "--demo",
            "--frames",
            "32",
            "--iters",
            "8",
            "--seed",
            "5",
            "--threads",
            "1",
        ];
        let mut sim_args = vec!["simulate", "--decoder", "nms:1.25"];
        sim_args.extend(shared);
        let mut sweep_args = vec!["sweep", "--decoders", "nms:1.25"];
        sweep_args.extend(shared);
        assert_eq!(
            run(&parsed(&sim_args)).unwrap(),
            run(&parsed(&sweep_args)).unwrap()
        );
    }

    #[test]
    fn simulate_and_sweep_reject_zero_frames() {
        for cmd in [
            vec!["simulate", "--demo", "--frames", "0"],
            vec!["sweep", "--demo", "--decoders", "spa", "--frames", "0"],
        ] {
            let err = run(&parsed(&cmd)).unwrap_err();
            assert!(err.to_string().contains("frames"), "{err}");
        }
    }

    #[test]
    fn sweep_rejects_legacy_decoder_flags() {
        // simulate maps these onto specs; sweep must not silently ignore
        // them and run a different decoder than asked.
        for (extra, hint) in [
            (vec!["--hard"], "--decoders"),
            (vec!["--bitslice"], "--decoders"),
            (vec!["--threshold", "2"], "gallager-b:t=2"),
            (vec!["--batch", "8"], "nms@batch=8"),
            (vec!["--decoder", "nms:1.25"], "--decoders"),
        ] {
            let mut cmd = vec!["sweep", "--demo", "--decoders", "gallager-b"];
            cmd.extend(extra.iter().copied());
            let err = run(&parsed(&cmd)).unwrap_err();
            assert!(err.to_string().contains(hint), "{extra:?}: {err}");
        }
    }

    #[test]
    fn sweep_requires_decoders() {
        let err = run(&parsed(&["sweep", "--demo"])).unwrap_err();
        assert!(err.to_string().contains("--decoders"));
    }

    #[test]
    fn sweep_rejects_bad_spec_with_actionable_message() {
        let err = run(&parsed(&[
            "sweep",
            "--demo",
            "--decoders",
            "nms:1.25,magic",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("known families"), "{err}");
    }

    #[test]
    fn spec_lists_reattach_parameter_continuations() {
        assert_eq!(
            split_spec_list("demo,ar4ja:r=2/3,k=1024,shortened:c2,k=4096"),
            vec!["demo", "ar4ja:r=2/3,k=1024", "shortened:c2,k=4096"]
        );
        assert_eq!(
            split_spec_list("nms:1.25,gallager-b:t=2@bitslice,fixed@batch=8"),
            vec!["nms:1.25", "gallager-b:t=2@bitslice", "fixed@batch=8"]
        );
        assert_eq!(
            split_spec_list("awgn@quant=5,bsc:0.02"),
            vec!["awgn@quant=5", "bsc:0.02"]
        );
    }

    #[test]
    fn sweep_grid_emits_one_row_per_combination() {
        // The acceptance-criterion grid, demo-sized: codes x channels x
        // decoders x points, canonical spec strings in the first three
        // columns.
        let out = run(&parsed(&[
            "sweep",
            "--codes",
            "demo,shortened:demo,k=120",
            "--channels",
            "awgn,bsc:0.02",
            "--decoders",
            "ms,nms:1.25",
            "--ebn0s",
            "3,4",
            "--frames",
            "16",
            "--iters",
            "5",
            "--threads",
            "1",
        ]))
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "code,channel,decoder,ebn0_db,frames,ber,per,avg_iterations"
        );
        assert_eq!(
            lines.len(),
            1 + 2 * 2 * 2 * 2,
            "2 codes x 2 channels x 2 decoders x 2 points"
        );
        assert!(lines[1].starts_with("demo,awgn,ms,3.000,16,"));
        assert!(lines[2].starts_with("demo,awgn,ms,4.000,16,"));
        assert!(lines[3].starts_with("demo,awgn,nms:1.25,3.000,16,"));
        assert!(lines[5].starts_with("demo,bsc:0.02,ms,3.000,16,"));
        // A comma-containing code spec is RFC 4180-quoted, so the row
        // keeps the header's field count.
        assert!(lines[9].starts_with("\"shortened:demo,k=120\",awgn,ms,3.000,16,"));
        // Every data row's first columns are canonical: re-parsing and
        // re-rendering them is the identity.
        for line in &lines[1..] {
            let (code_str, rest) = if let Some(quoted) = line.strip_prefix('"') {
                let (code_str, rest) = quoted.split_once('"').expect("closing quote");
                (code_str, rest.strip_prefix(',').expect("field separator"))
            } else {
                line.split_once(',').unwrap()
            };
            let fields: Vec<&str> = rest.split(',').collect();
            assert_eq!(fields.len(), 7, "{line}: field count after code");
            assert_eq!(
                CodeSpec::parse(code_str).unwrap().to_string(),
                code_str,
                "{line}"
            );
            assert_eq!(
                ChannelSpec::parse(fields[0]).unwrap().to_string(),
                fields[0],
                "{line}"
            );
            assert_eq!(
                DecoderSpec::parse(fields[1]).unwrap().to_string(),
                fields[1],
                "{line}"
            );
        }
    }

    #[test]
    fn sweep_rejects_codes_with_demo_flag() {
        let err = run(&parsed(&[
            "sweep",
            "--demo",
            "--codes",
            "c2",
            "--decoders",
            "ms",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--demo"), "{err}");
    }

    #[test]
    fn sweep_row_reproduces_simulate_with_matching_flags() {
        let shared = [
            "--frames",
            "24",
            "--iters",
            "6",
            "--seed",
            "5",
            "--threads",
            "1",
        ];
        let mut sim = vec![
            "simulate",
            "--demo",
            "--channel",
            "bsc:0.02",
            "--decoder",
            "nms:1.25",
        ];
        sim.extend(shared);
        let mut sweep = vec![
            "sweep",
            "--demo",
            "--channels",
            "bsc:0.02",
            "--decoders",
            "nms:1.25",
        ];
        sweep.extend(shared);
        assert_eq!(run(&parsed(&sim)).unwrap(), run(&parsed(&sweep)).unwrap());
    }

    #[test]
    fn simulate_channel_column_defaults_to_awgn_and_tracks_spec() {
        let out = run(&parsed(&[
            "simulate",
            "--demo",
            "--channel",
            "rayleigh",
            "--frames",
            "8",
            "--iters",
            "5",
        ]))
        .unwrap();
        assert!(out.lines().nth(1).unwrap().starts_with("demo,rayleigh,"));
    }

    #[test]
    fn simulate_rejects_conflicting_code_selectors() {
        let err = run(&parsed(&["simulate", "--demo", "--code", "c2"])).unwrap_err();
        assert!(err.to_string().contains("--demo"), "{err}");
        let err = run(&parsed(&["simulate", "--codes", "demo"])).unwrap_err();
        assert!(err.to_string().contains("sweep"), "{err}");
        let err = run(&parsed(&[
            "sweep",
            "--decoders",
            "ms",
            "--channel",
            "bsc:0.02",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--channels"), "{err}");
    }

    #[test]
    fn simulate_rejects_unknown_code_and_channel_specs() {
        let err = run(&parsed(&["simulate", "--code", "zeta"])).unwrap_err();
        assert!(err.to_string().contains("known families"), "{err}");
        let err = run(&parsed(&["simulate", "--demo", "--channel", "zeta"])).unwrap_err();
        assert!(err.to_string().contains("known models"), "{err}");
    }

    #[test]
    fn csv_field_quotes_commas_quotes_and_line_breaks() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
        // RFC 4180: an unquoted CR or LF would split one record in two.
        assert_eq!(csv_field("a\nb"), "\"a\nb\"");
        assert_eq!(csv_field("a\r\nb"), "\"a\r\nb\"");
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ldpc-cli-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn adaptive_sweep_extends_the_legacy_rows_exactly() {
        // With the target disabled and a whole-budget chunk, the adaptive
        // path runs the very same engine calls as the legacy sweep: its
        // rows must be the legacy rows plus the new columns.
        let shared = [
            "sweep",
            "--demo",
            "--decoders",
            "nms:1.25,fixed",
            "--ebn0s",
            "4.0,6.0",
            "--frames",
            "24",
            "--iters",
            "6",
            "--threads",
            "1",
            "--seed",
            "5",
        ];
        let legacy = run(&parsed(&shared)).unwrap();
        let mut adaptive_args = shared.to_vec();
        adaptive_args.extend(["--adaptive", "--target-errors", "0", "--chunk-frames", "24"]);
        let adaptive = run(&parsed(&adaptive_args)).unwrap();
        let legacy_lines: Vec<&str> = legacy.lines().collect();
        let adaptive_lines: Vec<&str> = adaptive.lines().collect();
        assert_eq!(adaptive_lines[0], ADAPTIVE_CSV_HEADER);
        assert!(ADAPTIVE_CSV_HEADER.starts_with(CSV_HEADER));
        assert_eq!(legacy_lines.len(), adaptive_lines.len());
        for (legacy_row, adaptive_row) in legacy_lines.iter().zip(&adaptive_lines).skip(1) {
            assert!(
                adaptive_row.starts_with(*legacy_row),
                "adaptive row {adaptive_row:?} does not extend {legacy_row:?}"
            );
            assert!(adaptive_row.ends_with(",cap"), "{adaptive_row}");
        }
        // Determinism: the adaptive path is as reproducible as the engine.
        assert_eq!(adaptive, run(&parsed(&adaptive_args)).unwrap());
    }

    #[test]
    fn adaptive_sweep_stops_on_target() {
        // At -4 dB every demo frame errors, so one 20-frame chunk covers
        // a target of 3.
        let out = run(&parsed(&[
            "sweep",
            "--demo",
            "--decoders",
            "nms:1.25",
            "--ebn0s",
            "-4.0",
            "--frames",
            "200",
            "--chunk-frames",
            "20",
            "--target-errors",
            "3",
            "--iters",
            "6",
            "--threads",
            "1",
            "--adaptive",
        ]))
        .unwrap();
        let row = out.lines().nth(1).unwrap();
        assert!(row.starts_with("demo,awgn,nms:1.25,-4.000,20,"), "{row}");
        assert!(row.ends_with(",target"), "{row}");
    }

    #[test]
    fn adaptive_resume_rerun_is_byte_identical_with_zero_frames_simulated() {
        let cache = temp_path("resume-cache");
        let json = temp_path("resume.json");
        let _ = std::fs::remove_dir_all(&cache);
        let cache_s = cache.to_str().unwrap().to_owned();
        let json_s = json.to_str().unwrap().to_owned();
        let args = [
            "sweep",
            "--demo",
            "--decoders",
            "nms:1.25",
            "--ebn0s",
            "2.0,4.0",
            "--frames",
            "60",
            "--chunk-frames",
            "30",
            "--target-errors",
            "0",
            "--iters",
            "6",
            "--threads",
            "1",
            "--resume",
            "--cache-dir",
            &cache_s,
            "--json",
            &json_s,
        ];
        let cold = run(&parsed(&args)).unwrap();
        let cold_json = std::fs::read_to_string(&json).unwrap();
        assert!(
            cold_json.contains("\"total_frames_simulated\": 120"),
            "{cold_json}"
        );
        let warm = run(&parsed(&args)).unwrap();
        let warm_json = std::fs::read_to_string(&json).unwrap();
        assert_eq!(cold, warm, "warm CSV must be byte-identical");
        assert!(
            warm_json.contains("\"total_frames_simulated\": 0"),
            "{warm_json}"
        );
        assert!(
            warm_json.contains("\"total_frames_from_cache\": 120"),
            "{warm_json}"
        );
        let _ = std::fs::remove_dir_all(&cache);
        let _ = std::fs::remove_file(&json);
    }

    #[test]
    fn adaptive_flags_require_adaptive_mode() {
        for (opt, value) in [
            ("--target-errors", "50"),
            ("--chunk-frames", "100"),
            ("--cache-dir", "/tmp/x"),
            ("--json", "/tmp/x.json"),
        ] {
            let err = run(&parsed(&[
                "sweep",
                "--demo",
                "--decoders",
                "nms",
                opt,
                value,
            ]))
            .unwrap_err();
            assert!(err.to_string().contains("--adaptive"), "{opt}: {err}");
        }
    }

    #[test]
    fn adaptive_sweep_rejects_zero_chunk_frames() {
        let err = run(&parsed(&[
            "sweep",
            "--demo",
            "--decoders",
            "nms",
            "--adaptive",
            "--chunk-frames",
            "0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("chunk-frames"), "{err}");
    }

    #[test]
    fn plan_reports_a_device_for_the_paper_rates() {
        let out = run(&parsed(&["plan", "--mbps", "70"])).unwrap();
        assert!(out.contains("device"));
        let out = run(&parsed(&["plan", "--mbps", "560"])).unwrap();
        assert!(out.contains("Mbps info"));
    }

    #[test]
    fn plan_requires_mbps() {
        let err = run(&parsed(&["plan"])).unwrap_err();
        assert!(err.to_string().contains("--mbps"));
    }

    #[test]
    fn tables_include_paper_numbers() {
        let out = cmd_tables();
        assert!(out.contains("Table 1"));
        assert!(out.contains("130 Mbps"));
    }
}
